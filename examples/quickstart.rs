//! Quickstart: synthesize the µPATHs of an instruction from a processor
//! netlist and print its µHB graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mupath::{synthesize_instr, ContextMode, SynthConfig};
use uarch::{build_core, CoreConfig};

fn main() {
    // 1. Elaborate a design under verification: MiniCva6 with the zero-skip
    //    multiplier (the paper's CVA6-MUL variant, Fig. 1).
    let design = build_core(&CoreConfig::cva6_mul());
    println!(
        "design `{}`: {} signals, {} flip-flop bits, {} µFSMs",
        design.name,
        design.netlist.len(),
        design.netlist.state_bits(),
        design.annotations.ufsms.len()
    );
    println!("{}\n", design.annotations.table_summary(&design.name));

    // 2. Run RTL2MµPATH on one instruction. `Solo` context explores the
    //    instruction in isolation (the artifact's quick mode); symbolic
    //    architectural state still exercises every operand value.
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 16,
        conflict_budget: Some(2_000_000),
        max_shapes: 16,
    };
    let result = synthesize_instr(&design, isa::Opcode::Mul, &cfg);
    println!(
        "MUL: {} µPATH(s), {} properties evaluated in {:.2}s total",
        result.paths.len(),
        result.stats.properties,
        result.stats.total_time.as_secs_f64()
    );

    // 3. Print each µPATH as a cycle-accurate µHB column (Fig. 1 style).
    let harness = mupath::build_harness(
        &design,
        &mupath::HarnessConfig {
            opcode: isa::Opcode::Mul,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    for (i, path) in result.concrete.iter().enumerate() {
        println!(
            "µPATH {i} (latency {} cycles):\n{}",
            path.latency(),
            path.render(&harness.pls)
        );
    }

    // 4. Decisions: where do the paths diverge?
    for d in &result.decisions {
        println!("decision: {}", d.describe(&harness.pls));
    }
}
