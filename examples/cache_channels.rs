//! Analyzing a standalone cache DUV (the §VII-A2 experiment): hit/miss
//! µPATHs for reads and writes, including the write path's bank-access
//! split (Fig. 4c), driven from the textual netlist round-trip to show the
//! "RTL in from disk" flow.
//!
//! ```text
//! cargo run --release --example cache_channels
//! ```

use mupath::{synthesize_instr, ContextMode, HarnessConfig, SynthConfig};
use uarch::cache::build_cache;

fn main() {
    let design = build_cache();

    // Round-trip the netlist through the textual format, as if it had been
    // loaded from an RTL file on disk.
    let text = netlist::text::emit(&design.netlist);
    let reparsed = netlist::text::parse(&text).expect("textual netlist parses");
    println!(
        "MiniCache: {} nodes ({} bytes as text, round-trips cleanly)",
        reparsed.len(),
        text.len()
    );
    println!("{}\n", design.annotations.table_summary("MiniCache"));

    let cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 32,
    };
    for op in [isa::Opcode::Lw, isa::Opcode::Sw] {
        let kind = if op == isa::Opcode::Lw {
            "read"
        } else {
            "write"
        };
        let r = synthesize_instr(&design, op, &cfg);
        println!(
            "{kind}: {} µPATH(s) from {} properties ({:.2}s avg — note how much \
             cheaper than core properties: the paper's modularity argument)",
            r.paths.len(),
            r.stats.properties,
            r.stats.avg_seconds()
        );
        let harness = mupath::build_harness(
            &design,
            &HarnessConfig {
                opcode: op,
                fetch_slot: 0,
                context: ContextMode::Any,
            },
        );
        for (i, p) in r.concrete.iter().enumerate() {
            println!(
                "  µPATH {i} ({} cycles): {}",
                p.latency(),
                r.paths[i].describe(&harness.pls)
            );
        }
        for d in &r.class_decisions {
            println!("  decision at pl{}", d.src.0);
        }
        println!();
    }
}
