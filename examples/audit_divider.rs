//! Security audit of a functional unit: run the full SynthLC flow on the
//! serial divider and derive the six leakage contracts of Table I.
//!
//! ```text
//! cargo run --release --example audit_divider
//! ```

use mupath::{ContextMode, SynthConfig};
use synthlc::{contracts, synthesize_leakage, LeakConfig, TxKind};
use uarch::{build_core, CoreConfig, DivPolicy};

fn audit(name: &str, cfg: &CoreConfig) {
    let design = build_core(cfg);
    let leak_cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![0],
            context: ContextMode::Solo,
            bound: 18,
            conflict_budget: Some(2_000_000),
            max_shapes: 32,
        },
        transmitters: vec![isa::Opcode::Div],
        kinds: vec![TxKind::Intrinsic],
        bound: 18,
        conflict_budget: Some(2_000_000),
        threads: 0,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let report = synthesize_leakage(&design, &[isa::Opcode::Div], &leak_cfg);
    println!("== {name} ==");
    println!(
        "  candidate transponders: {:?}",
        report.candidate_transponders
    );
    if report.signatures.is_empty() {
        println!("  no leakage signatures: the divider is data-oblivious\n");
        return;
    }
    for s in &report.signatures {
        println!("  signature: {}", s.render());
    }
    let c = contracts::derive_contracts(&report);
    println!("\n  constant-time contract:\n{}", indent(&c.ct.render()));
    println!(
        "  Table I derivation:\n{}",
        indent(&contracts::render_table1(&c))
    );
}

fn indent(s: &str) -> String {
    s.lines()
        .map(|l| format!("    {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    // The early-terminating serial divider: an intrinsic transmitter.
    audit(
        "MiniCva6 (early-terminating divider)",
        &CoreConfig::default(),
    );
    // The hardened, fixed-latency divider: clean.
    audit(
        "MiniCva6-hardened (fixed-latency divider)",
        &CoreConfig {
            div: DivPolicy::Fixed(5),
            ..CoreConfig::hardened()
        },
    );
}
