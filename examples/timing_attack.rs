//! An end-to-end timing side channel, demonstrated with the SC-Safe
//! (Definition V.1) experiment: a "victim" routine whose secret reaches a
//! divider operand leaks through the `R_µPATH` observer, while the same
//! routine on a hardened core does not.
//!
//! ```text
//! cargo run --release --example timing_attack
//! ```

use synthlc::scsafe::{check_sc_safe, SecretLocation};
use uarch::{build_core, CoreConfig};

fn main() {
    // The victim: loads a secret from memory, divides it by a constant,
    // stores the result. Constant instruction sequence (ArchCtrl holds) —
    // any leak is microarchitectural.
    let victim = isa::assemble(
        "lw   r1, r0, 0    ; r1 = secret (mem[0])\n\
         addi r2, r0, 13\n\
         div  r3, r1, r2   ; divider latency depends on operands\n\
         sw   r0, r3, 1    ; store the result\n",
    )
    .expect("victim assembles");

    println!("victim program:\n{}", isa::disassemble(&victim));

    for (name, cfg) in [
        ("MiniCva6 (leaky)", CoreConfig::default()),
        ("MiniCva6-hardened", CoreConfig::hardened()),
    ] {
        let design = build_core(&cfg);
        println!("== {name} ==");
        // Try several secret pairs; Definition V.1 quantifies over all of
        // them — a single divergence is a violation.
        let mut any_violation = false;
        for (a, b) in [(0u64, 1u64), (1, 200), (3, 3), (100, 101)] {
            let res = check_sc_safe(&design, &victim, SecretLocation::Mem(0), a, b, 4);
            let verdict = if res.violated {
                any_violation = true;
                format!(
                    "LEAK (traces diverge at cycle {})",
                    res.diverging_cycle.expect("diverging cycle")
                )
            } else {
                "indistinguishable".to_owned()
            };
            println!("  secret {a:>3} vs {b:>3}: {verdict}");
        }
        println!(
            "  => SC-Safe violated: {}\n",
            if any_violation { "YES" } else { "no" }
        );
    }
}
