#!/bin/bash
# Regenerates every paper table/figure into results/.
# SYNTHLC_SCOPE=quick (default) or full for the Fig. 8 / Table I sweeps.
# SYNTHLC_THREADS=N bounds the parallel property-evaluation engine
# (default: the machine's available parallelism).
set -u
cd "$(dirname "$0")/.."
cargo build --release -p bench || exit 1
mkdir -p results
echo "scope=${SYNTHLC_SCOPE:-quick} threads=${SYNTHLC_THREADS:-auto}"
for bin in table2 fig1 fig2 div_revisits bugs fig6_flow fig4 fig5 perf scsafe_sweep; do
  echo "=== running $bin ==="
  timeout 3600 ./target/release/$bin > results/$bin.txt 2>&1
  echo "=== $bin rc=$? ==="
done
scope="${SYNTHLC_SCOPE:-quick}"
SYNTHLC_SCOPE=$scope timeout 7200 ./target/release/fig8 > results/fig8_$scope.txt 2>&1
echo "fig8 rc=$?"
SYNTHLC_SCOPE=$scope timeout 7200 ./target/release/table1 > results/table1.txt 2>&1
echo "table1 rc=$?"
echo ALL DONE
