#!/bin/bash
# CI gate: formatting, lints, and the full workspace test suite.
#
# Offline-friendly: runs with --offline by default (the workspace has no
# third-party dependencies); set SYNTHLC_CI_ONLINE=1 to let cargo touch
# the network. SYNTHLC_THREADS bounds the parallel engine in tests.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=(--offline)
if [ "${SYNTHLC_CI_ONLINE:-0}" != 0 ]; then
  OFFLINE=()
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy "${OFFLINE[@]}" --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q "${OFFLINE[@]}" --workspace

echo "== lint-designs (static-analysis suite, warnings fatal) =="
cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- lint all --deny-warnings

echo "== fault-smoke (inject a fault, journal, resume clean) =="
# Seed 2 at rate 0.5 deterministically faults one of tinycore add's two
# µPATH jobs and leaves the other clean: the run must degrade (exit 2),
# journal exactly the clean verdict, and a --resume replay must converge
# to a clean exit 0.
JOURNAL=$(mktemp -t synthlc-fault-smoke.XXXXXX)
trap 'rm -f "$JOURNAL"' EXIT
rm -f "$JOURNAL"
set +e
SYNTHLC_FAULT_SEED=2 cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  paths tinycore add --fault-rate 0.5 --journal "$JOURNAL" >/dev/null
FAULT_EXIT=$?
set -e
if [ "$FAULT_EXIT" != 2 ]; then
  echo "fault-smoke: expected exit 2 from the faulted run, got $FAULT_EXIT" >&2
  exit 1
fi
if ! grep -q '^{"k":"mupath:' "$JOURNAL"; then
  echo "fault-smoke: journal has no well-formed µPATH record:" >&2
  cat "$JOURNAL" >&2
  exit 1
fi
cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  paths tinycore add --resume "$JOURNAL" >/dev/null
echo "fault-smoke OK (degrade -> journal -> resume clean)"

echo "== frontend (textual netlist: goldens, diagnostics, text oracle) =="
# The frontend gate has four legs:
#   1. every shipped examples/*.nl passes `check --deny-warnings` (the
#      designs we tell users to imitate must be diagnostic-clean);
#   2. `check --emit` reproduces each golden byte-for-byte (the canonical
#      emitter is a fixpoint on its own output);
#   3. the golden-file and diagnostic-snapshot test suites pass (emission
#      drift and message drift both show up as readable diffs);
#   4. a 200-design fuzz sweep of the text oracle alone: emit -> check ->
#      lower must stay diagnostic-free and structurally faithful on
#      random netlists, not just the shipped six.
for NL in examples/*.nl; do
  cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
    check "$NL" --deny-warnings >/dev/null
  if ! cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
    check "$NL" --emit | diff -q - "$NL" >/dev/null; then
    echo "frontend: $NL is not an emission fixpoint" >&2
    exit 1
  fi
done
cargo test -q "${OFFLINE[@]}" --test frontend_roundtrip
cargo test -q "${OFFLINE[@]}" -p netlist --test diag_snapshots
if ! cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  fuzz --seed 7 --cases 200 --oracles text --deadline-secs 45 >/dev/null; then
  echo "frontend: text-oracle fuzz sweep failed (repro above, if any)" >&2
  exit 1
fi
echo "frontend OK (goldens clean + fixpoint, snapshots, 200-seed text oracle)"

echo "== fuzz-smoke (differential oracles, pinned seeds) =="
# Two pinned seeds x 64 designs, each design through all seven oracles
# (sat, bmc, induction, reductions, ift, text, incremental), under a
# hard 90s wall budget split across the runs. Exit 0 = all oracles
# agreed; exit 1 = mismatch (the CLI already printed the minimized repro
# JSON line to stderr — replay it with `synthlc-cli fuzz`); exit 2 =
# deadline truncated the sweep before 64 designs, which this gate also
# treats as a failure.
for SEED in 1 20260806; do
  if ! cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
    fuzz --seed "$SEED" --cases 64 --deadline-secs 45 >/dev/null; then
    echo "fuzz-smoke: seed $SEED failed (mismatch repro JSON above, if any)" >&2
    exit 1
  fi
done
# A dedicated deeper sweep of the incremental oracle alone: 256 designs'
# property fleets through one persistent pooled solver vs. fresh
# per-query solvers (pool checkout, in-place bound extension, witness
# replay on every reachable leg).
if ! cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  fuzz --seed 11 --cases 256 --oracles incremental --deadline-secs 30 >/dev/null; then
  echo "fuzz-smoke: incremental-oracle sweep failed (repro above, if any)" >&2
  exit 1
fi
echo "fuzz-smoke OK (2 seeds x 64 designs, seven oracles, zero mismatches)"

echo "== serve-smoke (daemon: retry a worker panic, cache hit, drain) =="
# The daemon leg of the fault-smoke contract. SYNTHLC_FAULT_SEED=209
# (serve::CI_SMOKE_SEED, pinned by a unit test) at rate 0.5 plans a
# worker panic for the first job's first attempt and a clean retry, so:
#   1. `leak minicache lw` must survive its injected panic and exit 0;
#   2. an identical resubmission must be a cache hit (no re-solve);
#   3. `stats` must show retried >= 1 and cache_hits >= 1;
#   4. a client `shutdown` must drain the queue and exit the daemon 0.
SERVE_JOURNAL=$(mktemp -t synthlc-serve-smoke.XXXXXX)
SERVE_LOG=$(mktemp -t synthlc-serve-log.XXXXXX)
trap 'rm -f "$JOURNAL" "$SERVE_JOURNAL" "$SERVE_LOG"; kill "${SERVE_PID:-}" 2>/dev/null || true' EXIT
rm -f "$SERVE_JOURNAL"
SYNTHLC_FAULT_SEED=209 cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  serve --port 0 --workers 1 --retries 2 --fault-rate 0.5 \
  --journal "$SERVE_JOURNAL" > "$SERVE_LOG" &
SERVE_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 100); do
  SERVE_ADDR=$(sed -n 's/^listening on //p' "$SERVE_LOG")
  [ -n "$SERVE_ADDR" ] && break
  sleep 0.2
done
if [ -z "$SERVE_ADDR" ]; then
  echo "serve-smoke: daemon never printed its address" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi
# Leg 1: the first job draws the planned worker panic, retries, exits 0.
cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  client "$SERVE_ADDR" leak minicache lw --id smoke1 > /dev/null
# Leg 2: identical job again — must be answered from the verdict store.
cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  client "$SERVE_ADDR" leak minicache lw --id smoke2 > /dev/null
STATS=$(cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  client "$SERVE_ADDR" stats)
for WANT in '"retried":' '"cache_hits":'; do
  if ! printf '%s' "$STATS" | grep -q "$WANT"; then
    echo "serve-smoke: stats lack $WANT: $STATS" >&2
    exit 1
  fi
done
RETRIED=$(printf '%s' "$STATS" | sed -n 's/.*"retried":\([0-9]*\).*/\1/p')
HITS=$(printf '%s' "$STATS" | sed -n 's/.*"cache_hits":\([0-9]*\).*/\1/p')
if [ "${RETRIED:-0}" -lt 1 ] || [ "${HITS:-0}" -lt 1 ]; then
  echo "serve-smoke: expected retried>=1 and cache_hits>=1, got $STATS" >&2
  exit 1
fi
# Leg 3: graceful shutdown drains and the daemon exits 0.
cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  client "$SERVE_ADDR" shutdown > /dev/null
SERVE_EXIT=0
wait "$SERVE_PID" || SERVE_EXIT=$?
if [ "$SERVE_EXIT" != 0 ]; then
  echo "serve-smoke: daemon exited $SERVE_EXIT after graceful shutdown" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi
echo "serve-smoke OK (panic retried to exit 0, cache hit, graceful drain)"

echo "== sat-regression (DIMACS corpus + solver knob sweep) =="
# Every corpus file encodes its brute-force-verified status in its name;
# the CLI must reproduce it through the SAT-competition exit codes
# (10 = SAT, 20 = UNSAT). Then one pinned fuzz seed re-solves each
# case's CNF under every heuristic knob combination (restart policy x
# inprocessing x reduction schedule) and demands verdict invariance.
for CNF in crates/sat/tests/corpus/*.cnf; do
  case "$CNF" in
    *-sat.cnf)   WANT=10 ;;
    *-unsat.cnf) WANT=20 ;;
    *) echo "sat-regression: $CNF has no -sat/-unsat suffix" >&2; exit 1 ;;
  esac
  set +e
  cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- sat "$CNF" >/dev/null
  GOT=$?
  set -e
  if [ "$GOT" != "$WANT" ]; then
    echo "sat-regression: $CNF exited $GOT, expected $WANT" >&2
    exit 1
  fi
done
if ! cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  fuzz --seed 1 --cases 48 --knob-sweep --deadline-secs 60 >/dev/null; then
  echo "sat-regression: knob-sweep fuzz run failed (repro above, if any)" >&2
  exit 1
fi
# Incremental replay: the same corpus loaded into ONE pooled solver
# (per-file activation literals, solve_assuming per file) must reproduce
# every one-shot verdict, with learnt clauses carried across files.
set +e
INC_OUT=$(cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- \
  sat --incremental crates/sat/tests/corpus/*.cnf)
INC_EXIT=$?
set -e
N_FILES=$(ls crates/sat/tests/corpus/*.cnf | wc -l)
N_LINES=$(printf '%s\n' "$INC_OUT" | wc -l)
if [ "$N_LINES" != "$N_FILES" ]; then
  echo "sat-regression: incremental replay printed $N_LINES verdicts for $N_FILES files" >&2
  exit 1
fi
while IFS= read -r LINE; do
  FILE=${LINE%%: *}
  case "$FILE" in
    *-sat.cnf)   WANT="s SATISFIABLE" ;;
    *-unsat.cnf) WANT="s UNSATISFIABLE" ;;
    *) echo "sat-regression: unexpected incremental verdict line: $LINE" >&2; exit 1 ;;
  esac
  if [ "$LINE" != "$FILE: $WANT" ]; then
    echo "sat-regression: pooled verdict drifted: got '$LINE', want '$FILE: $WANT'" >&2
    exit 1
  fi
done <<< "$INC_OUT"
# The exit code follows the last corpus file (xor-contra-unsat -> 20),
# unchanged from the one-shot convention.
if [ "$INC_EXIT" != 20 ]; then
  echo "sat-regression: incremental replay exited $INC_EXIT, expected 20" >&2
  exit 1
fi
echo "sat-regression OK (corpus exit codes, one-solver incremental replay, knob-sweep invariance)"

echo "CI OK"
