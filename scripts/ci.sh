#!/bin/bash
# CI gate: formatting, lints, and the full workspace test suite.
#
# Offline-friendly: runs with --offline by default (the workspace has no
# third-party dependencies); set SYNTHLC_CI_ONLINE=1 to let cargo touch
# the network. SYNTHLC_THREADS bounds the parallel engine in tests.
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=(--offline)
if [ "${SYNTHLC_CI_ONLINE:-0}" != 0 ]; then
  OFFLINE=()
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy "${OFFLINE[@]}" --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q "${OFFLINE[@]}" --workspace

echo "== lint-designs (static-analysis suite, warnings fatal) =="
cargo run -q --release "${OFFLINE[@]}" --bin synthlc-cli -- lint all --deny-warnings

echo "CI OK"
