//! A CDCL SAT solver: watched literals with a dedicated binary-clause
//! fast path, first-UIP learning with clause minimization, VSIDS with
//! phase saving, LBD-tiered learnt-clause reduction, adaptive (Glucose)
//! or Luby restarts, root-level inprocessing between queries, and
//! conflict budgets (which produce the `Unknown` outcomes that surface
//! as *undetermined* model-checking results, §V-B of the paper).
//!
//! Long clauses live in a flat `u32` arena (header word, activity word,
//! LBD word, then literal codes) so the propagation loop touches one
//! contiguous allocation. Binary clauses never enter the arena at all:
//! each lives inline in its two watch lists, so propagating one costs a
//! single indexed read instead of an arena dereference — and Tseitin
//! encodings (two binary clauses per AND gate) are mostly binary.

use crate::budget::BudgetPool;
use crate::cancel::{CancelReason, CancelToken};
use crate::config::{ReduceStrategy, RestartMode, SolverConfig};
use crate::heap::ActivityHeap;
use crate::types::{Lit, SolveResult, Var};
use std::sync::Arc;

const UNASSIGNED: i8 = -1;
const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f32 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
/// Conflicts between cooperative cancellation / pool-cap polls. Polling
/// only happens when a token or pool watch is attached, so unset knobs
/// cost one `Option` test per conflict.
const STOP_CHECK_INTERVAL: u64 = 128;

// Restart policy.
const LUBY_RESTART_BASE: u64 = 100;
/// Minimum conflicts between adaptive restarts (the Glucose queue length).
const GLUCOSE_MIN_INTERVAL: u64 = 50;
/// Restart when the fast LBD average exceeds the slow one by this factor.
const RESTART_MARGIN: f64 = 1.25;
/// Block a due restart when the trail is this much larger than average —
/// the solver is deep in an assignment that may be about to close.
const BLOCK_MARGIN: f64 = 1.4;
/// Trail blocking needs a meaningful trail average first.
const BLOCK_MIN_CONFLICTS: u64 = 10_000;
const EMA_FAST: f64 = 1.0 / 32.0;
const EMA_SLOW: f64 = 1.0 / 16384.0;
const EMA_TRAIL: f64 = 1.0 / 4096.0;
/// Backjumps spanning more than this many decision levels are taken
/// chronologically (one level at a time) instead.
const CHRONO_LEVELS: u32 = 100;

// Learnt-database tiers.
/// Clauses with LBD at or below this are kept forever.
const CORE_LBD: u32 = 2;
/// Clauses with LBD at or below this are aged by use; above is local.
const MID_LBD: u32 = 6;
/// First aggressive reduction, in conflicts; each adds `REDUCE_INC` more.
const REDUCE_BASE: u64 = 2000;
const REDUCE_INC: u64 = 300;

// Root-level inprocessing.
/// Literal-visit budget per subsumption pass.
const SUBSUME_BUDGET: u64 = 200_000;
/// Minimum new learnt clauses between subsumption passes; the actual
/// threshold also scales with live database size (see `simplify`), so a
/// million-clause database is not rescanned every few hundred conflicts.
const SUBSUME_MIN_NEW: u64 = 500;
/// Only clauses at most this long participate in subsumption — short
/// clauses are both the likely subsumers and the cheap ones to index.
const SUBSUME_MAX_LEN: usize = 16;
/// Hard cap on subsumption participants per pass (shortest first), so
/// setup cost stays bounded no matter how large the learnt DB grows.
const SUBSUME_MAX_CLAUSES: usize = 10_000;

/// Offset of a clause in the arena.
type ClauseRef = u32;

const HDR_LEARNT: u32 = 1 << 31;
const HDR_DELETED: u32 = 1 << 30;
const HDR_LEN_MASK: u32 = (1 << 30) - 1;
/// Arena words before the literals: header, activity, LBD.
const HDR_WORDS: usize = 3;
/// High bit of the LBD word: clause was used in a conflict since the
/// last reduction (ages the mid tier).
const LBD_USED: u32 = 1 << 31;
const LBD_MASK: u32 = LBD_USED - 1;

/// Flat clause storage: `[header, activity(f32 bits), lbd, lit0, lit1, ...]`.
#[derive(Clone, Debug, Default)]
struct Arena {
    data: Vec<u32>,
}

impl Arena {
    fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        let off = self.data.len() as u32;
        let mut hdr = lits.len() as u32;
        if learnt {
            hdr |= HDR_LEARNT;
        }
        self.data.push(hdr);
        self.data.push(0f32.to_bits());
        self.data.push(lbd.min(LBD_MASK));
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        off
    }

    #[inline]
    fn len(&self, c: ClauseRef) -> usize {
        (self.data[c as usize] & HDR_LEN_MASK) as usize
    }

    #[inline]
    fn set_len(&mut self, c: ClauseRef, n: usize) {
        let hdr = &mut self.data[c as usize];
        *hdr = (*hdr & !HDR_LEN_MASK) | n as u32;
    }

    #[inline]
    fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & HDR_LEARNT != 0
    }

    #[inline]
    fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & HDR_DELETED != 0
    }

    #[inline]
    fn set_deleted(&mut self, c: ClauseRef) {
        self.data[c as usize] |= HDR_DELETED;
    }

    #[inline]
    fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.data[c as usize + HDR_WORDS + i] as usize)
    }

    #[inline]
    fn set_lit(&mut self, c: ClauseRef, i: usize, l: Lit) {
        self.data[c as usize + HDR_WORDS + i] = l.code() as u32;
    }

    #[inline]
    fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        self.data
            .swap(c as usize + HDR_WORDS + i, c as usize + HDR_WORDS + j);
    }

    #[inline]
    fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c as usize + 1])
    }

    #[inline]
    fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.data[c as usize + 1] = a.to_bits();
    }

    #[inline]
    fn lbd(&self, c: ClauseRef) -> u32 {
        self.data[c as usize + 2] & LBD_MASK
    }

    #[inline]
    fn set_lbd(&mut self, c: ClauseRef, lbd: u32) {
        let w = &mut self.data[c as usize + 2];
        *w = (*w & LBD_USED) | lbd.min(LBD_MASK);
    }

    #[inline]
    fn mark_used(&mut self, c: ClauseRef) {
        self.data[c as usize + 2] |= LBD_USED;
    }

    /// Reads and clears the used flag.
    #[inline]
    fn take_used(&mut self, c: ClauseRef) -> bool {
        let w = &mut self.data[c as usize + 2];
        let used = *w & LBD_USED != 0;
        *w &= !LBD_USED;
        used
    }
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// A binary clause, stored inline in a watch list: the *other* literal of
/// the clause, plus whether the clause is learnt (needed only for stats
/// bookkeeping when satisfied binaries are collected at level 0).
#[derive(Clone, Copy, Debug)]
struct BinWatcher {
    other: Lit,
    learnt: bool,
}

/// Why a variable is assigned: the propagating clause. Binary reasons
/// carry the other (false) literal inline so conflict analysis never
/// touches the arena for them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Reason {
    Long(ClauseRef),
    Binary(Lit),
}

/// A conflicting clause found by propagation.
#[derive(Clone, Copy, Debug)]
enum Conflict {
    Long(ClauseRef),
    /// Both literals of a falsified binary clause.
    Binary(Lit, Lit),
}

/// Why the most recent solve call stopped with [`SolveResult::Unknown`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// The per-query conflict budget ran out.
    ConflictBudget,
    /// The attached [`BudgetPool`]'s global cap was (about to be) reached.
    PoolCap,
    /// The attached [`CancelToken`] was cancelled explicitly.
    Cancelled,
    /// The attached [`CancelToken`]'s wall-clock deadline passed.
    Deadline,
}

impl From<CancelReason> for StopCause {
    fn from(r: CancelReason) -> Self {
        match r {
            CancelReason::Cancelled => StopCause::Cancelled,
            CancelReason::Deadline => StopCause::Deadline,
        }
    }
}

/// Cumulative statistics of a solver instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Branching decisions taken.
    pub decisions: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database (long + binary).
    pub learnts: u64,
    /// Live learnt clauses in the core tier (LBD ≤ 2, kept forever;
    /// learnt binaries count here).
    pub learnt_core: u64,
    /// Live learnt clauses in the mid tier (LBD ≤ 6, aged by use).
    pub learnt_mid: u64,
    /// Live learnt clauses in the local tier (aggressively collected).
    pub learnt_local: u64,
    /// Live binary clauses (original + learnt).
    pub binary_clauses: u64,
    /// Learnt clauses deleted by reduction or inprocessing.
    pub clauses_deleted: u64,
    /// Learnt clauses removed as subsumed during inprocessing.
    pub subsumed: u64,
    /// Literals removed by self-subsuming resolution during inprocessing.
    pub strengthened: u64,
    /// Adaptive restarts postponed by trail-size blocking.
    pub blocked_restarts: u64,
    /// Queries that reused at least one retained assumption level.
    pub trail_reuses: u64,
    /// Total assumption levels reused across all queries — each one is a
    /// decision plus its whole propagation closure never re-run.
    pub reused_levels: u64,
    /// Sum of LBD over all learnt clauses at learn time.
    pub lbd_sum: u64,
    /// Number of learnt clauses contributing to `lbd_sum`.
    pub lbd_count: u64,
    /// Largest LBD seen at learn time.
    pub max_lbd: u32,
}

impl SolverStats {
    /// Mean LBD of learnt clauses at learn time (0 when none learnt).
    pub fn avg_lbd(&self) -> f64 {
        if self.lbd_count == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.lbd_count as f64
        }
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use sat::{Lit, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert!(s.solve().is_sat());
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    arena: Arena,
    orig_refs: Vec<ClauseRef>,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    bin_watches: Vec<Vec<BinWatcher>>,
    assigns: Vec<i8>,
    /// Per-literal mirror of `assigns` (`lit_vals[l.code()]` is the value
    /// of literal `l`): costs two byte writes per (un)assignment, makes
    /// `lit_value` — the hottest read in propagation — a single load.
    lit_vals: Vec<i8>,
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    bhead: usize,
    reason: Vec<Option<Reason>>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f32,
    heap: ActivityHeap,
    seen: Vec<bool>,
    /// Reusable DFS stack for recursive clause minimization.
    min_stack: Vec<Lit>,
    /// Assumption prefix of the previous query still standing on the
    /// trail (one literal per retained decision level). Empty whenever
    /// the solver is at the root.
    retained: Vec<Lit>,
    ok: bool,
    model: Vec<i8>,
    stats: SolverStats,
    cfg: SolverConfig,
    conflict_budget: Option<u64>,
    num_original: usize,
    num_binary: u64,
    num_binary_learnt: u64,
    /// Dead arena words (deleted clauses, stripped literals).
    wasted: usize,
    ema_fast: f64,
    ema_slow: f64,
    ema_trail: f64,
    /// Global conflict count at which the next aggressive reduction runs.
    next_reduce: u64,
    reduces: u64,
    /// Trail length the last root-level cleanup ran at.
    simplified_trail: usize,
    /// `lbd_count` at the last subsumption pass.
    last_subsume_count: u64,
    lvl_stamp: Vec<u64>,
    lvl_stamp_gen: u64,
    lit_stamp: Vec<u64>,
    lit_stamp_gen: u64,
    cancel: Option<Arc<CancelToken>>,
    pool_watch: Option<Arc<BudgetPool>>,
    last_stop: Option<StopCause>,
    clause_log: Option<Vec<Vec<Lit>>>,
}

impl Solver {
    /// Creates an empty solver with the default configuration.
    pub fn new() -> Self {
        Self::with_config(SolverConfig::new())
    }

    /// Creates an empty solver with an explicit heuristic configuration.
    pub fn with_config(cfg: SolverConfig) -> Self {
        Self {
            var_inc: 1.0,
            clause_inc: 1.0,
            ok: true,
            cfg,
            next_reduce: REDUCE_BASE,
            ..Self::default()
        }
    }

    /// The active heuristic configuration.
    pub fn config(&self) -> SolverConfig {
        self.cfg
    }

    /// Replaces the heuristic configuration; takes effect on the next
    /// solve call. Never changes verdicts, only search order and speed.
    pub fn set_config(&mut self, cfg: SolverConfig) {
        self.cfg = cfg;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(UNASSIGNED);
        self.lit_vals.push(UNASSIGNED);
        self.lit_vals.push(UNASSIGNED);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.model.push(UNASSIGNED);
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Solver statistics so far. The learnt-tier fields are live gauges
    /// computed from the clause database at call time.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        let mut core = self.num_binary_learnt;
        let mut mid = 0u64;
        let mut local = 0u64;
        for &c in &self.learnt_refs {
            let lbd = self.arena.lbd(c);
            if lbd <= CORE_LBD {
                core += 1;
            } else if lbd <= MID_LBD {
                mid += 1;
            } else {
                local += 1;
            }
        }
        s.learnts = self.learnt_refs.len() as u64 + self.num_binary_learnt;
        s.learnt_core = core;
        s.learnt_mid = mid;
        s.learnt_local = local;
        s.binary_clauses = self.num_binary;
        s
    }

    /// Sets a conflict budget applied to each subsequent solve call; `None`
    /// removes the budget.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Attaches a cancellation token polled every [`STOP_CHECK_INTERVAL`]
    /// conflicts (and once at solve entry, so an already-fired token stops
    /// a query before any search). `None` detaches — the default, with no
    /// per-conflict cost beyond one `Option` test.
    pub fn set_cancel_token(&mut self, token: Option<Arc<CancelToken>>) {
        self.cancel = token;
    }

    /// Attaches a shared budget pool whose *global* conflict cap the solve
    /// loop honors mid-query: every [`STOP_CHECK_INTERVAL`] conflicts the
    /// solver asks whether its own un-charged delta would exhaust the
    /// pool, bounding cap overshoot to one interval. Attach only pools
    /// with a cap — an uncapped pool never fires, and skipping the watch
    /// keeps capless runs byte-deterministic by construction.
    pub fn set_pool_watch(&mut self, pool: Option<Arc<BudgetPool>>) {
        self.pool_watch = pool;
    }

    /// Why the most recent solve call returned [`SolveResult::Unknown`]
    /// (`None` after a Sat/Unsat result or before any solve).
    pub fn last_stop(&self) -> Option<StopCause> {
        self.last_stop
    }

    /// Turns clause logging on or off. While enabled, every clause handed
    /// to [`Solver::add_clause`] is recorded *verbatim* — before the
    /// level-0 simplifications — so the log is the exact input formula a
    /// reference solver can be run against. Off by default (no cost).
    /// Turning logging off discards the log.
    pub fn set_clause_log(&mut self, enabled: bool) {
        self.clause_log = enabled.then(Vec::new);
    }

    /// The clauses recorded since logging was enabled (empty when
    /// logging is off). Clauses added *before* enabling are not included.
    pub fn logged_clauses(&self) -> &[Vec<Lit>] {
        self.clause_log.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        // One load, no sign branch: `lit_vals` mirrors `assigns` per
        // literal and is the single hottest read in the solver.
        self.lit_vals[l.code()]
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (now or as a result of this clause).
    ///
    /// May be called with a retained trail standing (see
    /// [`Solver::solve_assuming`]): a clause with at least two literals
    /// not falsified by the current assignment is attached in place —
    /// watching two non-false literals preserves the watch invariant at
    /// any level — and the retained levels survive. A clause the trail
    /// falsifies or makes unit falls back to a root reset first.
    ///
    /// # Panics
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if let Some(log) = &mut self.clause_log {
            log.push(lits.to_vec());
        }
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        loop {
            // Simplify: sort/dedupe, drop root-false literals, detect
            // tautology / root satisfaction. Assignments above the root
            // are transient, so they never drop or satisfy anything
            // permanently — they only decide attachability below.
            let mut ls: Vec<Lit> = lits.to_vec();
            ls.sort_unstable();
            ls.dedup();
            let mut out = Vec::with_capacity(ls.len());
            let mut nonfalse = 0usize;
            for &l in &ls {
                if ls.binary_search(&!l).is_ok() {
                    return true; // tautology
                }
                let v = self.lit_value(l);
                let at_root = v != UNASSIGNED && self.level[l.var().index()] == 0;
                match v {
                    1 if at_root => return true, // already satisfied at level 0
                    0 if at_root => continue,    // false at level 0: drop
                    _ => {
                        if v != 0 {
                            nonfalse += 1;
                        }
                        out.push(l);
                    }
                }
            }
            if self.decision_level() > 0 {
                if out.len() >= 2 && nonfalse >= 2 {
                    // Two non-false literals to watch: attach in place,
                    // no propagation is pending from this clause.
                    let mut w = 0;
                    for k in 0..out.len() {
                        if self.lit_value(out[k]) != 0 {
                            out.swap(w, k);
                            w += 1;
                            if w == 2 {
                                break;
                            }
                        }
                    }
                    if out.len() == 2 {
                        self.attach_binary(out[0], out[1], false);
                    } else {
                        self.attach_long(&out, false, 0);
                    }
                    self.num_original += 1;
                    return true;
                }
                // Falsified or unit under the retained trail: unwind to
                // the root and re-simplify against root values only.
                self.backtrack(0);
                self.retained.clear();
                continue;
            }
            return match out.len() {
                0 => {
                    self.ok = false;
                    false
                }
                1 => {
                    self.unchecked_enqueue(out[0], None);
                    if self.propagate().is_some() {
                        self.ok = false;
                    }
                    self.ok
                }
                2 => {
                    self.attach_binary(out[0], out[1], false);
                    self.num_original += 1;
                    true
                }
                _ => {
                    self.attach_long(&out, false, 0);
                    self.num_original += 1;
                    true
                }
            };
        }
    }

    fn attach_long(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 3);
        let cref = self.arena.alloc(lits, learnt, lbd);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.learnt_refs.push(cref);
        } else {
            self.orig_refs.push(cref);
        }
        cref
    }

    fn attach_binary(&mut self, a: Lit, b: Lit, learnt: bool) {
        debug_assert_ne!(a.var(), b.var());
        self.bin_watches[a.code()].push(BinWatcher { other: b, learnt });
        self.bin_watches[b.code()].push(BinWatcher { other: a, learnt });
        self.num_binary += 1;
        if learnt {
            self.num_binary_learnt += 1;
        }
    }

    /// Removes one watcher of `cref` from `lit`'s watch list.
    fn detach_watcher(&mut self, lit: Lit, cref: ClauseRef) {
        let ws = &mut self.watches[lit.code()];
        let pos = ws
            .iter()
            .position(|w| w.cref == cref)
            .expect("watcher present");
        ws.swap_remove(pos);
    }

    /// Detaches and tombstones a live long clause (watchers are on slots
    /// 0 and 1 by the watch invariant, so only two lists are touched —
    /// no global rebuild).
    fn remove_long(&mut self, c: ClauseRef) {
        debug_assert!(!self.arena.is_deleted(c));
        let (l0, l1) = (self.arena.lit(c, 0), self.arena.lit(c, 1));
        self.detach_watcher(l0, c);
        self.detach_watcher(l1, c);
        self.arena.set_deleted(c);
        self.wasted += HDR_WORDS + self.arena.len(c);
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<Reason>) {
        debug_assert_eq!(self.lit_value(l), UNASSIGNED);
        let v = l.var();
        self.assigns[v.index()] = l.is_pos() as i8;
        self.lit_vals[l.code()] = 1;
        self.lit_vals[(!l).code()] = 0;
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.is_pos();
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any. Binary
    /// clauses propagate to closure before any long clause is examined.
    fn propagate(&mut self) -> Option<Conflict> {
        let mut conflict = None;
        'outer: loop {
            // Binary closure: inline literals, no arena access.
            while self.bhead < self.trail.len() {
                let p = self.trail[self.bhead];
                self.bhead += 1;
                self.stats.propagations += 1;
                let false_lit = !p;
                let bins = std::mem::take(&mut self.bin_watches[false_lit.code()]);
                for w in &bins {
                    match self.lit_value(w.other) {
                        1 => {}
                        0 => {
                            conflict = Some(Conflict::Binary(w.other, false_lit));
                            break;
                        }
                        _ => self.unchecked_enqueue(w.other, Some(Reason::Binary(false_lit))),
                    }
                }
                self.bin_watches[false_lit.code()] = bins;
                if conflict.is_some() {
                    break 'outer;
                }
            }
            if self.qhead >= self.trail.len() {
                break;
            }
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == 1 {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is at slot 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == 1 {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new watch: scan the tail literals as one
                // slice so the compiler hoists the bounds check out of
                // the hottest loop in the solver.
                let len = self.arena.len(cref);
                let base = cref as usize + HDR_WORDS;
                let mut new_watch = None;
                for (off, &code) in self.arena.data[base + 2..base + len].iter().enumerate() {
                    if self.lit_vals[code as usize] != 0 {
                        new_watch = Some((off + 2, Lit::from_code(code as usize)));
                        break;
                    }
                }
                if let Some((k, lk)) = new_watch {
                    self.arena.swap_lits(cref, 1, k);
                    self.watches[lk.code()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue 'watchers;
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == 0 {
                    conflict = Some(Conflict::Long(cref));
                    break;
                }
                self.unchecked_enqueue(first, Some(Reason::Long(cref)));
                i += 1;
            }
            let tail = std::mem::replace(&mut self.watches[false_lit.code()], ws);
            self.watches[false_lit.code()].extend(tail);
            if conflict.is_some() {
                break;
            }
        }
        if conflict.is_some() {
            self.qhead = self.trail.len();
            self.bhead = self.qhead;
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let a = self.arena.activity(cref) + self.clause_inc;
        self.arena.set_activity(cref, a);
        if a > 1e20 {
            for &c in &self.learnt_refs {
                let scaled = self.arena.activity(c) * 1e-20;
                self.arena.set_activity(c, scaled);
            }
            self.clause_inc *= 1e-20;
        }
    }

    /// Recomputes a resolved learnt clause's LBD from current levels,
    /// keeping the better value, and marks it used for mid-tier aging.
    fn refresh_lbd(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        self.arena.mark_used(cref);
        let stored = self.arena.lbd(cref);
        if stored <= CORE_LBD {
            return; // already best tier
        }
        self.lvl_stamp_gen += 1;
        let gen = self.lvl_stamp_gen;
        let mut lbd = 0u32;
        for k in 0..self.arena.len(cref) {
            let lvl = self.level[self.arena.lit(cref, k).var().index()] as usize;
            if lvl == 0 {
                continue;
            }
            if self.lvl_stamp.len() <= lvl {
                self.lvl_stamp.resize(lvl + 1, 0);
            }
            if self.lvl_stamp[lvl] != gen {
                self.lvl_stamp[lvl] = gen;
                lbd += 1;
            }
        }
        let lbd = lbd.max(1);
        if lbd < stored {
            self.arena.set_lbd(cref, lbd);
        }
    }

    /// Number of distinct non-zero decision levels among `lits`.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lvl_stamp_gen += 1;
        let gen = self.lvl_stamp_gen;
        let mut lbd = 0u32;
        for &l in lits {
            let lvl = self.level[l.var().index()] as usize;
            if lvl == 0 {
                continue;
            }
            if self.lvl_stamp.len() <= lvl {
                self.lvl_stamp.resize(lvl + 1, 0);
            }
            if self.lvl_stamp[lvl] != gen {
                self.lvl_stamp[lvl] = gen;
                lbd += 1;
            }
        }
        lbd.max(1)
    }

    /// First-UIP conflict analysis with basic clause minimization. Returns
    /// the learnt clause (asserting literal first), the backjump level,
    /// and the learnt clause's LBD.
    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        let mut current = confl;
        macro_rules! consider {
            ($q:expr) => {{
                let q: Lit = $q;
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }};
        }
        loop {
            let skip_first = p.is_some() as usize;
            match current {
                Conflict::Long(cref) => {
                    self.bump_clause(cref);
                    self.refresh_lbd(cref);
                    let len = self.arena.len(cref);
                    for k in skip_first..len {
                        consider!(self.arena.lit(cref, k));
                    }
                }
                Conflict::Binary(a, b) => {
                    if skip_first == 0 {
                        consider!(a);
                    }
                    consider!(b);
                }
            }
            // Next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            current = match self.reason[pl.var().index()].expect("non-decision has a reason") {
                Reason::Long(c) => Conflict::Long(c),
                Reason::Binary(other) => Conflict::Binary(pl, other),
            };
        }
        learnt[0] = !p.expect("found UIP");
        // Recursive clause minimization (MiniSat's ccmin=2): a literal is
        // redundant when the DFS over its reason graph bottoms out
        // entirely in literals already in the clause (`seen`) or fixed at
        // level 0. The abstract-level mask cheaply rejects probes that
        // could reach a decision level the clause does not mention.
        // Literals proven redundant stay `seen`, memoizing later probes;
        // `to_clear` unwinds every mark at the end of analysis.
        let abstract_levels = learnt[1..].iter().fold(0u32, |m, l| {
            m | (1u32 << (self.level[l.var().index()] & 31))
        });
        let mut minimized = Vec::with_capacity(learnt.len());
        minimized.push(learnt[0]);
        for &q in &learnt[1..] {
            if self.reason[q.var().index()].is_none()
                || !self.lit_redundant(q, abstract_levels, &mut to_clear)
            {
                minimized.push(q);
            }
        }
        let mut learnt = minimized;
        // Backjump level: highest level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for v in to_clear {
            self.seen[v.index()] = false;
        }
        let lbd = self.compute_lbd(&learnt);
        (learnt, bt, lbd)
    }

    /// Is `p` implied by the rest of the learnt clause? Walks `p`'s
    /// reason graph depth-first; every path must end in a `seen` literal
    /// (already in the clause, or proven redundant earlier in this
    /// analysis) or a level-0 fact. Newly visited literals are marked
    /// `seen` and recorded in `to_clear`; a failed probe unwinds only its
    /// own marks, a successful one leaves them as memoization.
    fn lit_redundant(&mut self, p: Lit, abstract_levels: u32, to_clear: &mut Vec<Var>) -> bool {
        debug_assert!(self.min_stack.is_empty());
        let top = to_clear.len();
        self.min_stack.push(p);
        while let Some(l) = self.min_stack.pop() {
            match self.reason[l.var().index()].expect("redundancy probe needs a reason") {
                Reason::Binary(other) => {
                    if !self.min_check(other, abstract_levels, to_clear, top) {
                        return false;
                    }
                }
                Reason::Long(cr) => {
                    // Slot 0 is `l` itself (the implied literal), which is
                    // always `seen` here, so scanning it is a no-op.
                    let len = self.arena.len(cr);
                    for k in 0..len {
                        let q = self.arena.lit(cr, k);
                        if !self.min_check(q, abstract_levels, to_clear, top) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// One antecedent step of `lit_redundant`: accept `q` if it is
    /// already `seen` or fixed at level 0, descend into it if its level
    /// appears in the clause's abstract-level mask and it has a reason,
    /// and otherwise fail the whole probe, unwinding marks past `top`.
    fn min_check(
        &mut self,
        q: Lit,
        abstract_levels: u32,
        to_clear: &mut Vec<Var>,
        top: usize,
    ) -> bool {
        let v = q.var();
        if self.seen[v.index()] || self.level[v.index()] == 0 {
            return true;
        }
        if self.reason[v.index()].is_some()
            && (1u32 << (self.level[v.index()] & 31)) & abstract_levels != 0
        {
            self.seen[v.index()] = true;
            to_clear.push(v);
            self.min_stack.push(q);
            return true;
        }
        for &w in &to_clear[top..] {
            self.seen[w.index()] = false;
        }
        to_clear.truncate(top);
        self.min_stack.clear();
        false
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("non-empty trail");
            let v = l.var();
            self.assigns[v.index()] = UNASSIGNED;
            self.lit_vals[l.code()] = UNASSIGNED;
            self.lit_vals[(!l).code()] = UNASSIGNED;
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
        self.bhead = self.qhead;
    }

    fn decide(&mut self, l: Lit) {
        self.trail_lim.push(self.trail.len());
        self.unchecked_enqueue(l, None);
        self.stats.decisions += 1;
    }

    /// Backtrack for a restart, reusing the trail. The assumption prefix
    /// (`keep` levels) is never unwound — the cursor would re-assert the
    /// same literals in the same order, repaying the full propagation
    /// cost for an identical trail. Above it, decision levels whose
    /// decision variable still outranks the heuristic's next pick
    /// survive, because a full restart would re-create them verbatim
    /// (van der Tak et al., "Reusing the assignment trail"). On BMC-style
    /// instances where one activation literal implies tens of thousands
    /// of assignments, this turns most restarts from a full re-propagation
    /// into a cheap partial backtrack.
    fn restart_backtrack(&mut self, keep: u32) {
        let dl = self.decision_level();
        if dl <= keep {
            return;
        }
        // Activity of the decision the heuristic would make next.
        let next = loop {
            match self.heap.pop_max(&self.activity) {
                // Every variable is assigned: a restart would rebuild
                // this exact trail, so keep all of it.
                None => return,
                Some(v) if self.assigns[v.index()] == UNASSIGNED => {
                    self.heap.insert(v, &self.activity);
                    break self.activity[v.index()];
                }
                Some(_) => {} // stale heap entry for an assigned var
            }
        };
        let mut target = keep;
        while target < dl {
            let dec = self.trail[self.trail_lim[target as usize]];
            if self.activity[dec.var().index()] > next {
                target += 1;
            } else {
                break;
            }
        }
        self.backtrack(target);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v.index()] == UNASSIGNED {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        let v = self.arena.lit(cref, 0).var();
        self.assigns[v.index()] != UNASSIGNED && self.reason[v.index()] == Some(Reason::Long(cref))
    }

    /// Tiered learnt-database reduction, in place at the current decision
    /// level: core clauses (LBD ≤ 2) are permanent, mid-tier clauses
    /// (LBD ≤ 6) survive while they keep participating in conflicts, and
    /// the local tier is sorted worst-first (high LBD, low activity) and
    /// partially collected. Victims are detached watcher-by-watcher — no
    /// watch-list rebuild, no backtrack.
    fn reduce_db(&mut self) {
        let mut victims: Vec<ClauseRef> = Vec::new();
        for i in 0..self.learnt_refs.len() {
            let c = self.learnt_refs[i];
            let lbd = self.arena.lbd(c);
            if lbd <= CORE_LBD {
                continue;
            }
            if lbd <= MID_LBD && self.arena.take_used(c) {
                continue; // mid tier, recently useful: keep and re-age
            }
            if self.locked(c) {
                continue;
            }
            victims.push(c);
        }
        victims.sort_unstable_by(|&a, &b| {
            self.arena
                .lbd(b)
                .cmp(&self.arena.lbd(a))
                .then_with(|| {
                    self.arena
                        .activity(a)
                        .partial_cmp(&self.arena.activity(b))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.cmp(&b))
        });
        let cut = match self.cfg.reduce {
            ReduceStrategy::Aggressive => victims.len() / 2,
            ReduceStrategy::Lazy => victims.len() / 3,
        };
        for &c in &victims[..cut] {
            self.remove_long(c);
            self.stats.clauses_deleted += 1;
        }
        self.learnt_refs.retain(|&c| !self.arena.is_deleted(c));
    }

    /// Batch-boundary learnt-database trim for pooled incremental use:
    /// deletes every non-core long learnt clause (LBD above the
    /// permanent tier) regardless of its recent-use bit. A persistent
    /// context answers many unrelated query batches back to back, and
    /// mid/local clauses earned on one property mostly tax propagation
    /// on the next — watch lists grow with every batch while the core
    /// tier already keeps the strong resolvents. Called between
    /// batches at decision level 0, never mid-search.
    pub fn trim_learnts_for_batch(&mut self) {
        // Cancel any trail retained from the previous query first: a
        // retained SAT model pins most of the learnt database through
        // `locked` (every propagated literal holds its reason clause),
        // and retention is useless across batches anyway — the next
        // batch assumes a different property.
        self.backtrack(0);
        let mut victims: Vec<ClauseRef> = Vec::new();
        for i in 0..self.learnt_refs.len() {
            let c = self.learnt_refs[i];
            if self.arena.lbd(c) <= CORE_LBD || self.locked(c) {
                continue;
            }
            victims.push(c);
        }
        for &c in &victims {
            self.remove_long(c);
            self.stats.clauses_deleted += 1;
        }
        self.learnt_refs.retain(|&c| !self.arena.is_deleted(c));
    }

    /// Root-level inprocessing, run between queries at decision level 0:
    /// removes satisfied clauses, strips falsified literals in place, and
    /// runs budgeted subsumption / self-subsuming resolution over the
    /// learnt database.
    ///
    /// Sound under incremental `solve_assuming` because learnt clauses
    /// are resolvents of database clauses only — assumptions enter the
    /// search as *decisions*, never as clauses — so every level-0 fact is
    /// a consequence of the formula itself and every strengthened clause
    /// is implied by it.
    fn simplify(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.cfg.inprocessing || !self.ok {
            return;
        }
        if self.trail.len() > self.simplified_trail {
            self.remove_satisfied();
            self.simplified_trail = self.trail.len();
        }
        // The rescan threshold grows with the database: a pass over a
        // huge DB is only worth its setup cost once a meaningful
        // fraction of the clauses is new.
        let min_new = SUBSUME_MIN_NEW.max(self.learnt_refs.len() as u64 / 8);
        if self.stats.lbd_count >= self.last_subsume_count + min_new {
            self.subsume_learnts();
            self.last_subsume_count = self.stats.lbd_count;
        }
    }

    /// Deletes clauses satisfied at level 0 and strips falsified literals
    /// from the survivors (slots ≥ 2 only: a live clause's watched
    /// literals are unassigned at level 0 once satisfied clauses are
    /// gone, so watches stay valid).
    fn remove_satisfied(&mut self) {
        // Level-0 reasons are never resolved on (conflict analysis skips
        // level-0 variables), so they can be dropped — which also frees
        // every clause from `locked` pinning at the root.
        for r in &mut self.reason {
            *r = None;
        }
        for learnt_pass in [false, true] {
            let mut refs = if learnt_pass {
                std::mem::take(&mut self.learnt_refs)
            } else {
                std::mem::take(&mut self.orig_refs)
            };
            refs.retain(|&c| {
                let len = self.arena.len(c);
                let satisfied = (0..len).any(|k| self.lit_value(self.arena.lit(c, k)) == 1);
                if satisfied {
                    self.remove_long(c);
                    if learnt_pass {
                        self.stats.clauses_deleted += 1;
                    }
                    return false;
                }
                debug_assert_eq!(self.lit_value(self.arena.lit(c, 0)), UNASSIGNED);
                debug_assert_eq!(self.lit_value(self.arena.lit(c, 1)), UNASSIGNED);
                let mut w = 2;
                for k in 2..len {
                    let l = self.arena.lit(c, k);
                    if self.lit_value(l) != 0 {
                        if w != k {
                            self.arena.set_lit(c, w, l);
                        }
                        w += 1;
                    }
                }
                if w != len {
                    self.wasted += len - w;
                    self.arena.set_len(c, w);
                }
                if w == 2 {
                    // Demote to the binary store.
                    let (l0, l1) = (self.arena.lit(c, 0), self.arena.lit(c, 1));
                    self.detach_watcher(l0, c);
                    self.detach_watcher(l1, c);
                    self.arena.set_deleted(c);
                    self.wasted += HDR_WORDS + 2;
                    self.attach_binary(l0, l1, learnt_pass);
                    return false;
                }
                true
            });
            if learnt_pass {
                self.learnt_refs = refs;
            } else {
                self.orig_refs = refs;
            }
        }
        // Binary clauses with an assigned endpoint are satisfied at level
        // 0 (a false endpoint would have propagated the other to true).
        let mut removed_halves = 0u64;
        let mut removed_learnt_halves = 0u64;
        let assigns = &self.assigns;
        let lv = |l: Lit| -> i8 {
            let a = assigns[l.var().index()];
            if a == UNASSIGNED {
                UNASSIGNED
            } else if l.is_pos() {
                a
            } else {
                1 - a
            }
        };
        for (code, list) in self.bin_watches.iter_mut().enumerate() {
            if lv(Lit::from_code(code)) != UNASSIGNED {
                removed_halves += list.len() as u64;
                removed_learnt_halves += list.iter().filter(|w| w.learnt).count() as u64;
                list.clear();
            } else {
                let before = list.len();
                list.retain(|w| {
                    let keep = lv(w.other) == UNASSIGNED;
                    if !keep && w.learnt {
                        removed_learnt_halves += 1;
                    }
                    keep
                });
                removed_halves += (before - list.len()) as u64;
            }
        }
        debug_assert_eq!(removed_halves % 2, 0);
        self.num_binary -= removed_halves / 2;
        self.num_binary_learnt -= removed_learnt_halves / 2;
        self.stats.clauses_deleted += removed_learnt_halves / 2;
    }

    /// Budgeted backward subsumption and self-subsuming resolution over
    /// the learnt database (shortest clauses first). Runs at level 0 with
    /// every live literal unassigned, so strengthened clauses can be
    /// re-watched anywhere.
    fn subsume_learnts(&mut self) {
        if self.learnt_refs.len() < 2 {
            return;
        }
        // Bound the participant set so a pass costs the same no matter
        // how large the learnt DB is: only short clauses take part (they
        // are both the plausible subsumers and the cheap ones to index),
        // shortest first, hard-capped in number. Long clauses neither
        // subsume nor get subsumed in such a pass — a coverage trade
        // that keeps inprocessing off the profile on BMC-sized runs.
        let mut order: Vec<ClauseRef> = self
            .learnt_refs
            .iter()
            .copied()
            .filter(|&c| self.arena.len(c) <= SUBSUME_MAX_LEN)
            .collect();
        if order.len() < 2 {
            return;
        }
        order.sort_unstable_by_key(|&c| (self.arena.len(c), c));
        order.truncate(SUBSUME_MAX_CLAUSES);
        // Signatures and occurrence lists (literal code -> clause indices).
        let mut occ: std::collections::HashMap<usize, Vec<u32>> = std::collections::HashMap::new();
        let mut sigs: Vec<u64> = Vec::with_capacity(order.len());
        for (ix, &c) in order.iter().enumerate() {
            let mut sig = 0u64;
            for k in 0..self.arena.len(c) {
                let l = self.arena.lit(c, k);
                sig |= 1u64 << (l.var().0 % 64);
                occ.entry(l.code()).or_default().push(ix as u32);
            }
            sigs.push(sig);
        }
        let need = 2 * self.num_vars();
        if self.lit_stamp.len() < need {
            self.lit_stamp.resize(need, 0);
        }
        let mut budget = SUBSUME_BUDGET;
        'clauses: for ci in 0..order.len() {
            let c = order[ci];
            if self.arena.is_deleted(c) {
                continue;
            }
            let clen = self.arena.len(c);
            self.lit_stamp_gen += 1;
            let gen = self.lit_stamp_gen;
            let mut sig_c = 0u64;
            let mut pivot = usize::MAX;
            let mut pivot_occ = usize::MAX;
            for k in 0..clen {
                let l = self.arena.lit(c, k);
                self.lit_stamp[l.code()] = gen;
                sig_c |= 1u64 << (l.var().0 % 64);
                let olen = occ.get(&l.code()).map_or(0, Vec::len);
                if olen < pivot_occ {
                    pivot_occ = olen;
                    pivot = l.code();
                }
            }
            let Some(cands) = occ.get(&pivot) else {
                continue;
            };
            for di in cands.clone() {
                let d = order[di as usize];
                if d == c || self.arena.is_deleted(d) {
                    continue;
                }
                let dlen = self.arena.len(d);
                if dlen < clen || sig_c & !sigs[di as usize] != 0 {
                    continue;
                }
                if budget < dlen as u64 {
                    break 'clauses;
                }
                budget -= dlen as u64;
                let mut matched = 0usize;
                let mut negs = 0usize;
                let mut neg_lit = None;
                for k in 0..dlen {
                    let q = self.arena.lit(d, k);
                    if self.lit_stamp[q.code()] == gen {
                        matched += 1;
                    } else if self.lit_stamp[(!q).code()] == gen {
                        negs += 1;
                        neg_lit = Some(q);
                    }
                }
                if matched == clen {
                    // C ⊆ D: D is redundant.
                    self.remove_long(d);
                    self.stats.clauses_deleted += 1;
                    self.stats.subsumed += 1;
                } else if matched + 1 == clen && negs == 1 {
                    // Self-subsuming resolution: resolving C and D on the
                    // flipped variable yields D minus that literal.
                    self.strengthen(d, neg_lit.expect("counted one flipped literal"));
                    self.stats.strengthened += 1;
                }
            }
        }
        self.learnt_refs.retain(|&c| !self.arena.is_deleted(c));
    }

    /// Removes literal `l` from live long clause `c` (level 0, all
    /// literals unassigned), re-homing a watcher if a watched slot was
    /// hit and demoting to the binary store when only two literals
    /// remain.
    fn strengthen(&mut self, c: ClauseRef, l: Lit) {
        let len = self.arena.len(c);
        debug_assert!(len >= 3);
        let pos = (0..len)
            .find(|&k| self.arena.lit(c, k) == l)
            .expect("strengthen: literal present");
        if pos < 2 {
            self.detach_watcher(l, c);
        }
        let last = self.arena.lit(c, len - 1);
        self.arena.set_lit(c, pos, last);
        self.arena.set_len(c, len - 1);
        self.wasted += 1;
        if len - 1 == 2 {
            let (l0, l1) = (self.arena.lit(c, 0), self.arena.lit(c, 1));
            if pos >= 2 {
                self.detach_watcher(l0, c);
                self.detach_watcher(l1, c);
            } else {
                self.detach_watcher(self.arena.lit(c, 1 - pos), c);
            }
            let learnt = self.arena.is_learnt(c);
            self.arena.set_deleted(c);
            self.wasted += HDR_WORDS + 2;
            self.attach_binary(l0, l1, learnt);
        } else if pos < 2 {
            let blocker = self.arena.lit(c, 1 - pos);
            let wlit = self.arena.lit(c, pos);
            self.watches[wlit.code()].push(Watcher { cref: c, blocker });
        }
    }

    /// Compacts the arena when enough of it is tombstones, remapping
    /// clause refs in the watch lists. Level-0 only; reasons are cleared
    /// (they are never resolved on at the root).
    fn maybe_collect_garbage(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        if self.wasted <= 1024 || self.wasted * 2 < self.arena.data.len() {
            return;
        }
        for r in &mut self.reason {
            *r = None;
        }
        let mut new_data: Vec<u32> = Vec::with_capacity(self.arena.data.len() - self.wasted);
        let mut map: std::collections::HashMap<ClauseRef, ClauseRef> =
            std::collections::HashMap::with_capacity(self.orig_refs.len() + self.learnt_refs.len());
        for refs in [&mut self.orig_refs, &mut self.learnt_refs] {
            for c in refs.iter_mut() {
                let old = *c as usize;
                let words = HDR_WORDS + (self.arena.data[old] & HDR_LEN_MASK) as usize;
                let new_off = new_data.len() as u32;
                new_data.extend_from_slice(&self.arena.data[old..old + words]);
                map.insert(*c, new_off);
                *c = new_off;
            }
        }
        self.arena.data = new_data;
        self.wasted = 0;
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                w.cref = *map.get(&w.cref).expect("watched clause is live");
            }
        }
    }

    /// Whether root-only maintenance (inprocessing, arena compaction) is
    /// due. A retained trail is unwound before such a pass so the
    /// level-0-only invariants of `simplify` / garbage collection hold;
    /// checking cheaply here keeps retention from starving them.
    fn root_work_due(&self) -> bool {
        if self.wasted > 1024 && self.wasted * 2 >= self.arena.data.len() {
            return true;
        }
        if !self.cfg.inprocessing {
            return false;
        }
        // Root-trail growth (new top-level units) or enough new learnts
        // for a subsumption pass — the same gates `simplify` applies.
        let root_trail = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        let min_new = SUBSUME_MIN_NEW.max(self.learnt_refs.len() as u64 / 8);
        root_trail > self.simplified_trail
            || self.stats.lbd_count >= self.last_subsume_count + min_new
    }

    fn luby(i: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut x = i;
        let mut sz = size;
        let mut sq = seq;
        while sz - 1 != x {
            sz = (sz - 1) / 2;
            sq -= 1;
            x %= sz;
        }
        1u64 << sq
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solves under the given assumption literals. The clause database
    /// (including learnt clauses) persists across calls, enabling the
    /// incremental per-property queries issued by the model checker.
    /// Assumptions are asserted one per decision level via a cursor —
    /// the level index *is* the index of the next assumption to assert,
    /// so re-assertion after a backjump is O(1) per level rather than a
    /// rescan of the whole assumption list.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.last_stop = None;
        if !self.ok {
            return SolveResult::Unsat;
        }
        if let Some(reason) = self.cancel.as_ref().and_then(|t| t.fired()) {
            self.last_stop = Some(reason.into());
            return SolveResult::Unknown;
        }
        // Trail retention: consecutive incremental queries usually share
        // an assumption prefix (the model checker re-queries one
        // activation set with a different final literal). Unwind only to
        // the longest prefix shared with the previous query — the spared
        // levels are exactly the re-propagation of the shared activation
        // closure, the dominant cost of short queries on big encodings.
        // Root-only maintenance forces a full unwind, as does any clause
        // addition the retained trail could not absorb (`add_clause`).
        let mut keep = 0u32;
        if self.cfg.retain_trail && !self.root_work_due() {
            let max = (self.decision_level() as usize)
                .min(self.retained.len())
                .min(assumptions.len());
            while (keep as usize) < max
                && self.retained[keep as usize] == assumptions[keep as usize]
            {
                keep += 1;
            }
        }
        self.backtrack(keep);
        self.retained.truncate(keep as usize);
        if keep > 0 {
            self.stats.trail_reuses += 1;
            self.stats.reused_levels += keep as u64;
        } else {
            debug_assert_eq!(self.decision_level(), 0);
            self.simplify();
            self.maybe_collect_garbage();
        }
        if !self.ok {
            return SolveResult::Unsat;
        }
        let budget_start = self.stats.conflicts;
        let mut conflicts_since_restart = 0u64;
        let mut restart_threshold = LUBY_RESTART_BASE * Self::luby(self.stats.restarts);
        let mut lazy_limit = (self.num_original as u64 / 3).max(2000);

        let result = loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                let trail_at_conflict = self.trail.len();
                let (learnt, bt, lbd) = self.analyze(confl);
                // Chronological backtracking (Nadel & Ryvchin): when the
                // backjump would unwind a long stretch of decision
                // levels, step back a single level instead. The learnt
                // clause is still asserting there (its other literals
                // all sit at or below `bt`), and the spared levels — on
                // BMC-shaped instances, tens of thousands of propagated
                // literals — do not have to be rebuilt. Unit learnts are
                // exempt: they must be posted at the root, reasonless,
                // and a reasonless literal above the decision would break
                // conflict analysis. Assignments are always stamped with
                // the current decision level, so trail levels stay
                // monotone and analysis invariants are untouched.
                let dl = self.decision_level();
                let bt = if learnt.len() >= 2 && dl > bt + CHRONO_LEVELS {
                    dl - 1
                } else {
                    bt
                };
                self.backtrack(bt);
                match learnt.len() {
                    1 => self.unchecked_enqueue(learnt[0], None),
                    2 => {
                        self.attach_binary(learnt[0], learnt[1], true);
                        self.unchecked_enqueue(learnt[0], Some(Reason::Binary(learnt[1])));
                    }
                    _ => {
                        let cref = self.attach_long(&learnt, true, lbd);
                        self.bump_clause(cref);
                        self.unchecked_enqueue(learnt[0], Some(Reason::Long(cref)));
                    }
                }
                self.stats.lbd_sum += lbd as u64;
                self.stats.lbd_count += 1;
                if lbd > self.stats.max_lbd {
                    self.stats.max_lbd = lbd;
                }
                let l = lbd as f64;
                self.ema_fast += EMA_FAST * (l - self.ema_fast);
                self.ema_slow += EMA_SLOW * (l - self.ema_slow);
                self.ema_trail += EMA_TRAIL * (trail_at_conflict as f64 - self.ema_trail);
                if self.cfg.restart == RestartMode::Glucose
                    && self.stats.conflicts >= BLOCK_MIN_CONFLICTS
                    && conflicts_since_restart >= GLUCOSE_MIN_INTERVAL
                    && self.ema_fast > RESTART_MARGIN * self.ema_slow
                    && trail_at_conflict as f64 > BLOCK_MARGIN * self.ema_trail
                {
                    // A restart is due, but the assignment is unusually
                    // deep — it may be about to close. Postpone.
                    conflicts_since_restart = 0;
                    self.ema_fast = self.ema_slow;
                    self.stats.blocked_restarts += 1;
                }
                self.var_inc /= VAR_DECAY;
                self.clause_inc /= CLAUSE_DECAY;
                let spent = self.stats.conflicts - budget_start;
                if let Some(b) = self.conflict_budget {
                    if spent >= b {
                        self.last_stop = Some(StopCause::ConflictBudget);
                        break SolveResult::Unknown;
                    }
                }
                if (self.cancel.is_some() || self.pool_watch.is_some())
                    && spent.is_multiple_of(STOP_CHECK_INTERVAL)
                {
                    if let Some(reason) = self.cancel.as_ref().and_then(|t| t.fired()) {
                        self.last_stop = Some(reason.into());
                        break SolveResult::Unknown;
                    }
                    if self
                        .pool_watch
                        .as_ref()
                        .is_some_and(|p| p.would_exhaust(spent))
                    {
                        self.last_stop = Some(StopCause::PoolCap);
                        break SolveResult::Unknown;
                    }
                }
            } else {
                // No conflict: maybe restart / reduce, then extend the
                // assignment.
                let restart_due = match self.cfg.restart {
                    RestartMode::Luby => conflicts_since_restart >= restart_threshold,
                    RestartMode::Glucose => {
                        conflicts_since_restart >= GLUCOSE_MIN_INTERVAL
                            && self.ema_fast > RESTART_MARGIN * self.ema_slow
                    }
                };
                if restart_due {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    match self.cfg.restart {
                        RestartMode::Luby => {
                            restart_threshold = LUBY_RESTART_BASE * Self::luby(self.stats.restarts);
                        }
                        RestartMode::Glucose => self.ema_fast = self.ema_slow,
                    }
                    self.restart_backtrack(assumptions.len() as u32);
                    continue;
                }
                let reduce_due = !self.learnt_refs.is_empty()
                    && match self.cfg.reduce {
                        ReduceStrategy::Aggressive => self.stats.conflicts >= self.next_reduce,
                        ReduceStrategy::Lazy => {
                            self.learnt_refs.len() as u64 > lazy_limit + self.trail.len() as u64
                        }
                    };
                if reduce_due {
                    self.reduce_db();
                    match self.cfg.reduce {
                        ReduceStrategy::Aggressive => {
                            self.reduces += 1;
                            self.next_reduce =
                                self.stats.conflicts + REDUCE_BASE + REDUCE_INC * self.reduces;
                        }
                        ReduceStrategy::Lazy => lazy_limit += lazy_limit / 2,
                    }
                }
                // Assumption cursor: decision level k asserts assumption k.
                let dl = self.decision_level() as usize;
                if dl < assumptions.len() {
                    let a = assumptions[dl];
                    match self.lit_value(a) {
                        1 => self.trail_lim.push(self.trail.len()), // already true: empty level
                        0 => break SolveResult::Unsat,
                        _ => self.decide(a),
                    }
                    continue;
                }
                match self.pick_branch() {
                    Some(l) => self.decide(l),
                    None => {
                        self.model.copy_from_slice(&self.assigns);
                        break SolveResult::Sat;
                    }
                }
            }
        };
        // Keep the asserted assumption levels standing for the next
        // query; drop search decisions above them. The next solve (or a
        // clause addition) unwinds whatever it cannot reuse.
        let keep = if self.cfg.retain_trail && self.ok {
            self.decision_level().min(assumptions.len() as u32)
        } else {
            0
        };
        self.backtrack(keep);
        self.retained.clear();
        self.retained
            .extend_from_slice(&assumptions[..keep as usize]);
        result
    }

    /// The value of `v` in the most recent satisfying model, or `None` if
    /// the variable was unconstrained/unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(&1) => Some(true),
            Some(&0) => Some(false),
            _ => None,
        }
    }

    /// The value of a literal in the most recent model.
    pub fn lit_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_pos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_conflict_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(!s.add_clause(&[Lit::neg(v[0])]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn forces_implied_assignment() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        // a, a->b, b->c
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b), (b xor c), (a xor c) is unsat; drop one clause => sat.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor(&mut s, v[0], v[1]);
        xor(&mut s, v[1], v[2]);
        assert!(s.solve().is_sat());
        xor(&mut s, v[0], v[2]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&row.map(Lit::pos));
        }
        for j in 0..3 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s
            .solve_assuming(&[Lit::neg(v[0]), Lit::neg(v[1])])
            .is_unsat());
        // Same formula without assumptions stays sat.
        assert!(s.solve().is_sat());
        assert!(s.solve_assuming(&[Lit::neg(v[0])]).is_sat());
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn trail_retention_reuses_shared_prefixes() {
        // An implication-chain formula queried under a fixed assumption
        // prefix with a varying last literal: the retaining solver must
        // reuse the prefix levels (observable in the stats) and agree
        // with a non-retaining twin on every verdict.
        let mut on = Solver::new();
        let mut off = Solver::with_config(SolverConfig {
            retain_trail: false,
            ..SolverConfig::new()
        });
        let v_on = lits(&mut on, 40);
        let v_off = lits(&mut off, 40);
        let build = |s: &mut Solver, v: &[Var]| {
            for w in v.windows(2) {
                s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
            }
            // The chain makes v39 true whenever v0 is, so this clause
            // just forces !v0 whenever v39 holds.
            s.add_clause(&[Lit::neg(v[39]), Lit::neg(v[0])]);
        };
        build(&mut on, &v_on);
        build(&mut off, &v_off);
        let prefix_on: Vec<Lit> = (5..15).map(|i| Lit::pos(v_on[i])).collect();
        let prefix_off: Vec<Lit> = (5..15).map(|i| Lit::pos(v_off[i])).collect();
        for i in 15..40 {
            for pos in [true, false] {
                let mut a_on = prefix_on.clone();
                a_on.push(Lit::new(v_on[i], pos));
                let mut a_off = prefix_off.clone();
                a_off.push(Lit::new(v_off[i], pos));
                assert_eq!(
                    on.solve_assuming(&a_on).is_sat(),
                    off.solve_assuming(&a_off).is_sat(),
                    "query {i} pos={pos}"
                );
            }
        }
        assert!(on.stats().trail_reuses > 0, "retention never fired");
        assert!(on.stats().reused_levels >= on.stats().trail_reuses);
        assert_eq!(off.stats().trail_reuses, 0);
    }

    #[test]
    fn trail_retention_sound_across_clause_additions() {
        // Interleave retained queries with clause additions of both
        // kinds: fresh-activation clauses (attachable in place above the
        // root) and blocking clauses falsified by the last model (forcing
        // the root fallback). Verdicts must track the formula exactly.
        let mut s = Solver::new();
        let v = lits(&mut s, 8);
        for w in v.windows(2) {
            s.add_clause(&[Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        let prefix = [Lit::pos(v[0]), Lit::pos(v[1])];
        assert!(s.solve_assuming(&prefix).is_sat());
        // Fresh activation literal: its defining clause has an unassigned
        // literal, so it attaches without disturbing the retained trail.
        let act = s.new_var();
        s.add_clause(&[Lit::neg(act), Lit::neg(v[7])]);
        let mut with_act = prefix.to_vec();
        with_act.push(Lit::pos(act));
        // Chain forces v7 true under v0; act forces it false.
        assert!(s.solve_assuming(&with_act).is_unsat());
        assert!(s.solve_assuming(&prefix).is_sat());
        // Blocking clause contradicting the current model (and the
        // retained prefix): must fall back to the root, stay sound.
        s.add_clause(&[Lit::neg(v[0]), Lit::neg(v[1])]);
        assert!(s.solve_assuming(&prefix).is_unsat());
        assert!(s.solve().is_sat());
        // A clause over retained-false literals only: also a root reset.
        assert!(s.solve_assuming(&[Lit::neg(v[0]), Lit::pos(v[1])]).is_sat());
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s
            .solve_assuming(&[Lit::neg(v[0]), Lit::pos(v[1])])
            .is_unsat());
    }

    #[test]
    fn contradictory_assumptions_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s
            .solve_assuming(&[Lit::pos(v[0]), Lit::neg(v[0])])
            .is_unsat());
    }

    #[test]
    fn budget_yields_unknown_on_hard_instance() {
        let mut s = Solver::new();
        let mut p = [[Var(0); 4]; 5];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&row.map(Lit::pos));
        }
        for j in 0..4 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }

    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let mut p = vec![vec![Var(0); holes]; pigeons];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().copied().map(Lit::pos).collect();
            s.add_clause(&lits);
        }
        for j in 0..holes {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
    }

    #[test]
    fn prefired_cancel_token_stops_before_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        let token = Arc::new(CancelToken::new());
        token.cancel();
        s.set_cancel_token(Some(Arc::clone(&token)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::Cancelled));
        // Detached, the same formula solves normally and clears the cause.
        s.set_cancel_token(None);
        assert!(s.solve().is_unsat());
        assert_eq!(s.last_stop(), None);
    }

    #[test]
    fn expired_deadline_reports_deadline_cause() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        let token = Arc::new(CancelToken::deadline_in(std::time::Duration::ZERO));
        s.set_cancel_token(Some(token));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::Deadline));
    }

    #[test]
    fn pool_watch_bounds_cap_overshoot_mid_solve() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8, 7);
        let pool = Arc::new(BudgetPool::new(Some(200)));
        s.set_pool_watch(Some(Arc::clone(&pool)));
        let r = s.solve();
        if r == SolveResult::Unknown {
            assert_eq!(s.last_stop(), Some(StopCause::PoolCap));
            // Overshoot past the cap is bounded by one poll interval.
            assert!(
                s.stats().conflicts <= 200 + STOP_CHECK_INTERVAL,
                "ran {} conflicts past a 200-conflict cap",
                s.stats().conflicts
            );
        } else {
            // The instance resolved under the cap; the watch must not
            // have perturbed the result.
            assert!(r.is_unsat());
        }
    }

    #[test]
    fn conflict_budget_reports_cause() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::ConflictBudget));
    }

    fn random_3sat(s: &mut Solver, vars: &[Var], clauses: usize, mut state: u64) -> Vec<Vec<Lit>> {
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut cls = Vec::new();
        for _ in 0..clauses {
            let mut c = Vec::new();
            for _ in 0..3 {
                let var = vars[(rnd() % vars.len() as u64) as usize];
                c.push(Lit::new(var, rnd() % 2 == 0));
            }
            cls.push(c.clone());
            s.add_clause(&c);
        }
        cls
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Deterministic pseudo-random 3-SAT; verify the model.
        let mut s = Solver::new();
        let v = lits(&mut s, 20);
        let cls = random_3sat(&mut s, &v, 60, 0x12345678);
        if s.solve().is_sat() {
            for c in cls {
                assert!(
                    c.iter().any(|&l| s.lit_model(l) == Some(true)),
                    "model violates clause"
                );
            }
        }
    }

    #[test]
    fn reduce_db_preserves_correctness() {
        // Force many conflicts so reduction triggers, then confirm the
        // formula's status is unchanged. Pigeonhole 6 into 5.
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn all_knob_combinations_agree() {
        for cfg in SolverConfig::all_combinations() {
            let mut s = Solver::with_config(cfg);
            pigeonhole(&mut s, 6, 5);
            assert!(s.solve().is_unsat(), "unsat under {}", cfg.label());

            let mut s = Solver::with_config(cfg);
            let v = lits(&mut s, 30);
            let cls = random_3sat(&mut s, &v, 90, 0xdeadbeef);
            let r = s.solve();
            assert!(r.is_sat(), "sat under {}", cfg.label());
            for c in &cls {
                assert!(
                    c.iter().any(|&l| s.lit_model(l) == Some(true)),
                    "model violates clause under {}",
                    cfg.label()
                );
            }
        }
    }

    #[test]
    fn binary_clauses_use_dedicated_store_and_stats() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        // Implication chain of binary clauses, then a unit that pushes a
        // propagation wave through the binary store.
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        s.add_clause(&[Lit::neg(v[2]), Lit::pos(v[3])]);
        assert_eq!(s.stats().binary_clauses, 3);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[3]), Some(true));
    }

    #[test]
    fn learnt_tier_gauges_are_consistent() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        assert!(s.solve().is_unsat());
        let st = s.stats();
        assert!(st.conflicts > 0);
        assert!(st.lbd_count > 0);
        assert!(st.avg_lbd() >= 1.0);
        assert!(st.max_lbd >= 1);
        assert_eq!(st.learnts, st.learnt_core + st.learnt_mid + st.learnt_local);
    }

    #[test]
    fn incremental_queries_agree_with_and_without_inprocessing() {
        // The same sequence of assumption queries, with units added
        // between queries to feed root-level simplification, must give
        // identical verdicts whether inprocessing is on or off.
        let mut verdicts: Vec<Vec<SolveResult>> = Vec::new();
        for inprocessing in [false, true] {
            let cfg = SolverConfig {
                inprocessing,
                ..SolverConfig::new()
            };
            let mut s = Solver::with_config(cfg);
            let v = lits(&mut s, 40);
            random_3sat(&mut s, &v, 130, 0xabcdef01);
            let mut seq = Vec::new();
            for q in 0..10usize {
                let a = Lit::new(v[q * 3], q % 2 == 0);
                let b = Lit::new(v[q * 3 + 1], q % 3 == 0);
                seq.push(s.solve_assuming(&[a, b]));
                // Feed a level-0 fact between queries.
                if q == 4 {
                    s.add_clause(&[Lit::pos(v[39])]);
                }
            }
            verdicts.push(seq);
        }
        assert_eq!(verdicts[0], verdicts[1]);
    }

    #[test]
    fn many_assumptions_cursor() {
        // A long implication chain queried under many assumptions — the
        // cursor must assert each exactly once per level and stay sound.
        let mut s = Solver::new();
        let v = lits(&mut s, 100);
        for i in 0..99 {
            s.add_clause(&[Lit::neg(v[i]), Lit::pos(v[i + 1])]);
        }
        let assumptions: Vec<Lit> = (0..50).map(|i| Lit::pos(v[2 * i])).collect();
        assert!(s.solve_assuming(&assumptions).is_sat());
        // Assuming the head forces the tail; denying the tail is unsat.
        let mut bad = assumptions.clone();
        bad.push(Lit::neg(v[99]));
        assert!(s.solve_assuming(&bad).is_unsat());
        // Duplicate assumptions exercise the already-true cursor path.
        let dup: Vec<Lit> = std::iter::repeat_n(Lit::pos(v[0]), 20).collect();
        assert!(s.solve_assuming(&dup).is_sat());
    }

    #[test]
    fn inprocessing_shrinks_database_between_queries() {
        let mut s = Solver::new();
        let v = lits(&mut s, 60);
        random_3sat(&mut s, &v, 200, 0x5eed5eed);
        assert!(s.solve().is_sat());
        // Pin a variable at level 0; the next query's root-level cleanup
        // must drop every clause satisfied by it.
        s.add_clause(&[Lit::pos(v[0])]);
        let before = s.orig_refs.len() + s.num_binary as usize;
        assert!(s.solve().is_sat());
        let after = s.orig_refs.len() + s.num_binary as usize;
        assert!(
            after <= before,
            "database grew across root simplification: {before} -> {after}"
        );
    }

    #[test]
    fn garbage_collection_keeps_verdicts() {
        // Alternate hard unsat queries (via assumptions) with reductions
        // so tombstones accumulate, then verify a later query still
        // answers correctly after compaction.
        let mut s = Solver::new();
        let v = lits(&mut s, 50);
        random_3sat(&mut s, &v, 160, 0x77777777);
        let r1 = s.solve();
        for (q, &var) in v.iter().enumerate().take(6) {
            let a = Lit::new(var, q % 2 == 0);
            let _ = s.solve_assuming(&[a]);
        }
        let r2 = s.solve();
        assert_eq!(r1.is_sat(), r2.is_sat());
    }
}
