//! A CDCL SAT solver: watched literals, first-UIP learning with clause
//! minimization, VSIDS with phase saving, Luby restarts, activity-based
//! learnt-clause reduction, and conflict budgets (which produce the
//! `Unknown` outcomes that surface as *undetermined* model-checking
//! results, §V-B of the paper).
//!
//! Clauses live in a flat `u32` arena (header word, activity word, then
//! literal codes) so the propagation loop touches one contiguous allocation
//! — the difference between ~1M and tens of millions of propagations per
//! second on unrolled-circuit CNFs.

use crate::budget::BudgetPool;
use crate::cancel::{CancelReason, CancelToken};
use crate::heap::ActivityHeap;
use crate::types::{Lit, SolveResult, Var};
use std::sync::Arc;

const UNASSIGNED: i8 = -1;
const VAR_DECAY: f64 = 0.95;
const CLAUSE_DECAY: f32 = 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;
/// Conflicts between cooperative cancellation / pool-cap polls. Polling
/// only happens when a token or pool watch is attached, so unset knobs
/// cost one `Option` test per conflict.
const STOP_CHECK_INTERVAL: u64 = 128;

/// Offset of a clause in the arena.
type ClauseRef = u32;

const HDR_LEARNT: u32 = 1 << 31;
const HDR_DELETED: u32 = 1 << 30;
const HDR_LEN_MASK: u32 = (1 << 30) - 1;

/// Flat clause storage: `[header, activity(f32 bits), lit0, lit1, ...]`.
#[derive(Clone, Debug, Default)]
struct Arena {
    data: Vec<u32>,
}

impl Arena {
    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        let off = self.data.len() as u32;
        let mut hdr = lits.len() as u32;
        if learnt {
            hdr |= HDR_LEARNT;
        }
        self.data.push(hdr);
        self.data.push(0f32.to_bits());
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        off
    }

    #[inline]
    fn len(&self, c: ClauseRef) -> usize {
        (self.data[c as usize] & HDR_LEN_MASK) as usize
    }

    #[inline]
    fn is_learnt(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & HDR_LEARNT != 0
    }

    #[inline]
    fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c as usize] & HDR_DELETED != 0
    }

    #[inline]
    fn set_deleted(&mut self, c: ClauseRef) {
        self.data[c as usize] |= HDR_DELETED;
    }

    #[inline]
    fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.data[c as usize + 2 + i] as usize)
    }

    #[inline]
    fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        self.data.swap(c as usize + 2 + i, c as usize + 2 + j);
    }

    #[inline]
    fn activity(&self, c: ClauseRef) -> f32 {
        f32::from_bits(self.data[c as usize + 1])
    }

    #[inline]
    fn set_activity(&mut self, c: ClauseRef, a: f32) {
        self.data[c as usize + 1] = a.to_bits();
    }
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    cref: ClauseRef,
    blocker: Lit,
}

/// Why the most recent solve call stopped with [`SolveResult::Unknown`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// The per-query conflict budget ran out.
    ConflictBudget,
    /// The attached [`BudgetPool`]'s global cap was (about to be) reached.
    PoolCap,
    /// The attached [`CancelToken`] was cancelled explicitly.
    Cancelled,
    /// The attached [`CancelToken`]'s wall-clock deadline passed.
    Deadline,
}

impl From<CancelReason> for StopCause {
    fn from(r: CancelReason) -> Self {
        match r {
            CancelReason::Cancelled => StopCause::Cancelled,
            CancelReason::Deadline => StopCause::Deadline,
        }
    }
}

/// Cumulative statistics of a solver instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Branching decisions taken.
    pub decisions: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnts: u64,
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use sat::{Lit, Solver};
///
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert!(s.solve().is_sat());
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Solver {
    arena: Arena,
    learnt_refs: Vec<ClauseRef>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<i8>,
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    reason: Vec<Option<ClauseRef>>,
    level: Vec<u32>,
    activity: Vec<f64>,
    var_inc: f64,
    clause_inc: f32,
    heap: ActivityHeap,
    seen: Vec<bool>,
    ok: bool,
    model: Vec<i8>,
    stats: SolverStats,
    conflict_budget: Option<u64>,
    num_original: usize,
    cancel: Option<Arc<CancelToken>>,
    pool_watch: Option<Arc<BudgetPool>>,
    last_stop: Option<StopCause>,
    clause_log: Option<Vec<Vec<Lit>>>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Self {
            var_inc: 1.0,
            clause_inc: 1.0,
            ok: true,
            ..Self::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(UNASSIGNED);
        self.phase.push(false);
        self.reason.push(None);
        self.level.push(0);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.model.push(UNASSIGNED);
        self.heap.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Solver statistics so far.
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            learnts: self.learnt_refs.len() as u64,
            ..self.stats
        }
    }

    /// Sets a conflict budget applied to each subsequent solve call; `None`
    /// removes the budget.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Attaches a cancellation token polled every [`STOP_CHECK_INTERVAL`]
    /// conflicts (and once at solve entry, so an already-fired token stops
    /// a query before any search). `None` detaches — the default, with no
    /// per-conflict cost beyond one `Option` test.
    pub fn set_cancel_token(&mut self, token: Option<Arc<CancelToken>>) {
        self.cancel = token;
    }

    /// Attaches a shared budget pool whose *global* conflict cap the solve
    /// loop honors mid-query: every [`STOP_CHECK_INTERVAL`] conflicts the
    /// solver asks whether its own un-charged delta would exhaust the
    /// pool, bounding cap overshoot to one interval. Attach only pools
    /// with a cap — an uncapped pool never fires, and skipping the watch
    /// keeps capless runs byte-deterministic by construction.
    pub fn set_pool_watch(&mut self, pool: Option<Arc<BudgetPool>>) {
        self.pool_watch = pool;
    }

    /// Why the most recent solve call returned [`SolveResult::Unknown`]
    /// (`None` after a Sat/Unsat result or before any solve).
    pub fn last_stop(&self) -> Option<StopCause> {
        self.last_stop
    }

    /// Turns clause logging on or off. While enabled, every clause handed
    /// to [`Solver::add_clause`] is recorded *verbatim* — before the
    /// level-0 simplifications — so the log is the exact input formula a
    /// reference solver can be run against. Off by default (no cost).
    /// Turning logging off discards the log.
    pub fn set_clause_log(&mut self, enabled: bool) {
        self.clause_log = enabled.then(Vec::new);
    }

    /// The clauses recorded since logging was enabled (empty when
    /// logging is off). Clauses added *before* enabling are not included.
    pub fn logged_clauses(&self) -> &[Vec<Lit>] {
        self.clause_log.as_deref().unwrap_or(&[])
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> i8 {
        let a = self.assigns[l.var().index()];
        if a == UNASSIGNED {
            UNASSIGNED
        } else if l.is_pos() {
            a
        } else {
            1 - a
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (now or as a result of this clause).
    ///
    /// # Panics
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause above level 0");
        if let Some(log) = &mut self.clause_log {
            log.push(lits.to_vec());
        }
        if !self.ok {
            return false;
        }
        for l in lits {
            assert!(l.var().index() < self.num_vars(), "unallocated variable");
        }
        // Simplify: sort/dedupe, drop false literals, detect tautology.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out = Vec::with_capacity(ls.len());
        for &l in &ls {
            if ls.binary_search(&!l).is_ok() {
                return true; // tautology
            }
            match self.lit_value(l) {
                1 => return true, // already satisfied at level 0
                0 => continue,    // false at level 0: drop
                _ => out.push(l),
            }
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(&out, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.arena.alloc(lits, learnt);
        self.watches[lits[0].code()].push(Watcher {
            cref,
            blocker: lits[1],
        });
        self.watches[lits[1].code()].push(Watcher {
            cref,
            blocker: lits[0],
        });
        if learnt {
            self.learnt_refs.push(cref);
        } else {
            self.num_original += 1;
        }
        cref
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), UNASSIGNED);
        let v = l.var();
        self.assigns[v.index()] = l.is_pos() as i8;
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.phase[v.index()] = l.is_pos();
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        let mut conflict = None;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == 1 {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Make sure the false literal is at slot 1.
                if self.arena.lit(cref, 0) == false_lit {
                    self.arena.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.arena.lit(cref, 1), false_lit);
                let first = self.arena.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == 1 {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new watch.
                let len = self.arena.len(cref);
                for k in 2..len {
                    let lk = self.arena.lit(cref, k);
                    if self.lit_value(lk) != 0 {
                        self.arena.swap_lits(cref, 1, k);
                        self.watches[lk.code()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == 0 {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, Some(cref));
                i += 1;
            }
            let tail = std::mem::replace(&mut self.watches[false_lit.code()], ws);
            self.watches[false_lit.code()].extend(tail);
            if conflict.is_some() {
                break;
            }
        }
        conflict
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.heap.bumped(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.arena.is_learnt(cref) {
            return;
        }
        let a = self.arena.activity(cref) + self.clause_inc;
        self.arena.set_activity(cref, a);
        if a > 1e20 {
            for &c in &self.learnt_refs {
                let scaled = self.arena.activity(c) * 1e-20;
                self.arena.set_activity(c, scaled);
            }
            self.clause_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis with basic clause minimization. Returns
    /// the learnt clause (asserting literal first) and the backjump level.
    fn analyze(&mut self, mut confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var(0))]; // placeholder slot 0
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();
        loop {
            self.bump_clause(confl);
            let skip_first = p.is_some() as usize;
            let len = self.arena.len(confl);
            for k in skip_first..len {
                let q = self.arena.lit(confl, k);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v.index()] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[pl.var().index()].expect("non-decision has a reason");
        }
        learnt[0] = !p.expect("found UIP");
        // Basic clause minimization: drop a literal whose reason's other
        // literals are all already in the learnt clause (seen) or at level
        // 0 — it is implied by the rest of the clause.
        let mut minimized = Vec::with_capacity(learnt.len());
        minimized.push(learnt[0]);
        for &q in &learnt[1..] {
            let redundant = match self.reason[q.var().index()] {
                None => false,
                Some(cr) => {
                    let len = self.arena.len(cr);
                    (0..len).all(|k| {
                        let r = self.arena.lit(cr, k);
                        r.var() == q.var()
                            || self.seen[r.var().index()]
                            || self.level[r.var().index()] == 0
                    })
                }
            };
            if !redundant {
                minimized.push(q);
            }
        }
        let mut learnt = minimized;
        // Backjump level: highest level among learnt[1..].
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };
        for v in to_clear {
            self.seen[v.index()] = false;
        }
        (learnt, bt)
    }

    fn backtrack(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let bound = self.trail_lim[target as usize];
        while self.trail.len() > bound {
            let l = self.trail.pop().expect("non-empty trail");
            let v = l.var();
            self.assigns[v.index()] = UNASSIGNED;
            self.reason[v.index()] = None;
            self.heap.insert(v, &self.activity);
        }
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self, l: Lit) {
        self.trail_lim.push(self.trail.len());
        self.unchecked_enqueue(l, None);
        self.stats.decisions += 1;
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap.pop_max(&self.activity) {
            if self.assigns[v.index()] == UNASSIGNED {
                return Some(Lit::new(v, self.phase[v.index()]));
            }
        }
        None
    }

    fn locked(&self, cref: ClauseRef) -> bool {
        let v = self.arena.lit(cref, 0).var();
        self.assigns[v.index()] != UNASSIGNED && self.reason[v.index()] == Some(cref)
    }

    /// Removes the lower-activity half of the learnt clauses and rebuilds
    /// watch lists. Runs at decision level 0 so the watch invariant can be
    /// re-established by literal reordering.
    fn reduce_db(&mut self) {
        self.backtrack(0);
        let mut removable: Vec<ClauseRef> = self
            .learnt_refs
            .iter()
            .copied()
            .filter(|&c| !self.locked(c) && self.arena.len(c) > 2)
            .collect();
        removable.sort_by(|&a, &b| {
            self.arena
                .activity(a)
                .partial_cmp(&self.arena.activity(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for &c in &removable[..removable.len() / 2] {
            self.arena.set_deleted(c);
        }
        self.learnt_refs.retain(|&c| !self.arena.is_deleted(c));
        // Rebuild watches, reordering so the two best literals (true >
        // unassigned > false) are watched.
        for w in &mut self.watches {
            w.clear();
        }
        let mut all: Vec<ClauseRef> = Vec::new();
        let mut off = 0usize;
        while off < self.arena.data.len() {
            let c = off as ClauseRef;
            let len = self.arena.len(c);
            if !self.arena.is_deleted(c) {
                all.push(c);
            }
            off += 2 + len;
        }
        for cref in all {
            let len = self.arena.len(cref);
            let rank = |val: i8| -> u8 {
                match val {
                    1 => 0,
                    UNASSIGNED => 1,
                    _ => 2,
                }
            };
            let mut ranked: Vec<(u8, usize)> = (0..len)
                .map(|k| (rank(self.lit_value(self.arena.lit(cref, k))), k))
                .collect();
            ranked.sort_unstable();
            let (b0, mut b1) = (ranked[0].1, ranked[1].1);
            self.arena.swap_lits(cref, 0, b0);
            if b1 == 0 {
                b1 = b0;
            }
            self.arena.swap_lits(cref, 1, b1);
            let (l0, l1) = (self.arena.lit(cref, 0), self.arena.lit(cref, 1));
            self.watches[l0.code()].push(Watcher { cref, blocker: l1 });
            self.watches[l1.code()].push(Watcher { cref, blocker: l0 });
        }
    }

    fn luby(i: u64) -> u64 {
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < i + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        let mut x = i;
        let mut sz = size;
        let mut sq = seq;
        while sz - 1 != x {
            sz = (sz - 1) / 2;
            sq -= 1;
            x %= sz;
        }
        1u64 << sq
    }

    /// Solves the current formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_assuming(&[])
    }

    /// Solves under the given assumption literals. The clause database
    /// (including learnt clauses) persists across calls, enabling the
    /// incremental per-property queries issued by the model checker.
    pub fn solve_assuming(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.last_stop = None;
        if !self.ok {
            return SolveResult::Unsat;
        }
        if let Some(reason) = self.cancel.as_ref().and_then(|t| t.fired()) {
            self.last_stop = Some(reason.into());
            return SolveResult::Unknown;
        }
        let budget_start = self.stats.conflicts;
        let mut conflicts_since_restart = 0u64;
        let mut restart_threshold = RESTART_BASE * Self::luby(self.stats.restarts);
        let mut learnt_limit = (self.num_original as u64 / 3).max(2000);

        let result = loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    break SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.backtrack(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], None);
                } else {
                    let cref = self.attach_clause(&learnt, true);
                    self.bump_clause(cref);
                    self.unchecked_enqueue(learnt[0], Some(cref));
                }
                self.var_inc /= VAR_DECAY;
                self.clause_inc /= CLAUSE_DECAY;
                let spent = self.stats.conflicts - budget_start;
                if let Some(b) = self.conflict_budget {
                    if spent >= b {
                        self.last_stop = Some(StopCause::ConflictBudget);
                        break SolveResult::Unknown;
                    }
                }
                if (self.cancel.is_some() || self.pool_watch.is_some())
                    && spent.is_multiple_of(STOP_CHECK_INTERVAL)
                {
                    if let Some(reason) = self.cancel.as_ref().and_then(|t| t.fired()) {
                        self.last_stop = Some(reason.into());
                        break SolveResult::Unknown;
                    }
                    if self
                        .pool_watch
                        .as_ref()
                        .is_some_and(|p| p.would_exhaust(spent))
                    {
                        self.last_stop = Some(StopCause::PoolCap);
                        break SolveResult::Unknown;
                    }
                }
            } else {
                // No conflict: maybe restart / reduce, then extend the
                // assignment.
                if conflicts_since_restart >= restart_threshold {
                    self.stats.restarts += 1;
                    conflicts_since_restart = 0;
                    restart_threshold = RESTART_BASE * Self::luby(self.stats.restarts);
                    self.backtrack(0);
                    continue;
                }
                if self.learnt_refs.len() as u64 > learnt_limit + self.trail.len() as u64 {
                    self.reduce_db();
                    learnt_limit += learnt_limit / 2;
                }
                // Re-assert assumptions in order.
                let mut next_decision = None;
                let mut assumption_failed = false;
                for &a in assumptions {
                    match self.lit_value(a) {
                        1 => continue,
                        0 => {
                            assumption_failed = true;
                            break;
                        }
                        _ => {
                            next_decision = Some(a);
                            break;
                        }
                    }
                }
                if assumption_failed {
                    break SolveResult::Unsat;
                }
                let decision = match next_decision {
                    Some(a) => Some(a),
                    None => self.pick_branch(),
                };
                match decision {
                    Some(l) => self.decide(l),
                    None => {
                        self.model.copy_from_slice(&self.assigns);
                        break SolveResult::Sat;
                    }
                }
            }
        };
        self.backtrack(0);
        result
    }

    /// The value of `v` in the most recent satisfying model, or `None` if
    /// the variable was unconstrained/unassigned.
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index()) {
            Some(&1) => Some(true),
            Some(&0) => Some(false),
            _ => None,
        }
    }

    /// The value of a literal in the most recent model.
    pub fn lit_model(&self, l: Lit) -> Option<bool> {
        self.value(l.var()).map(|b| b == l.is_pos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| solver.new_var()).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn unit_conflict_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        assert!(!s.add_clause(&[Lit::neg(v[0])]));
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn forces_implied_assignment() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        // a, a->b, b->c
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[1]), Lit::pos(v[2])]);
        assert!(s.solve().is_sat());
        assert_eq!(s.value(v[2]), Some(true));
    }

    #[test]
    fn xor_chain_sat() {
        // (a xor b), (b xor c), (a xor c) is unsat; drop one clause => sat.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor = |s: &mut Solver, a: Var, b: Var| {
            s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
            s.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        };
        xor(&mut s, v[0], v[1]);
        xor(&mut s, v[1], v[2]);
        assert!(s.solve().is_sat());
        xor(&mut s, v[0], v[2]);
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&row.map(Lit::pos));
        }
        for j in 0..3 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn assumptions_are_transient() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        assert!(s
            .solve_assuming(&[Lit::neg(v[0]), Lit::neg(v[1])])
            .is_unsat());
        // Same formula without assumptions stays sat.
        assert!(s.solve().is_sat());
        assert!(s.solve_assuming(&[Lit::neg(v[0])]).is_sat());
        assert_eq!(s.value(v[1]), Some(true));
    }

    #[test]
    fn contradictory_assumptions_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s
            .solve_assuming(&[Lit::pos(v[0]), Lit::neg(v[0])])
            .is_unsat());
    }

    #[test]
    fn budget_yields_unknown_on_hard_instance() {
        let mut s = Solver::new();
        let mut p = [[Var(0); 4]; 5];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&row.map(Lit::pos));
        }
        for j in 0..4 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert!(s.solve().is_unsat());
    }

    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let mut p = vec![vec![Var(0); holes]; pigeons];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().copied().map(Lit::pos).collect();
            s.add_clause(&lits);
        }
        for j in 0..holes {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
    }

    #[test]
    fn prefired_cancel_token_stops_before_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        let token = Arc::new(CancelToken::new());
        token.cancel();
        s.set_cancel_token(Some(Arc::clone(&token)));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::Cancelled));
        // Detached, the same formula solves normally and clears the cause.
        s.set_cancel_token(None);
        assert!(s.solve().is_unsat());
        assert_eq!(s.last_stop(), None);
    }

    #[test]
    fn expired_deadline_reports_deadline_cause() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        let token = Arc::new(CancelToken::deadline_in(std::time::Duration::ZERO));
        s.set_cancel_token(Some(token));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::Deadline));
    }

    #[test]
    fn pool_watch_bounds_cap_overshoot_mid_solve() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 8, 7);
        let pool = Arc::new(BudgetPool::new(Some(200)));
        s.set_pool_watch(Some(Arc::clone(&pool)));
        let r = s.solve();
        if r == SolveResult::Unknown {
            assert_eq!(s.last_stop(), Some(StopCause::PoolCap));
            // Overshoot past the cap is bounded by one poll interval.
            assert!(
                s.stats().conflicts <= 200 + STOP_CHECK_INTERVAL,
                "ran {} conflicts past a 200-conflict cap",
                s.stats().conflicts
            );
        } else {
            // The instance resolved under the cap; the watch must not
            // have perturbed the result.
            assert!(r.is_unsat());
        }
    }

    #[test]
    fn conflict_budget_reports_cause() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 6, 5);
        s.set_conflict_budget(Some(1));
        assert_eq!(s.solve(), SolveResult::Unknown);
        assert_eq!(s.last_stop(), Some(StopCause::ConflictBudget));
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // Deterministic pseudo-random 3-SAT; verify the model.
        let mut s = Solver::new();
        let v = lits(&mut s, 20);
        let mut state = 0x12345678u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut cls = Vec::new();
        for _ in 0..60 {
            let mut c = Vec::new();
            for _ in 0..3 {
                let var = v[(rnd() % 20) as usize];
                c.push(Lit::new(var, rnd() % 2 == 0));
            }
            cls.push(c.clone());
            s.add_clause(&c);
        }
        if s.solve().is_sat() {
            for c in cls {
                assert!(
                    c.iter().any(|&l| s.lit_model(l) == Some(true)),
                    "model violates clause"
                );
            }
        }
    }

    #[test]
    fn reduce_db_preserves_correctness() {
        // Force many conflicts so reduction triggers, then confirm the
        // formula's status is unchanged. Pigeonhole 6 into 5.
        let mut s = Solver::new();
        const P: usize = 6;
        const H: usize = 5;
        let mut p = vec![[Var(0); H]; P];
        for row in p.iter_mut() {
            for slot in row.iter_mut() {
                *slot = s.new_var();
            }
        }
        for row in &p {
            s.add_clause(&row.map(Lit::pos));
        }
        for j in 0..H {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
                }
            }
        }
        assert!(s.solve().is_unsat());
    }
}
