//! An indexed max-heap ordered by variable activity, for VSIDS decisions.

use crate::types::Var;

/// Max-heap of variables keyed by an external activity array.
///
/// Supports O(log n) insert/remove-max and O(log n) re-prioritisation when a
/// variable's activity is bumped.
#[derive(Clone, Debug, Default)]
pub struct ActivityHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl ActivityHeap {
    /// Creates an empty heap.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the position table covers variable indices up to `n - 1`.
    pub fn grow(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
        }
    }

    /// Whether the heap contains `v`.
    pub fn contains(&self, v: Var) -> bool {
        self.pos.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    /// Whether the heap is empty.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of queued variables.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Inserts `v` (no-op when present).
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let i = self.heap.len();
        self.heap.push(v);
        self.pos[v.index()] = i;
        self.sift_up(i, activity);
    }

    /// Removes and returns the variable with the highest activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.pos[top.index()] = ABSENT;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Re-establishes heap order after `v`'s activity increased.
    pub fn bumped(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.pos.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p, activity);
            }
        }
    }

    // Both sift directions hole-shift instead of swapping: the moving
    // variable is held in a register and written once at its final slot,
    // halving the heap/pos stores on the backtrack-heavy reinsert path.
    // Comparison order is identical to a swap-based sift, so pop order
    // (and thus search determinism) is unchanged.

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let a = activity[v.index()];
        while i > 0 {
            let parent = (i - 1) / 2;
            let pv = self.heap[parent];
            if a <= activity[pv.index()] {
                break;
            }
            self.heap[i] = pv;
            self.pos[pv.index()] = i;
            i = parent;
        }
        self.heap[i] = v;
        self.pos[v.index()] = i;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        let a = activity[v.index()];
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            let mut largest_a = a;
            if l < self.heap.len() && activity[self.heap[l].index()] > largest_a {
                largest = l;
                largest_a = activity[self.heap[l].index()];
            }
            if r < self.heap.len() && activity[self.heap[r].index()] > largest_a {
                largest = r;
            }
            if largest == i {
                break;
            }
            let cv = self.heap[largest];
            self.heap[i] = cv;
            self.pos[cv.index()] = i;
            i = largest;
        }
        self.heap[i] = v;
        self.pos[v.index()] = i;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![1.0, 5.0, 3.0, 4.0, 2.0];
        let mut h = ActivityHeap::new();
        for i in 0..5 {
            h.insert(Var(i), &activity);
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop_max(&activity))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn bump_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut h = ActivityHeap::new();
        for i in 0..3 {
            h.insert(Var(i), &activity);
        }
        activity[0] = 10.0;
        h.bumped(Var(0), &activity);
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
    }

    #[test]
    fn duplicate_insert_ignored() {
        let activity = vec![1.0];
        let mut h = ActivityHeap::new();
        h.insert(Var(0), &activity);
        h.insert(Var(0), &activity);
        assert_eq!(h.len(), 1);
        assert_eq!(h.pop_max(&activity), Some(Var(0)));
        assert!(h.pop_max(&activity).is_none());
    }
}
