//! Solver heuristic knobs.
//!
//! Every knob combination must produce the same Sat/Unsat verdict on the
//! same formula — the differential fuzzer sweeps the full cross product
//! against the reference DPLL solver to enforce exactly that, so these
//! types double as the sweep's enumeration domain.

/// Restart policy of the CDCL search loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RestartMode {
    /// Fixed Luby-sequence restart intervals (the classic MiniSat scheme).
    Luby,
    /// Adaptive restarts from fast/slow exponential moving averages of
    /// learnt-clause LBD, with trail-size blocking (the Glucose scheme).
    #[default]
    Glucose,
}

/// How aggressively the learnt-clause database is collected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReduceStrategy {
    /// Reduce on a conflict schedule (every few thousand conflicts) and
    /// drop half of the local tier each time.
    #[default]
    Aggressive,
    /// Reduce only when the database outgrows a fraction of the original
    /// formula, dropping a third of the local tier.
    Lazy,
}

/// Heuristic configuration of a [`crate::Solver`].
///
/// Changing the configuration never changes verdicts, only search order
/// and speed; it takes effect on the next solve call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverConfig {
    /// Restart policy.
    pub restart: RestartMode,
    /// Whether root-level inprocessing (satisfied-clause removal,
    /// false-literal stripping, learnt-clause subsumption) runs between
    /// queries.
    pub inprocessing: bool,
    /// Learnt-database collection schedule.
    pub reduce: ReduceStrategy,
    /// Whether the assumption prefix of each query is retained on the
    /// trail between `solve_assuming` calls, so a follow-up query sharing
    /// that prefix skips re-propagating it.
    pub retain_trail: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl SolverConfig {
    /// The default configuration: Glucose restarts, inprocessing on,
    /// aggressive reduction, trail retention on.
    pub fn new() -> Self {
        Self {
            restart: RestartMode::Glucose,
            inprocessing: true,
            reduce: ReduceStrategy::Aggressive,
            retain_trail: true,
        }
    }

    /// Every knob combination, in a fixed order — the differential
    /// fuzzer's sweep domain.
    pub fn all_combinations() -> Vec<SolverConfig> {
        let mut out = Vec::with_capacity(16);
        for restart in [RestartMode::Luby, RestartMode::Glucose] {
            for inprocessing in [false, true] {
                for reduce in [ReduceStrategy::Aggressive, ReduceStrategy::Lazy] {
                    for retain_trail in [false, true] {
                        out.push(SolverConfig {
                            restart,
                            inprocessing,
                            reduce,
                            retain_trail,
                        });
                    }
                }
            }
        }
        out
    }

    /// Short diagnostic label, e.g. `glucose+inproc+aggressive+retain`.
    pub fn label(&self) -> String {
        format!(
            "{}{}+{}{}",
            match self.restart {
                RestartMode::Luby => "luby",
                RestartMode::Glucose => "glucose",
            },
            if self.inprocessing { "+inproc" } else { "" },
            match self.reduce {
                ReduceStrategy::Aggressive => "aggressive",
                ReduceStrategy::Lazy => "lazy",
            },
            if self.retain_trail { "+retain" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_glucose_inprocessing_aggressive_retaining() {
        let c = SolverConfig::new();
        assert_eq!(c.restart, RestartMode::Glucose);
        assert!(c.inprocessing);
        assert_eq!(c.reduce, ReduceStrategy::Aggressive);
        assert!(c.retain_trail);
    }

    #[test]
    fn sweep_covers_all_sixteen_combinations() {
        let all = SolverConfig::all_combinations();
        assert_eq!(all.len(), 16);
        let labels: std::collections::BTreeSet<String> =
            all.iter().map(SolverConfig::label).collect();
        assert_eq!(labels.len(), 16, "labels must be distinct");
    }
}
