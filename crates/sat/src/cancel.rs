//! Cooperative cancellation for long solver runs.
//!
//! A [`CancelToken`] is a thread-shared "stop soon" signal: an atomic flag
//! (set by [`CancelToken::cancel`]) plus an optional wall-clock deadline
//! fixed at construction. The CDCL solve loop polls it every few hundred
//! conflicts, so cancellation is cooperative — an in-flight query winds
//! down at the next conflict and reports [`SolveResult::Unknown`], which
//! the model checker surfaces as an *undetermined* verdict rather than a
//! wrong one.
//!
//! Determinism contract: a token that never fires has no effect on
//! results. A deadline makes *which* queries get cut off depend on
//! wall-clock timing, exactly like the global conflict cap of
//! [`BudgetPool`] — callers that need bit-identical reruns must not set
//! one (DESIGN.md §8).
//!
//! [`SolveResult::Unknown`]: crate::SolveResult::Unknown
//! [`BudgetPool`]: crate::BudgetPool

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
}

/// A thread-shared cancellation signal: atomic flag plus optional
/// deadline. Cheap to share behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct CancelToken {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token with no deadline; fires only via [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that fires once `deadline` passes (or on `cancel`).
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: AtomicBool::new(false),
            deadline: Some(deadline),
        }
    }

    /// A token whose deadline is `budget` from now. `Duration::ZERO`
    /// yields an already-expired token (used by the fault-injection
    /// harness to exercise the deadline path deterministically).
    pub fn deadline_in(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation. Idempotent; safe from any thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Why the token has fired, or `None` while it hasn't. An explicit
    /// `cancel` takes precedence over a passed deadline.
    pub fn fired(&self) -> Option<CancelReason> {
        if self.flag.load(Ordering::Relaxed) {
            return Some(CancelReason::Cancelled);
        }
        match self.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::Deadline),
            _ => None,
        }
    }

    /// Whether the token has fired.
    pub fn is_cancelled(&self) -> bool {
        self.fired().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_has_not_fired() {
        let t = CancelToken::new();
        assert_eq!(t.fired(), None);
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_fires_and_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn zero_deadline_is_already_expired() {
        let t = CancelToken::deadline_in(Duration::ZERO);
        assert_eq!(t.fired(), Some(CancelReason::Deadline));
    }

    #[test]
    fn far_deadline_has_not_fired_but_cancel_wins() {
        let t = CancelToken::deadline_in(Duration::from_secs(3600));
        assert_eq!(t.fired(), None);
        t.cancel();
        assert_eq!(t.fired(), Some(CancelReason::Cancelled));
    }
}
