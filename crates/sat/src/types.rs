//! Variables, literals, and solve outcomes.

use std::fmt;
use std::ops::Not;

/// A propositional variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Index into per-variable tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation, encoded as `2*var + sign`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Lit {
        Lit((v.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a polarity (`true` = positive).
    #[inline]
    pub fn new(v: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    #[inline]
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense encoding, usable as a table index.
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Decodes from [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "!{}", self.var())
        }
    }
}

/// Result of a solve call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolveResult {
    /// A satisfying assignment was found (read it with `Solver::value`).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict/propagation budget was exhausted first.
    Unknown,
}

impl SolveResult {
    /// `true` when the outcome is [`SolveResult::Sat`].
    pub fn is_sat(self) -> bool {
        self == SolveResult::Sat
    }

    /// `true` when the outcome is [`SolveResult::Unsat`].
    pub fn is_unsat(self) -> bool {
        self == SolveResult::Unsat
    }

    /// `true` when the outcome is [`SolveResult::Unknown`].
    pub fn is_unknown(self) -> bool {
        self == SolveResult::Unknown
    }

    /// The SAT-competition answer line for this outcome
    /// (`SATISFIABLE` / `UNSATISFIABLE` / `UNKNOWN`).
    pub fn answer(self) -> &'static str {
        match self {
            SolveResult::Sat => "SATISFIABLE",
            SolveResult::Unsat => "UNSATISFIABLE",
            SolveResult::Unknown => "UNKNOWN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_round_trips() {
        let v = Var(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_pos());
        assert!(!n.is_pos());
        assert_eq!(!p, n);
        assert_eq!(!!p, p);
        assert_eq!(Lit::from_code(p.code()), p);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Lit::pos(Var(3)).to_string(), "x3");
        assert_eq!(Lit::neg(Var(3)).to_string(), "!x3");
    }
}
