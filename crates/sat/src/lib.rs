//! A CDCL SAT solver, standing in for the commercial property verifier
//! (JasperGold) in the paper's toolflow.
//!
//! Features: two-literal watching with a dedicated binary-clause fast
//! path, first-UIP clause learning, VSIDS with phase saving, adaptive
//! (Glucose) or Luby restarts, an LBD-tiered learnt-clause database with
//! in-place deletion, root-level inprocessing between queries,
//! incremental solving under assumptions (one unrolled circuit, thousands
//! of per-property queries), and conflict budgets that surface as the
//! paper's *undetermined* property outcomes.
//!
//! # Examples
//!
//! ```
//! use sat::{Lit, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! // (a | b) & (!a | b)  =>  b
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a), Lit::pos(b)]);
//! assert!(s.solve().is_sat());
//! assert_eq!(s.value(b), Some(true));
//! ```

mod budget;
mod cancel;
mod config;
pub mod dimacs;
mod heap;
mod solver;
mod types;

pub use budget::{BudgetPool, ClientBudgets};
pub use cancel::{CancelReason, CancelToken};
pub use config::{ReduceStrategy, RestartMode, SolverConfig};
pub use solver::{Solver, SolverStats, StopCause};
pub use types::{Lit, SolveResult, Var};
