//! A thread-shared conflict/propagation budget pool.
//!
//! Parallel property-evaluation workers each own a private [`Solver`], but a
//! whole synthesis run often wants one *global* resource account: "spend at
//! most N conflicts across every property, then report the rest as
//! undetermined" — the paper's per-property budgets (§V-B), lifted to the
//! job-pool level. Workers charge their per-query solver-statistics deltas
//! into the pool with relaxed atomics; the engine consults
//! [`BudgetPool::exhausted`] before starting each new query.
//!
//! With `cap = None` (the default) the pool is pure accounting and has no
//! effect on results, so deterministic parallel runs stay deterministic.
//! With a cap set, *which* queries get cut off depends on worker scheduling;
//! callers that need bit-identical reruns must not set a cap (see
//! `DESIGN.md` §6).
//!
//! [`Solver`]: crate::Solver

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared conflict/propagation accounting with an optional global cap on
/// conflicts. Cheap to share behind an `Arc`; all methods take `&self`.
#[derive(Debug, Default)]
pub struct BudgetPool {
    conflicts: AtomicU64,
    propagations: AtomicU64,
    cap: Option<u64>,
}

impl BudgetPool {
    /// A pool with an optional global conflict cap. `None` never exhausts.
    pub fn new(cap: Option<u64>) -> Self {
        Self {
            conflicts: AtomicU64::new(0),
            propagations: AtomicU64::new(0),
            cap,
        }
    }

    /// The configured global conflict cap.
    pub fn cap(&self) -> Option<u64> {
        self.cap
    }

    /// Adds one query's conflict/propagation deltas to the account.
    pub fn charge(&self, conflicts: u64, propagations: u64) {
        self.conflicts.fetch_add(conflicts, Ordering::Relaxed);
        self.propagations.fetch_add(propagations, Ordering::Relaxed);
    }

    /// Total conflicts charged so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }

    /// Total propagations charged so far.
    pub fn propagations(&self) -> u64 {
        self.propagations.load(Ordering::Relaxed)
    }

    /// Whether the global conflict cap has been reached.
    pub fn exhausted(&self) -> bool {
        self.would_exhaust(0)
    }

    /// Whether charging `pending` additional conflicts would reach the
    /// cap. The solve loop polls this with its own un-charged delta so an
    /// in-flight query stops within one check interval of the cap instead
    /// of running its full per-query budget past it.
    pub fn would_exhaust(&self, pending: u64) -> bool {
        match self.cap {
            Some(cap) => self.conflicts().saturating_add(pending) >= cap,
            None => false,
        }
    }

    /// Conflicts left under the cap (`None` when uncapped).
    pub fn remaining(&self) -> Option<u64> {
        self.cap.map(|cap| cap.saturating_sub(self.conflicts()))
    }
}

/// Per-client budget accounting for a long-lived verification service:
/// one [`BudgetPool`] per client name, created on first use with a shared
/// per-client conflict cap. A client that exhausts its own cap degrades
/// only its own queries; other clients' pools are untouched. All methods
/// take `&self` and are safe to call from concurrent workers.
///
/// Client names arrive verbatim from an untrusted wire field, so the
/// ledger is bounded: at most [`ClientBudgets::MAX_CLIENTS`] named
/// accounts are ever created, and every name past the cap is folded into
/// the shared [`ClientBudgets::OVERFLOW_CLIENT`] account — a stream of
/// unique names cannot grow the map (or a `stats` payload built from it)
/// without bound.
#[derive(Debug, Default)]
pub struct ClientBudgets {
    cap: Option<u64>,
    pools: std::sync::Mutex<std::collections::BTreeMap<String, std::sync::Arc<BudgetPool>>>,
}

impl ClientBudgets {
    /// Distinct named ledgers before new names fold into
    /// [`Self::OVERFLOW_CLIENT`] (which gets its own slot on top).
    pub const MAX_CLIENTS: usize = 64;

    /// The shared account absorbing clients past [`Self::MAX_CLIENTS`].
    /// A client literally named this shares the overflow pool.
    pub const OVERFLOW_CLIENT: &'static str = "other";

    /// A ledger whose per-client pools each carry `cap` (`None` =
    /// accounting only, never exhausts).
    pub fn new(cap: Option<u64>) -> Self {
        Self {
            cap,
            pools: std::sync::Mutex::new(std::collections::BTreeMap::new()),
        }
    }

    /// The named client's pool, created on first use; once
    /// [`Self::MAX_CLIENTS`] named accounts exist, unseen names share the
    /// [`Self::OVERFLOW_CLIENT`] pool (so latecomers also share its cap).
    pub fn pool_for(&self, client: &str) -> std::sync::Arc<BudgetPool> {
        let mut pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        let name = if pools.contains_key(client) || pools.len() < Self::MAX_CLIENTS {
            client
        } else {
            Self::OVERFLOW_CLIENT
        };
        std::sync::Arc::clone(
            pools
                .entry(name.to_owned())
                .or_insert_with(|| std::sync::Arc::new(BudgetPool::new(self.cap))),
        )
    }

    /// Every client's `(name, conflicts, propagations)` tallies, sorted by
    /// name — the observability face of the ledger.
    pub fn totals(&self) -> Vec<(String, u64, u64)> {
        let pools = self.pools.lock().unwrap_or_else(|e| e.into_inner());
        pools
            .iter()
            .map(|(name, p)| (name.clone(), p.conflicts(), p.propagations()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_pool_only_accounts() {
        let p = BudgetPool::new(None);
        p.charge(10, 100);
        p.charge(5, 50);
        assert_eq!(p.conflicts(), 15);
        assert_eq!(p.propagations(), 150);
        assert!(!p.exhausted());
        assert_eq!(p.remaining(), None);
    }

    #[test]
    fn capped_pool_exhausts() {
        let p = BudgetPool::new(Some(20));
        assert_eq!(p.remaining(), Some(20));
        p.charge(15, 0);
        assert!(!p.exhausted());
        assert_eq!(p.remaining(), Some(5));
        p.charge(5, 0);
        assert!(p.exhausted());
        assert_eq!(p.remaining(), Some(0));
    }

    #[test]
    fn client_ledger_isolates_accounts() {
        let ledger = ClientBudgets::new(Some(10));
        let alice = ledger.pool_for("alice");
        let bob = ledger.pool_for("bob");
        alice.charge(10, 100);
        assert!(alice.exhausted(), "alice hit her own cap");
        assert!(!bob.exhausted(), "bob's account is independent");
        assert!(
            std::sync::Arc::ptr_eq(&alice, &ledger.pool_for("alice")),
            "repeat lookups must return the same pool"
        );
        assert_eq!(
            ledger.totals(),
            vec![("alice".into(), 10, 100), ("bob".into(), 0, 0)]
        );
    }

    #[test]
    fn ledger_folds_unbounded_client_names_into_overflow_pool() {
        let ledger = ClientBudgets::new(None);
        for i in 0..ClientBudgets::MAX_CLIENTS {
            ledger.pool_for(&format!("client-{i}"));
        }
        let spill_a = ledger.pool_for("fresh-name-a");
        let spill_b = ledger.pool_for("fresh-name-b");
        assert!(
            std::sync::Arc::ptr_eq(&spill_a, &spill_b),
            "names past the cap share the overflow pool"
        );
        assert!(
            std::sync::Arc::ptr_eq(&spill_a, &ledger.pool_for(ClientBudgets::OVERFLOW_CLIENT)),
            "the overflow pool is the `other` account"
        );
        assert!(
            std::sync::Arc::ptr_eq(&ledger.pool_for("client-0"), &ledger.pool_for("client-0")),
            "accounts created before the cap keep their own pool"
        );
        assert_eq!(
            ledger.totals().len(),
            ClientBudgets::MAX_CLIENTS + 1,
            "the map is bounded: named accounts plus one overflow slot"
        );
    }

    #[test]
    fn charging_is_thread_safe() {
        let p = std::sync::Arc::new(BudgetPool::new(Some(1000)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let p = std::sync::Arc::clone(&p);
                s.spawn(move || {
                    for _ in 0..100 {
                        p.charge(1, 2);
                    }
                });
            }
        });
        assert_eq!(p.conflicts(), 400);
        assert_eq!(p.propagations(), 800);
        assert!(!p.exhausted());
    }
}
