//! DIMACS CNF import/export, the SAT ecosystem's interchange format —
//! lets the solver be exercised against external benchmarks and lets the
//! model checker's CNFs be dumped for cross-checking with other solvers.

use crate::{Lit, Solver, Var};
use std::fmt::Write as _;

/// A parsed CNF formula.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Cnf {
    /// Number of variables (1-based in DIMACS, 0-based internally).
    pub num_vars: usize,
    /// Clauses as literal lists.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads the formula into a fresh solver.
    pub fn to_solver(&self) -> Solver {
        let mut s = Solver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }

    /// Serializes to DIMACS text.
    pub fn to_dimacs(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "p cnf {} {}", self.num_vars, self.clauses.len());
        for c in &self.clauses {
            for &l in c {
                let v = l.var().0 as i64 + 1;
                let _ = write!(out, "{} ", if l.is_pos() { v } else { -v });
            }
            let _ = writeln!(out, "0");
        }
        out
    }
}

/// Errors from [`parse_dimacs`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text (`c` comments, one `p cnf V C` header, clauses
/// terminated by `0`, possibly spanning lines).
///
/// # Errors
/// Returns a located [`DimacsError`] on malformed input.
pub fn parse_dimacs(src: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::default();
    let mut saw_header = false;
    let mut current: Vec<Lit> = Vec::new();
    for (ix, raw) in src.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            if saw_header {
                return Err(DimacsError {
                    line: lineno,
                    message: "duplicate header".into(),
                });
            }
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 || toks[0] != "cnf" {
                return Err(DimacsError {
                    line: lineno,
                    message: "expected `p cnf <vars> <clauses>`".into(),
                });
            }
            cnf.num_vars = toks[1].parse().map_err(|_| DimacsError {
                line: lineno,
                message: "bad variable count".into(),
            })?;
            saw_header = true;
            continue;
        }
        if !saw_header {
            return Err(DimacsError {
                line: lineno,
                message: "clause before header".into(),
            });
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError {
                line: lineno,
                message: format!("bad literal `{tok}`"),
            })?;
            if v == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                let var = v.unsigned_abs() as usize - 1;
                if var >= cnf.num_vars {
                    return Err(DimacsError {
                        line: lineno,
                        message: format!("literal {v} exceeds declared variables"),
                    });
                }
                current.push(Lit::new(Var(var as u32), v > 0));
            }
        }
    }
    if !current.is_empty() {
        cnf.clauses.push(current);
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_solve_round_trip() {
        let src = "c a comment\np cnf 3 3\n1 2 0\n-1 3 0\n-2 -3 0\n";
        let cnf = parse_dimacs(src).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 3);
        let mut s = cnf.to_solver();
        assert!(s.solve().is_sat());
        // Round trip parses to the same formula.
        let again = parse_dimacs(&cnf.to_dimacs()).unwrap();
        assert_eq!(again, cnf);
    }

    #[test]
    fn unsat_instance() {
        let src = "p cnf 1 2\n1 0\n-1 0\n";
        let mut s = parse_dimacs(src).unwrap().to_solver();
        assert!(s.solve().is_unsat());
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(parse_dimacs("1 2 0\n").unwrap_err().line, 1);
        assert_eq!(parse_dimacs("p cnf 1 1\n5 0\n").unwrap_err().line, 2);
        assert!(parse_dimacs("p cnf x 1\n").is_err());
    }

    #[test]
    fn multiline_clauses() {
        let src = "p cnf 4 1\n1 2\n3 4 0\n";
        let cnf = parse_dimacs(src).unwrap();
        assert_eq!(cnf.clauses[0].len(), 4);
    }
}
