//! Robustness paths of the CDCL loop under wall-clock deadlines and the
//! shared conflict pool — the PR-4 supervision knobs, exercised the way
//! the fault-tolerant runtime uses them: a *future* deadline that fires
//! while the solver is deep inside an exponentially hard instance, and a
//! global cap that must bound overshoot to one poll interval.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sat::{BudgetPool, CancelToken, Lit, SolveResult, Solver, StopCause, Var};

/// The solver polls its stop knobs every this many conflicts (kept in
/// sync with `STOP_CHECK_INTERVAL` in `solver.rs`; the overshoot
/// assertions below fail if the interval grows past it).
const POLL_INTERVAL: u64 = 128;

/// Pigeonhole `pigeons` into `holes`: UNSAT for `pigeons > holes`, with
/// exponential resolution size — reliably long-running for a CDCL solver
/// at 11 into 10, which is what makes it a good deadline target.
fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
    let mut p = vec![vec![Var(0); holes]; pigeons];
    for row in p.iter_mut() {
        for slot in row.iter_mut() {
            *slot = s.new_var();
        }
    }
    for row in &p {
        let lits: Vec<Lit> = row.iter().copied().map(Lit::pos).collect();
        s.add_clause(&lits);
    }
    for j in 0..holes {
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                s.add_clause(&[Lit::neg(row1[j]), Lit::neg(row2[j])]);
            }
        }
    }
}

/// A monotonic deadline set in the *future* must be honored from inside
/// the search loop: the token is verifiably unfired when `solve` is
/// entered, the instance is far too hard to finish in the budget, and
/// the solver must come back `Unknown`/`Deadline` without burning more
/// than a small multiple of the budget.
#[test]
fn future_deadline_expires_mid_solve() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 11, 10);
    let budget = Duration::from_millis(40);
    let token = Arc::new(CancelToken::deadline_in(budget));
    assert!(
        token.fired().is_none(),
        "the deadline must still be in the future at solve entry"
    );
    s.set_cancel_token(Some(Arc::clone(&token)));
    let t0 = Instant::now();
    let r = s.solve();
    let elapsed = t0.elapsed();
    assert_eq!(r, SolveResult::Unknown);
    assert_eq!(s.last_stop(), Some(StopCause::Deadline));
    assert!(token.fired().is_some(), "the token itself reports expiry");
    assert!(
        s.stats().conflicts >= POLL_INTERVAL,
        "expiry happened mid-search, not at entry ({} conflicts)",
        s.stats().conflicts
    );
    // Generous ceiling: stopping is prompt (poll interval granularity),
    // not "whenever the instance happens to finish".
    assert!(
        elapsed < budget + Duration::from_secs(10),
        "solver ran {elapsed:?} against a {budget:?} deadline"
    );
    // Detaching the token must fully restore the solver: the formula's
    // status is unchanged and the stop cause clears.
    s.set_cancel_token(None);
    s.set_conflict_budget(Some(50_000));
    let _ = s.solve();
    assert_ne!(s.last_stop(), Some(StopCause::Deadline));
}

/// The shared pool's cap is enforced *inside* the CDCL loop: on a hard
/// instance the solver stops with `PoolCap` having overshot the cap by
/// at most one poll interval of conflicts.
#[test]
fn pool_cap_is_honored_inside_the_cdcl_loop() {
    let cap = 300u64;
    let mut s = Solver::new();
    pigeonhole(&mut s, 9, 8);
    let pool = Arc::new(BudgetPool::new(Some(cap)));
    s.set_pool_watch(Some(Arc::clone(&pool)));
    assert_eq!(s.solve(), SolveResult::Unknown);
    assert_eq!(s.last_stop(), Some(StopCause::PoolCap));
    let spent = s.stats().conflicts;
    assert!(
        spent <= cap + POLL_INTERVAL,
        "{spent} conflicts spent against a {cap}-conflict pool cap"
    );
    // The solver only *watches* the pool; its caller owns the charge.
    // Once charged, a sibling solver sharing the pool must refuse to do
    // any meaningful work on its own query.
    pool.charge(spent, s.stats().propagations);
    assert!(pool.exhausted());
    let mut sibling = Solver::new();
    pigeonhole(&mut sibling, 9, 8);
    sibling.set_pool_watch(Some(Arc::clone(&pool)));
    assert_eq!(sibling.solve(), SolveResult::Unknown);
    assert_eq!(sibling.last_stop(), Some(StopCause::PoolCap));
    assert!(
        sibling.stats().conflicts <= POLL_INTERVAL,
        "an exhausted pool must stop a sibling within one poll interval \
         ({} conflicts)",
        sibling.stats().conflicts
    );
}

/// An uncapped pool (`cap: None`) observes but never stops: the solver
/// must run the instance to its real verdict.
#[test]
fn uncapped_pool_never_stops_the_solver() {
    let mut s = Solver::new();
    pigeonhole(&mut s, 6, 5);
    let pool = Arc::new(BudgetPool::new(None));
    s.set_pool_watch(Some(Arc::clone(&pool)));
    assert!(s.solve().is_unsat());
    assert_eq!(s.last_stop(), None);
    assert!(!pool.exhausted());
}
