//! Regression corpus: every DIMACS file under `tests/corpus/` encodes its
//! brute-force-verified status in its filename (`*-sat.cnf` /
//! `*-unsat.cnf`). The solver must reproduce that status under every
//! heuristic knob combination, and every Sat verdict must come with a
//! model that satisfies the formula.

use sat::{dimacs, SolveResult, Solver, SolverConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn corpus_files() -> Vec<(PathBuf, bool)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir exists") {
        let path = entry.expect("readable entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        let expect_sat = if name.ends_with("-sat.cnf") {
            true
        } else if name.ends_with("-unsat.cnf") {
            false
        } else {
            panic!("corpus file `{name}` must end in -sat.cnf or -unsat.cnf");
        };
        out.push((path, expect_sat));
    }
    out.sort();
    assert!(out.len() >= 8, "corpus unexpectedly small: {}", out.len());
    assert!(
        out.iter().any(|(_, s)| *s) && out.iter().any(|(_, s)| !*s),
        "corpus must mix sat and unsat instances"
    );
    out
}

#[test]
fn corpus_verdicts_match_filenames_under_every_config() {
    for (path, expect_sat) in corpus_files() {
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let cnf = dimacs::parse_dimacs(&text).expect("corpus file parses");
        for cfg in SolverConfig::all_combinations() {
            let mut s = Solver::with_config(cfg);
            let vars: Vec<_> = (0..cnf.num_vars).map(|_| s.new_var()).collect();
            for c in &cnf.clauses {
                s.add_clause(c);
            }
            let r = s.solve();
            let expected = if expect_sat {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            };
            assert_eq!(r, expected, "{} under {}", path.display(), cfg.label());
            if r.is_sat() {
                let ok = cnf.clauses.iter().all(|c| {
                    c.iter()
                        .any(|l| s.value(l.var()).is_some_and(|v| v == l.is_pos()))
                });
                assert!(
                    ok,
                    "{} under {}: model does not satisfy the formula",
                    path.display(),
                    cfg.label()
                );
                // Models must cover every variable of the file.
                assert!(vars.iter().all(|&v| s.value(v).is_some()));
            }
        }
    }
}

#[test]
fn corpus_solves_incrementally_on_one_solver() {
    // Re-querying one solver with per-file activation literals exercises
    // the incremental path (inprocessing between queries included).
    let files = corpus_files();
    let mut s = Solver::new();
    let mut acts = Vec::new();
    let mut base = 0u32;
    let mut sizes = Vec::new();
    for (path, expect_sat) in &files {
        let text = std::fs::read_to_string(path).expect("corpus file reads");
        let cnf = dimacs::parse_dimacs(&text).expect("corpus file parses");
        for _ in 0..cnf.num_vars {
            s.new_var();
        }
        let act = s.new_var();
        for c in &cnf.clauses {
            let mut lits: Vec<sat::Lit> = vec![sat::Lit::neg(act)];
            lits.extend(c.iter().map(|l| {
                let v = sat::Var(l.var().0 + base);
                sat::Lit::new(v, l.is_pos())
            }));
            s.add_clause(&lits);
        }
        acts.push((sat::Lit::pos(act), *expect_sat));
        sizes.push(cnf.num_vars as u32);
        base += cnf.num_vars as u32 + 1;
    }
    // Two rounds so round 2 runs against a learnt-clause database and
    // whatever inprocessing did to it after round 1.
    for round in 0..2 {
        for (i, &(act, expect_sat)) in acts.iter().enumerate() {
            let r = s.solve_assuming(&[act]);
            assert_eq!(
                r.is_sat(),
                expect_sat,
                "round {round}, file {} ({})",
                i,
                files[i].0.display()
            );
        }
    }
}
