//! Property-based cross-check: the CDCL solver must agree with brute-force
//! enumeration on small random formulas, and every SAT model must satisfy
//! all clauses. (Hand-rolled random cases via `prng`; the container has no
//! crates.io access for `proptest`.)

use prng::Rng;
use sat::{Lit, SolveResult, Solver, Var};

const MAX_VARS: u32 = 10;

/// A random formula: 1..40 clauses of 1..4 literals over `MAX_VARS` vars.
fn random_formula(rng: &mut Rng) -> Vec<Vec<(u32, bool)>> {
    let num_clauses = rng.range(1, 40) as usize;
    (0..num_clauses)
        .map(|_| {
            let len = rng.range(1, 4) as usize;
            (0..len)
                .map(|_| (rng.range(0, MAX_VARS as u64) as u32, rng.flip()))
                .collect()
        })
        .collect()
}

fn brute_force_sat(formula: &[Vec<(u32, bool)>]) -> bool {
    for assignment in 0u32..(1 << MAX_VARS) {
        let ok = formula.iter().all(|clause| {
            clause
                .iter()
                .any(|&(v, positive)| ((assignment >> v) & 1 == 1) == positive)
        });
        if ok {
            return true;
        }
    }
    false
}

fn load(s: &mut Solver, vars: &[Var], formula: &[Vec<(u32, bool)>]) {
    for clause in formula {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, positive)| Lit::new(vars[v as usize], positive))
            .collect();
        s.add_clause(&lits);
    }
}

#[test]
fn solver_agrees_with_brute_force() {
    prng::for_each_case("solver_agrees_with_brute_force", 0xb51f, 128, |rng| {
        let formula = random_formula(rng);
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..MAX_VARS).map(|_| s.new_var()).collect();
        load(&mut s, &vars, &formula);
        let expected = brute_force_sat(&formula);
        let got = s.solve();
        assert_ne!(got, SolveResult::Unknown);
        assert_eq!(got.is_sat(), expected);
        if got.is_sat() {
            for clause in &formula {
                let satisfied = clause
                    .iter()
                    .any(|&(v, positive)| s.value(vars[v as usize]).unwrap_or(false) == positive);
                assert!(satisfied, "returned model violates a clause");
            }
        }
    });
}

#[test]
fn assumptions_match_added_units() {
    // solve_assuming([l]) must agree with adding the unit clause [l].
    prng::for_each_case("assumptions_match_added_units", 0xa55e, 128, |rng| {
        let formula = random_formula(rng);
        let forced = rng.range(0, MAX_VARS as u64) as usize;
        let polarity = rng.flip();
        let build = |with_unit: bool| -> (Solver, Vec<Var>) {
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..MAX_VARS).map(|_| s.new_var()).collect();
            load(&mut s, &vars, &formula);
            if with_unit {
                s.add_clause(&[Lit::new(vars[forced], polarity)]);
            }
            (s, vars)
        };
        let (mut with_unit, _) = build(true);
        let (mut with_assumption, vars) = build(false);
        let a = with_assumption.solve_assuming(&[Lit::new(vars[forced], polarity)]);
        let u = with_unit.solve();
        assert_eq!(a.is_sat(), u.is_sat());
    });
}
