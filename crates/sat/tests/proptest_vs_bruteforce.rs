//! Property-based cross-check: the CDCL solver must agree with brute-force
//! enumeration on small random formulas, and every SAT model must satisfy
//! all clauses.

use proptest::prelude::*;
use sat::{Lit, SolveResult, Solver, Var};

const MAX_VARS: u32 = 10;

fn clause_strategy() -> impl Strategy<Value = Vec<(u32, bool)>> {
    prop::collection::vec((0..MAX_VARS, any::<bool>()), 1..4)
}

fn formula_strategy() -> impl Strategy<Value = Vec<Vec<(u32, bool)>>> {
    prop::collection::vec(clause_strategy(), 1..40)
}

fn brute_force_sat(formula: &[Vec<(u32, bool)>]) -> bool {
    for assignment in 0u32..(1 << MAX_VARS) {
        let ok = formula.iter().all(|clause| {
            clause
                .iter()
                .any(|&(v, positive)| ((assignment >> v) & 1 == 1) == positive)
        });
        if ok {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn solver_agrees_with_brute_force(formula in formula_strategy()) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..MAX_VARS).map(|_| s.new_var()).collect();
        for clause in &formula {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&(v, positive)| Lit::new(vars[v as usize], positive))
                .collect();
            s.add_clause(&lits);
        }
        let expected = brute_force_sat(&formula);
        let got = s.solve();
        prop_assert_ne!(got, SolveResult::Unknown);
        prop_assert_eq!(got.is_sat(), expected);
        if got.is_sat() {
            for clause in &formula {
                let satisfied = clause.iter().any(|&(v, positive)| {
                    s.value(vars[v as usize]).unwrap_or(false) == positive
                });
                prop_assert!(satisfied, "returned model violates a clause");
            }
        }
    }

    #[test]
    fn assumptions_match_added_units(formula in formula_strategy(), forced in 0..MAX_VARS, polarity in any::<bool>()) {
        // solve_assuming([l]) must agree with adding the unit clause [l].
        let build = |with_unit: bool| -> (Solver, Vec<Var>) {
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..MAX_VARS).map(|_| s.new_var()).collect();
            for clause in &formula {
                let lits: Vec<Lit> = clause
                    .iter()
                    .map(|&(v, positive)| Lit::new(vars[v as usize], positive))
                    .collect();
                s.add_clause(&lits);
            }
            if with_unit {
                s.add_clause(&[Lit::new(vars[forced as usize], polarity)]);
            }
            (s, vars)
        };
        let (mut with_unit, _) = build(true);
        let (mut with_assumption, vars) = build(false);
        let a = with_assumption
            .solve_assuming(&[Lit::new(vars[forced as usize], polarity)]);
        let u = with_unit.solve();
        prop_assert_eq!(a.is_sat(), u.is_sat());
    }
}
