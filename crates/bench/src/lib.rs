//! Shared harness utilities for the experiment-regeneration binaries
//! (`src/bin/fig*.rs`, `table*.rs`, `perf.rs`) and the Criterion benches.
//!
//! Every binary regenerates one table or figure of the paper's evaluation;
//! see `DESIGN.md`'s experiment index and `EXPERIMENTS.md` for recorded
//! outputs. Scope is controlled by `SYNTHLC_SCOPE` = `quick` (default) or
//! `full`.

/// Re-export: the JSON reader/writer moved to its own crate (`jsonio`) so
/// lower layers (the `synthlc` journal) can use it without a dependency
/// cycle; existing `bench::json::Json` call sites keep working.
pub use jsonio as json;

use isa::Opcode;
use mupath::{ContextMode, SynthConfig};
use synthlc::{LeakConfig, LeakageReport, Operand, TxKind, TypedTransmitter};
use uarch::Design;

/// Experiment scope selected via the `SYNTHLC_SCOPE` environment variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    /// Small representative subsets (minutes).
    Quick,
    /// The full representative sweep (an hour-plus on one core).
    Full,
}

/// Reads the scope from the environment.
pub fn scope() -> Scope {
    match std::env::var("SYNTHLC_SCOPE").as_deref() {
        Ok("full") => Scope::Full,
        _ => Scope::Quick,
    }
}

/// The µPATH-synthesis configuration used by the figure binaries.
pub fn mupath_cfg(design: &Design, slots: Vec<usize>) -> SynthConfig {
    SynthConfig {
        slots,
        context: ContextMode::NoControlFlow,
        bound: design.max_latency.min(16) + 8,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    }
}

/// The SynthLC configuration for the Fig. 8 sweep at a given scope.
pub fn leak_cfg(design: &Design, scope: Scope) -> (Vec<Opcode>, LeakConfig) {
    let (transponders, transmitters, max_sources) = match scope {
        Scope::Quick => (
            vec![Opcode::Div, Opcode::Lw, Opcode::Sw],
            vec![Opcode::Div, Opcode::Lw, Opcode::Sw],
            Some(3),
        ),
        Scope::Full => (
            vec![
                Opcode::Add,
                Opcode::Mul,
                Opcode::Div,
                Opcode::Lw,
                Opcode::Sw,
                Opcode::Beq,
                Opcode::Jal,
            ],
            vec![
                Opcode::Div,
                Opcode::Mul,
                Opcode::Lw,
                Opcode::Sw,
                Opcode::Beq,
                Opcode::Jalr,
            ],
            Some(3),
        ),
    };
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots: vec![0, 1],
            context: ContextMode::NoControlFlow,
            bound: 24,
            conflict_budget: Some(2_000_000),
            max_shapes: 64,
        },
        transmitters,
        kinds: vec![
            TxKind::Intrinsic,
            TxKind::DynamicOlder,
            TxKind::DynamicYounger,
        ],
        bound: 22,
        conflict_budget: Some(1_000_000),
        threads: 0,
        budget_pool: None,
        slot_base: 0,
        max_sources,
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let _ = design;
    (transponders, cfg)
}

/// The instruction classes of Fig. 8's row/column grouping: every member
/// of a class shares its representative's datapath, so synthesized
/// signatures generalise to the class.
pub fn class_members(rep: Opcode) -> Vec<Opcode> {
    use Opcode::*;
    match rep {
        Add => vec![
            Add, Sub, And, Or, Xor, Sll, Srl, Slt, Sltu, Addi, Andi, Ori, Xori, Slti, Nop,
        ],
        Mul => vec![Mul, Mulh],
        Div => vec![Div, Divu, Rem, Remu],
        Lw => vec![Lw],
        Sw => vec![Sw],
        Beq => vec![Beq, Bne, Blt, Bge, Bltu, Bgeu],
        Jal => vec![Jal],
        Jalr => vec![Jalr],
        other => vec![other],
    }
}

/// Renders the Fig. 8-style transponder × transmitter matrix.
///
/// Coarse columns: transponder classes. Rows: (transmitter class, typing,
/// operand). Cells: `#` primary leakage, `s` secondary, `.` none.
pub fn render_fig8(report: &LeakageReport) -> String {
    let transponders: Vec<Opcode> = report.transponders.iter().copied().collect();
    // Row space: transmitters seen, by (opcode, kind, operand).
    let mut rows: Vec<TypedTransmitter> = report.transmitters.iter().copied().collect();
    rows.sort();
    let mut out = String::new();
    out.push_str(&format!("{:<18}", "transmitter \\ P"));
    for p in &transponders {
        out.push_str(&format!("{:>7}", p.to_string()));
    }
    out.push('\n');
    for t in rows {
        out.push_str(&format!(
            "{:<18}",
            format!("{}^{}.{}", t.opcode, t.kind, t.operand)
        ));
        for p in &transponders {
            let hit = report
                .signatures_of(*p)
                .iter()
                .any(|s| s.inputs.contains(&t));
            let primary = report
                .signatures_of(*p)
                .iter()
                .any(|s| s.inputs.contains(&t) && s.has_primary);
            let mark = if !hit {
                "."
            } else if primary {
                "#"
            } else {
                "s"
            };
            out.push_str(&format!("{mark:>7}"));
        }
        out.push('\n');
    }
    out.push_str("\nlegend: # leakage with a primary tag, s secondary only, . none\n");
    out
}

/// Renders a per-transponder signature list (Fig. 5 style).
pub fn render_signatures(report: &LeakageReport) -> String {
    let mut out = String::new();
    for s in &report.signatures {
        out.push_str(&format!("{}\n", s.render()));
    }
    out
}

/// Summarises unsafe operands per transmitter class (CT-contract style),
/// expanding representatives to their classes.
pub fn render_ct_expanded(report: &LeakageReport) -> String {
    let mut out = String::new();
    let mut seen = std::collections::BTreeMap::<Opcode, std::collections::BTreeSet<Operand>>::new();
    for t in &report.transmitters {
        for member in class_members(t.opcode) {
            seen.entry(member).or_default().insert(t.operand);
        }
    }
    for (op, operands) in seen {
        let list: Vec<String> = operands.iter().map(|o| o.to_string()).collect();
        out.push_str(&format!("{op}: unsafe({})\n", list.join(", ")));
    }
    out
}
