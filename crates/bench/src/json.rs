//! A minimal hand-rolled JSON writer for the machine-readable benchmark
//! reports (`BENCH_perf.json`). The container has no serde; this covers the
//! small fixed schemas the perf pipeline emits: objects keep insertion
//! order so reports diff cleanly across runs.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Finite floats only; non-finite values render as `null`.
    Num(f64),
    Int(u64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) if x.is_finite() => out.push_str(&format!("{x}")),
            Json::Num(_) => out.push_str("null"),
            Json::Int(n) => out.push_str(&format!("{n}")),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, depth, '[', ']', items.iter(), |out, depth, v| {
                v.write(out, depth);
            }),
            Json::Obj(fields) => {
                write_seq(out, depth, '{', '}', fields.iter(), |out, depth, (k, v)| {
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth);
                });
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq<T>(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    mut each: impl FnMut(&mut String, usize, T),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        out.push('\n');
        out.push_str(&"  ".repeat(depth + 1));
        each(out, depth + 1, item);
        if i + 1 < n {
            out.push(',');
        }
    }
    out.push('\n');
    out.push_str(&"  ".repeat(depth));
    out.push(close);
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn scalars_render_flat() {
        assert_eq!(Json::Null.render(), "null\n");
        assert_eq!(Json::Bool(true).render(), "true\n");
        assert_eq!(Json::Int(42).render(), "42\n");
        assert_eq!(Json::Num(1.5).render(), "1.5\n");
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn containers_indent_and_keep_order() {
        let v = Json::Obj(vec![
            ("z".into(), Json::Int(1)),
            ("a".into(), Json::Arr(vec![Json::Int(2), Json::Int(3)])),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        assert_eq!(
            v.render(),
            "{\n  \"z\": 1,\n  \"a\": [\n    2,\n    3\n  ],\n  \"empty\": []\n}\n"
        );
    }
}
