//! E-F6: Fig. 6 — the end-to-end RTL2MµPATH + SynthLC flow, stage by
//! stage, on DIV (the artifact's walkthrough instruction, Appendix
//! §I-F3/§I-G3).

use mupath::{dom_excl_relations, duv_pl_reachability, synthesize_instr, ContextMode, SynthConfig};
use synthlc::{synthesize_leakage, LeakConfig, TxKind};
use uarch::{build_core, CoreConfig};

fn main() {
    println!("== Fig. 6: the synthesis flow on DIV ==\n");
    let design = build_core(&CoreConfig::default());
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };

    // Step 1: DUV PL reachability (§V-B1).
    let duv = duv_pl_reachability(&design, &cfg);
    let reachable: Vec<&str> = duv
        .pls
        .ids()
        .filter(|pl| duv.reachable[pl.index()])
        .map(|pl| duv.pls.name(pl))
        .collect();
    println!(
        "[1] DUV PLs: {}/{} reachable: {:?}",
        reachable.len(),
        duv.pls.len(),
        reachable
    );

    // Step 2-3: dominates/exclusive relations for the IUV (§V-B3).
    let (dom, excl, st) = dom_excl_relations(&design, isa::Opcode::Div, &cfg);
    println!(
        "[2] dominates: {} pairs, exclusive: {} pairs ({} properties)",
        dom.len(),
        excl.len(),
        st.properties
    );

    // Step 4-5: µPATH shapes, edges, decisions.
    let r = synthesize_instr(&design, isa::Opcode::Div, &cfg);
    println!(
        "[3] DIV µPATHs: {} shapes (complete: {}), {} PL-level decisions, \
         {} class-level decisions",
        r.paths.len(),
        r.complete,
        r.decisions.len(),
        r.class_decisions.len()
    );
    for p in &r.paths {
        println!("    edges: {} HB edges in shape", p.edges.len());
    }

    // SynthLC: symbolic IFT and signatures.
    let leak_cfg = LeakConfig {
        mupath: cfg,
        transmitters: vec![isa::Opcode::Div],
        kinds: vec![TxKind::Intrinsic],
        bound: 18,
        conflict_budget: Some(2_000_000),
        threads: 0,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let report = synthesize_leakage(&design, &[isa::Opcode::Div], &leak_cfg);
    println!("[4] leakage signatures:");
    for s in &report.signatures {
        println!("    {}", s.render());
    }
    println!(
        "[5] stats: mupath {} props, ift {} props",
        report.mupath_stats.properties, report.ift_stats.properties
    );
}
