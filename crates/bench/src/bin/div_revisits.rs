//! E-DIV: §V-B6 — the divider's occupancy-run-length enumeration (the
//! paper reports 1..66 cycles for CVA6's serial divider; MiniCva6's
//! early-terminating divider spans 1..5 by design).

use mupath::{enumerate_revisit_counts, ContextMode, SynthConfig};
use uarch::{build_core, CoreConfig, DivPolicy};

fn main() {
    println!("== §V-B6: DIV revisit cycle counts ==\n");
    let design = build_core(&CoreConfig::default());
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let counts = enumerate_revisit_counts(&design, isa::Opcode::Div, "divU", &cfg);
    println!("early-terminating divider divU occupancy: {counts:?} (expect 1..=5)");
    let counts = enumerate_revisit_counts(&design, isa::Opcode::Mul, "mulU", &cfg);
    println!("fixed multiplier mulU occupancy: {counts:?} (expect exactly one value)");
    let hardened = build_core(&CoreConfig {
        div: DivPolicy::Fixed(5),
        ..CoreConfig::hardened()
    });
    let counts = enumerate_revisit_counts(&hardened, isa::Opcode::Div, "divU", &cfg);
    println!("hardened divider divU occupancy: {counts:?} (expect exactly one value)");
}
