//! E-T1: Table I — deriving all six leakage contracts (CT, MI6, OISA,
//! STT/SDO/SPT, Dolma) from synthesized µPATHs and leakage signatures.

use bench::{leak_cfg, scope};
use synthlc::{contracts, synthesize_leakage};
use uarch::{build_core, CoreConfig};

fn main() {
    let scope = scope();
    println!("== Table I: leakage contracts derived from signatures (scope {scope:?}) ==\n");
    let design = build_core(&CoreConfig::default());
    let (transponders, cfg) = leak_cfg(&design, scope);
    let report = synthesize_leakage(&design, &transponders, &cfg);
    let c = contracts::derive_contracts(&report);
    println!("{}", contracts::render_table1(&c));
    println!("CT contract:\n{}", c.ct.render());
    println!(
        "STT explicit channels: {:?}",
        c.stt
            .explicit_channels
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "STT implicit channels: {:?}",
        c.stt
            .implicit_channels
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
    );
    println!("STT implicit branches: {:?}", c.stt.implicit_branches);
    println!(
        "MI6 dynamic channels:  {:?}",
        c.mi6
            .dynamic_channels
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "MI6 static channels:   {:?}",
        c.mi6
            .static_channels
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
    );
    println!("OISA units:            {:?}", c.oisa.input_dependent_units);
    println!("SDO variant basis:     {:?}", c.sdo.variant_basis);
    println!(
        "Dolma variable-time:   {:?}",
        c.dolma.variable_time_micro_ops
    );
    println!("Dolma inducive:        {:?}", c.dolma.inducive_micro_ops);
    println!("Dolma resolvent:       {:?}", c.dolma.resolvent_micro_ops);
}
