//! E-F2: Fig. 2 — ADD on the operand-packing core (CVA6-OP analogue):
//! packed (narrow operands, one decode cycle) vs non-packed (wide
//! operands, an extra decode cycle), and why cycle-accurate µHB graphs are
//! needed to distinguish them (§III-B).

use mupath::{synthesize_instr, ContextMode, HarnessConfig, SynthConfig};
use uarch::{build_core, CoreConfig};

fn main() {
    println!("== Fig. 2: ADD on MiniCva6-OP (operand packing) ==\n");
    let design = build_core(&CoreConfig::cva6_op());
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 16,
        conflict_budget: Some(2_000_000),
        max_shapes: 16,
    };
    let r = synthesize_instr(&design, isa::Opcode::Add, &cfg);
    let h = mupath::build_harness(
        &design,
        &HarnessConfig {
            opcode: isa::Opcode::Add,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    for (i, p) in r.concrete.iter().enumerate() {
        println!("µPATH {i} (latency {}):\n{}", p.latency(), p.render(&h.pls));
    }
    // The §III-A point: both paths have the SAME PL set — only the
    // cycle-accurate revisit information distinguishes them (Fig. 2a vs
    // 2b/2c).
    if r.paths.len() >= 2 {
        let same_set = r.paths[0].same_pl_set(&r.paths[1]);
        println!(
            "same PL set: {same_set} -> a non-cycle-accurate µHB graph (Fig. 2a) \
             conflates these executions; the revisit-aware formalism does not"
        );
    }
    for d in &r.decisions {
        println!("decision: {}", d.describe(&h.pls));
    }
}
