//! E-F4: Fig. 4 — a sampling of synthesized µPATHs: BEQ (taken/fall-through)
//! and LW (stall vs finish) on the core; SW (hit vs miss bank access) on
//! the cache DUV.

use mupath::{synthesize_instr, ContextMode, HarnessConfig, SynthConfig};
use uarch::{build_core, CoreConfig};

fn show(design: &uarch::Design, op: isa::Opcode, cfg: &SynthConfig, label: &str) {
    let r = synthesize_instr(design, op, cfg);
    let h = mupath::build_harness(
        design,
        &HarnessConfig {
            opcode: op,
            fetch_slot: cfg.slots[0],
            context: cfg.context,
        },
    );
    println!("-- {label}: {} µPATH(s) --", r.paths.len());
    for (i, p) in r.concrete.iter().enumerate().take(4) {
        println!("µPATH {i} (latency {}):\n{}", p.latency(), p.render(&h.pls));
    }
    for d in r.class_decisions.iter().take(6) {
        println!("class decision at pl{}", d.src.0);
    }
    println!();
}

fn main() {
    println!("== Fig. 4: sampled µPATHs (core BEQ/LW, cache SW) ==\n");
    let core = build_core(&CoreConfig::default());
    let solo = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 16,
        conflict_budget: Some(2_000_000),
        max_shapes: 16,
    };
    show(
        &core,
        isa::Opcode::Beq,
        &solo,
        "Fig. 4a analogue: BEQ on MiniCva6",
    );
    let ctx = SynthConfig {
        slots: vec![1],
        context: ContextMode::NoControlFlow,
        bound: 22,
        conflict_budget: Some(2_000_000),
        max_shapes: 32,
    };
    show(
        &core,
        isa::Opcode::Lw,
        &ctx,
        "Fig. 4b analogue: LW on MiniCva6 (older store context)",
    );
    let cache = uarch::cache::build_cache();
    let cache_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 32,
    };
    show(
        &cache,
        isa::Opcode::Sw,
        &cache_cfg,
        "Fig. 4c analogue: ST on MiniCache",
    );
}
