//! E-BUG: §VII-B2 — surfacing a seeded functional bug (JALR fails to
//! squash the fetch stage) through behavioural divergence from the golden
//! model, the same evidence class RTL2MµPATH's waveforms provided.

use sim::Simulator;
use uarch::{build_core, CoreConfig};

fn run(cfg: &CoreConfig, program: &[isa::Instr], cycles: usize) -> (u64, u64, u64) {
    let design = build_core(cfg);
    let mut s = Simulator::new(&design.netlist);
    for _ in 0..cycles {
        let pc = s.value(design.pc) as usize;
        let word = program
            .get(pc)
            .copied()
            .unwrap_or_else(isa::Instr::nop)
            .encode();
        s.set_input(design.fetch_instr_input, word as u64);
        s.set_input(design.fetch_valid_input, 1);
        s.step();
    }
    (s.value_of("arf1"), s.value_of("arf2"), s.value_of("arf3"))
}

fn main() {
    println!("== §VII-B2: seeded-bug surfacing ==\n");
    let program = isa::assemble(
        "addi r1, r0, 3\n\
         jalr r2, r1, 0\n\
         addi r3, r0, 15\n\
         addi r1, r1, 1\n",
    )
    .unwrap();
    let mut golden = isa::ArchState::new();
    golden.run(&program, 10);
    println!(
        "golden model:  r1={} r2={} r3={}",
        golden.regs[1], golden.regs[2], golden.regs[3]
    );
    let (r1, r2, r3) = run(&CoreConfig::default(), &program, 40);
    println!("correct core:  r1={r1} r2={r2} r3={r3}");
    let (b1, b2, b3) = run(
        &CoreConfig {
            bug_jalr_no_squash: true,
            ..CoreConfig::default()
        },
        &program,
        40,
    );
    println!("buggy core:    r1={b1} r2={b2} r3={b3}");
    println!(
        "\nthe buggy core executes the JALR target twice (r1 = {b1}, expected {}):\n\
         the un-squashed fetch-stage copy commits alongside the redirected \
         refetch — the double-execution class of control-flow bug the paper's \
         JAL/JALR alignment findings belong to.",
        golden.regs[1]
    );
}
