//! E-P3: §VII-B3 property-evaluation performance, plus the parallel-engine
//! perf report.
//!
//! Each stage runs twice — once on the sequential engine (`--jobs 1`) and
//! once on the parallel property-evaluation engine — asserts the results
//! are bit-identical, and reports the speedup. A machine-readable report
//! (per-stage timings, shared budget-pool totals) is written to
//! `BENCH_perf.json`.
//!
//! ```text
//! perf [--jobs N] [--out PATH] [stage-filter]
//! ```
//!
//! `--jobs` defaults to the `SYNTHLC_THREADS`/available-parallelism worker
//! count (at least 4, to exercise the engine on small machines). Scope is
//! controlled by `SYNTHLC_SCOPE` = `quick` (default) or `full`.

use bench::json::Json;
use bench::{leak_cfg, scope, Scope};
use mupath::{synthesize_isa_with, ContextMode, EngineOptions, IsaSynthesis, SynthConfig};
use sat::BudgetPool;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use synthlc::{synthesize_leakage, LeakageReport};
use uarch::{build_core, CoreConfig};

/// One engine run: deterministic result fingerprint plus cost accounting.
struct RunOutcome {
    fingerprint: String,
    seconds: f64,
    properties: u64,
    undetermined: u64,
    conflicts: u64,
    propagations: u64,
}

struct StageResult {
    name: &'static str,
    seq: RunOutcome,
    par: RunOutcome,
}

impl StageResult {
    fn matches(&self) -> bool {
        self.seq.fingerprint == self.par.fingerprint
    }
    fn speedup(&self) -> f64 {
        self.seq.seconds / self.par.seconds.max(1e-9)
    }
}

/// Everything scheduling-independent about a whole-ISA synthesis: shapes,
/// witnesses, decisions, and outcome counts — wall times excluded.
fn isa_fingerprint(r: &IsaSynthesis) -> String {
    let mut out = String::new();
    for i in &r.instrs {
        writeln!(
            out,
            "{} complete={} paths={:?} concrete={:?} decisions={:?} classes={:?}",
            i.opcode, i.complete, i.paths, i.concrete, i.decisions, i.class_decisions
        )
        .unwrap();
        writeln!(
            out,
            "  stats p={} r={} u={} ud={}",
            i.stats.properties, i.stats.reachable, i.stats.unreachable, i.stats.undetermined
        )
        .unwrap();
    }
    out
}

/// Scheduling-independent view of a leakage report: the µPATH phase plus
/// signatures, transponder/transmitter sets, and outcome counts.
fn leak_fingerprint(r: &LeakageReport) -> String {
    let mut out = String::new();
    writeln!(out, "design={}", r.design).unwrap();
    for i in &r.mupath {
        writeln!(
            out,
            "{} complete={} paths={:?} decisions={:?}",
            i.opcode, i.complete, i.paths, i.class_decisions
        )
        .unwrap();
    }
    for s in &r.signatures {
        writeln!(out, "sig {}", s.render()).unwrap();
    }
    writeln!(out, "candidates={:?}", r.candidate_transponders).unwrap();
    writeln!(out, "transponders={:?}", r.transponders).unwrap();
    writeln!(out, "transmitters={:?}", r.transmitters).unwrap();
    for (tag, s) in [("mupath", &r.mupath_stats), ("ift", &r.ift_stats)] {
        writeln!(
            out,
            "{tag} p={} r={} u={} ud={}",
            s.properties, s.reachable, s.unreachable, s.undetermined
        )
        .unwrap();
    }
    out
}

fn run_mupath(
    design: &uarch::Design,
    ops: &[isa::Opcode],
    cfg: &SynthConfig,
    threads: usize,
) -> RunOutcome {
    let pool = Arc::new(BudgetPool::new(None));
    let opts = EngineOptions {
        threads,
        budget_pool: Some(Arc::clone(&pool)),
    };
    let started = Instant::now();
    let r = synthesize_isa_with(design, ops, cfg, &opts);
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: isa_fingerprint(&r),
        properties: r.stats.properties,
        undetermined: r.stats.undetermined,
        conflicts: pool.conflicts(),
        propagations: pool.propagations(),
    }
}

fn run_leakage(
    design: &uarch::Design,
    transponders: &[isa::Opcode],
    cfg: &synthlc::LeakConfig,
    threads: usize,
) -> RunOutcome {
    let pool = Arc::new(BudgetPool::new(None));
    let mut cfg = cfg.clone();
    cfg.threads = threads;
    cfg.budget_pool = Some(Arc::clone(&pool));
    let started = Instant::now();
    let r = synthesize_leakage(design, transponders, &cfg);
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: leak_fingerprint(&r),
        properties: r.mupath_stats.properties + r.ift_stats.properties,
        undetermined: r.mupath_stats.undetermined + r.ift_stats.undetermined,
        conflicts: pool.conflicts(),
        propagations: pool.propagations(),
    }
}

fn run_outcome_json(r: &RunOutcome) -> Json {
    Json::Obj(vec![
        ("seconds".into(), Json::Num(r.seconds)),
        ("properties".into(), Json::Int(r.properties)),
        ("undetermined".into(), Json::Int(r.undetermined)),
        ("conflicts".into(), Json::Int(r.conflicts)),
        ("propagations".into(), Json::Int(r.propagations)),
    ])
}

fn report_json(jobs: usize, scope: Scope, stages: &[StageResult]) -> Json {
    let total_seq: f64 = stages.iter().map(|s| s.seq.seconds).sum();
    let total_par: f64 = stages.iter().map(|s| s.par.seconds).sum();
    Json::Obj(vec![
        ("schema".into(), Json::str("synthlc-perf-v1")),
        ("jobs".into(), Json::Int(jobs as u64)),
        (
            "scope".into(),
            Json::str(if scope == Scope::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        (
            "stages".into(),
            Json::Arr(
                stages
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(s.name)),
                            ("sequential".into(), run_outcome_json(&s.seq)),
                            ("parallel".into(), run_outcome_json(&s.par)),
                            ("speedup".into(), Json::Num(s.speedup())),
                            ("deterministic_match".into(), Json::Bool(s.matches())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_sequential_seconds".into(), Json::Num(total_seq)),
        ("total_parallel_seconds".into(), Json::Num(total_par)),
        (
            "overall_speedup".into(),
            Json::Num(total_seq / total_par.max(1e-9)),
        ),
    ])
}

fn main() {
    let mut jobs = mc::default_threads().max(4);
    let mut out_path = "BENCH_perf.json".to_owned();
    let mut filter = String::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--jobs needs a positive integer");
            }
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other if !other.starts_with('-') => filter = other.to_owned(),
            other => panic!("unknown option `{other}`"),
        }
    }
    let scope = scope();
    println!("== parallel property-evaluation engine: perf report ==");
    println!("jobs = {jobs}, scope = {scope:?}\n");

    let core = build_core(&CoreConfig::default());
    let cache = uarch::cache::build_cache();
    let core_ops: Vec<isa::Opcode> = match scope {
        Scope::Quick => vec![
            isa::Opcode::Add,
            isa::Opcode::Div,
            isa::Opcode::Lw,
            isa::Opcode::Sw,
        ],
        Scope::Full => vec![
            isa::Opcode::Add,
            isa::Opcode::Mul,
            isa::Opcode::Div,
            isa::Opcode::Lw,
            isa::Opcode::Sw,
            isa::Opcode::Beq,
            isa::Opcode::Jal,
        ],
    };
    let core_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::NoControlFlow,
        bound: 24,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let cache_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let (leak_ops, leak) = leak_cfg(&core, scope);

    let mut stages = Vec::new();
    let mut stage = |name: &'static str, run: &dyn Fn(usize) -> RunOutcome| {
        if !name.contains(filter.as_str()) {
            return;
        }
        println!("{name}: sequential ...");
        let seq = run(1);
        println!("{name}: parallel ({jobs} workers) ...");
        let par = run(jobs);
        let s = StageResult { name, seq, par };
        println!(
            "{name}: {:.2}s -> {:.2}s  ({:.2}x, {} properties, match = {})\n",
            s.seq.seconds,
            s.par.seconds,
            s.speedup(),
            s.par.properties,
            s.matches()
        );
        stages.push(s);
    };
    stage("mupath_core", &|threads| {
        run_mupath(&core, &core_ops, &core_cfg, threads)
    });
    stage("mupath_cache", &|threads| {
        run_mupath(
            &cache,
            &[isa::Opcode::Lw, isa::Opcode::Sw],
            &cache_cfg,
            threads,
        )
    });
    stage("leakage_core", &|threads| {
        run_leakage(&core, &leak_ops, &leak, threads)
    });

    let mismatches: Vec<&str> = stages
        .iter()
        .filter(|s| !s.matches())
        .map(|s| s.name)
        .collect();
    let report = report_json(jobs, scope, &stages);
    std::fs::write(&out_path, report.render()).expect("write perf report");

    let total_seq: f64 = stages.iter().map(|s| s.seq.seconds).sum();
    let total_par: f64 = stages.iter().map(|s| s.par.seconds).sum();
    println!(
        "overall: {total_seq:.2}s sequential, {total_par:.2}s with {jobs} workers \
         ({:.2}x); report -> {out_path}",
        total_seq / total_par.max(1e-9)
    );
    assert!(
        mismatches.is_empty(),
        "parallel results diverged from --jobs 1 in: {mismatches:?}"
    );
}
