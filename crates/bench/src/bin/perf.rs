//! E-P3: §VII-B3 property-evaluation performance, plus the parallel-engine
//! and static-reduction perf report.
//!
//! Each stage runs twice — once on the sequential engine (`--jobs 1`) with
//! the static reductions (cone-of-influence slicing, taint-reachability
//! pruning) disabled, and once on the parallel property-evaluation engine
//! with the reductions enabled — asserts the results are bit-identical
//! (proving both scheduling- and reduction-independence in one shot), and
//! reports the speedup plus the COI bit-blast ratio and the number of SAT
//! queries discharged statically. A machine-readable report is written to
//! `BENCH_perf.json` (schema `synthlc-perf-v6`), including the CDCL
//! core's learnt-database observability (tier sizes, deletions,
//! subsumption, LBD profile) and the incremental-solving reuse economy
//! (pooled contexts reused, unrolling frames extended in place vs.
//! rebuilt, learnt clauses carried across query batches) for every run.
//! After the report is written, every stage's parallel speedup is
//! asserted to stay at or above 1.0x (modulo timer noise): the pooled
//! engine's ticket sequencing must never make the parallel path slower
//! than `--jobs 1`, even on a single-core box.
//!
//! The `sat_micro` stage isolates the solver: pigeonhole formulas plus a
//! pre-unrolled BMC CNF (captured via the clause log, built outside the
//! timed region) are solved on fresh solvers, so solver-core changes show
//! up undiluted by synthesis overhead. Its two legs run the identical
//! single-threaded workload twice; `deterministic_match` then certifies
//! run-to-run byte-stability of verdicts and search statistics.
//!
//! ```text
//! perf [--jobs N] [--out PATH] [stage-filter]
//! ```
//!
//! `--jobs` defaults to the `SYNTHLC_THREADS`/available-parallelism worker
//! count (at least 4, to exercise the engine on small machines). Scope is
//! controlled by `SYNTHLC_SCOPE` = `quick` (default) or `full`.

use bench::json::Json;
use bench::{leak_cfg, scope, Scope};
use mupath::{synthesize_isa_with, ContextMode, EngineOptions, IsaSynthesis, SynthConfig};
use sat::BudgetPool;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use synthlc::{synthesize_leakage, LeakageReport};
use uarch::{build_core, CoreConfig};

/// One engine run: deterministic result fingerprint plus cost accounting.
struct RunOutcome {
    fingerprint: String,
    seconds: f64,
    properties: u64,
    undetermined: u64,
    conflicts: u64,
    propagations: u64,
    /// Signal bits in scope before / after cone-of-influence slicing,
    /// summed over all checker instances (equal when COI is off).
    coi_bits_before: u64,
    coi_bits_after: u64,
    /// SAT queries avoided by the static taint-reachability prune.
    discharged_static: u64,
    /// Jobs degraded to an undetermined stand-in (panic/fault/deadline);
    /// always 0 here — the perf pipeline runs with robustness off — but
    /// reported so the schema matches long-run CLI reports.
    degraded_jobs: u64,
    /// Jobs replayed from a checkpoint journal; always 0 here, as above.
    resumed_jobs: u64,
    /// Retry attempts spent re-running degraded jobs; always 0 here too
    /// (retries only fire when robustness knobs are on).
    retried_jobs: u64,
    /// Learnt-database observability of the CDCL core behind the run.
    solver: SolverObs,
}

/// Solver learnt-DB observability surfaced per run (schema v5). Gauges
/// (`learnt_live`, `binary_clauses`) are live end-of-run values summed
/// over checkers; the rest are lifetime counters. The reuse block counts
/// the incremental-solving economy: pooled contexts checked out again
/// instead of rebuilt, unrolling frames grown in place vs. built from
/// scratch, and learnt clauses alive at batch handoff.
#[derive(Clone, Copy, Default)]
struct SolverObs {
    learnt_live: u64,
    binary_clauses: u64,
    clauses_deleted: u64,
    subsumed: u64,
    strengthened: u64,
    lbd_sum: u64,
    lbd_count: u64,
    max_lbd: u32,
    trail_reuses: u64,
    reused_levels: u64,
    contexts_reused: u64,
    frames_extended: u64,
    frames_rebuilt: u64,
    learnts_carried: u64,
}

impl SolverObs {
    fn from_check(stats: &mc::CheckStats) -> Self {
        Self {
            learnt_live: stats.sat_learnt_live(),
            binary_clauses: stats.sat_binary_clauses,
            clauses_deleted: stats.sat_clauses_deleted,
            subsumed: stats.sat_subsumed,
            strengthened: stats.sat_strengthened,
            lbd_sum: stats.sat_lbd_sum,
            lbd_count: stats.sat_lbd_count,
            max_lbd: stats.sat_max_lbd,
            trail_reuses: stats.sat_trail_reuses,
            reused_levels: stats.sat_reused_levels,
            contexts_reused: stats.ctx_reused,
            frames_extended: stats.frames_extended,
            frames_rebuilt: stats.frames_rebuilt,
            learnts_carried: stats.learnts_carried,
        }
    }

    fn add(&mut self, st: &sat::SolverStats) {
        self.learnt_live += st.learnt_core + st.learnt_mid + st.learnt_local;
        self.binary_clauses += st.binary_clauses;
        self.clauses_deleted += st.clauses_deleted;
        self.subsumed += st.subsumed;
        self.strengthened += st.strengthened;
        self.lbd_sum += st.lbd_sum;
        self.lbd_count += st.lbd_count;
        self.max_lbd = self.max_lbd.max(st.max_lbd);
        self.trail_reuses += st.trail_reuses;
        self.reused_levels += st.reused_levels;
    }

    fn avg_lbd(&self) -> f64 {
        if self.lbd_count == 0 {
            0.0
        } else {
            self.lbd_sum as f64 / self.lbd_count as f64
        }
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("learnt_live".into(), Json::Int(self.learnt_live)),
            ("binary_clauses".into(), Json::Int(self.binary_clauses)),
            ("clauses_deleted".into(), Json::Int(self.clauses_deleted)),
            ("subsumed".into(), Json::Int(self.subsumed)),
            ("strengthened".into(), Json::Int(self.strengthened)),
            ("avg_lbd".into(), Json::Num(self.avg_lbd())),
            ("max_lbd".into(), Json::Int(self.max_lbd as u64)),
            ("trail_reuses".into(), Json::Int(self.trail_reuses)),
            ("reused_levels".into(), Json::Int(self.reused_levels)),
            ("contexts_reused".into(), Json::Int(self.contexts_reused)),
            ("frames_extended".into(), Json::Int(self.frames_extended)),
            ("frames_rebuilt".into(), Json::Int(self.frames_rebuilt)),
            ("learnts_carried".into(), Json::Int(self.learnts_carried)),
        ])
    }
}

struct StageResult {
    name: &'static str,
    seq: RunOutcome,
    par: RunOutcome,
}

impl StageResult {
    fn matches(&self) -> bool {
        self.seq.fingerprint == self.par.fingerprint
    }
    fn speedup(&self) -> f64 {
        self.seq.seconds / self.par.seconds.max(1e-9)
    }
    /// Fraction of signal bits kept by COI slicing in the reduced run
    /// (1.0 when no checker used a slice).
    fn coi_ratio(&self) -> f64 {
        if self.par.coi_bits_before == 0 {
            1.0
        } else {
            self.par.coi_bits_after as f64 / self.par.coi_bits_before as f64
        }
    }
}

/// Everything scheduling-independent about a whole-ISA synthesis: shapes,
/// witnesses, decisions, and outcome counts — wall times excluded.
fn isa_fingerprint(r: &IsaSynthesis) -> String {
    let mut out = String::new();
    for i in &r.instrs {
        writeln!(
            out,
            "{} complete={} paths={:?} concrete={:?} decisions={:?} classes={:?}",
            i.opcode, i.complete, i.paths, i.concrete, i.decisions, i.class_decisions
        )
        .unwrap();
        writeln!(
            out,
            "  stats p={} r={} u={} ud={}",
            i.stats.properties, i.stats.reachable, i.stats.unreachable, i.stats.undetermined
        )
        .unwrap();
    }
    out
}

/// Scheduling-independent view of a leakage report: the µPATH phase plus
/// signatures, transponder/transmitter sets, and outcome counts.
fn leak_fingerprint(r: &LeakageReport) -> String {
    let mut out = String::new();
    writeln!(out, "design={}", r.design).unwrap();
    for i in &r.mupath {
        writeln!(
            out,
            "{} complete={} paths={:?} decisions={:?}",
            i.opcode, i.complete, i.paths, i.class_decisions
        )
        .unwrap();
    }
    for s in &r.signatures {
        writeln!(out, "sig {}", s.render()).unwrap();
    }
    writeln!(out, "candidates={:?}", r.candidate_transponders).unwrap();
    writeln!(out, "transponders={:?}", r.transponders).unwrap();
    writeln!(out, "transmitters={:?}", r.transmitters).unwrap();
    for (tag, s) in [("mupath", &r.mupath_stats), ("ift", &r.ift_stats)] {
        writeln!(
            out,
            "{tag} p={} r={} u={} ud={}",
            s.properties, s.reachable, s.unreachable, s.undetermined
        )
        .unwrap();
    }
    out
}

fn run_mupath(
    design: &uarch::Design,
    ops: &[isa::Opcode],
    cfg: &SynthConfig,
    threads: usize,
) -> RunOutcome {
    let pool = Arc::new(BudgetPool::new(None));
    let opts = EngineOptions {
        threads,
        budget_pool: Some(Arc::clone(&pool)),
        robust: Default::default(),
    };
    let started = Instant::now();
    let r = synthesize_isa_with(design, ops, cfg, &opts);
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: isa_fingerprint(&r),
        properties: r.stats.properties,
        undetermined: r.stats.undetermined,
        conflicts: pool.conflicts(),
        propagations: pool.propagations(),
        coi_bits_before: r.stats.coi_bits_before,
        coi_bits_after: r.stats.coi_bits_after,
        discharged_static: r.stats.discharged_static,
        degraded_jobs: r.degraded_jobs,
        resumed_jobs: r.resumed_jobs,
        retried_jobs: r.retried_jobs,
        solver: SolverObs::from_check(&r.stats),
    }
}

fn run_leakage(
    design: &uarch::Design,
    transponders: &[isa::Opcode],
    cfg: &synthlc::LeakConfig,
    threads: usize,
    reductions: bool,
) -> RunOutcome {
    let pool = Arc::new(BudgetPool::new(None));
    let mut cfg = cfg.clone();
    cfg.threads = threads;
    cfg.budget_pool = Some(Arc::clone(&pool));
    cfg.coi = reductions;
    cfg.static_prune = reductions;
    let started = Instant::now();
    let r = synthesize_leakage(design, transponders, &cfg);
    let mut merged = r.mupath_stats;
    merged.absorb(&r.ift_stats);
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: leak_fingerprint(&r),
        properties: r.mupath_stats.properties + r.ift_stats.properties,
        undetermined: r.mupath_stats.undetermined + r.ift_stats.undetermined,
        conflicts: pool.conflicts(),
        propagations: pool.propagations(),
        coi_bits_before: r.mupath_stats.coi_bits_before + r.ift_stats.coi_bits_before,
        coi_bits_after: r.mupath_stats.coi_bits_after + r.ift_stats.coi_bits_after,
        discharged_static: r.mupath_stats.discharged_static + r.ift_stats.discharged_static,
        degraded_jobs: r.degraded_jobs,
        resumed_jobs: r.resumed_jobs,
        retried_jobs: r.retried_jobs,
        solver: SolverObs::from_check(&merged),
    }
}

/// One prepared CNF workload of the `sat_micro` stage, built outside the
/// timed region so the measurement sees only the solver.
struct SatMicro {
    name: String,
    num_vars: usize,
    clauses: Vec<Vec<sat::Lit>>,
    /// Activation literals, one incremental `solve_assuming` query each;
    /// empty means a single plain `solve`.
    queries: Vec<sat::Lit>,
}

/// The pigeonhole formula `PHP(pigeons, holes)` — the classic
/// exponential-resolution UNSAT family, all long clauses plus a dense
/// binary at-most-one layer (exactly the mix the tiered DB and the
/// binary fast path are built for).
fn php_instance(pigeons: usize, holes: usize) -> SatMicro {
    let v = |p: usize, h: usize| sat::Var((p * holes + h) as u32);
    let mut clauses: Vec<Vec<sat::Lit>> = Vec::new();
    for p in 0..pigeons {
        clauses.push((0..holes).map(|h| sat::Lit::pos(v(p, h))).collect());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(vec![sat::Lit::neg(v(p1, h)), sat::Lit::neg(v(p2, h))]);
            }
        }
    }
    SatMicro {
        name: format!("php-{pigeons}-{holes}"),
        num_vars: pigeons * holes,
        clauses,
        queries: Vec::new(),
    }
}

/// A pre-unrolled BMC CNF captured via the solver's clause log: the
/// design is unrolled to `bound` frames, and every 1-bit signal (up to
/// `max_queries`) gets a Checker-style activation literal implying "the
/// signal fires at some frame". The timed run replays the clause stream
/// into a fresh solver and issues one incremental query per activation —
/// the same workload shape as leakage synthesis, minus the synthesis.
fn unrolled_instance(design: &uarch::Design, bound: usize, max_queries: usize) -> SatMicro {
    let mut u = mc::Unrolling::new(&design.netlist, mc::InitMode::Reset);
    u.gate().solver().set_clause_log(true);
    u.extend_to(bound);
    let true_lit = u.gate().true_lit();
    let mut queries = Vec::new();
    let sigs: Vec<_> = design
        .netlist
        .iter()
        .filter(|(_, n)| n.width == 1)
        .map(|(id, _)| id)
        .take(max_queries)
        .collect();
    for sig in sigs {
        let act = u.gate().fresh();
        let mut clause = vec![!act];
        for t in 0..bound {
            clause.push(u.lit(t, sig));
        }
        u.gate().add_clause(&clause);
        queries.push(act);
    }
    // The gate builder's constant-true unit clause predates the log.
    let mut clauses: Vec<Vec<sat::Lit>> = vec![vec![true_lit]];
    clauses.extend(u.gate().solver_ref().logged_clauses().iter().cloned());
    SatMicro {
        name: format!("unrolled-{}-b{bound}", design.name),
        num_vars: u.gate().num_vars(),
        clauses,
        queries,
    }
}

/// Runs every prepared instance on a fresh solver and folds verdicts and
/// search statistics into the fingerprint — any run-to-run wobble in the
/// solver core breaks `deterministic_match`.
fn run_sat_micro(instances: &[SatMicro]) -> RunOutcome {
    let started = Instant::now();
    let mut fp = String::new();
    let mut properties = 0u64;
    let mut conflicts = 0u64;
    let mut propagations = 0u64;
    let mut obs = SolverObs::default();
    for inst in instances {
        let mut s = sat::Solver::new();
        for _ in 0..inst.num_vars {
            s.new_var();
        }
        for c in &inst.clauses {
            s.add_clause(c);
        }
        if inst.queries.is_empty() {
            let r = s.solve();
            properties += 1;
            writeln!(fp, "{} {}", inst.name, r.answer()).unwrap();
        } else {
            for (i, &act) in inst.queries.iter().enumerate() {
                let r = s.solve_assuming(&[act]);
                properties += 1;
                writeln!(fp, "{} q{i} {}", inst.name, r.answer()).unwrap();
            }
        }
        let st = s.stats();
        writeln!(
            fp,
            "{} conflicts={} propagations={} decisions={} restarts={} lbd={}/{}",
            inst.name,
            st.conflicts,
            st.propagations,
            st.decisions,
            st.restarts,
            st.lbd_sum,
            st.lbd_count
        )
        .unwrap();
        conflicts += st.conflicts;
        propagations += st.propagations;
        obs.add(&st);
    }
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: fp,
        properties,
        undetermined: 0,
        conflicts,
        propagations,
        coi_bits_before: 0,
        coi_bits_after: 0,
        discharged_static: 0,
        degraded_jobs: 0,
        resumed_jobs: 0,
        retried_jobs: 0,
        solver: obs,
    }
}

fn run_outcome_json(r: &RunOutcome) -> Json {
    Json::Obj(vec![
        ("seconds".into(), Json::Num(r.seconds)),
        ("properties".into(), Json::Int(r.properties)),
        ("undetermined".into(), Json::Int(r.undetermined)),
        ("conflicts".into(), Json::Int(r.conflicts)),
        ("propagations".into(), Json::Int(r.propagations)),
        ("coi_bits_before".into(), Json::Int(r.coi_bits_before)),
        ("coi_bits_after".into(), Json::Int(r.coi_bits_after)),
        ("sat_calls_avoided".into(), Json::Int(r.discharged_static)),
        ("degraded_jobs".into(), Json::Int(r.degraded_jobs)),
        ("resumed_jobs".into(), Json::Int(r.resumed_jobs)),
        ("retried_jobs".into(), Json::Int(r.retried_jobs)),
        ("solver".into(), r.solver.to_json()),
    ])
}

fn report_json(jobs: usize, scope: Scope, stages: &[StageResult]) -> Json {
    let total_seq: f64 = stages.iter().map(|s| s.seq.seconds).sum();
    let total_par: f64 = stages.iter().map(|s| s.par.seconds).sum();
    Json::Obj(vec![
        ("schema".into(), Json::str("synthlc-perf-v6")),
        ("jobs".into(), Json::Int(jobs as u64)),
        (
            "scope".into(),
            Json::str(if scope == Scope::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        (
            "stages".into(),
            Json::Arr(
                stages
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(s.name)),
                            ("sequential".into(), run_outcome_json(&s.seq)),
                            ("parallel".into(), run_outcome_json(&s.par)),
                            ("speedup".into(), Json::Num(s.speedup())),
                            ("coi_ratio".into(), Json::Num(s.coi_ratio())),
                            (
                                "sat_calls_avoided".into(),
                                Json::Int(s.par.discharged_static),
                            ),
                            ("deterministic_match".into(), Json::Bool(s.matches())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_sequential_seconds".into(), Json::Num(total_seq)),
        ("total_parallel_seconds".into(), Json::Num(total_par)),
        (
            "overall_speedup".into(),
            Json::Num(total_seq / total_par.max(1e-9)),
        ),
    ])
}

fn main() {
    let mut jobs = mc::default_threads().max(4);
    let mut out_path = "BENCH_perf.json".to_owned();
    let mut filter = String::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--jobs needs a positive integer");
            }
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other if !other.starts_with('-') => filter = other.to_owned(),
            other => panic!("unknown option `{other}`"),
        }
    }
    let scope = scope();
    println!("== parallel property-evaluation engine: perf report ==");
    println!("jobs = {jobs}, scope = {scope:?}\n");

    let core = build_core(&CoreConfig::default());
    let cache = uarch::cache::build_cache();
    let core_ops: Vec<isa::Opcode> = match scope {
        Scope::Quick => vec![
            isa::Opcode::Add,
            isa::Opcode::Div,
            isa::Opcode::Lw,
            isa::Opcode::Sw,
        ],
        Scope::Full => vec![
            isa::Opcode::Add,
            isa::Opcode::Mul,
            isa::Opcode::Div,
            isa::Opcode::Lw,
            isa::Opcode::Sw,
            isa::Opcode::Beq,
            isa::Opcode::Jal,
        ],
    };
    let core_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::NoControlFlow,
        bound: 24,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let cache_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let (leak_ops, leak) = leak_cfg(&core, scope);
    let cache_leak = synthlc::LeakConfig {
        mupath: cache_cfg.clone(),
        transmitters: vec![isa::Opcode::Lw, isa::Opcode::Sw],
        kinds: vec![synthlc::TxKind::Intrinsic, synthlc::TxKind::Static],
        bound: 20,
        conflict_budget: Some(1_000_000),
        threads: 0,
        budget_pool: None,
        slot_base: 1,
        max_sources: Some(2),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };

    let mut stages = Vec::new();
    // Sequential runs double as the reduction-off baseline: the fingerprint
    // match below then certifies that neither worker scheduling nor the
    // static reductions change any synthesis result.
    let mut stage = |name: &'static str, run: &dyn Fn(usize, bool) -> RunOutcome| {
        if !name.contains(filter.as_str()) {
            return;
        }
        println!("{name}: sequential, reductions off ...");
        let seq = run(1, false);
        println!("{name}: parallel ({jobs} workers), reductions on ...");
        let par = run(jobs, true);
        let s = StageResult { name, seq, par };
        println!(
            "{name}: {:.2}s -> {:.2}s  ({:.2}x, {} properties, coi {:.0}%, \
             {} SAT calls avoided, match = {})\n",
            s.seq.seconds,
            s.par.seconds,
            s.speedup(),
            s.par.properties,
            s.coi_ratio() * 100.0,
            s.par.discharged_static,
            s.matches()
        );
        stages.push(s);
    };
    // Solver-only microbench: both legs run the identical prepared CNFs
    // single-threaded, so the match certifies run-to-run determinism of
    // the CDCL core itself.
    let sat_micro: Vec<SatMicro> = match scope {
        Scope::Quick => vec![php_instance(9, 8), unrolled_instance(&core, 16, 48)],
        Scope::Full => vec![
            php_instance(9, 8),
            php_instance(10, 9),
            unrolled_instance(&core, 24, 96),
        ],
    };
    stage("sat_micro", &|_, _| run_sat_micro(&sat_micro));
    stage("mupath_core", &|threads, _| {
        run_mupath(&core, &core_ops, &core_cfg, threads)
    });
    stage("mupath_cache", &|threads, _| {
        run_mupath(
            &cache,
            &[isa::Opcode::Lw, isa::Opcode::Sw],
            &cache_cfg,
            threads,
        )
    });
    stage("leakage_core", &|threads, reductions| {
        run_leakage(&core, &leak_ops, &leak, threads, reductions)
    });
    stage("leakage_cache", &|threads, reductions| {
        run_leakage(&cache, &[isa::Opcode::Lw], &cache_leak, threads, reductions)
    });

    let mismatches: Vec<&str> = stages
        .iter()
        .filter(|s| !s.matches())
        .map(|s| s.name)
        .collect();
    let report = report_json(jobs, scope, &stages);
    std::fs::write(&out_path, report.render()).expect("write perf report");

    let total_seq: f64 = stages.iter().map(|s| s.seq.seconds).sum();
    let total_par: f64 = stages.iter().map(|s| s.par.seconds).sum();
    println!(
        "overall: {total_seq:.2}s sequential, {total_par:.2}s with {jobs} workers \
         ({:.2}x); report -> {out_path}",
        total_seq / total_par.max(1e-9)
    );
    assert!(
        mismatches.is_empty(),
        "reduced parallel results diverged from the unreduced --jobs 1 \
         baseline in: {mismatches:?}"
    );
    // With pooled per-(netlist, bound) contexts the parallel engine does
    // strictly less work than the sequential reduction-off baseline, so a
    // stage dipping below 1.0x means the pool regressed into rebuilding
    // (or ticket sequencing serialized more than job order requires).
    // The 3% grace absorbs timer noise on stages whose two legs run the
    // identical workload (sat_micro).
    let slowdowns: Vec<String> = stages
        .iter()
        .filter(|s| s.speedup() < 0.97)
        .map(|s| format!("{} ({:.2}x)", s.name, s.speedup()))
        .collect();
    assert!(
        slowdowns.is_empty(),
        "parallel speedup regressed below 1.0x in: {slowdowns:?}"
    );
}
