//! E-P3: §VII-B3 — property-evaluation performance: counts, average time
//! per property, and undetermined rates, for the core vs the standalone
//! cache (the modularity comparison).

use mupath::{synthesize_instr, ContextMode, SynthConfig};
use uarch::{build_core, CoreConfig};

fn main() {
    println!("== §VII-B3: property-evaluation performance ==\n");
    let core = build_core(&CoreConfig::default());
    let cache = uarch::cache::build_cache();
    let mut rows = Vec::new();
    for (label, design, ops, ctx) in [
        (
            "Core (MiniCva6)",
            &core,
            vec![isa::Opcode::Add, isa::Opcode::Div, isa::Opcode::Lw, isa::Opcode::Sw],
            ContextMode::NoControlFlow,
        ),
        (
            "Cache (MiniCache)",
            &cache,
            vec![isa::Opcode::Lw, isa::Opcode::Sw],
            ContextMode::Any,
        ),
    ] {
        let cfg = SynthConfig {
            slots: vec![0, 1],
            context: ctx,
            bound: if design.name == "MiniCache" { 18 } else { 24 },
            conflict_budget: Some(2_000_000),
            max_shapes: 64,
        };
        let mut stats = mc::CheckStats::default();
        for op in ops {
            let r = synthesize_instr(design, op, &cfg);
            stats.absorb(&r.stats);
        }
        rows.push((label, stats));
    }
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>14}",
        "DUV", "properties", "avg s/prop", "max s/prop", "undetermined%"
    );
    for (label, s) in &rows {
        println!(
            "{:<20} {:>10} {:>12.3} {:>12.3} {:>14.2}",
            label,
            s.properties,
            s.avg_seconds(),
            s.max_time.as_secs_f64(),
            s.undetermined_pct()
        );
    }
    if rows.len() == 2 {
        let speedup = rows[0].1.avg_seconds() / rows[1].1.avg_seconds().max(1e-9);
        println!(
            "\nmodularity speedup (core avg / cache avg): {speedup:.1}x \
             (paper: 4.43 min vs 3 s, ~90x, on JasperGold)"
        );
    }
}
