//! E-P3: §VII-B3 property-evaluation performance, plus the parallel-engine
//! and static-reduction perf report.
//!
//! Each stage runs twice — once on the sequential engine (`--jobs 1`) with
//! the static reductions (cone-of-influence slicing, taint-reachability
//! pruning) disabled, and once on the parallel property-evaluation engine
//! with the reductions enabled — asserts the results are bit-identical
//! (proving both scheduling- and reduction-independence in one shot), and
//! reports the speedup plus the COI bit-blast ratio and the number of SAT
//! queries discharged statically. A machine-readable report is written to
//! `BENCH_perf.json` (schema `synthlc-perf-v3`).
//!
//! ```text
//! perf [--jobs N] [--out PATH] [stage-filter]
//! ```
//!
//! `--jobs` defaults to the `SYNTHLC_THREADS`/available-parallelism worker
//! count (at least 4, to exercise the engine on small machines). Scope is
//! controlled by `SYNTHLC_SCOPE` = `quick` (default) or `full`.

use bench::json::Json;
use bench::{leak_cfg, scope, Scope};
use mupath::{synthesize_isa_with, ContextMode, EngineOptions, IsaSynthesis, SynthConfig};
use sat::BudgetPool;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use synthlc::{synthesize_leakage, LeakageReport};
use uarch::{build_core, CoreConfig};

/// One engine run: deterministic result fingerprint plus cost accounting.
struct RunOutcome {
    fingerprint: String,
    seconds: f64,
    properties: u64,
    undetermined: u64,
    conflicts: u64,
    propagations: u64,
    /// Signal bits in scope before / after cone-of-influence slicing,
    /// summed over all checker instances (equal when COI is off).
    coi_bits_before: u64,
    coi_bits_after: u64,
    /// SAT queries avoided by the static taint-reachability prune.
    discharged_static: u64,
    /// Jobs degraded to an undetermined stand-in (panic/fault/deadline);
    /// always 0 here — the perf pipeline runs with robustness off — but
    /// reported so the schema matches long-run CLI reports.
    degraded_jobs: u64,
    /// Jobs replayed from a checkpoint journal; always 0 here, as above.
    resumed_jobs: u64,
}

struct StageResult {
    name: &'static str,
    seq: RunOutcome,
    par: RunOutcome,
}

impl StageResult {
    fn matches(&self) -> bool {
        self.seq.fingerprint == self.par.fingerprint
    }
    fn speedup(&self) -> f64 {
        self.seq.seconds / self.par.seconds.max(1e-9)
    }
    /// Fraction of signal bits kept by COI slicing in the reduced run
    /// (1.0 when no checker used a slice).
    fn coi_ratio(&self) -> f64 {
        if self.par.coi_bits_before == 0 {
            1.0
        } else {
            self.par.coi_bits_after as f64 / self.par.coi_bits_before as f64
        }
    }
}

/// Everything scheduling-independent about a whole-ISA synthesis: shapes,
/// witnesses, decisions, and outcome counts — wall times excluded.
fn isa_fingerprint(r: &IsaSynthesis) -> String {
    let mut out = String::new();
    for i in &r.instrs {
        writeln!(
            out,
            "{} complete={} paths={:?} concrete={:?} decisions={:?} classes={:?}",
            i.opcode, i.complete, i.paths, i.concrete, i.decisions, i.class_decisions
        )
        .unwrap();
        writeln!(
            out,
            "  stats p={} r={} u={} ud={}",
            i.stats.properties, i.stats.reachable, i.stats.unreachable, i.stats.undetermined
        )
        .unwrap();
    }
    out
}

/// Scheduling-independent view of a leakage report: the µPATH phase plus
/// signatures, transponder/transmitter sets, and outcome counts.
fn leak_fingerprint(r: &LeakageReport) -> String {
    let mut out = String::new();
    writeln!(out, "design={}", r.design).unwrap();
    for i in &r.mupath {
        writeln!(
            out,
            "{} complete={} paths={:?} decisions={:?}",
            i.opcode, i.complete, i.paths, i.class_decisions
        )
        .unwrap();
    }
    for s in &r.signatures {
        writeln!(out, "sig {}", s.render()).unwrap();
    }
    writeln!(out, "candidates={:?}", r.candidate_transponders).unwrap();
    writeln!(out, "transponders={:?}", r.transponders).unwrap();
    writeln!(out, "transmitters={:?}", r.transmitters).unwrap();
    for (tag, s) in [("mupath", &r.mupath_stats), ("ift", &r.ift_stats)] {
        writeln!(
            out,
            "{tag} p={} r={} u={} ud={}",
            s.properties, s.reachable, s.unreachable, s.undetermined
        )
        .unwrap();
    }
    out
}

fn run_mupath(
    design: &uarch::Design,
    ops: &[isa::Opcode],
    cfg: &SynthConfig,
    threads: usize,
) -> RunOutcome {
    let pool = Arc::new(BudgetPool::new(None));
    let opts = EngineOptions {
        threads,
        budget_pool: Some(Arc::clone(&pool)),
        robust: Default::default(),
    };
    let started = Instant::now();
    let r = synthesize_isa_with(design, ops, cfg, &opts);
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: isa_fingerprint(&r),
        properties: r.stats.properties,
        undetermined: r.stats.undetermined,
        conflicts: pool.conflicts(),
        propagations: pool.propagations(),
        coi_bits_before: r.stats.coi_bits_before,
        coi_bits_after: r.stats.coi_bits_after,
        discharged_static: r.stats.discharged_static,
        degraded_jobs: r.degraded_jobs,
        resumed_jobs: r.resumed_jobs,
    }
}

fn run_leakage(
    design: &uarch::Design,
    transponders: &[isa::Opcode],
    cfg: &synthlc::LeakConfig,
    threads: usize,
    reductions: bool,
) -> RunOutcome {
    let pool = Arc::new(BudgetPool::new(None));
    let mut cfg = cfg.clone();
    cfg.threads = threads;
    cfg.budget_pool = Some(Arc::clone(&pool));
    cfg.coi = reductions;
    cfg.static_prune = reductions;
    let started = Instant::now();
    let r = synthesize_leakage(design, transponders, &cfg);
    RunOutcome {
        seconds: started.elapsed().as_secs_f64(),
        fingerprint: leak_fingerprint(&r),
        properties: r.mupath_stats.properties + r.ift_stats.properties,
        undetermined: r.mupath_stats.undetermined + r.ift_stats.undetermined,
        conflicts: pool.conflicts(),
        propagations: pool.propagations(),
        coi_bits_before: r.mupath_stats.coi_bits_before + r.ift_stats.coi_bits_before,
        coi_bits_after: r.mupath_stats.coi_bits_after + r.ift_stats.coi_bits_after,
        discharged_static: r.mupath_stats.discharged_static + r.ift_stats.discharged_static,
        degraded_jobs: r.degraded_jobs,
        resumed_jobs: r.resumed_jobs,
    }
}

fn run_outcome_json(r: &RunOutcome) -> Json {
    Json::Obj(vec![
        ("seconds".into(), Json::Num(r.seconds)),
        ("properties".into(), Json::Int(r.properties)),
        ("undetermined".into(), Json::Int(r.undetermined)),
        ("conflicts".into(), Json::Int(r.conflicts)),
        ("propagations".into(), Json::Int(r.propagations)),
        ("coi_bits_before".into(), Json::Int(r.coi_bits_before)),
        ("coi_bits_after".into(), Json::Int(r.coi_bits_after)),
        ("sat_calls_avoided".into(), Json::Int(r.discharged_static)),
        ("degraded_jobs".into(), Json::Int(r.degraded_jobs)),
        ("resumed_jobs".into(), Json::Int(r.resumed_jobs)),
    ])
}

fn report_json(jobs: usize, scope: Scope, stages: &[StageResult]) -> Json {
    let total_seq: f64 = stages.iter().map(|s| s.seq.seconds).sum();
    let total_par: f64 = stages.iter().map(|s| s.par.seconds).sum();
    Json::Obj(vec![
        ("schema".into(), Json::str("synthlc-perf-v3")),
        ("jobs".into(), Json::Int(jobs as u64)),
        (
            "scope".into(),
            Json::str(if scope == Scope::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        (
            "stages".into(),
            Json::Arr(
                stages
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(s.name)),
                            ("sequential".into(), run_outcome_json(&s.seq)),
                            ("parallel".into(), run_outcome_json(&s.par)),
                            ("speedup".into(), Json::Num(s.speedup())),
                            ("coi_ratio".into(), Json::Num(s.coi_ratio())),
                            (
                                "sat_calls_avoided".into(),
                                Json::Int(s.par.discharged_static),
                            ),
                            ("deterministic_match".into(), Json::Bool(s.matches())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_sequential_seconds".into(), Json::Num(total_seq)),
        ("total_parallel_seconds".into(), Json::Num(total_par)),
        (
            "overall_speedup".into(),
            Json::Num(total_seq / total_par.max(1e-9)),
        ),
    ])
}

fn main() {
    let mut jobs = mc::default_threads().max(4);
    let mut out_path = "BENCH_perf.json".to_owned();
    let mut filter = String::new();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .expect("--jobs needs a positive integer");
            }
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            other if !other.starts_with('-') => filter = other.to_owned(),
            other => panic!("unknown option `{other}`"),
        }
    }
    let scope = scope();
    println!("== parallel property-evaluation engine: perf report ==");
    println!("jobs = {jobs}, scope = {scope:?}\n");

    let core = build_core(&CoreConfig::default());
    let cache = uarch::cache::build_cache();
    let core_ops: Vec<isa::Opcode> = match scope {
        Scope::Quick => vec![
            isa::Opcode::Add,
            isa::Opcode::Div,
            isa::Opcode::Lw,
            isa::Opcode::Sw,
        ],
        Scope::Full => vec![
            isa::Opcode::Add,
            isa::Opcode::Mul,
            isa::Opcode::Div,
            isa::Opcode::Lw,
            isa::Opcode::Sw,
            isa::Opcode::Beq,
            isa::Opcode::Jal,
        ],
    };
    let core_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::NoControlFlow,
        bound: 24,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let cache_cfg = SynthConfig {
        slots: vec![0, 1],
        context: ContextMode::Any,
        bound: 18,
        conflict_budget: Some(2_000_000),
        max_shapes: 64,
    };
    let (leak_ops, leak) = leak_cfg(&core, scope);
    let cache_leak = synthlc::LeakConfig {
        mupath: cache_cfg.clone(),
        transmitters: vec![isa::Opcode::Lw, isa::Opcode::Sw],
        kinds: vec![synthlc::TxKind::Intrinsic, synthlc::TxKind::Static],
        bound: 20,
        conflict_budget: Some(1_000_000),
        threads: 0,
        budget_pool: None,
        slot_base: 1,
        max_sources: Some(2),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };

    let mut stages = Vec::new();
    // Sequential runs double as the reduction-off baseline: the fingerprint
    // match below then certifies that neither worker scheduling nor the
    // static reductions change any synthesis result.
    let mut stage = |name: &'static str, run: &dyn Fn(usize, bool) -> RunOutcome| {
        if !name.contains(filter.as_str()) {
            return;
        }
        println!("{name}: sequential, reductions off ...");
        let seq = run(1, false);
        println!("{name}: parallel ({jobs} workers), reductions on ...");
        let par = run(jobs, true);
        let s = StageResult { name, seq, par };
        println!(
            "{name}: {:.2}s -> {:.2}s  ({:.2}x, {} properties, coi {:.0}%, \
             {} SAT calls avoided, match = {})\n",
            s.seq.seconds,
            s.par.seconds,
            s.speedup(),
            s.par.properties,
            s.coi_ratio() * 100.0,
            s.par.discharged_static,
            s.matches()
        );
        stages.push(s);
    };
    stage("mupath_core", &|threads, _| {
        run_mupath(&core, &core_ops, &core_cfg, threads)
    });
    stage("mupath_cache", &|threads, _| {
        run_mupath(
            &cache,
            &[isa::Opcode::Lw, isa::Opcode::Sw],
            &cache_cfg,
            threads,
        )
    });
    stage("leakage_core", &|threads, reductions| {
        run_leakage(&core, &leak_ops, &leak, threads, reductions)
    });
    stage("leakage_cache", &|threads, reductions| {
        run_leakage(&cache, &[isa::Opcode::Lw], &cache_leak, threads, reductions)
    });

    let mismatches: Vec<&str> = stages
        .iter()
        .filter(|s| !s.matches())
        .map(|s| s.name)
        .collect();
    let report = report_json(jobs, scope, &stages);
    std::fs::write(&out_path, report.render()).expect("write perf report");

    let total_seq: f64 = stages.iter().map(|s| s.seq.seconds).sum();
    let total_par: f64 = stages.iter().map(|s| s.par.seconds).sum();
    println!(
        "overall: {total_seq:.2}s sequential, {total_par:.2}s with {jobs} workers \
         ({:.2}x); report -> {out_path}",
        total_seq / total_par.max(1e-9)
    );
    assert!(
        mismatches.is_empty(),
        "reduced parallel results diverged from the unreduced --jobs 1 \
         baseline in: {mismatches:?}"
    );
}
