//! E-F8: Fig. 8 — the transponder × transmitter leakage-signature matrix
//! for the MiniCva6 core, over representative instruction classes.
//!
//! Scope: `SYNTHLC_SCOPE=quick` (default, ~10 min single-core) or `full`
//! (~1 h single-core). Results generalise per class (Fig. 8 groups rows and
//! columns the same way).

use bench::{leak_cfg, render_ct_expanded, render_fig8, render_signatures, scope};
use std::time::Instant;
use synthlc::synthesize_leakage;
use uarch::{build_core, CoreConfig};

fn main() {
    let scope = scope();
    println!("== Fig. 8: leakage-signature matrix (scope {scope:?}) ==\n");
    let design = build_core(&CoreConfig::default());
    let (transponders, cfg) = leak_cfg(&design, scope);
    println!("transponder reps: {transponders:?}");
    println!("transmitter reps: {:?}", cfg.transmitters);
    let t0 = Instant::now();
    let report = synthesize_leakage(&design, &transponders, &cfg);
    println!(
        "\ncandidate transponders (>1 µPATH): {:?}",
        report.candidate_transponders
    );
    println!("\n{}", render_fig8(&report));
    println!("signatures:\n{}", render_signatures(&report));
    println!(
        "CT contract (classes expanded):\n{}",
        render_ct_expanded(&report)
    );
    println!(
        "elapsed {:?}; mupath: {} props ({:.2}s avg, {:.1}% undetermined); \
         ift: {} props ({:.2}s avg, {:.1}% undetermined)",
        t0.elapsed(),
        report.mupath_stats.properties,
        report.mupath_stats.avg_seconds(),
        report.mupath_stats.undetermined_pct(),
        report.ift_stats.properties,
        report.ift_stats.avg_seconds(),
        report.ift_stats.undetermined_pct()
    );
}
