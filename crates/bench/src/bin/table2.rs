//! E-T2: Table II — the user-annotation inventory for the core and cache
//! DUVs (IFR, IIRs/PCRs, µFSM state vars, added PCRs, commit, operand
//! registers, ARF, AMEM, verification-only DSL lines).

use uarch::{build_core, build_tiny, CoreConfig};

fn main() {
    println!("== Table II: user annotations per DUV ==\n");
    for (name, design) in [
        ("MiniCva6 Core", build_core(&CoreConfig::default())),
        ("MiniCva6-MUL", build_core(&CoreConfig::cva6_mul())),
        ("MiniCva6-OP", build_core(&CoreConfig::cva6_op())),
        ("MiniCache", uarch::cache::build_cache()),
        ("TinyCore", build_tiny()),
    ] {
        println!("{}", design.annotations.table_summary(name));
        let stats = netlist::analysis::stats(&design.netlist);
        println!(
            "  elaborated: {} nodes, {} cells, {} regs, {} flop bits, {} inputs\n",
            stats.nodes, stats.cells, stats.regs, stats.flop_bits, stats.inputs
        );
    }
}
