//! Empirical cross-validation of the synthesis results: for every
//! instruction class, run the SC-Safe (Definition V.1) experiment with the
//! secret wired into each operand, over many secret pairs, and report which
//! (instruction, operand) pairs leak observationally.
//!
//! Expected agreement with Fig. 8/synthesis: DIV/REM (both operands), MUL
//! on the zero-skip core, LW/SW (address operand), branches/JALR (via
//! squash of younger instructions) leak; ALU ops and the hardened core's
//! units do not.

use isa::{Instr, Opcode};
use prng::Rng;
use synthlc::scsafe::{check_sc_safe, SecretLocation};
use uarch::{build_core, CoreConfig, Design};

/// A victim template: the secret lands in r1; the probe instruction uses
/// it in the chosen operand; younger instructions observe.
fn victim(op: Opcode, operand_rs1: bool) -> Vec<Instr> {
    let (rs1, rs2) = if operand_rs1 { (1, 2) } else { (2, 1) };
    let probe = match op {
        Opcode::Lw => Instr::rri(Opcode::Lw, 3, if operand_rs1 { 1 } else { 2 }, 0),
        Opcode::Sw => Instr {
            op: Opcode::Sw,
            rd: 0,
            rs1,
            rs2,
            imm: 0,
        },
        Opcode::Jalr => Instr::rri(Opcode::Jalr, 3, 1, 0),
        o if o.is_branch() => Instr::branch(o, rs1, rs2, 2),
        o => Instr::rrr(o, 3, rs1, rs2),
    };
    let mut program = vec![Instr::rri(Opcode::Addi, 2, 0, 5)];
    // Memory probes need store-buffer/port context: an older store before a
    // load probe, a younger load after a store probe (the LD_issue and
    // ST_comSTB channels respectively).
    if op == Opcode::Lw {
        program.push(Instr {
            op: Opcode::Sw,
            rd: 0,
            rs1: 0,
            rs2: 2,
            imm: 0,
        });
    }
    program.push(probe);
    if op == Opcode::Sw {
        program.push(Instr::rri(Opcode::Lw, 3, 0, 1));
    }
    program.extend([
        // Younger observers.
        Instr::rrr(Opcode::Add, 3, 2, 2),
        Instr::rri(Opcode::Lw, 2, 0, 1),
    ]);
    program
}

/// Whether the probe instruction actually reads the chosen operand (JALR
/// only reads rs1, for example).
fn operand_read(op: Opcode, operand_rs1: bool) -> bool {
    if operand_rs1 {
        op.reads_rs1()
    } else {
        op.reads_rs2() && op != Opcode::Jalr
    }
}

fn leaks(design: &Design, op: Opcode, operand_rs1: bool, rng: &mut Rng) -> bool {
    let program = victim(op, operand_rs1);
    let commits = program.len();
    // Directed pairs hit the zero-skip, equality, offset-match, and
    // magnitude corners; random pairs cover the rest.
    let mut pairs = vec![(0u64, 7u64), (5, 6), (3, 200), (0, 1), (4, 5)];
    for _ in 0..20 {
        pairs.push((rng.byte() as u64, rng.byte() as u64));
    }
    for (a, b) in pairs {
        if a == b {
            continue;
        }
        let r = check_sc_safe(design, &program, SecretLocation::Reg(1), a, b, commits);
        if r.violated {
            return true;
        }
    }
    false
}

fn main() {
    println!("== SC-Safe sweep: observational leakage per (instruction, operand) ==\n");
    let designs = [
        ("MiniCva6", build_core(&CoreConfig::default())),
        ("MiniCva6-MUL", build_core(&CoreConfig::cva6_mul())),
        ("hardened", build_core(&CoreConfig::hardened())),
    ];
    let classes = [
        Opcode::Add,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::Lw,
        Opcode::Sw,
        Opcode::Beq,
        Opcode::Blt,
        Opcode::Jalr,
    ];
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "instr", "core.rs1", "core.rs2", "zskip.rs1", "zskip.rs2", "hard.rs1", "hard.rs2"
    );
    let mut rng = Rng::new(0x5eed);
    for op in classes {
        print!("{:<8}", op.to_string());
        for (_, design) in &designs {
            for operand_rs1 in [true, false] {
                let mark = if !operand_read(op, operand_rs1) {
                    "n/a"
                } else if leaks(design, op, operand_rs1, &mut rng) {
                    "LEAK"
                } else {
                    "-"
                };
                print!(" {mark:>13}");
            }
        }
        println!();
    }
    println!(
        "\nReading: `LEAK` = some secret pair produced diverging R_µPATH \
         observation traces. Branches/JALR leak through younger-instruction \
         squash; LW/SW through the memory-port/store-buffer channels; \
         DIV/REM through serial-divider occupancy; MUL only on the \
         zero-skip variant. The hardened core's divider/multiplier columns \
         must be clean for arithmetic, while memory/control channels remain \
         (hardening only fixed the functional units)."
    );
}
