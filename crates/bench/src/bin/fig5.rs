//! E-F5: Fig. 5 — the four example leakage functions, synthesized:
//! `ADD_ID` (operand packing), `LD_issue` (store-to-load stall),
//! `ST_comSTB` (the novel drain channel), and `ST_wBVld` (cache bank
//! access).

use mupath::{ContextMode, SynthConfig};
use synthlc::{synthesize_leakage, LeakConfig, TxKind};
use uarch::{build_core, CoreConfig};

#[allow(clippy::too_many_arguments)]
fn leak(
    design: &uarch::Design,
    p: isa::Opcode,
    t: Vec<isa::Opcode>,
    kinds: Vec<TxKind>,
    slots: Vec<usize>,
    ctx: ContextMode,
    slot_base: usize,
    bound: usize,
    label: &str,
) {
    let cfg = LeakConfig {
        mupath: SynthConfig {
            slots,
            context: ctx,
            bound: bound + 2,
            conflict_budget: Some(2_000_000),
            max_shapes: 64,
        },
        transmitters: t,
        kinds,
        bound,
        conflict_budget: Some(2_000_000),
        threads: 0,
        budget_pool: None,
        slot_base,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let report = synthesize_leakage(design, &[p], &cfg);
    println!("-- {label} --");
    for s in &report.signatures {
        println!("{}", s.render());
    }
    println!();
}

fn main() {
    println!("== Fig. 5: synthesized leakage functions ==\n");
    let op_core = build_core(&CoreConfig::cva6_op());
    leak(
        &op_core,
        isa::Opcode::Add,
        vec![isa::Opcode::Add],
        vec![TxKind::Intrinsic],
        vec![0],
        ContextMode::Solo,
        0,
        18,
        "ADD_ID (CVA6-OP operand packing)",
    );
    let core = build_core(&CoreConfig::default());
    leak(
        &core,
        isa::Opcode::Lw,
        vec![isa::Opcode::Sw],
        vec![TxKind::Intrinsic, TxKind::DynamicOlder],
        vec![0, 1],
        ContextMode::NoControlFlow,
        0,
        22,
        "LD_issue (store-to-load page-offset stall)",
    );
    leak(
        &core,
        isa::Opcode::Sw,
        vec![isa::Opcode::Lw],
        vec![TxKind::DynamicYounger],
        vec![0, 1],
        ContextMode::NoControlFlow,
        0,
        22,
        "ST_comSTB (drain stalled by a younger load - the paper's new channel)",
    );
    let cache = uarch::cache::build_cache();
    leak(
        &cache,
        isa::Opcode::Sw,
        vec![isa::Opcode::Lw, isa::Opcode::Sw],
        vec![TxKind::Intrinsic, TxKind::Static, TxKind::DynamicOlder],
        vec![1, 2],
        ContextMode::Any,
        1,
        24,
        "ST_wBVld analogue (cache write path; static LD transmitters)",
    );
}
