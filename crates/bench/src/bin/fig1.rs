//! E-F1: Fig. 1 — the two µPATHs of MUL on the zero-skip-multiplier core
//! (CVA6-MUL analogue) and the leakage signature SynthLC synthesizes for
//! them.

use mupath::{synthesize_instr, ContextMode, HarnessConfig, SynthConfig};
use synthlc::{synthesize_leakage, LeakConfig, TxKind};
use uarch::{build_core, CoreConfig};

fn main() {
    println!("== Fig. 1: MUL on MiniCva6-MUL (zero-skip multiply) ==\n");
    let design = build_core(&CoreConfig::cva6_mul());
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Solo,
        bound: 16,
        conflict_budget: Some(2_000_000),
        max_shapes: 16,
    };
    let r = synthesize_instr(&design, isa::Opcode::Mul, &cfg);
    let h = mupath::build_harness(
        &design,
        &HarnessConfig {
            opcode: isa::Opcode::Mul,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    for (i, p) in r.concrete.iter().enumerate() {
        println!("µPATH {i} (latency {}):\n{}", p.latency(), p.render(&h.pls));
    }
    println!("paper shape: MUL visits mulU for 1 cycle (zero operand) or 4 (else)\n");

    let leak_cfg = LeakConfig {
        mupath: cfg,
        transmitters: vec![isa::Opcode::Mul],
        kinds: vec![TxKind::Intrinsic],
        bound: 16,
        conflict_budget: Some(2_000_000),
        threads: 0,
        budget_pool: None,
        slot_base: 0,
        max_sources: Some(3),
        coi: true,
        static_prune: true,
        robust: Default::default(),
    };
    let report = synthesize_leakage(&design, &[isa::Opcode::Mul], &leak_cfg);
    println!("leakage signature(s):");
    print!("{}", bench::render_signatures(&report));
    println!(
        "\nproperties: mupath {} ({:.2}s avg), ift {} ({:.2}s avg)",
        report.mupath_stats.properties,
        report.mupath_stats.avg_seconds(),
        report.ift_stats.properties,
        report.ift_stats.avg_seconds()
    );
}
