//! Micro-benchmarks for the verification substrate: simulator throughput,
//! unrolling construction, and property evaluation on the core vs the cache
//! (the §VII-B3 modularity comparison in benchmark form).
//!
//! Hand-rolled timing harness (no criterion; the container is offline):
//! each benchmark runs a warmup iteration, then `iters` timed iterations,
//! reporting min/mean per-iteration wall time. Pass a substring argument to
//! run a subset, e.g. `cargo bench --bench engine -- cover`.

use mc::{Checker, McConfig};
use mupath::{build_harness, ContextMode, HarnessConfig};
use sim::Simulator;
use std::hint::black_box;
use std::time::Instant;
use uarch::{build_core, build_tiny, CoreConfig};

fn bench<R>(filter: &str, name: &str, iters: u32, mut f: impl FnMut() -> R) {
    if !name.contains(filter) {
        return;
    }
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..iters {
        let t = Instant::now();
        black_box(f());
        let dt = t.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
    }
    println!(
        "{name:<34} {:>10.3} ms/iter (min {:>10.3} ms, {iters} iters)",
        total / iters as f64 * 1e3,
        best * 1e3
    );
}

fn bench_simulator(filter: &str) {
    let design = build_core(&CoreConfig::default());
    let program = isa::assemble(
        "addi r1, r0, 7\naddi r2, r0, 3\nmul r3, r1, r2\nsw r0, r3, 1\nlw r2, r0, 1\n",
    )
    .unwrap();
    bench(filter, "simulate_minicva6_200_cycles", 20, || {
        let mut s = Simulator::new(&design.netlist);
        for _ in 0..200 {
            let pc = s.value(design.pc) as usize;
            let word = program
                .get(pc)
                .copied()
                .unwrap_or_else(isa::Instr::nop)
                .encode();
            s.set_input(design.fetch_instr_input, word as u64);
            s.set_input(design.fetch_valid_input, 1);
            s.step();
        }
        s.value_of("arf3")
    });
}

fn bench_unrolling(filter: &str) {
    let design = build_core(&CoreConfig::default());
    let h = build_harness(
        &design,
        &HarnessConfig {
            opcode: isa::Opcode::Add,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    bench(filter, "unroll_core_16_frames", 10, || {
        Checker::new(
            &h.netlist,
            McConfig {
                bound: 16,
                ..Default::default()
            },
        )
    });
}

fn bench_property_core_vs_cache(filter: &str) {
    let tiny = build_tiny();
    let h_tiny = build_harness(
        &tiny,
        &HarnessConfig {
            opcode: isa::Opcode::Add,
            fetch_slot: 0,
            context: ContextMode::Any,
        },
    );
    bench(filter, "tinycore_cover", 10, || {
        let mut chk = Checker::new(
            &h_tiny.netlist,
            McConfig {
                bound: 10,
                ..Default::default()
            },
        );
        chk.check_cover(h_tiny.iuv_done, &h_tiny.assumes)
            .is_reachable()
    });

    let cache = uarch::cache::build_cache();
    let h_cache = build_harness(
        &cache,
        &HarnessConfig {
            opcode: isa::Opcode::Lw,
            fetch_slot: 0,
            context: ContextMode::Any,
        },
    );
    let cache_free: Vec<_> = cache.annotations.amem.clone();
    bench(filter, "cache_cover", 5, || {
        let mut chk = Checker::with_free_regs(
            &h_cache.netlist,
            McConfig {
                bound: 14,
                ..Default::default()
            },
            &cache_free,
        );
        chk.check_cover(h_cache.iuv_done, &h_cache.assumes)
            .is_reachable()
    });

    let core = build_core(&CoreConfig::default());
    let h_core = build_harness(
        &core,
        &HarnessConfig {
            opcode: isa::Opcode::Lw,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    let core_free: Vec<_> = core
        .annotations
        .arf
        .iter()
        .chain(core.annotations.amem.iter())
        .copied()
        .collect();
    bench(filter, "core_cover", 5, || {
        let mut chk = Checker::with_free_regs(
            &h_core.netlist,
            McConfig {
                bound: 14,
                ..Default::default()
            },
            &core_free,
        );
        chk.check_cover(h_core.iuv_done, &h_core.assumes)
            .is_reachable()
    });
}

fn bench_sat_and_ift(filter: &str) {
    // Raw solver: a mid-size pigeonhole instance (pure CDCL stress).
    bench(filter, "sat_pigeonhole_7_into_6", 10, || {
        let mut s = sat::Solver::new();
        const P: usize = 7;
        const H: usize = 6;
        let vars: Vec<Vec<sat::Var>> = (0..P)
            .map(|_| (0..H).map(|_| s.new_var()).collect())
            .collect();
        for row in &vars {
            let lits: Vec<sat::Lit> = row.iter().map(|&v| sat::Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        for j in 0..H {
            for (i1, row1) in vars.iter().enumerate() {
                for row2 in &vars[i1 + 1..] {
                    s.add_clause(&[sat::Lit::neg(row1[j]), sat::Lit::neg(row2[j])]);
                }
            }
        }
        s.solve().is_unsat()
    });
    // IFT instrumentation pass on the full core.
    let core = build_core(&CoreConfig::default());
    let opts = ift::IftOptions {
        sources: core.annotations.operand_regs.clone(),
        persistent: core.annotations.amem.clone(),
        blocked: core.annotations.arf.clone(),
    };
    bench(filter, "ift_instrument_core", 10, || {
        ift::instrument(&core.netlist, &opts).netlist.len()
    });
}

fn main() {
    // `cargo bench -- <filter>` passes extra args through; also tolerate
    // the libtest-style `--bench` flag some cargo versions forward.
    let filter = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_default();
    bench_simulator(&filter);
    bench_unrolling(&filter);
    bench_property_core_vs_cache(&filter);
    bench_sat_and_ift(&filter);
}
