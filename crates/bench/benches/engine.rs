//! Criterion benchmarks for the verification substrate: simulator
//! throughput, unrolling construction, and property evaluation on the core
//! vs the cache (the §VII-B3 modularity comparison in benchmark form).

use criterion::{criterion_group, criterion_main, Criterion};
use mc::{Checker, McConfig};
use mupath::{build_harness, ContextMode, HarnessConfig};
use sim::Simulator;
use uarch::{build_core, build_tiny, CoreConfig};

fn bench_simulator(c: &mut Criterion) {
    let design = build_core(&CoreConfig::default());
    let program = isa::assemble(
        "addi r1, r0, 7\naddi r2, r0, 3\nmul r3, r1, r2\nsw r0, r3, 1\nlw r2, r0, 1\n",
    )
    .unwrap();
    c.bench_function("simulate_minicva6_200_cycles", |b| {
        b.iter(|| {
            let mut s = Simulator::new(&design.netlist);
            for _ in 0..200 {
                let pc = s.value(design.pc) as usize;
                let word = program
                    .get(pc)
                    .copied()
                    .unwrap_or_else(isa::Instr::nop)
                    .encode();
                s.set_input(design.fetch_instr_input, word as u64);
                s.set_input(design.fetch_valid_input, 1);
                s.step();
            }
            s.value_of("arf3")
        })
    });
}

fn bench_unrolling(c: &mut Criterion) {
    let design = build_core(&CoreConfig::default());
    let h = build_harness(
        &design,
        &HarnessConfig {
            opcode: isa::Opcode::Add,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    c.bench_function("unroll_core_16_frames", |b| {
        b.iter(|| {
            Checker::new(
                &h.netlist,
                McConfig {
                    bound: 16,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_property_core_vs_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("property_eval");
    g.sample_size(10);

    let tiny = build_tiny();
    let h_tiny = build_harness(
        &tiny,
        &HarnessConfig {
            opcode: isa::Opcode::Add,
            fetch_slot: 0,
            context: ContextMode::Any,
        },
    );
    g.bench_function("tinycore_cover", |b| {
        b.iter(|| {
            let mut chk = Checker::new(
                &h_tiny.netlist,
                McConfig {
                    bound: 10,
                    ..Default::default()
                },
            );
            chk.check_cover(h_tiny.iuv_done, &h_tiny.assumes).is_reachable()
        })
    });

    let cache = uarch::cache::build_cache();
    let h_cache = build_harness(
        &cache,
        &HarnessConfig {
            opcode: isa::Opcode::Lw,
            fetch_slot: 0,
            context: ContextMode::Any,
        },
    );
    let cache_free: Vec<_> = cache.annotations.amem.clone();
    g.bench_function("cache_cover", |b| {
        b.iter(|| {
            let mut chk = Checker::with_free_regs(
                &h_cache.netlist,
                McConfig {
                    bound: 14,
                    ..Default::default()
                },
                &cache_free,
            );
            chk.check_cover(h_cache.iuv_done, &h_cache.assumes).is_reachable()
        })
    });

    let core = build_core(&CoreConfig::default());
    let h_core = build_harness(
        &core,
        &HarnessConfig {
            opcode: isa::Opcode::Lw,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    let core_free: Vec<_> = core
        .annotations
        .arf
        .iter()
        .chain(core.annotations.amem.iter())
        .copied()
        .collect();
    g.bench_function("core_cover", |b| {
        b.iter(|| {
            let mut chk = Checker::with_free_regs(
                &h_core.netlist,
                McConfig {
                    bound: 14,
                    ..Default::default()
                },
                &core_free,
            );
            chk.check_cover(h_core.iuv_done, &h_core.assumes).is_reachable()
        })
    });
    g.finish();
}

fn bench_sat_and_ift(c: &mut Criterion) {
    // Raw solver: a mid-size pigeonhole instance (pure CDCL stress).
    c.bench_function("sat_pigeonhole_7_into_6", |b| {
        b.iter(|| {
            let mut s = sat::Solver::new();
            const P: usize = 7;
            const H: usize = 6;
            let vars: Vec<Vec<sat::Var>> = (0..P)
                .map(|_| (0..H).map(|_| s.new_var()).collect())
                .collect();
            for row in &vars {
                let lits: Vec<sat::Lit> = row.iter().map(|&v| sat::Lit::pos(v)).collect();
                s.add_clause(&lits);
            }
            for j in 0..H {
                for i1 in 0..P {
                    for i2 in (i1 + 1)..P {
                        s.add_clause(&[sat::Lit::neg(vars[i1][j]), sat::Lit::neg(vars[i2][j])]);
                    }
                }
            }
            s.solve().is_unsat()
        })
    });
    // IFT instrumentation pass on the full core.
    let core = build_core(&CoreConfig::default());
    let opts = ift::IftOptions {
        sources: core.annotations.operand_regs.clone(),
        persistent: core.annotations.amem.clone(),
        blocked: core.annotations.arf.clone(),
    };
    c.bench_function("ift_instrument_core", |b| {
        b.iter(|| ift::instrument(&core.netlist, &opts).netlist.len())
    });
}

criterion_group!(
    benches,
    bench_simulator,
    bench_unrolling,
    bench_property_core_vs_cache,
    bench_sat_and_ift
);
criterion_main!(benches);
