//! Configuration of the MiniCva6 core and its paper-variants.

/// Multiplier timing policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MulPolicy {
    /// Fixed latency in cycles (operand-independent — the "safe" design).
    Fixed(u8),
    /// The zero-skip optimisation of CVA6-MUL (§I-A, Fig. 1): one cycle when
    /// either operand is zero, otherwise `slow` cycles.
    ZeroSkip {
        /// Latency for non-zero operands (the paper's CVA6-MUL uses 4).
        slow: u8,
    },
}

impl MulPolicy {
    /// The worst-case multiplier latency under this policy.
    pub fn max_latency(self) -> u8 {
        match self {
            MulPolicy::Fixed(n) => n,
            MulPolicy::ZeroSkip { slow } => slow,
        }
    }
}

/// Divider timing policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DivPolicy {
    /// Data-independent latency (a hardened divider).
    Fixed(u8),
    /// Serial early-terminating divider: latency grows with the number of
    /// significant bits in the dividend (1 + ceil(sigbits/2) cycles,
    /// 1..=5 for the 8-bit datapath) — the CVA6-style intrinsic
    /// transmitter (§VII-A1 reports 1..66 for the 64-bit CVA6).
    EarlyTerminate,
}

impl DivPolicy {
    /// The worst-case divider latency under this policy.
    pub fn max_latency(self) -> u8 {
        match self {
            DivPolicy::Fixed(n) => n,
            DivPolicy::EarlyTerminate => 5,
        }
    }
}

/// Configuration of a [`crate::build_core`] instantiation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreConfig {
    /// Multiplier policy; `ZeroSkip` yields the CVA6-MUL variant.
    pub mul: MulPolicy,
    /// Divider policy.
    pub div: DivPolicy,
    /// Operand-packing decode (the CVA6-OP variant, §III-A): an `ADD` whose
    /// source operands are both narrow (upper nibble zero) issues after one
    /// decode cycle; wide operands take an extra decode cycle.
    pub op_packing: bool,
    /// Scoreboard entries (2 or 4).
    pub scb_entries: usize,
    /// Seeded functional bug: `JALR` fails to squash the fetch stage on
    /// redirect (the §VII-B2 bug-surfacing experiment analogue).
    pub bug_jalr_no_squash: bool,
    /// Seeded microarchitectural bug: an incorrect occupancy comparison
    /// makes the scoreboard appear full one entry early, so the last entry
    /// is never used — the analogue of the paper's CVA6 SCB
    /// under-utilisation bug (§VII-B2, "incorrect counter width
    /// declaration"). Surfaced by §V-B1 DUV PL reachability: the last
    /// entry's PLs become unreachable.
    pub bug_scb_underutilized: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            mul: MulPolicy::Fixed(2),
            div: DivPolicy::EarlyTerminate,
            op_packing: false,
            scb_entries: 2,
            bug_jalr_no_squash: false,
            bug_scb_underutilized: false,
        }
    }
}

impl CoreConfig {
    /// The CVA6-MUL variant of §I-A / Fig. 1.
    pub fn cva6_mul() -> Self {
        Self {
            mul: MulPolicy::ZeroSkip { slow: 4 },
            ..Self::default()
        }
    }

    /// The CVA6-OP variant of §III-A / Fig. 2.
    pub fn cva6_op() -> Self {
        Self {
            op_packing: true,
            ..Self::default()
        }
    }

    /// A fully hardened core: every functional unit data-independent.
    /// Used as the negative control — SynthLC should find *no* intrinsic
    /// arithmetic transmitters on it.
    pub fn hardened() -> Self {
        Self {
            mul: MulPolicy::Fixed(2),
            div: DivPolicy::Fixed(5),
            ..Self::default()
        }
    }

    /// A conservative upper bound on one instruction's total latency from
    /// fetch to commit, assuming it can stall behind `window` older
    /// in-flight instructions. Used to justify complete BMC bounds
    /// (`DESIGN.md` §4).
    pub fn max_instr_latency(&self, window: usize) -> usize {
        let fu = self
            .mul
            .max_latency()
            .max(self.div.max_latency())
            .max(4 /* LSU stall + drain worst case */) as usize;
        // fetch + decode(+packing) + fu + scb wait + commit + store drain
        let own = 2 + 2 + fu + 2 + 2;
        own + window * (fu + 3)
    }
}
