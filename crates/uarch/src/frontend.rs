//! Bridge between the textual netlist frontend and [`Design`]: any
//! in-tree design can be emitted as a `.nl` file, and any checked `.nl`
//! file with `annotations` + `harness` blocks becomes a full [`Design`]
//! that the synthesis and leakage pipelines accept ("bring your own
//! design").
//!
//! The `netlist` crate cannot see the `isa` crate, so its
//! [`HarnessData`] carries ISA mnemonics as strings; this module is where
//! they are resolved to [`isa::Opcode`]s (`E013` on unknown mnemonics).

use netlist::diag::{Diagnostic, Report};
use netlist::text::{self, CompileResult, HarnessData, LoweredModule, ModuleText};

use crate::{Design, TypeField};

/// Emits a design as canonical netlist text (a complete `.nl` module with
/// `annotations` and `harness` blocks).
pub fn design_to_text(design: &Design) -> String {
    let harness = HarnessData {
        fetch_instr_input: design.fetch_instr_input,
        fetch_valid_input: design.fetch_valid_input,
        fetch_fire: design.fetch_fire,
        issue_fire: design.issue_fire,
        issue_pc: design.issue_pc,
        issue_valid: design.issue_valid,
        rs_fields: design.rs_fields,
        pc: design.pc,
        isa: design
            .isa
            .iter()
            .map(|op| op.mnemonic().to_string())
            .collect(),
        type_field_hi: design.type_field.hi,
        type_field_lo: design.type_field.lo,
        type_values: design
            .type_values
            .iter()
            .map(|(op, v)| (op.mnemonic().to_string(), *v))
            .collect(),
        max_latency: design.max_latency,
        outputs: design.outputs.clone(),
    };
    text::emit_module(&ModuleText {
        name: &design.name,
        netlist: &design.netlist,
        annotations: Some(&design.annotations),
        harness: Some(&harness),
    })
}

/// Converts a lowered module into a [`Design`]. Pushes `E013` diagnostics
/// (and returns `None`) when the module lacks the metadata blocks or
/// names an unknown ISA mnemonic.
pub fn design_from_module(module: &LoweredModule, report: &mut Report) -> Option<Design> {
    let Some(annotations) = module.annotations.clone() else {
        report.push(Diagnostic::error(
            "E013",
            "uarch",
            "module has no `annotations` block; cannot build a design",
        ));
        return None;
    };
    let Some(h) = module.harness.clone() else {
        report.push(Diagnostic::error(
            "E013",
            "uarch",
            "module has no `harness` block; cannot build a design",
        ));
        return None;
    };

    let mut ok = true;
    let mut resolve_op = |mn: &str| -> Option<isa::Opcode> {
        let found = isa::Opcode::ALL
            .iter()
            .copied()
            .find(|op| op.mnemonic() == mn);
        if found.is_none() {
            let known: Vec<&str> = isa::Opcode::ALL.iter().map(|op| op.mnemonic()).collect();
            report.push(
                Diagnostic::error("E013", "uarch", format!("unknown ISA mnemonic `{mn}`"))
                    .with_note(format!("known mnemonics: {}", known.join(" "))),
            );
            ok = false;
        }
        found
    };
    let isa: Vec<isa::Opcode> = h.isa.iter().filter_map(|mn| resolve_op(mn)).collect();
    let type_values: Vec<(isa::Opcode, u64)> = h
        .type_values
        .iter()
        .filter_map(|(mn, v)| resolve_op(mn).map(|op| (op, *v)))
        .collect();
    if !ok {
        return None;
    }

    Some(Design {
        name: module.name.clone(),
        netlist: module.netlist.clone(),
        annotations,
        fetch_instr_input: h.fetch_instr_input,
        fetch_valid_input: h.fetch_valid_input,
        fetch_fire: h.fetch_fire,
        issue_fire: h.issue_fire,
        issue_pc: h.issue_pc,
        issue_valid: h.issue_valid,
        rs_fields: h.rs_fields,
        pc: h.pc,
        isa,
        type_field: TypeField {
            hi: h.type_field_hi,
            lo: h.type_field_lo,
        },
        type_values,
        max_latency: h.max_latency,
        outputs: h.outputs,
    })
}

/// Compiles netlist text all the way to a [`Design`]: frontend pipeline,
/// `L001`–`L009` lints, then harness conversion. The design is `None`
/// whenever the combined report has errors.
pub fn parse_design(src: &str, file_name: &str) -> (Option<Design>, CompileResult) {
    let mut result = text::check(src, file_name);
    let design = match &result.module {
        Some(module) if !result.report.has_errors() => {
            design_from_module(module, &mut result.report)
        }
        _ => None,
    };
    (design, result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_core, build_tiny, CoreConfig};

    #[test]
    fn designs_round_trip_through_text() {
        for design in [
            build_core(&CoreConfig::default()),
            build_tiny(),
            crate::cache::build_cache(),
        ] {
            let nl_text = design_to_text(&design);
            let (parsed, result) = parse_design(&nl_text, "design.nl");
            assert!(
                !result.report.has_errors(),
                "{}: {}",
                design.name,
                result.report.render_in(&result.source)
            );
            let parsed = parsed.expect("design");
            design
                .netlist
                .same_structure(&parsed.netlist)
                .unwrap_or_else(|e| panic!("{}: {e}", design.name));
            assert_eq!(design.isa, parsed.isa);
            assert_eq!(design.type_field, parsed.type_field);
            assert_eq!(design.max_latency, parsed.max_latency);
            assert_eq!(design.outputs, parsed.outputs);
            // Full byte-identical fixpoint.
            assert_eq!(nl_text, design_to_text(&parsed), "{}", design.name);
        }
    }

    #[test]
    fn unknown_mnemonic_is_e013() {
        let design = build_tiny();
        let text = design_to_text(&design).replace("isa nop", "isa frobnicate nop");
        let (parsed, result) = parse_design(&text, "bad.nl");
        assert!(parsed.is_none());
        assert!(result
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == "E013" && d.message.contains("frobnicate")));
    }
}
