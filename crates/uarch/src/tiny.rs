//! TinyCore: a 3-stage, stall-free, single-path pipeline.
//!
//! Every instruction takes exactly IF → EX → WB, one cycle each, with no
//! hazards, no speculation, and data-independent timing. This is the regime
//! RTL2µSPEC (the paper's predecessor) could already handle: exactly one
//! µPATH per instruction. It serves as (i) a fast smoke-test target for the
//! synthesis pipeline and (ii) the negative control — RTL2MµPATH must find
//! a *single* µPATH per instruction here, and SynthLC must find no
//! transmitters.
//!
//! The ISA subset is combinational-friendly: ADD/SUB/AND/OR/XOR/ADDI only,
//! operating on the same 4-register file as MiniCva6; other opcodes execute
//! as NOPs.

use crate::Design;
use isa::Opcode;
use netlist::annotate::{Annotations, FsmState, NamedState, UFsm};
use netlist::Builder;

const W: u8 = 8;
const PCW: u8 = 8;

/// Builds the TinyCore netlist plus annotations.
///
/// # Panics
/// Panics only on internal DSL misuse.
pub fn build_tiny() -> Design {
    let mut b = Builder::new();
    let in_instr = b.input("in_instr", 16);
    let in_valid = b.input("in_valid", 1);

    let pc = b.reg("pc", PCW, 0);
    let ifr = b.reg("ifr", 16, 0);
    let if_valid = b.reg("if_valid", 1, 0);
    let if_pc = b.reg("if_pc", PCW, 0);
    let ex_instr = b.reg("ex_instr", 16, 0);
    let ex_valid = b.reg("ex_valid", 1, 0);
    let ex_pc = b.reg("ex_pc", PCW, 0);
    let op_a = b.reg("op_a", W, 0);
    let op_b = b.reg("op_b", W, 0);
    let wb_valid = b.reg("wb_valid", 1, 0);
    let wb_pc = b.reg("wb_pc", PCW, 0);
    let wb_rd = b.reg("wb_rd", 2, 0);
    let wb_res = b.reg("wb_res", W, 0);
    let wb_wen = b.reg("wb_wen", 1, 0);
    let arf1 = b.reg("arf1", W, 0);
    let arf2 = b.reg("arf2", W, 0);
    let arf3 = b.reg("arf3", W, 0);

    // Stall-free: fetch whenever the input offers an instruction.
    let fetch_fire = b.name(in_valid, "fetch_fire");
    let one_pc = b.constant(1, PCW);
    let pc_inc = b.add(pc, one_pc);
    let pc_next = b.mux(fetch_fire, pc_inc, pc);
    b.set_next(pc, pc_next).expect("pc");
    let ifr_next = b.mux(fetch_fire, in_instr, ifr);
    b.set_next(ifr, ifr_next).expect("ifr");
    let ifpc_next = b.mux(fetch_fire, pc, if_pc);
    b.set_next(if_pc, ifpc_next).expect("if_pc");
    b.set_next(if_valid, fetch_fire).expect("if_valid");

    // Decode at IF -> EX boundary: read the register file.
    let d_rs1 = {
        let w = b.slice(ifr, 8, 7);
        b.name(w, "d_rs1")
    };
    let d_rs2 = {
        let w = b.slice(ifr, 6, 5);
        b.name(w, "d_rs2")
    };
    let zero_w = b.constant(0, W);
    let read = |b: &mut Builder, ix: netlist::Wire| {
        let is1 = b.eq_const(ix, 1);
        let is2 = b.eq_const(ix, 2);
        let is3 = b.eq_const(ix, 3);
        b.select(&[(is1, arf1), (is2, arf2), (is3, arf3)], zero_w)
    };
    let rs1_val = read(&mut b, d_rs1);
    let rs2_val = read(&mut b, d_rs2);
    // The EX stage consumes IF every cycle (no stalls).
    let _issue_fire = b.name(if_valid, "issue_fire");
    let ex_instr_next = b.mux(if_valid, ifr, ex_instr);
    b.set_next(ex_instr, ex_instr_next).expect("ex_instr");
    let ex_pc_next = b.mux(if_valid, if_pc, ex_pc);
    b.set_next(ex_pc, ex_pc_next).expect("ex_pc");
    b.set_next(ex_valid, if_valid).expect("ex_valid");
    let op_a_next = b.mux(if_valid, rs1_val, op_a);
    b.set_next(op_a, op_a_next).expect("op_a");
    let op_b_next = b.mux(if_valid, rs2_val, op_b);
    b.set_next(op_b, op_b_next).expect("op_b");

    // EX: compute.
    let e_op = b.slice(ex_instr, 15, 11);
    let e_rd = b.slice(ex_instr, 10, 9);
    let e_imm5 = b.slice(ex_instr, 4, 0);
    let e_imm = b.sext(e_imm5, W);
    let opc = |b: &mut Builder, o: Opcode| b.eq_const(e_op, o.bits() as u64);
    let is_addi = opc(&mut b, Opcode::Addi);
    let rhs = b.mux(is_addi, e_imm, op_b);
    let sum = b.add(op_a, rhs);
    let diff = b.sub(op_a, op_b);
    let and_r = b.and(op_a, op_b);
    let or_r = b.or(op_a, op_b);
    let xor_r = b.xor(op_a, op_b);
    let is_add = opc(&mut b, Opcode::Add);
    let is_sub = opc(&mut b, Opcode::Sub);
    let is_and = opc(&mut b, Opcode::And);
    let is_or = opc(&mut b, Opcode::Or);
    let is_xor = opc(&mut b, Opcode::Xor);
    let result = b.select(
        &[
            (is_add, sum),
            (is_addi, sum),
            (is_sub, diff),
            (is_and, and_r),
            (is_or, or_r),
            (is_xor, xor_r),
        ],
        zero_w,
    );
    let writes = {
        let ops = [is_add, is_addi, is_sub, is_and, is_or, is_xor];
        let any = b.any(&ops);
        let rd_nz = {
            let z = b.eq_const(e_rd, 0);
            b.not(z)
        };
        b.and(any, rd_nz)
    };

    // WB stage.
    b.set_next(wb_valid, ex_valid).expect("wb_valid");
    let wb_pc_next = b.mux(ex_valid, ex_pc, wb_pc);
    b.set_next(wb_pc, wb_pc_next).expect("wb_pc");
    let wb_rd_next = b.mux(ex_valid, e_rd, wb_rd);
    b.set_next(wb_rd, wb_rd_next).expect("wb_rd");
    let wb_res_next = b.mux(ex_valid, result, wb_res);
    b.set_next(wb_res, wb_res_next).expect("wb_res");
    let wen_gated = b.and(ex_valid, writes);
    b.set_next(wb_wen, wen_gated).expect("wb_wen");

    // Register-file writes happen in WB.
    let _commit_fire = b.name(wb_valid, "commit_fire");
    let do_write = b.and(wb_valid, wb_wen);
    for (ix, arf) in [(1u64, arf1), (2, arf2), (3, arf3)] {
        let sel = b.eq_const(wb_rd, ix);
        let wr = b.and(do_write, sel);
        let next = b.mux(wr, wb_res, arf);
        b.set_next(arf, next).expect("arf");
    }
    b.name(wb_pc, "commit_pc_now");

    let netlist = b.finish().expect("TinyCore netlist is valid");
    let f = |n: &str| netlist.find(n).unwrap_or_else(|| panic!("missing {n}"));
    let single = |name: &str, state: &str, var: &str, pcr: &str| UFsm {
        name: name.into(),
        pcr: f(pcr),
        vars: vec![f(var)],
        idle: vec![FsmState(vec![0])],
        states: Some(vec![NamedState {
            name: state.into(),
            state: FsmState(vec![1]),
        }]),
        pcr_added: false,
    };
    let annotations = Annotations {
        ifr: f("ifr"),
        fetch_valid: f("if_valid"),
        fetch_pc: f("if_pc"),
        commit: f("commit_fire"),
        commit_pc: f("commit_pc_now"),
        operand_regs: vec![f("op_a"), f("op_b")],
        arf: vec![f("arf1"), f("arf2"), f("arf3")],
        amem: vec![],
        ufsms: vec![
            single("u_if", "IF", "if_valid", "if_pc"),
            single("u_ex", "EX", "ex_valid", "ex_pc"),
            single("u_wb", "WB", "wb_valid", "wb_pc"),
        ],
        persistent: vec![],
        added_loc: 0,
    };
    annotations
        .validate(&netlist)
        .expect("TinyCore annotations are consistent");
    let fetch_instr_input = f("in_instr");
    let fetch_valid_input = f("in_valid");
    let fetch_fire_sig = f("fetch_fire");
    let issue_fire_sig = f("issue_fire");
    let issue_pc_sig = f("if_pc");
    let issue_valid_sig = f("if_valid");
    let rs_fields = Some((f("d_rs1"), f("d_rs2")));
    let pc_sig = f("pc");
    Design {
        name: "TinyCore".into(),
        netlist,
        annotations,
        fetch_instr_input,
        fetch_valid_input,
        fetch_fire: fetch_fire_sig,
        issue_fire: issue_fire_sig,
        issue_pc: issue_pc_sig,
        issue_valid: issue_valid_sig,
        rs_fields,
        pc: pc_sig,
        type_field: crate::TypeField { hi: 15, lo: 11 },
        type_values: vec![],
        isa: vec![
            Opcode::Nop,
            Opcode::Add,
            Opcode::Sub,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Addi,
        ],
        max_latency: 4,
        outputs: vec![],
    }
}
