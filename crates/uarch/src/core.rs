//! MiniCva6: a speculative, scoreboard-based, in-order-issue /
//! out-of-order-completion pipeline — the reproduction's CVA6 analogue.
//!
//! Microarchitecture (all µFSM-tracked, mirroring the paper's §III-C):
//!
//! ```text
//!   in_instr/in_valid ──► IF (ifr, if_pc) ──► ID (decode, hazards, issue)
//!                                              │ op_a/op_b operand regs
//!          ┌──────────────┬────────────┬───────┴─────┬──────────────┐
//!        aluU           mulU         divU           ldReq/Stall/Fin stU
//!        1 cycle        1 or N       1..5 cycles    memory port     1 cycle
//!        (branches      cycles       (early-term    arbitration      │
//!         redirect)     (zero-skip)   serial div)                 specSTB
//!          └──────────────┴────────────┴─────────────┴───────┐       │
//!                           scoreboard (scbIss/scbFin per entry)     │
//!                                  in-order commit (scbCmt) ───► comSTB ──► dmem
//! ```
//!
//! Leakage-relevant mechanisms reproduced from the paper's evaluation:
//!
//! * serial divider with data-dependent latency (intrinsic DIV/REM
//!   transmitters, §VII-A1),
//! * optional zero-skip multiplier (CVA6-MUL, Fig. 1),
//! * optional operand-packing decode (CVA6-OP, Fig. 2),
//! * store-to-load page-offset stalling (`LD_issue`, Fig. 4b/5),
//! * committed-store-buffer drain stalled by younger loads taking the
//!   single memory port (the paper's novel `ST_comSTB` channel, §VII-A1),
//! * branch/JALR squash of younger fetched instructions (dynamic
//!   control-flow transmitters),
//! * FIFO scoreboard with in-order commit (secondary leakage through
//!   `scbFin` stalls).

use crate::config::{CoreConfig, DivPolicy, MulPolicy};
use crate::Design;
use isa::Opcode;
use netlist::annotate::{Annotations, FsmState, NamedState, UFsm};
use netlist::{Builder, MemArray, Wire};

/// Width of the datapath.
const W: u8 = 8;
/// Width of the PC.
const PCW: u8 = 8;
/// LD-unit states.
const LD_IDLE: u64 = 0;
const LD_REQ: u64 = 1;
const LD_STALL: u64 = 2;
const LD_FIN: u64 = 3;

/// Builds a MiniCva6 core netlist plus its annotations.
///
/// # Panics
/// Panics only on internal DSL misuse (a bug in this constructor).
pub fn build_core(cfg: &CoreConfig) -> Design {
    let n_scb = cfg.scb_entries;
    assert!(
        n_scb == 2 || n_scb == 4,
        "scb_entries must be 2 or 4 (power of two ring)"
    );
    let scb_ptr_w: u8 = if n_scb == 2 { 1 } else { 2 };

    let mut b = Builder::new();
    let one1 = b.one();
    let zero1 = b.zero();

    // ---- primary inputs -----------------------------------------------
    let in_instr = b.input("in_instr", 16);
    let in_valid = b.input("in_valid", 1);

    // ---- state declarations -------------------------------------------
    let pc = b.reg("pc", PCW, 0);
    let ifr = b.reg("ifr", 16, 0);
    let if_valid = b.reg("if_valid", 1, 0);
    let if_pc = b.reg("if_pc", PCW, 0);

    let id_instr = b.reg("id_instr", 16, 0);
    let id_valid = b.reg("id_valid", 1, 0);
    let id_pc = b.reg("id_pc", PCW, 0);
    // Operand-packing extra decode cycle; only instantiated when the
    // packing feature reads it (a permanently-unread register is dead
    // logic, and the lint suite rightly flags it).
    let id_wait = cfg.op_packing.then(|| b.reg("id_wait", 1, 0));

    let op_a = b.reg("op_a", W, 0); // operand registers (taint sources)
    let op_b = b.reg("op_b", W, 0);

    // ALU (1-cycle unit; also resolves branches/jumps).
    let alu_v = b.reg("alu_v", 1, 0);
    let alu_pc = b.reg("alu_pc", PCW, 0);
    let alu_op = b.reg("alu_op", 5, 0);
    let alu_imm = b.reg("alu_imm", W, 0); // sign-extended immediate
    let alu_idx = b.reg("alu_idx", scb_ptr_w, 0);

    // MUL unit.
    let mul_busy = b.reg("mul_busy", 1, 0);
    let mul_first = b.reg("mul_first", 1, 0);
    let mul_pc = b.reg("mul_pc", PCW, 0);
    let mul_cnt = b.reg("mul_cnt", 3, 0);
    let mul_res = b.reg("mul_res", W, 0);
    let mul_hi = b.reg("mul_hi", 1, 0);
    let mul_idx = b.reg("mul_idx", scb_ptr_w, 0);

    // DIV unit.
    let div_busy = b.reg("div_busy", 1, 0);
    let div_first = b.reg("div_first", 1, 0);
    let div_pc = b.reg("div_pc", PCW, 0);
    let div_cnt = b.reg("div_cnt", 3, 0);
    let div_res = b.reg("div_res", W, 0);
    let div_op = b.reg("div_op", 2, 0); // 0=div 1=divu 2=rem 3=remu
    let div_idx = b.reg("div_idx", scb_ptr_w, 0);

    // LD unit.
    let ld_state = b.reg("ld_state", 2, LD_IDLE);
    let ld_pc = b.reg("ld_pc", PCW, 0);
    let ld_imm = b.reg("ld_imm", W, 0);
    let ld_addr = b.reg("ld_addr", W, 0);
    let ld_data = b.reg("ld_data", W, 0);
    let ld_first = b.reg("ld_first", 1, 0); // address-generation cycle
    let ld_idx = b.reg("ld_idx", scb_ptr_w, 0);

    // ST unit (1-cycle address/data generation).
    let st_v = b.reg("st_v", 1, 0);
    let st_pc = b.reg("st_pc", PCW, 0);
    let st_imm = b.reg("st_imm", W, 0);
    let st_idx = b.reg("st_idx", scb_ptr_w, 0);

    // Speculative store buffer (1 entry).
    let sb_v = b.reg("sb_v", 1, 0);
    let sb_pc = b.reg("sb_pc", PCW, 0);
    let sb_addr = b.reg("sb_addr", W, 0);
    let sb_data = b.reg("sb_data", W, 0);

    // Committed store buffer (1 entry).
    let cb_v = b.reg("cb_v", 1, 0);
    let cb_pc = b.reg("cb_pc", PCW, 0);
    let cb_addr = b.reg("cb_addr", W, 0);
    let cb_data = b.reg("cb_data", W, 0);

    // Memory-request stage: the cycle a committed store drains to memory
    // (the paper's memRq PL, Fig. 5 ST_comSTB).
    let mq_v = b.reg("mq_v", 1, 0);
    let mq_pc = b.reg("mq_pc", PCW, 0);

    // Scoreboard ring.
    let mut sc_v = Vec::new();
    let mut sc_done = Vec::new();
    let mut sc_pc = Vec::new();
    let mut sc_rd = Vec::new();
    let mut sc_wen = Vec::new();
    let mut sc_res = Vec::new();
    let mut sc_store = Vec::new();
    for i in 0..n_scb {
        sc_v.push(b.reg(&format!("sc{i}_v"), 1, 0));
        sc_done.push(b.reg(&format!("sc{i}_done"), 1, 0));
        sc_pc.push(b.reg(&format!("sc{i}_pc"), PCW, 0));
        sc_rd.push(b.reg(&format!("sc{i}_rd"), 2, 0));
        sc_wen.push(b.reg(&format!("sc{i}_wen"), 1, 0));
        sc_res.push(b.reg(&format!("sc{i}_res"), W, 0));
        sc_store.push(b.reg(&format!("sc{i}_store"), 1, 0));
    }
    let scb_head = b.reg("scb_head", scb_ptr_w, 0);
    let scb_tail = b.reg("scb_tail", scb_ptr_w, 0);

    let cf_pending = b.reg("cf_pending", 1, 0);

    // Commit stage (the scbCmt PL).
    let cm_v = b.reg("cm_v", 1, 0);
    let cm_pc = b.reg("cm_pc", PCW, 0);

    // Architectural register file (r0 hardwired to zero, so 3 registers).
    let arf1 = b.reg("arf1", W, 0);
    let arf2 = b.reg("arf2", W, 0);
    let arf3 = b.reg("arf3", W, 0);

    // Data memory.
    let mut dmem = MemArray::new(&mut b, "dmem", isa::MEM_WORDS, W);

    // ---- helpers --------------------------------------------------------
    let opc = |b: &mut Builder, field: Wire, o: Opcode| b.eq_const(field, o.bits() as u64);
    let offset_of = |b: &mut Builder, addr: Wire| b.slice(addr, isa::OFFSET_BITS - 1, 0);

    // ---- decode (combinational, from ID) --------------------------------
    let d_op = b.slice(id_instr, 15, 11);
    let d_rd = b.slice(id_instr, 10, 9);
    let d_rs1 = {
        let w = b.slice(id_instr, 8, 7);
        b.name(w, "d_rs1")
    };
    let d_rs2 = {
        let w = b.slice(id_instr, 6, 5);
        b.name(w, "d_rs2")
    };
    let d_imm5 = b.slice(id_instr, 4, 0);
    let d_imm = b.sext(d_imm5, W);

    let arf_read = |b: &mut Builder, ix: Wire| -> Wire {
        let zero = b.constant(0, W);
        let is1 = b.eq_const(ix, 1);
        let is2 = b.eq_const(ix, 2);
        let is3 = b.eq_const(ix, 3);
        b.select(&[(is1, arf1), (is2, arf2), (is3, arf3)], zero)
    };
    let rs1_val = arf_read(&mut b, d_rs1);
    let rs2_val = arf_read(&mut b, d_rs2);

    // Opcode classes.
    let class = |b: &mut Builder, ops: &[Opcode]| -> Wire {
        let bits: Vec<Wire> = ops.iter().map(|&o| opc(b, d_op, o)).collect();
        b.any(&bits)
    };
    let is_mul = class(&mut b, &[Opcode::Mul, Opcode::Mulh]);
    let is_div = class(
        &mut b,
        &[Opcode::Div, Opcode::Divu, Opcode::Rem, Opcode::Remu],
    );
    let is_ld = class(&mut b, &[Opcode::Lw]);
    let is_sw = class(&mut b, &[Opcode::Sw]);
    let is_branch = class(
        &mut b,
        &[
            Opcode::Beq,
            Opcode::Bne,
            Opcode::Blt,
            Opcode::Bge,
            Opcode::Bltu,
            Opcode::Bgeu,
        ],
    );
    let is_jal = class(&mut b, &[Opcode::Jal]);
    let is_jalr = class(&mut b, &[Opcode::Jalr]);
    let is_cf = {
        let t = b.or(is_branch, is_jal);
        b.or(t, is_jalr)
    };
    let mem_or_mul_or_div = {
        let t = b.or(is_mul, is_div);
        let u = b.or(is_ld, is_sw);
        b.or(t, u)
    };
    let is_alu_class = b.not(mem_or_mul_or_div); // incl. NOP, cf, arith, imm

    // Register-read requirements (mirrors `Opcode::reads_rs1/rs2`).
    let reads_rs1 = {
        let nop = opc(&mut b, d_op, Opcode::Nop);
        let jal = is_jal;
        let either = b.or(nop, jal);
        b.not(either)
    };
    let reads_rs2 = {
        // rrr arithmetic + branches + sw.
        let rrr = class(
            &mut b,
            &[
                Opcode::Add,
                Opcode::Sub,
                Opcode::And,
                Opcode::Or,
                Opcode::Xor,
                Opcode::Sll,
                Opcode::Srl,
                Opcode::Slt,
                Opcode::Sltu,
                Opcode::Mul,
                Opcode::Mulh,
                Opcode::Div,
                Opcode::Divu,
                Opcode::Rem,
                Opcode::Remu,
                Opcode::Sw,
            ],
        );
        b.or(rrr, is_branch)
    };
    let writes_rd = {
        let nop = opc(&mut b, d_op, Opcode::Nop);
        let no_wr = {
            let t = b.or(nop, is_sw);
            b.or(t, is_branch)
        };
        let rd_nonzero = {
            let z = b.eq_const(d_rd, 0);
            b.not(z)
        };
        let w = b.not(no_wr);
        b.and(w, rd_nonzero)
    };

    // ---- hazards ---------------------------------------------------------
    let pending = |b: &mut Builder, r: Wire| -> Wire {
        let mut hit = b.zero();
        for i in 0..n_scb {
            let same = b.eq(sc_rd[i], r);
            let wen = b.and(sc_v[i], sc_wen[i]);
            let h = b.and(wen, same);
            hit = b.or(hit, h);
        }
        hit
    };
    let raw1 = {
        let p = pending(&mut b, d_rs1);
        b.and(p, reads_rs1)
    };
    let raw2 = {
        let p = pending(&mut b, d_rs2);
        b.and(p, reads_rs2)
    };
    let raw_hazard = b.or(raw1, raw2);

    // ---- ALU / branch resolution (at the unit, one cycle after issue) ----
    let a = op_a;
    let bb = op_b;
    let imm = alu_imm;
    let aop = alu_op;
    let use_imm = {
        let ops = [
            Opcode::Addi,
            Opcode::Andi,
            Opcode::Ori,
            Opcode::Xori,
            Opcode::Slti,
        ];
        let bits: Vec<Wire> = ops.iter().map(|&o| opc(&mut b, aop, o)).collect();
        b.any(&bits)
    };
    let rhs = b.mux(use_imm, imm, bb);
    let sum = b.add(a, rhs);
    let diff = b.sub(a, rhs);
    let and_r = b.and(a, rhs);
    let or_r = b.or(a, rhs);
    let xor_r = b.xor(a, rhs);
    let sll_r = b.shl(a, rhs);
    let srl_r = b.shr(a, rhs);
    let a_sign = b.bit(a, 7);
    let r_sign = b.bit(rhs, 7);
    let ult_r = b.ult(a, rhs);
    let slt_r = {
        let differ = b.xor(a_sign, r_sign);
        b.mux(differ, a_sign, ult_r)
    };
    let slt_w = b.zext(slt_r, W);
    let ult_w = b.zext(ult_r, W);
    let link = {
        let one = b.constant(1, PCW);
        b.add(alu_pc, one)
    };
    let eq_ab = b.eq(a, bb);
    let alu_result = {
        let mut arms = Vec::new();
        for (o, val) in [
            (Opcode::Add, sum),
            (Opcode::Addi, sum),
            (Opcode::Sub, diff),
            (Opcode::And, and_r),
            (Opcode::Andi, and_r),
            (Opcode::Or, or_r),
            (Opcode::Ori, or_r),
            (Opcode::Xor, xor_r),
            (Opcode::Xori, xor_r),
            (Opcode::Sll, sll_r),
            (Opcode::Srl, srl_r),
            (Opcode::Slt, slt_w),
            (Opcode::Slti, slt_w),
            (Opcode::Sltu, ult_w),
            (Opcode::Jal, link),
            (Opcode::Jalr, link),
        ] {
            let c = opc(&mut b, aop, o);
            arms.push((c, val));
        }
        let zero = b.constant(0, W);
        b.select(&arms, zero)
    };
    // Branch outcome.
    let a_lt_s = slt_r;
    let a_lt_u = ult_r;
    let taken = {
        let beq = opc(&mut b, aop, Opcode::Beq);
        let bne = opc(&mut b, aop, Opcode::Bne);
        let blt = opc(&mut b, aop, Opcode::Blt);
        let bge = opc(&mut b, aop, Opcode::Bge);
        let bltu = opc(&mut b, aop, Opcode::Bltu);
        let bgeu = opc(&mut b, aop, Opcode::Bgeu);
        let neq = b.not(eq_ab);
        let ges = b.not(a_lt_s);
        let geu = b.not(a_lt_u);
        let mut t = b.zero();
        for (c, v) in [
            (beq, eq_ab),
            (bne, neq),
            (blt, a_lt_s),
            (bge, ges),
            (bltu, a_lt_u),
            (bgeu, geu),
        ] {
            let x = b.and(c, v);
            t = b.or(t, x);
        }
        t
    };
    let alu_is_jal = opc(&mut b, aop, Opcode::Jal);
    let alu_is_jalr = opc(&mut b, aop, Opcode::Jalr);
    let jump = b.or(alu_is_jal, alu_is_jalr);
    let redirect = {
        let t = b.or(taken, jump);
        b.and(alu_v, t)
    };
    let redirect = b.name(redirect, "redirect");
    let br_target = b.add(alu_pc, imm);
    let jalr_target = b.add(a, imm);
    let target = b.mux(alu_is_jalr, jalr_target, br_target);

    // Seeded bug: JALR fails to squash the fetch stage.
    let squash_if = if cfg.bug_jalr_no_squash {
        let nj = b.not(alu_is_jalr);
        b.and(redirect, nj)
    } else {
        redirect
    };

    // ---- MUL unit ---------------------------------------------------------
    let prod16 = {
        let az = b.zext(a, 16);
        let bz = b.zext(bb, 16);
        b.mul(az, bz)
    };
    let prod_lo = b.slice(prod16, 7, 0);
    let prod_hi = b.slice(prod16, 15, 8);
    let mul_value = b.mux(mul_hi, prod_hi, prod_lo);
    let mul_lat: Wire = match cfg.mul {
        MulPolicy::Fixed(n) => b.constant(n as u64, 3),
        MulPolicy::ZeroSkip { slow } => {
            let az = b.is_zero(a);
            let bz = b.is_zero(bb);
            let any_zero = b.or(az, bz);
            let fast = b.constant(1, 3);
            let slow_c = b.constant(slow as u64, 3);
            b.mux(any_zero, fast, slow_c)
        }
    };
    let mul_done = {
        let lat1 = b.eq_const(mul_lat, 1);
        let f = b.and(mul_first, lat1);
        let later = {
            let nf = b.not(mul_first);
            let c1 = b.eq_const(mul_cnt, 1);
            b.and(nf, c1)
        };
        let d = b.or(f, later);
        b.and(mul_busy, d)
    };
    let mul_out = b.mux(mul_first, mul_value, mul_res);

    // ---- DIV unit (restoring divider + sign fixups) ------------------------
    let div_signed = {
        let d = b.eq_const(div_op, 0);
        let r = b.eq_const(div_op, 2);
        b.or(d, r)
    };
    let b_sign = b.bit(bb, 7);
    let a_abs = {
        let na = b.neg(a);
        let sel = b.and(div_signed, a_sign);
        b.mux(sel, na, a)
    };
    let b_abs = {
        let nb = b.neg(bb);
        let sel = b.and(div_signed, b_sign);
        b.mux(sel, nb, bb)
    };
    // Restoring division: 8 iterations over 9-bit remainders.
    let (qu, ru) = {
        let mut rem = b.constant(0, 9);
        let b9 = b.zext(b_abs, 9);
        let mut qbits: Vec<Wire> = Vec::new();
        for i in (0..8).rev() {
            let abit = b.bit(a_abs, i);
            let shifted = {
                let lo8 = b.slice(rem, 7, 0);
                b.concat(lo8, abit) // rem = (rem << 1) | a[i]
            };
            let ge = b.ule(b9, shifted);
            let sub = b.sub(shifted, b9);
            rem = b.mux(ge, sub, shifted);
            qbits.push(ge);
        }
        // qbits[0] is the MSB.
        let mut q = qbits[0];
        for &bit in &qbits[1..] {
            q = b.concat(q, bit);
        }
        let r8 = b.slice(rem, 7, 0);
        (q, r8)
    };
    let q_neg = b.neg(qu);
    let r_neg = b.neg(ru);
    let q_sign_differs = b.xor(a_sign, b_sign);
    let q_signed = {
        let sel = b.and(div_signed, q_sign_differs);
        b.mux(sel, q_neg, qu)
    };
    let r_signed = {
        let sel = b.and(div_signed, a_sign);
        b.mux(sel, r_neg, ru)
    };
    let b_zero = b.is_zero(bb);
    let overflow = {
        let amin = b.eq_const(a, 0x80);
        let bneg1 = b.eq_const(bb, 0xff);
        let o = b.and(amin, bneg1);
        b.and(div_signed, o)
    };
    let div_is_rem = b.bit(div_op, 1); // 2=rem, 3=remu
    let all_ones = b.constant(0xff, W);
    let zero_w = b.constant(0, W);
    let x80 = b.constant(0x80, W);
    let div_value = {
        // quotient path
        let q_ok = b.mux(overflow, x80, q_signed);
        let q_final = b.mux(b_zero, all_ones, q_ok);
        // remainder path
        let r_ok = b.mux(overflow, zero_w, r_signed);
        let r_final = b.mux(b_zero, a, r_ok);
        b.mux(div_is_rem, r_final, q_final)
    };
    let div_lat: Wire = match cfg.div {
        DivPolicy::Fixed(n) => b.constant(n as u64, 3),
        DivPolicy::EarlyTerminate => {
            // 1 + (a!=0) + (a>=4) + (a>=16) + (a>=64), range 1..=5, with a
            // one-cycle early-out on a zero divisor (so both operands shape
            // the latency, as in CVA6's serial divider).
            let one3 = b.constant(1, 3);
            let nz = b.red_or(a);
            let hi2 = b.slice(a, 7, 2);
            let ge4 = b.red_or(hi2);
            let hi4 = b.slice(a, 7, 4);
            let ge16 = b.red_or(hi4);
            let hi6 = b.slice(a, 7, 6);
            let ge64 = b.red_or(hi6);
            let mut lat = one3;
            for bit in [nz, ge4, ge16, ge64] {
                let ext = b.zext(bit, 3);
                lat = b.add(lat, ext);
            }
            let bz = b.is_zero(bb);
            b.mux(bz, one3, lat)
        }
    };
    let div_done = {
        let lat1 = b.eq_const(div_lat, 1);
        let f = b.and(div_first, lat1);
        let later = {
            let nf = b.not(div_first);
            let c1 = b.eq_const(div_cnt, 1);
            b.and(nf, c1)
        };
        let d = b.or(f, later);
        b.and(div_busy, d)
    };
    let div_out = b.mux(div_first, div_value, div_res);

    // ---- structural hazards and the issue decision -----------------------
    // A unit is free for a new dispatch iff it is idle or *actually
    // completing this cycle* (its `done` strobe, which accounts for the
    // freshly-computed latency on the first busy cycle).
    let mul_free = {
        let nb = b.not(mul_busy);
        b.or(nb, mul_done)
    };
    let div_free = {
        let nb = b.not(div_busy);
        b.or(nb, div_done)
    };
    let ld_free = {
        let idle = b.eq_const(ld_state, LD_IDLE);
        let fin = b.eq_const(ld_state, LD_FIN);
        b.or(idle, fin)
    };
    let st_free = {
        let nsv = b.not(st_v);
        let nsb = b.not(sb_v);
        let free = b.and(nsv, nsb);
        // A store may not issue while a load is in flight: this keeps every
        // speculative-STB entry *older* than any checking load, so the
        // store-to-load stall can never deadlock against FIFO commit order.
        b.and(free, ld_free)
    };
    let scb_space = {
        let mut tail_full = zero1;
        for (i, &v) in sc_v.iter().enumerate() {
            let at = b.eq_const(scb_tail, i as u64);
            let f = b.and(at, v);
            tail_full = b.or(tail_full, f);
        }
        if cfg.bug_scb_underutilized {
            // Seeded bug: also treat "the entry *behind* the tail is still
            // valid" as full — the ring never reaches full occupancy, so
            // the deepest simultaneous occupancy is n-1 entries (the
            // paper's under-utilised-SCB symptom).
            let one_p = b.constant(1, scb_ptr_w);
            let next_tail = b.add(scb_tail, one_p);
            let mut next_full = zero1;
            for (i, &v) in sc_v.iter().enumerate() {
                let at = b.eq_const(next_tail, i as u64);
                let f = b.and(at, v);
                next_full = b.or(next_full, f);
            }
            let either = b.or(tail_full, next_full);
            b.not(either)
        } else {
            b.not(tail_full)
        }
    };
    let fu_ok = {
        let m = b.mux(is_mul, mul_free, one1);
        let d = b.mux(is_div, div_free, one1);
        let l = b.mux(is_ld, ld_free, one1);
        let s = b.mux(is_sw, st_free, one1);
        let md = b.and(m, d);
        let ls = b.and(l, s);
        b.and(md, ls)
    };

    // Operand-packing decode stall (CVA6-OP): a wide ADD takes one extra
    // decode cycle.
    let packing_stall = if cfg.op_packing {
        let is_add = opc(&mut b, d_op, Opcode::Add);
        let both = b.or(rs1_val, rs2_val);
        let upper = b.slice(both, 7, 4);
        let wide = b.red_or(upper);
        let first_cycle = b.not(id_wait.expect("op_packing instantiates id_wait"));
        let aw = b.and(is_add, wide);
        b.and(aw, first_cycle)
    } else {
        zero1
    };

    let no_cf_block = b.not(cf_pending);
    let issue_fire = {
        let h = b.not(raw_hazard);
        let p = b.not(packing_stall);
        let a = b.and(id_valid, no_cf_block);
        let c = b.and(h, p);
        let d = b.and(fu_ok, scb_space);
        let ac = b.and(a, c);
        b.and(ac, d)
    };
    let issue_fire = b.name(issue_fire, "issue_fire");

    // ---- LD unit -----------------------------------------------------------
    let ld_req = b.eq_const(ld_state, LD_REQ);
    let ld_stall_now = b.eq_const(ld_state, LD_STALL);
    let ld_fin_now = b.eq_const(ld_state, LD_FIN);
    // Address generation on the first REQ cycle.
    let ld_agu = b.add(a, ld_imm);
    let ld_eff_addr = b.mux(ld_first, ld_agu, ld_addr);
    let ld_off = offset_of(&mut b, ld_eff_addr);
    let sb_off = offset_of(&mut b, sb_addr);
    let cb_off = offset_of(&mut b, cb_addr);
    let conflict = {
        let m1 = b.eq(ld_off, sb_off);
        let c1 = b.and(sb_v, m1);
        let m2 = b.eq(ld_off, cb_off);
        let c2 = b.and(cb_v, m2);
        b.or(c1, c2)
    };
    let ld_checking = b.or(ld_req, ld_stall_now);
    let ld_takes_port = {
        let nc = b.not(conflict);
        b.and(ld_checking, nc)
    };
    let ld_takes_port = b.name(ld_takes_port, "ld_takes_port");
    let mem_addr3 = b.slice(ld_eff_addr, 2, 0);
    let ld_rdata = dmem.read(&mut b, mem_addr3);

    // ---- committed store buffer drain ---------------------------------------
    let drain = {
        let np = b.not(ld_takes_port);
        b.and(cb_v, np)
    };
    let drain = b.name(drain, "stb_drain");
    let cb_addr3 = b.slice(cb_addr, 2, 0);
    dmem.write(drain, cb_addr3, cb_data);

    // ---- ST unit (address/data generation cycle) ----------------------------
    let st_addr_gen = b.add(a, st_imm);
    let st_done = st_v;

    // ---- scoreboard writes ---------------------------------------------------
    // Completion events: (strobe, index, result).
    let alu_done = alu_v;
    let ld_done = ld_fin_now;
    let completions: Vec<(Wire, Wire, Wire)> = vec![
        (alu_done, alu_idx, alu_result),
        (mul_done, mul_idx, mul_out),
        (div_done, div_idx, div_out),
        (ld_done, ld_idx, ld_data),
        (st_done, st_idx, zero_w),
    ];

    // ---- commit ---------------------------------------------------------------
    let mut head_v = b.zero();
    let mut head_done = b.zero();
    let mut head_store = b.zero();
    let mut head_pc = b.constant(0, PCW);
    let mut head_rd = b.constant(0, 2);
    let mut head_wen = b.zero();
    let mut head_res = b.constant(0, W);
    for i in 0..n_scb {
        let at = b.eq_const(scb_head, i as u64);
        head_v = {
            let x = b.and(at, sc_v[i]);
            b.or(head_v, x)
        };
        head_done = {
            let x = b.and(at, sc_done[i]);
            b.or(head_done, x)
        };
        head_store = {
            let x = b.and(at, sc_store[i]);
            b.or(head_store, x)
        };
        head_pc = b.mux(at, sc_pc[i], head_pc);
        head_rd = b.mux(at, sc_rd[i], head_rd);
        head_wen = b.mux(at, sc_wen[i], head_wen);
        head_res = b.mux(at, sc_res[i], head_res);
    }
    let store_ok = {
        let ncb = b.not(cb_v);
        b.mux(head_store, ncb, one1)
    };
    let commit_fire = {
        let hd = b.and(head_v, head_done);
        b.and(hd, store_ok)
    };
    let commit_fire = b.name(commit_fire, "commit_fire");
    let commit_pc_now = b.name(head_pc, "commit_pc_now");
    let _ = commit_pc_now;

    // ARF writes at commit.
    let commit_wr = b.and(commit_fire, head_wen);
    for (ix, arf) in [(1u64, arf1), (2, arf2), (3, arf3)] {
        let sel = b.eq_const(head_rd, ix);
        let wr = b.and(commit_wr, sel);
        let next = b.mux(wr, head_res, arf);
        b.set_next(arf, next).expect("arf next");
    }

    // ---- fetch handshake --------------------------------------------------------
    let id_free = {
        let ninv = b.not(id_valid);
        b.or(ninv, issue_fire)
    };
    let if_to_id = b.and(if_valid, id_free);
    let if_free = {
        let ninv = b.not(if_valid);
        b.or(ninv, if_to_id)
    };
    let fetch_fire = {
        let nr = b.not(redirect);
        let f = b.and(in_valid, if_free);
        b.and(f, nr)
    };
    let fetch_fire = b.name(fetch_fire, "fetch_fire");

    // ---- next-state wiring --------------------------------------------------------
    let one_pc = b.constant(1, PCW);
    let pc_inc = b.add(pc, one_pc);
    let pc_next = {
        let advanced = b.mux(fetch_fire, pc_inc, pc);
        b.mux(redirect, target, advanced)
    };
    b.set_next(pc, pc_next).expect("pc");

    let ifr_next = b.mux(fetch_fire, in_instr, ifr);
    b.set_next(ifr, ifr_next).expect("ifr");
    let if_pc_next = b.mux(fetch_fire, pc, if_pc);
    b.set_next(if_pc, if_pc_next).expect("if_pc");
    let if_valid_next = {
        let after_move = b.mux(if_to_id, zero1, if_valid);
        let with_fetch = b.mux(fetch_fire, one1, after_move);
        b.mux(squash_if, zero1, with_fetch)
    };
    b.set_next(if_valid, if_valid_next).expect("if_valid");

    let id_valid_next = {
        let after_issue = b.mux(issue_fire, zero1, id_valid);
        let with_fill = b.mux(if_to_id, one1, after_issue);
        b.mux(redirect, zero1, with_fill)
    };
    b.set_next(id_valid, id_valid_next).expect("id_valid");
    let id_instr_next = b.mux(if_to_id, ifr, id_instr);
    b.set_next(id_instr, id_instr_next).expect("id_instr");
    let id_pc_next = b.mux(if_to_id, if_pc, id_pc);
    b.set_next(id_pc, id_pc_next).expect("id_pc");
    if let Some(id_wait) = id_wait {
        let id_wait_next = {
            let set = b.mux(packing_stall, one1, id_wait);
            let cleared = b.mux(if_to_id, zero1, set);
            b.mux(redirect, zero1, cleared)
        };
        b.set_next(id_wait, id_wait_next).expect("id_wait");
    }

    // Operand registers: latched at issue.
    let op_a_next = b.mux(issue_fire, rs1_val, op_a);
    b.set_next(op_a, op_a_next).expect("op_a");
    let op_b_next = b.mux(issue_fire, rs2_val, op_b);
    b.set_next(op_b, op_b_next).expect("op_b");

    // Dispatch strobes.
    let disp_alu = b.and(issue_fire, is_alu_class);
    let disp_mul = b.and(issue_fire, is_mul);
    let disp_div = b.and(issue_fire, is_div);
    let disp_ld = b.and(issue_fire, is_ld);
    let disp_st = b.and(issue_fire, is_sw);

    // ALU regs.
    b.set_next(alu_v, disp_alu).expect("alu_v");
    let alu_pc_next = b.mux(disp_alu, id_pc, alu_pc);
    b.set_next(alu_pc, alu_pc_next).expect("alu_pc");
    let alu_op_next = b.mux(disp_alu, d_op, alu_op);
    b.set_next(alu_op, alu_op_next).expect("alu_op");
    let alu_imm_next = b.mux(disp_alu, d_imm, alu_imm);
    b.set_next(alu_imm, alu_imm_next).expect("alu_imm");
    let alu_idx_next = b.mux(disp_alu, scb_tail, alu_idx);
    b.set_next(alu_idx, alu_idx_next).expect("alu_idx");

    // MUL regs.
    let mul_busy_next = {
        let keep = {
            let nd = b.not(mul_done);
            b.and(mul_busy, nd)
        };
        b.or(disp_mul, keep)
    };
    b.set_next(mul_busy, mul_busy_next).expect("mul_busy");
    b.set_next(mul_first, disp_mul).expect("mul_first");
    let mul_pc_next = b.mux(disp_mul, id_pc, mul_pc);
    b.set_next(mul_pc, mul_pc_next).expect("mul_pc");
    let mul_idx_next = b.mux(disp_mul, scb_tail, mul_idx);
    b.set_next(mul_idx, mul_idx_next).expect("mul_idx");
    let is_mulh_d = opc(&mut b, d_op, Opcode::Mulh);
    let mul_hi_next = b.mux(disp_mul, is_mulh_d, mul_hi);
    b.set_next(mul_hi, mul_hi_next).expect("mul_hi");
    let mul_res_next = {
        let capture = b.and(mul_busy, mul_first);
        b.mux(capture, mul_value, mul_res)
    };
    b.set_next(mul_res, mul_res_next).expect("mul_res");
    let mul_cnt_next = {
        let one3 = b.constant(1, 3);
        let dec = b.sub(mul_cnt, one3);
        let lat_m1 = b.sub(mul_lat, one3);
        let first_load = b.mux(mul_first, lat_m1, dec);
        let nd = b.not(mul_done);
        let running = b.and(mul_busy, nd);
        b.mux(running, first_load, mul_cnt)
    };
    b.set_next(mul_cnt, mul_cnt_next).expect("mul_cnt");

    // DIV regs.
    let div_busy_next = {
        let keep = {
            let nd = b.not(div_done);
            b.and(div_busy, nd)
        };
        b.or(disp_div, keep)
    };
    b.set_next(div_busy, div_busy_next).expect("div_busy");
    b.set_next(div_first, disp_div).expect("div_first");
    let div_pc_next = b.mux(disp_div, id_pc, div_pc);
    b.set_next(div_pc, div_pc_next).expect("div_pc");
    let div_idx_next = b.mux(disp_div, scb_tail, div_idx);
    b.set_next(div_idx, div_idx_next).expect("div_idx");
    let div_kind = {
        // 0=div 1=divu 2=rem 3=remu from opcode
        let divu = opc(&mut b, d_op, Opcode::Divu);
        let rem = opc(&mut b, d_op, Opcode::Rem);
        let remu = opc(&mut b, d_op, Opcode::Remu);
        let bit0 = b.or(divu, remu);
        let bit1 = b.or(rem, remu);
        b.concat(bit1, bit0)
    };
    let div_op_next = b.mux(disp_div, div_kind, div_op);
    b.set_next(div_op, div_op_next).expect("div_op");
    let div_res_next = {
        let capture = b.and(div_busy, div_first);
        b.mux(capture, div_value, div_res)
    };
    b.set_next(div_res, div_res_next).expect("div_res");
    let div_cnt_next = {
        let one3 = b.constant(1, 3);
        let dec = b.sub(div_cnt, one3);
        let lat_m1 = b.sub(div_lat, one3);
        let first_load = b.mux(div_first, lat_m1, dec);
        let nd = b.not(div_done);
        let running = b.and(div_busy, nd);
        b.mux(running, first_load, div_cnt)
    };
    b.set_next(div_cnt, div_cnt_next).expect("div_cnt");

    // LD regs.
    let ld_state_next = {
        let req_c = b.constant(LD_REQ, 2);
        let stall_c = b.constant(LD_STALL, 2);
        let fin_c = b.constant(LD_FIN, 2);
        let idle_c = b.constant(LD_IDLE, 2);
        // REQ/STALL: port -> FIN, conflict -> STALL.
        let checking_next = b.mux(ld_takes_port, fin_c, stall_c);
        let mut next = idle_c;
        let in_check = ld_checking;
        next = b.mux(in_check, checking_next, next);
        next = b.mux(ld_fin_now, idle_c, next);
        b.mux(disp_ld, req_c, next)
    };
    b.set_next(ld_state, ld_state_next).expect("ld_state");
    b.set_next(ld_first, disp_ld).expect("ld_first");
    let ld_pc_next = b.mux(disp_ld, id_pc, ld_pc);
    b.set_next(ld_pc, ld_pc_next).expect("ld_pc");
    let ld_imm_next = b.mux(disp_ld, d_imm, ld_imm);
    b.set_next(ld_imm, ld_imm_next).expect("ld_imm");
    let ld_idx_next = b.mux(disp_ld, scb_tail, ld_idx);
    b.set_next(ld_idx, ld_idx_next).expect("ld_idx");
    let ld_addr_next = {
        let capture = b.and(ld_checking, ld_first);
        b.mux(capture, ld_agu, ld_addr)
    };
    b.set_next(ld_addr, ld_addr_next).expect("ld_addr");
    let ld_data_next = b.mux(ld_takes_port, ld_rdata, ld_data);
    b.set_next(ld_data, ld_data_next).expect("ld_data");

    // ST regs.
    b.set_next(st_v, disp_st).expect("st_v");
    let st_pc_next = b.mux(disp_st, id_pc, st_pc);
    b.set_next(st_pc, st_pc_next).expect("st_pc");
    let st_imm_next = b.mux(disp_st, d_imm, st_imm);
    b.set_next(st_imm, st_imm_next).expect("st_imm");
    let st_idx_next = b.mux(disp_st, scb_tail, st_idx);
    b.set_next(st_idx, st_idx_next).expect("st_idx");

    // Speculative STB: filled by the ST unit, emptied at commit.
    let commit_store = b.and(commit_fire, head_store);
    let sb_v_next = {
        let cleared = b.mux(commit_store, zero1, sb_v);
        b.or(st_v, cleared)
    };
    b.set_next(sb_v, sb_v_next).expect("sb_v");
    let sb_pc_next = b.mux(st_v, st_pc, sb_pc);
    b.set_next(sb_pc, sb_pc_next).expect("sb_pc");
    let sb_addr_next = b.mux(st_v, st_addr_gen, sb_addr);
    b.set_next(sb_addr, sb_addr_next).expect("sb_addr");
    let sb_data_next = b.mux(st_v, bb, sb_data);
    b.set_next(sb_data, sb_data_next).expect("sb_data");

    // Committed STB: filled at store commit, emptied by drain.
    let cb_v_next = {
        let drained = b.mux(drain, zero1, cb_v);
        b.or(commit_store, drained)
    };
    b.set_next(cb_v, cb_v_next).expect("cb_v");
    let cb_pc_next = b.mux(commit_store, sb_pc, cb_pc);
    b.set_next(cb_pc, cb_pc_next).expect("cb_pc");
    let cb_addr_next = b.mux(commit_store, sb_addr, cb_addr);
    b.set_next(cb_addr, cb_addr_next).expect("cb_addr");
    let cb_data_next = b.mux(commit_store, sb_data, cb_data);
    b.set_next(cb_data, cb_data_next).expect("cb_data");

    // Scoreboard entries.
    for i in 0..n_scb {
        let at_tail = b.eq_const(scb_tail, i as u64);
        let alloc = b.and(issue_fire, at_tail);
        let at_head = b.eq_const(scb_head, i as u64);
        let retire = b.and(commit_fire, at_head);
        let v_next = {
            let cleared = b.mux(retire, zero1, sc_v[i]);
            b.or(alloc, cleared)
        };
        b.set_next(sc_v[i], v_next).expect("sc_v");
        let mut done_next = sc_done[i];
        let mut res_next = sc_res[i];
        for (strobe, idx, value) in &completions {
            let here = b.eq_const(*idx, i as u64);
            let ev = b.and(*strobe, here);
            let ev = b.and(ev, sc_v[i]);
            done_next = b.or(done_next, ev);
            res_next = b.mux(ev, *value, res_next);
        }
        let done_next = b.mux(alloc, zero1, done_next);
        b.set_next(sc_done[i], done_next).expect("sc_done");
        let res_next = b.mux(alloc, zero_w, res_next);
        b.set_next(sc_res[i], res_next).expect("sc_res");
        let pc_next = b.mux(alloc, id_pc, sc_pc[i]);
        b.set_next(sc_pc[i], pc_next).expect("sc_pc");
        let rd_next = b.mux(alloc, d_rd, sc_rd[i]);
        b.set_next(sc_rd[i], rd_next).expect("sc_rd");
        let wen_next = b.mux(alloc, writes_rd, sc_wen[i]);
        b.set_next(sc_wen[i], wen_next).expect("sc_wen");
        let store_next = b.mux(alloc, is_sw, sc_store[i]);
        b.set_next(sc_store[i], store_next).expect("sc_store");
    }
    let one_ptr = b.constant(1, scb_ptr_w);
    let tail_next = {
        let inc = b.add(scb_tail, one_ptr);
        b.mux(issue_fire, inc, scb_tail)
    };
    b.set_next(scb_tail, tail_next).expect("scb_tail");
    let head_next = {
        let inc = b.add(scb_head, one_ptr);
        b.mux(commit_fire, inc, scb_head)
    };
    b.set_next(scb_head, head_next).expect("scb_head");

    // Control-flow pending: set at cf issue, cleared at ALU resolution.
    let cf_issue = b.and(issue_fire, is_cf);
    let cf_next = {
        let cleared = b.mux(alu_v, zero1, cf_pending);
        b.or(cf_issue, cleared)
    };
    b.set_next(cf_pending, cf_next).expect("cf_pending");

    // Memory-request stage.
    b.set_next(mq_v, drain).expect("mq_v");
    let mq_pc_next = b.mux(drain, cb_pc, mq_pc);
    b.set_next(mq_pc, mq_pc_next).expect("mq_pc");

    // Commit stage.
    b.set_next(cm_v, commit_fire).expect("cm_v");
    let cm_pc_next = b.mux(commit_fire, head_pc, cm_pc);
    b.set_next(cm_pc, cm_pc_next).expect("cm_pc");

    dmem.finish(&mut b).expect("dmem wiring");

    // ---- finish + annotations --------------------------------------------------
    let netlist = b.finish().expect("MiniCva6 netlist is valid");
    let f = |n: &str| netlist.find(n).unwrap_or_else(|| panic!("missing {n}"));

    let single = |name: &str, state_name: &str, var: &str, pcr: &str, added: bool| UFsm {
        name: name.into(),
        pcr: f(pcr),
        vars: vec![f(var)],
        idle: vec![FsmState(vec![0])],
        states: Some(vec![NamedState {
            name: state_name.into(),
            state: FsmState(vec![1]),
        }]),
        pcr_added: added,
    };
    let mut ufsms = vec![
        single("u_if", "IF", "if_valid", "if_pc", false),
        single("u_id", "ID", "id_valid", "id_pc", false),
        single("u_alu", "aluU", "alu_v", "alu_pc", false),
        single("u_mul", "mulU", "mul_busy", "mul_pc", true),
        single("u_div", "divU", "div_busy", "div_pc", true),
        UFsm {
            name: "u_ld".into(),
            pcr: f("ld_pc"),
            vars: vec![f("ld_state")],
            idle: vec![FsmState(vec![LD_IDLE])],
            states: Some(vec![
                NamedState {
                    name: "ldReq".into(),
                    state: FsmState(vec![LD_REQ]),
                },
                NamedState {
                    name: "ldStall".into(),
                    state: FsmState(vec![LD_STALL]),
                },
                NamedState {
                    name: "ldFin".into(),
                    state: FsmState(vec![LD_FIN]),
                },
            ]),
            pcr_added: true,
        },
        single("u_st", "stU", "st_v", "st_pc", true),
        single("u_sb", "specSTB", "sb_v", "sb_pc", true),
        single("u_cb", "comSTB", "cb_v", "cb_pc", true),
        single("u_mq", "memRq", "mq_v", "mq_pc", true),
        single("u_cm", "scbCmt", "cm_v", "cm_pc", false),
    ];
    for i in 0..n_scb {
        ufsms.push(UFsm {
            name: format!("u_scb{i}"),
            pcr: f(&format!("sc{i}_pc")),
            vars: vec![f(&format!("sc{i}_v")), f(&format!("sc{i}_done"))],
            idle: vec![FsmState(vec![0, 0]), FsmState(vec![0, 1])],
            states: Some(vec![
                NamedState {
                    name: format!("scbIss{i}"),
                    state: FsmState(vec![1, 0]),
                },
                NamedState {
                    name: format!("scbFin{i}"),
                    state: FsmState(vec![1, 1]),
                },
            ]),
            pcr_added: false,
        });
    }

    let amem: Vec<_> = (0..isa::MEM_WORDS)
        .map(|i| f(&format!("dmem[{i}]")))
        .collect();
    let annotations = Annotations {
        ifr: f("ifr"),
        fetch_valid: f("if_valid"),
        fetch_pc: f("if_pc"),
        commit: f("commit_fire"),
        commit_pc: f("commit_pc_now"),
        operand_regs: vec![f("op_a"), f("op_b")],
        arf: vec![f("arf1"), f("arf2"), f("arf3")],
        amem,
        ufsms,
        persistent: vec![],
        // The PCRs marked `pcr_added` plus the commit-stage registers are
        // verification-support state; this counts their DSL statements.
        added_loc: 14,
    };
    annotations
        .validate(&netlist)
        .expect("MiniCva6 annotations are consistent");

    let name = match (cfg.op_packing, cfg.mul) {
        (true, _) => "MiniCva6-OP",
        (false, MulPolicy::ZeroSkip { .. }) => "MiniCva6-MUL",
        _ => "MiniCva6",
    };
    let fetch_instr_input = f("in_instr");
    let fetch_valid_input = f("in_valid");
    let fetch_fire_sig = f("fetch_fire");
    let issue_fire_sig = f("issue_fire");
    let issue_pc_sig = f("id_pc");
    let issue_valid_sig = f("id_valid");
    let rs_fields = Some((f("d_rs1"), f("d_rs2")));
    let pc_sig = f("pc");
    Design {
        name: name.into(),
        netlist,
        annotations,
        fetch_instr_input,
        fetch_valid_input,
        fetch_fire: fetch_fire_sig,
        issue_fire: issue_fire_sig,
        issue_pc: issue_pc_sig,
        issue_valid: issue_valid_sig,
        rs_fields,
        pc: pc_sig,
        isa: Opcode::ALL.to_vec(),
        type_field: crate::TypeField { hi: 15, lo: 11 },
        type_values: vec![],
        max_latency: cfg.max_instr_latency(1),
        outputs: vec![],
    }
}
