//! MiniCache: a standalone L1 data-cache + controller DUV, the analogue of
//! the paper's CVA6 Cache experiment (§VII-A2).
//!
//! Organisation (scaled like the paper scales CVA6's cache to 128 B):
//! 2-way set-associative, 4 sets, 1-byte lines, write-through,
//! no-write-allocate; per-way data banks; a 1-entry write buffer; a 1-entry
//! miss handler with a 2-cycle memory latency; a single memory port shared
//! by refills and write-throughs; a single response port with fixed
//! priority.
//!
//! The DUV's "instructions" are memory transactions: the request input
//! carries `{we, addr, data}` and each accepted request gets a fresh
//! transaction id — the PCR-style instruction identifier (§III-C:
//! "memory transaction identifiers"). `Opcode::Lw`/`Opcode::Sw` name the
//! two transaction types via [`crate::Design::type_values`].
//!
//! Leakage structure this reproduces (§VII-A2, Fig. 4c/5 `ST_wBVld`):
//!
//! * read hit vs miss paths (`rdBank*` vs `mshr`/`refill`),
//! * write hit vs miss paths (`wrTag` + `wrBank*` vs `wrTag` alone),
//! * *static* LD transmitters: an earlier read's refill changes a later
//!   transaction's hit/miss — tag state persists,
//! * port/response contention between reads and writes (dynamic channels).

use crate::{Design, TypeField};
use isa::Opcode;
use netlist::annotate::{Annotations, FsmState, NamedState, UFsm};
use netlist::{Builder, MemArray};

const W: u8 = 8;
/// Transaction-id width (the "PC" analogue).
const IDW: u8 = 8;
/// Memory latency in cycles for a refill.
const MEM_LAT: u64 = 2;

/// Number of backing-memory words (the cache's address space; request
/// address bits above `[3:0]` are ignored).
pub const CACHE_ADDR_SPACE: usize = 16;

/// Builds the MiniCache DUV.
///
/// # Panics
/// Panics only on internal DSL misuse.
pub fn build_cache() -> Design {
    let mut b = Builder::new();
    let one1 = b.one();
    let zero1 = b.zero();

    // Request: [16] we, [15:8] addr, [7:0] data.
    let in_req = b.input("in_req", 17);
    let in_valid = b.input("in_valid", 1);

    let txid = b.reg("txid", IDW, 0);

    // Lookup stage.
    let lk_v = b.reg("lk_v", 1, 0);
    let lk_id = b.reg("lk_id", IDW, 0);
    let lk_we = b.reg("lk_we", 1, 0);
    let lk_addr = b.reg("lk_addr", W, 0); // operand register (taint source)
    let lk_data = b.reg("lk_data", W, 0); // operand register (taint source)

    // Read-hit bank stages (one per way).
    let rb0_v = b.reg("rb0_v", 1, 0);
    let rb0_id = b.reg("rb0_id", IDW, 0);
    let rb0_set = b.reg("rb0_set", 2, 0);
    let rb1_v = b.reg("rb1_v", 1, 0);
    let rb1_id = b.reg("rb1_id", IDW, 0);
    let rb1_set = b.reg("rb1_set", 2, 0);

    // Miss handler.
    let mh_v = b.reg("mh_v", 1, 0);
    let mh_id = b.reg("mh_id", IDW, 0);
    let mh_addr = b.reg("mh_addr", W, 0);
    let mh_cnt = b.reg("mh_cnt", 2, 0);

    // Refill stage.
    let rf_v = b.reg("rf_v", 1, 0);
    let rf_id = b.reg("rf_id", IDW, 0);
    let rf_data = b.reg("rf_data", W, 0);

    // Write buffer + write-tag stage + per-bank write stages.
    let wb_v = b.reg("wb_v", 1, 0);
    let wb_id = b.reg("wb_id", IDW, 0);
    let wb_addr = b.reg("wb_addr", W, 0);
    let wb_data = b.reg("wb_data", W, 0);
    let wt_v = b.reg("wt_v", 1, 0);
    let wt_id = b.reg("wt_id", IDW, 0);
    let wt_addr = b.reg("wt_addr", W, 0);
    let wt_data = b.reg("wt_data", W, 0);
    let wk0_v = b.reg("wk0_v", 1, 0);
    let wk0_id = b.reg("wk0_id", IDW, 0);
    let wk0_set = b.reg("wk0_set", 2, 0);
    let wk0_data = b.reg("wk0_data", W, 0);
    let wk1_v = b.reg("wk1_v", 1, 0);
    let wk1_id = b.reg("wk1_id", IDW, 0);
    let wk1_set = b.reg("wk1_set", 2, 0);
    let wk1_data = b.reg("wk1_data", W, 0);

    // Response stage.
    let rsp_v = b.reg("rsp_v", 1, 0);
    let rsp_id = b.reg("rsp_id", IDW, 0);
    let rsp_data = b.reg("rsp_data", W, 0);

    // Tag/valid arrays: 4 sets x 2 ways, 2-bit tags; victim toggles.
    let mut tag = Vec::new();
    let mut val = Vec::new();
    for way in 0..2 {
        let mut trow = Vec::new();
        let mut vrow = Vec::new();
        for set in 0..4 {
            trow.push(b.reg(&format!("tag{way}_{set}"), 2, 0));
            vrow.push(b.reg(&format!("val{way}_{set}"), 1, 0));
        }
        tag.push(trow);
        val.push(vrow);
    }
    let vic: Vec<_> = (0..4).map(|s| b.reg(&format!("vic{s}"), 1, 0)).collect();

    // Data banks (one per way) and backing memory.
    let mut bank0 = MemArray::new(&mut b, "bank0", 4, W);
    let mut bank1 = MemArray::new(&mut b, "bank1", 4, W);
    let mut bmem = MemArray::new(&mut b, "bmem", CACHE_ADDR_SPACE, W);

    // ---- request fields --------------------------------------------------
    let req_we = b.bit(in_req, 16);
    let req_addr = b.slice(in_req, 15, 8);
    let req_data = b.slice(in_req, 7, 0);

    // ---- lookup-stage combinational --------------------------------------
    let set_ix = b.slice(lk_addr, 1, 0);
    let tag_ix = b.slice(lk_addr, 3, 2);
    let mut hit0 = zero1;
    let mut hit1 = zero1;
    for s in 0..4 {
        let at = b.eq_const(set_ix, s as u64);
        let m0 = b.eq(tag[0][s], tag_ix);
        let h0 = b.and(val[0][s], m0);
        let h0 = b.and(h0, at);
        hit0 = b.or(hit0, h0);
        let m1 = b.eq(tag[1][s], tag_ix);
        let h1 = b.and(val[1][s], m1);
        let h1 = b.and(h1, at);
        hit1 = b.or(hit1, h1);
    }
    let hit = b.or(hit0, hit1);
    let hit = b.name(hit, "lk_hit");

    // Dispatch availability out of the lookup stage. Reads wait for the
    // whole write path to drain (write-buffer forwarding hazard avoided
    // conservatively — itself a contention channel).
    let no_write_inflight = {
        let a = b.not(wb_v);
        let c = b.not(wt_v);
        let d = b.not(wk0_v);
        let e = b.not(wk1_v);
        let ac = b.and(a, c);
        let de = b.and(d, e);
        b.and(ac, de)
    };
    let rd = b.not(lk_we);
    let nrb0 = b.not(rb0_v);
    let nrb1 = b.not(rb1_v);
    let rd_hit_ok = {
        let free = b.mux(hit0, nrb0, nrb1);
        let h = b.and(hit, free);
        let r = b.and(rd, h);
        b.and(r, no_write_inflight)
    };
    let rd_miss_ok = {
        let nh = b.not(hit);
        let nm = b.not(mh_v);
        let m = b.and(nh, nm);
        let r = b.and(rd, m);
        b.and(r, no_write_inflight)
    };
    let wr_ok = {
        let nwb = b.not(wb_v);
        b.and(lk_we, nwb)
    };
    let lk_advance = {
        let any = b.or(rd_hit_ok, rd_miss_ok);
        let any = b.or(any, wr_ok);
        b.and(lk_v, any)
    };
    let lk_advance = b.name(lk_advance, "lk_advance");
    let disp_rb0 = {
        let x = b.and(lk_advance, rd_hit_ok);
        b.and(x, hit0)
    };
    let disp_rb1 = {
        let x = b.and(lk_advance, rd_hit_ok);
        let nh0 = b.not(hit0);
        let y = b.and(x, hit1);
        b.and(y, nh0)
    };
    let disp_mh = b.and(lk_advance, rd_miss_ok);
    let disp_wb = b.and(lk_advance, wr_ok);

    let lk_free = {
        let nv = b.not(lk_v);
        b.or(nv, lk_advance)
    };
    let req_fire = b.and(in_valid, lk_free);
    let req_fire = b.name(req_fire, "req_fire");

    // ---- memory port and refill -------------------------------------------
    let mh_last = b.eq_const(mh_cnt, 1);
    let rf_free = b.not(rf_v);
    let refill_fire = {
        let x = b.and(mh_v, mh_last);
        b.and(x, rf_free)
    };
    let refill_fire = b.name(refill_fire, "refill_fire");
    let mh_set = b.slice(mh_addr, 1, 0);
    let mh_tag = b.slice(mh_addr, 3, 2);
    let bmem_ix_r = b.slice(mh_addr, 3, 0);
    let refill_data = bmem.read(&mut b, bmem_ix_r);

    // Victim way: an invalid way if one exists, else the per-set toggle.
    let mut vic_way = zero1;
    let mut inv0 = zero1;
    let mut inv1 = zero1;
    for s in 0..4 {
        let at = b.eq_const(mh_set, s as u64);
        let v = b.and(at, vic[s]);
        vic_way = b.or(vic_way, v);
        let n0 = b.not(val[0][s]);
        let n1 = b.not(val[1][s]);
        let i0 = b.and(at, n0);
        let i1 = b.and(at, n1);
        inv0 = b.or(inv0, i0);
        inv1 = b.or(inv1, i1);
    }
    let vic_final = {
        let w1 = b.mux(inv1, one1, vic_way);
        b.mux(inv0, zero1, w1)
    };

    // ---- write path combinational --------------------------------------------
    let wt_set = b.slice(wt_addr, 1, 0);
    let wt_tag = b.slice(wt_addr, 3, 2);
    let mut wt_hit0 = zero1;
    let mut wt_hit1 = zero1;
    for s in 0..4 {
        let at = b.eq_const(wt_set, s as u64);
        let m0 = b.eq(tag[0][s], wt_tag);
        let h0 = b.and(val[0][s], m0);
        let h0 = b.and(h0, at);
        wt_hit0 = b.or(wt_hit0, h0);
        let m1 = b.eq(tag[1][s], wt_tag);
        let h1 = b.and(val[1][s], m1);
        let h1 = b.and(h1, at);
        wt_hit1 = b.or(wt_hit1, h1);
    }
    // Write-through fires when the memory port is free (refill priority)
    // and the hit bank stage (if any) is free.
    let port_free_for_wt = b.not(refill_fire);
    let nwk0 = b.not(wk0_v);
    let nwk1 = b.not(wk1_v);
    let wt_bank_ok = {
        let ok0 = b.mux(wt_hit0, nwk0, one1);
        let ok1 = b.mux(wt_hit1, nwk1, one1);
        b.and(ok0, ok1)
    };
    let wt_fire = {
        let x = b.and(wt_v, port_free_for_wt);
        b.and(x, wt_bank_ok)
    };
    let wt_fire = b.name(wt_fire, "wt_fire");
    let bmem_ix_w = b.slice(wt_addr, 3, 0);
    bmem.write(wt_fire, bmem_ix_w, wt_data);

    // ---- response arbitration (priority: refill > rb0 > rb1) ---------------
    let rsp_free = one1; // the response stage always drains in one cycle
    let _ = rsp_free;
    let grant_rf = rf_v;
    let grant_rb0 = {
        let n = b.not(grant_rf);
        b.and(rb0_v, n)
    };
    let grant_rb1 = {
        let n = b.not(grant_rf);
        let x = b.and(rb1_v, n);
        b.and(x, nrb0)
    };
    // The write responds as it retires from wrTag, when no read response
    // competes.
    let grant_wt = {
        let n = b.not(grant_rf);
        let x = b.and(wt_fire, n);
        let y = b.and(x, nrb0);
        b.and(y, nrb1)
    };
    // A write-through that cannot respond this cycle keeps its slot.
    let wt_retire = grant_wt;
    let rb0_data = bank0.read(&mut b, rb0_set);
    let rb1_data = bank1.read(&mut b, rb1_set);
    let rsp_next_v = {
        let a = b.or(grant_rf, grant_rb0);
        let c = b.or(grant_rb1, grant_wt);
        b.or(a, c)
    };
    let rsp_next_id = {
        let mut id = wt_id;
        id = b.mux(grant_rb1, rb1_id, id);
        id = b.mux(grant_rb0, rb0_id, id);
        id = b.mux(grant_rf, rf_id, id);
        id
    };
    let zero_w = b.constant(0, W);
    let rsp_next_data = {
        let mut d = zero_w;
        d = b.mux(grant_wt, wt_data, d);
        d = b.mux(grant_rb1, rb1_data, d);
        d = b.mux(grant_rb0, rb0_data, d);
        d = b.mux(grant_rf, rf_data, d);
        d
    };

    // ---- array writes ----------------------------------------------------------
    for s in 0..4 {
        let at_mh = b.eq_const(mh_set, s as u64);
        let install = b.and(refill_fire, at_mh);
        let nv = b.not(vic_final);
        let to0 = b.and(install, nv);
        let to1 = b.and(install, vic_final);
        let t0n = b.mux(to0, mh_tag, tag[0][s]);
        b.set_next(tag[0][s], t0n).expect("tag0");
        let t1n = b.mux(to1, mh_tag, tag[1][s]);
        b.set_next(tag[1][s], t1n).expect("tag1");
        let v0n = b.or(val[0][s], to0);
        b.set_next(val[0][s], v0n).expect("val0");
        let v1n = b.or(val[1][s], to1);
        b.set_next(val[1][s], v1n).expect("val1");
        let flip = b.not(vic[s]);
        let vic_n = b.mux(install, flip, vic[s]);
        b.set_next(vic[s], vic_n).expect("vic");
    }
    {
        let nv = b.not(vic_final);
        let rf_to0 = b.and(refill_fire, nv);
        let rf_to1 = b.and(refill_fire, vic_final);
        bank0.write(rf_to0, mh_set, refill_data);
        bank1.write(rf_to1, mh_set, refill_data);
        // Write-hit bank updates happen from the wk stages.
        bank0.write(wk0_v, wk0_set, wk0_data);
        bank1.write(wk1_v, wk1_set, wk1_data);
    }
    bank0.finish(&mut b).expect("bank0");
    bank1.finish(&mut b).expect("bank1");
    bmem.finish(&mut b).expect("bmem");

    // ---- register next-state wiring ----------------------------------------------
    let one_id = b.constant(1, IDW);
    let txid_inc = b.add(txid, one_id);
    let txid_next = b.mux(req_fire, txid_inc, txid);
    b.set_next(txid, txid_next).expect("txid");

    let lk_v_next = {
        let stay = b.mux(lk_advance, zero1, lk_v);
        b.or(req_fire, stay)
    };
    b.set_next(lk_v, lk_v_next).expect("lk_v");
    let lk_id_next = b.mux(req_fire, txid, lk_id);
    b.set_next(lk_id, lk_id_next).expect("lk_id");
    let lk_we_next = b.mux(req_fire, req_we, lk_we);
    b.set_next(lk_we, lk_we_next).expect("lk_we");
    let lk_addr_next = b.mux(req_fire, req_addr, lk_addr);
    b.set_next(lk_addr, lk_addr_next).expect("lk_addr");
    let lk_data_next = b.mux(req_fire, req_data, lk_data);
    b.set_next(lk_data, lk_data_next).expect("lk_data");

    // Read-hit bank stages: occupied for one cycle, drained when granted.
    let rb0_next = {
        let stay = b.mux(grant_rb0, zero1, rb0_v);
        b.or(disp_rb0, stay)
    };
    b.set_next(rb0_v, rb0_next).expect("rb0_v");
    let rb0_id_next = b.mux(disp_rb0, lk_id, rb0_id);
    b.set_next(rb0_id, rb0_id_next).expect("rb0_id");
    let rb0_set_next = b.mux(disp_rb0, set_ix, rb0_set);
    b.set_next(rb0_set, rb0_set_next).expect("rb0_set");
    let rb1_next = {
        let stay = b.mux(grant_rb1, zero1, rb1_v);
        b.or(disp_rb1, stay)
    };
    b.set_next(rb1_v, rb1_next).expect("rb1_v");
    let rb1_id_next = b.mux(disp_rb1, lk_id, rb1_id);
    b.set_next(rb1_id, rb1_id_next).expect("rb1_id");
    let rb1_set_next = b.mux(disp_rb1, set_ix, rb1_set);
    b.set_next(rb1_set, rb1_set_next).expect("rb1_set");

    // Miss handler: counts down MEM_LAT, then refills.
    let mh_v_next = {
        let leave = b.mux(refill_fire, zero1, mh_v);
        b.or(disp_mh, leave)
    };
    b.set_next(mh_v, mh_v_next).expect("mh_v");
    let mh_id_next = b.mux(disp_mh, lk_id, mh_id);
    b.set_next(mh_id, mh_id_next).expect("mh_id");
    let mh_addr_next = b.mux(disp_mh, lk_addr, mh_addr);
    b.set_next(mh_addr, mh_addr_next).expect("mh_addr");
    let mh_cnt_next = {
        let one2 = b.constant(1, 2);
        let lat = b.constant(MEM_LAT, 2);
        let dec = b.sub(mh_cnt, one2);
        let counting = {
            let n = b.not(mh_last);
            b.and(mh_v, n)
        };
        let run = b.mux(counting, dec, mh_cnt);
        b.mux(disp_mh, lat, run)
    };
    b.set_next(mh_cnt, mh_cnt_next).expect("mh_cnt");

    // Refill stage: one cycle (granted with top priority).
    b.set_next(rf_v, refill_fire).expect("rf_v");
    let rf_id_next = b.mux(refill_fire, mh_id, rf_id);
    b.set_next(rf_id, rf_id_next).expect("rf_id");
    let rf_data_next = b.mux(refill_fire, refill_data, rf_data);
    b.set_next(rf_data, rf_data_next).expect("rf_data");

    // Write buffer -> write-tag handoff.
    let wt_free = {
        let nv = b.not(wt_v);
        b.or(nv, wt_retire)
    };
    let wb_advance = b.and(wb_v, wt_free);
    let wb_v_next = {
        let stay = b.mux(wb_advance, zero1, wb_v);
        b.or(disp_wb, stay)
    };
    b.set_next(wb_v, wb_v_next).expect("wb_v");
    let wb_id_next = b.mux(disp_wb, lk_id, wb_id);
    b.set_next(wb_id, wb_id_next).expect("wb_id");
    let wb_addr_next = b.mux(disp_wb, lk_addr, wb_addr);
    b.set_next(wb_addr, wb_addr_next).expect("wb_addr");
    let wb_data_next = b.mux(disp_wb, lk_data, wb_data);
    b.set_next(wb_data, wb_data_next).expect("wb_data");

    let wt_v_next = {
        let stay = b.mux(wt_retire, zero1, wt_v);
        b.or(wb_advance, stay)
    };
    b.set_next(wt_v, wt_v_next).expect("wt_v");
    let wt_id_next = b.mux(wb_advance, wb_id, wt_id);
    b.set_next(wt_id, wt_id_next).expect("wt_id");
    let wt_addr_next = b.mux(wb_advance, wb_addr, wt_addr);
    b.set_next(wt_addr, wt_addr_next).expect("wt_addr");
    let wt_data_next = b.mux(wb_advance, wb_data, wt_data);
    b.set_next(wt_data, wt_data_next).expect("wt_data");

    // Bank-write stages: triggered by a write-through hit, 1 cycle.
    let wk0_trig = b.and(wt_retire, wt_hit0);
    let wk1_trig = b.and(wt_retire, wt_hit1);
    b.set_next(wk0_v, wk0_trig).expect("wk0_v");
    let wk0_id_next = b.mux(wk0_trig, wt_id, wk0_id);
    b.set_next(wk0_id, wk0_id_next).expect("wk0_id");
    let wk0_set_next = b.mux(wk0_trig, wt_set, wk0_set);
    b.set_next(wk0_set, wk0_set_next).expect("wk0_set");
    let wk0_data_next = b.mux(wk0_trig, wt_data, wk0_data);
    b.set_next(wk0_data, wk0_data_next).expect("wk0_data");
    b.set_next(wk1_v, wk1_trig).expect("wk1_v");
    let wk1_id_next = b.mux(wk1_trig, wt_id, wk1_id);
    b.set_next(wk1_id, wk1_id_next).expect("wk1_id");
    let wk1_set_next = b.mux(wk1_trig, wt_set, wk1_set);
    b.set_next(wk1_set, wk1_set_next).expect("wk1_set");
    let wk1_data_next = b.mux(wk1_trig, wt_data, wk1_data);
    b.set_next(wk1_data, wk1_data_next).expect("wk1_data");

    // Response stage.
    b.set_next(rsp_v, rsp_next_v).expect("rsp_v");
    let rsp_id_next = b.mux(rsp_next_v, rsp_next_id, rsp_id);
    b.set_next(rsp_id, rsp_id_next).expect("rsp_id");
    let rsp_data_next = b.mux(rsp_next_v, rsp_next_data, rsp_data);
    b.set_next(rsp_data, rsp_data_next).expect("rsp_data");
    b.name(rsp_v, "resp_fire_reg");
    b.name(rsp_id, "resp_id_reg");
    b.name(rsp_data, "resp_data_reg");

    let netlist = b.finish().expect("MiniCache netlist is valid");
    let f = |n: &str| netlist.find(n).unwrap_or_else(|| panic!("missing {n}"));
    let single = |name: &str, state: &str, var: &str, pcr: &str| UFsm {
        name: name.into(),
        pcr: f(pcr),
        vars: vec![f(var)],
        idle: vec![FsmState(vec![0])],
        states: Some(vec![NamedState {
            name: state.into(),
            state: FsmState(vec![1]),
        }]),
        pcr_added: false,
    };
    let amem: Vec<_> = (0..CACHE_ADDR_SPACE)
        .map(|i| f(&format!("bmem[{i}]")))
        .collect();
    let mut persistent = Vec::new();
    for way in 0..2 {
        for set in 0..4 {
            persistent.push(f(&format!("tag{way}_{set}")));
            persistent.push(f(&format!("val{way}_{set}")));
        }
    }
    for set in 0..4 {
        persistent.push(f(&format!("vic{set}")));
        persistent.push(f(&format!("bank0[{set}]")));
        persistent.push(f(&format!("bank1[{set}]")));
    }
    let annotations = Annotations {
        ifr: f("lk_addr"),
        fetch_valid: f("lk_v"),
        fetch_pc: f("lk_id"),
        commit: f("rsp_v"),
        commit_pc: f("rsp_id"),
        operand_regs: vec![f("lk_addr"), f("lk_data")],
        arf: vec![],
        amem,
        ufsms: vec![
            single("u_lk", "lkup", "lk_v", "lk_id"),
            single("u_rb0", "rdBank0", "rb0_v", "rb0_id"),
            single("u_rb1", "rdBank1", "rb1_v", "rb1_id"),
            single("u_mh", "mshr", "mh_v", "mh_id"),
            single("u_rf", "refill", "rf_v", "rf_id"),
            single("u_wb", "wbVld", "wb_v", "wb_id"),
            single("u_wt", "wrTag", "wt_v", "wt_id"),
            single("u_wk0", "wrBank0", "wk0_v", "wk0_id"),
            single("u_wk1", "wrBank1", "wk1_v", "wk1_id"),
            single("u_rsp", "resp", "rsp_v", "rsp_id"),
        ],
        persistent,
        added_loc: 9,
    };
    annotations
        .validate(&netlist)
        .expect("MiniCache annotations are consistent");
    let fetch_instr_input = f("in_req");
    let fetch_valid_input = f("in_valid");
    let fetch_fire_sig = f("req_fire");
    let pc_sig = f("txid");
    let issue_valid_sig = f("lk_v");
    let outputs = vec![f("resp_fire_reg"), f("resp_id_reg"), f("resp_data_reg")];
    Design {
        name: "MiniCache".into(),
        netlist,
        annotations,
        fetch_instr_input,
        fetch_valid_input,
        fetch_fire: fetch_fire_sig,
        issue_fire: fetch_fire_sig,
        issue_pc: pc_sig,
        issue_valid: issue_valid_sig,
        rs_fields: None,
        pc: pc_sig,
        isa: vec![Opcode::Lw, Opcode::Sw],
        type_field: TypeField { hi: 16, lo: 16 },
        type_values: vec![(Opcode::Lw, 0), (Opcode::Sw, 1)],
        max_latency: 10,
        outputs,
    }
}
