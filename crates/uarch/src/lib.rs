//! Processor designs under verification: the reproduction's analogue of the
//! paper's CVA6 SystemVerilog inputs (§VI).
//!
//! * [`build_core`] — MiniCva6, a speculative scoreboard pipeline with the
//!   paper's leakage mechanisms (variable-latency divide, optional zero-skip
//!   multiply and operand packing, store-buffer interactions, branch
//!   squash). Variants via [`CoreConfig`].
//! * [`build_tiny`] — TinyCore, a stall-free 3-stage pipeline with exactly
//!   one µPATH per instruction (the RTL2µSPEC regime).
//! * [`cache::build_cache`] — MiniCache, a standalone L1 data-cache DUV for
//!   the modular-verification experiment (§VII-A2).
//!
//! Every design comes with its [`netlist::annotate::Annotations`] (µFSMs,
//! IFR, commit, operand registers — the Table II metadata).

pub mod cache;
mod config;
mod core;
pub mod frontend;
mod tiny;

pub use crate::core::build_core;
pub use config::{CoreConfig, DivPolicy, MulPolicy};
pub use tiny::build_tiny;

use netlist::annotate::Annotations;
use netlist::{Netlist, SignalId};

/// Where the instruction-type (opcode) field lives within the value driven
/// on [`Design::fetch_instr_input`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TypeField {
    /// High bit (inclusive).
    pub hi: u8,
    /// Low bit (inclusive).
    pub lo: u8,
}

/// A design under verification: netlist + metadata + harness hook signals.
#[derive(Clone, Debug)]
pub struct Design {
    /// Human-readable design name.
    pub name: String,
    /// The elaborated netlist.
    pub netlist: Netlist,
    /// The §V-A metadata bundle.
    pub annotations: Annotations,
    /// Primary input carrying instruction encodings (the frontend is
    /// black-boxed, as in §VI: the checker drives fetched instructions).
    pub fetch_instr_input: SignalId,
    /// Primary input: instruction valid this cycle.
    pub fetch_valid_input: SignalId,
    /// 1-bit strobe: an instruction is latched into the IFR this cycle.
    pub fetch_fire: SignalId,
    /// 1-bit strobe: the decode stage issues this cycle.
    pub issue_fire: SignalId,
    /// PC register of the instruction at the issue stage (valid when
    /// `issue_fire` is high).
    pub issue_pc: SignalId,
    /// 1-bit: the issue/decode stage holds a valid instruction.
    pub issue_valid: SignalId,
    /// The decoded source-register index fields at the issue/decode stage
    /// (`rs1`, `rs2`), when the design reads an architectural register
    /// file. `None` for request-driven DUVs like the cache.
    pub rs_fields: Option<(SignalId, SignalId)>,
    /// The fetch program counter register.
    pub pc: SignalId,
    /// Instructions implemented by the design.
    pub isa: Vec<isa::Opcode>,
    /// Location of the type field within `fetch_instr_input`.
    pub type_field: TypeField,
    /// Per-opcode type-field values when they differ from
    /// [`isa::Opcode::bits`] (e.g. the cache DUV encodes LW/SW as a 1-bit
    /// read/write flag). Empty = identity encoding.
    pub type_values: Vec<(isa::Opcode, u64)>,
    /// Conservative bound on one instruction's fetch-to-retire latency,
    /// used to size complete BMC bounds.
    pub max_latency: usize,
    /// Externally observable interface signals beyond the harness hooks
    /// (e.g. the cache's response port). Logic feeding only these is live,
    /// not dead — the lint suite roots its dead-logic analysis here.
    pub outputs: Vec<SignalId>,
}

impl Design {
    /// The type-field value that selects `op` on this design's request
    /// input.
    pub fn type_encoding(&self, op: isa::Opcode) -> u64 {
        self.type_values
            .iter()
            .find(|(o, _)| *o == op)
            .map(|(_, v)| *v)
            .unwrap_or(op.bits() as u64)
    }
}

/// Runs the full lint suite on a design, rooted at its annotation bundle
/// and harness hook signals (so logic feeding only the verification hooks
/// is not reported dead), with the fetch/issue strobes checked for
/// structural constancy.
pub fn lint_design(design: &Design) -> netlist::lint::LintReport {
    let mut roots: Vec<SignalId> = vec![
        design.fetch_instr_input,
        design.fetch_valid_input,
        design.fetch_fire,
        design.issue_fire,
        design.issue_pc,
        design.issue_valid,
        design.pc,
    ];
    if let Some((rs1, rs2)) = design.rs_fields {
        roots.extend([rs1, rs2]);
    }
    roots.extend(design.outputs.iter().copied());
    let cx = netlist::lint::LintContext {
        netlist: &design.netlist,
        annotations: Some(&design.annotations),
        roots,
        strobes: vec![
            ("fetch_fire".to_owned(), design.fetch_fire),
            ("issue_fire".to_owned(), design.issue_fire),
        ],
    };
    netlist::lint::Linter::new().run(&cx)
}
