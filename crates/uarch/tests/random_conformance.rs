//! Property-based ISA conformance: random MiniRV programs must execute
//! identically (commit order + final architectural state) on every MiniCva6
//! variant and on the golden model. (Hand-rolled random cases via `prng`.)

use isa::{ArchState, Instr, Opcode};
use prng::Rng;
use sim::Simulator;
use uarch::{build_core, CoreConfig, Design};

fn random_instr(rng: &mut Rng) -> Instr {
    Instr {
        op: Opcode::from_bits(rng.range(0, 31) as u8),
        rd: rng.range(0, 4) as u8,
        rs1: rng.range(0, 4) as u8,
        rs2: rng.range(0, 4) as u8,
        imm: rng.range(0, 32) as u8,
    }
}

fn random_program(rng: &mut Rng, max_len: usize) -> Vec<Instr> {
    (0..rng.range_usize(1, max_len))
        .map(|_| random_instr(rng))
        .collect()
}

fn run_core(
    design: &Design,
    program: &[Instr],
    expect: usize,
) -> Option<(Vec<u64>, [u64; 3], Vec<u64>)> {
    let mut s = Simulator::new(&design.netlist);
    let commit = design.annotations.commit;
    let commit_pc = design.annotations.commit_pc;
    let mut committed = Vec::new();
    for _ in 0..800 {
        if committed.len() >= expect {
            break;
        }
        let cur_pc = s.value(design.pc) as usize;
        let word = program
            .get(cur_pc)
            .copied()
            .unwrap_or_else(Instr::nop)
            .encode();
        s.set_input(design.fetch_instr_input, word as u64);
        s.set_input(design.fetch_valid_input, 1);
        if s.value(commit) == 1 {
            committed.push(s.value(commit_pc));
        }
        s.step();
    }
    if committed.len() < expect {
        return None;
    }
    s.set_input(design.fetch_valid_input, 0);
    for _ in 0..8 {
        s.step();
    }
    let regs = [s.value_of("arf1"), s.value_of("arf2"), s.value_of("arf3")];
    let mem = (0..isa::MEM_WORDS)
        .map(|i| s.value_of(&format!("dmem[{i}]")))
        .collect();
    Some((committed, regs, mem))
}

/// Returns (executed PCs, regs, mem, terminated-naturally).
fn run_golden(program: &[Instr], max_steps: usize) -> (Vec<u64>, [u64; 3], Vec<u64>, bool) {
    let mut st = ArchState::new();
    let mut pcs = Vec::new();
    let mut natural = false;
    for _ in 0..max_steps {
        let i = program
            .get(st.pc as usize)
            .copied()
            .unwrap_or_else(Instr::nop);
        pcs.push(st.pc as u64);
        st.step(i);
        if st.pc as usize >= program.len() {
            natural = true;
            break;
        }
    }
    (
        pcs,
        [st.regs[1] as u64, st.regs[2] as u64, st.regs[3] as u64],
        st.mem.iter().map(|&m| m as u64).collect(),
        natural,
    )
}

fn conformance_case(cfg: &CoreConfig, program: &[Instr]) {
    let design = build_core(cfg);
    let (gpcs, gregs, gmem, natural) = run_golden(program, 25);
    let got = run_core(&design, program, gpcs.len());
    let (cpcs, cregs, cmem) = got.unwrap_or_else(|| {
        panic!(
            "core hung on {:?}",
            program.iter().map(|i| i.to_string()).collect::<Vec<_>>()
        )
    });
    assert_eq!(&cpcs[..gpcs.len()], &gpcs[..], "commit order");
    if natural {
        // Once the golden run falls off the program, every further core
        // fetch is a NOP and cannot disturb architectural state, so the
        // final states are comparable. Mid-loop cutoffs are not (the core
        // still has real instructions in flight).
        assert_eq!(cregs, gregs, "registers");
        assert_eq!(cmem, gmem, "memory");
    }
}

#[test]
fn default_core_conforms() {
    prng::for_each_case("default_core_conforms", 0xdefc, 48, |rng| {
        let program = random_program(rng, 12);
        conformance_case(&CoreConfig::default(), &program);
    });
}

#[test]
fn zero_skip_mul_core_conforms() {
    prng::for_each_case("zero_skip_mul_core_conforms", 0x2e10, 48, |rng| {
        let program = random_program(rng, 10);
        conformance_case(&CoreConfig::cva6_mul(), &program);
    });
}

#[test]
fn op_packing_core_conforms() {
    prng::for_each_case("op_packing_core_conforms", 0x09ac, 48, |rng| {
        let program = random_program(rng, 10);
        conformance_case(&CoreConfig::cva6_op(), &program);
    });
}

#[test]
fn hardened_core_conforms() {
    prng::for_each_case("hardened_core_conforms", 0x4a4d, 48, |rng| {
        let program = random_program(rng, 10);
        conformance_case(&CoreConfig::hardened(), &program);
    });
}
