//! ISA conformance: MiniCva6 (all variants) must implement MiniRV exactly.
//!
//! The harness feeds a program through the core's fetch port, collects the
//! committed-PC sequence and the final architectural state, and compares
//! them against the `isa` golden model executing the same program.

use isa::{ArchState, Instr};
use sim::Simulator;
use uarch::{build_core, CoreConfig, Design};

/// Runs `program` on the core until `expect_commits` instructions have
/// committed (or a cycle budget runs out). Returns (committed PCs, final
/// regs r1..r3, final memory).
fn run_core(
    design: &Design,
    program: &[Instr],
    expect_commits: usize,
    max_cycles: usize,
) -> (Vec<u64>, [u64; 3], Vec<u64>) {
    let nl = &design.netlist;
    let mut s = Simulator::new(nl);
    let commit = design.annotations.commit;
    let commit_pc = design.annotations.commit_pc;
    let pc = design.pc;
    let mut committed = Vec::new();
    let mut cycles = 0;
    while committed.len() < expect_commits && cycles < max_cycles {
        let cur_pc = s.value(pc) as usize;
        let word = program
            .get(cur_pc)
            .copied()
            .unwrap_or_else(Instr::nop)
            .encode();
        s.set_input(design.fetch_instr_input, word as u64);
        s.set_input(design.fetch_valid_input, 1);
        if s.value(commit) == 1 {
            committed.push(s.value(commit_pc));
        }
        s.step();
        cycles += 1;
    }
    assert!(
        committed.len() >= expect_commits,
        "core committed only {}/{} instructions in {} cycles",
        committed.len(),
        expect_commits,
        max_cycles
    );
    // Drain store buffers.
    s.set_input(design.fetch_valid_input, 0);
    for _ in 0..8 {
        s.step();
    }
    let regs = [s.value_of("arf1"), s.value_of("arf2"), s.value_of("arf3")];
    let mem: Vec<u64> = (0..isa::MEM_WORDS)
        .map(|i| s.value_of(&format!("dmem[{i}]")))
        .collect();
    (committed, regs, mem)
}

/// Runs the golden model, returning (executed PCs, r1..r3, memory).
fn run_golden(program: &[Instr], max_steps: usize) -> (Vec<u64>, [u64; 3], Vec<u64>) {
    let mut st = ArchState::new();
    let mut pcs = Vec::new();
    for _ in 0..max_steps {
        let i = program
            .get(st.pc as usize)
            .copied()
            .unwrap_or_else(Instr::nop);
        pcs.push(st.pc as u64);
        st.step(i);
        if st.pc as usize >= program.len() {
            break;
        }
    }
    let regs = [st.regs[1] as u64, st.regs[2] as u64, st.regs[3] as u64];
    let mem = st.mem.iter().map(|&m| m as u64).collect();
    (pcs, regs, mem)
}

fn check_program(cfg: &CoreConfig, program: &[Instr]) {
    let design = build_core(cfg);
    let (gpcs, gregs, gmem) = run_golden(program, 40);
    let (cpcs, cregs, cmem) = run_core(&design, program, gpcs.len(), 600);
    assert_eq!(
        &cpcs[..gpcs.len()],
        &gpcs[..],
        "commit order differs for {:?}",
        program.iter().map(|i| i.to_string()).collect::<Vec<_>>()
    );
    assert_eq!(cregs, gregs, "registers differ");
    assert_eq!(cmem, gmem, "memory differs");
}

fn asm(src: &str) -> Vec<Instr> {
    isa::assemble(src).expect("test program assembles")
}

#[test]
fn straightline_arithmetic() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 7\naddi r2, r0, 3\nadd r3, r1, r2\nsub r1, r3, r2\nxor r2, r1, r3\n"),
    );
}

#[test]
fn multiply_variants() {
    for cfg in [CoreConfig::default(), CoreConfig::cva6_mul()] {
        check_program(
            &cfg,
            &asm("addi r1, r0, 13\naddi r2, r0, -1\nmul r3, r1, r2\nmulh r1, r2, r2\nmul r2, r0, r1\n"),
        );
    }
}

#[test]
fn divide_edge_cases() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 10\n\
             div  r3, r1, r0\n\
             rem  r3, r1, r0\n\
             addi r2, r0, 3\n\
             div  r3, r1, r2\n\
             rem  r1, r1, r2\n\
             divu r2, r3, r3\n"),
    );
}

#[test]
fn division_overflow_case() {
    // r1 = -128, r2 = -1: signed overflow semantics.
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 1\n\
             addi r2, r0, 7\n\
             sll  r1, r1, r2\n\
             addi r2, r0, -1\n\
             div  r3, r1, r2\n\
             rem  r3, r1, r2\n"),
    );
}

#[test]
fn store_then_load_same_address_stalls_correctly() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 5\n\
             addi r2, r0, 9\n\
             sw   r1, r2, 0   ; mem[5] = 9\n\
             lw   r3, r1, 0   ; must observe the store\n"),
    );
}

#[test]
fn store_load_different_offsets_no_data_corruption() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 4\n\
             addi r2, r0, 11\n\
             sw   r1, r2, 0   ; mem[4] = 11\n\
             lw   r3, r0, 1   ; different offset, runs ahead of the drain\n\
             lw   r2, r1, 0\n"),
    );
}

#[test]
fn taken_branch_squashes_wrong_path() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 1\n\
             beq  r1, r1, 2   ; jump over the poison instruction\n\
             addi r3, r0, 15  ; must be squashed\n\
             addi r2, r0, 4\n"),
    );
}

#[test]
fn not_taken_branch_falls_through() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 1\n\
             bne  r1, r1, 2\n\
             addi r3, r0, 15\n\
             addi r2, r0, 4\n"),
    );
}

#[test]
fn jal_and_jalr_link_and_redirect() {
    check_program(
        &CoreConfig::default(),
        &asm("jal  r3, 2        ; skip next\n\
             addi r1, r0, 9    ; squashed\n\
             addi r2, r0, 1\n\
             jalr r1, r3, 2    ; jump to link+2 = 3... computes r3+2\n\
             addi r2, r0, 7    ; may or may not execute depending on target\n"),
    );
}

#[test]
fn backward_branch_loop() {
    // r1 counts down from 3; loop body accumulates into r2.
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, 3\n\
             addi r2, r0, 0\n\
             add  r2, r2, r1\n\
             addi r1, r1, -1\n\
             bne  r1, r0, -2\n\
             add  r3, r2, r2\n"),
    );
}

#[test]
fn op_packing_variant_matches_architecture() {
    // Wide and narrow ADD operands: timing differs, architecture must not.
    check_program(
        &CoreConfig::cva6_op(),
        &asm("addi r1, r0, 3\n\
             add  r2, r1, r1   ; narrow\n\
             addi r3, r0, -1   ; r3 = 0xff (wide)\n\
             add  r2, r3, r1   ; wide operands, extra decode cycle\n\
             add  r3, r2, r2\n"),
    );
}

#[test]
fn shifts_and_compares() {
    check_program(
        &CoreConfig::default(),
        &asm("addi r1, r0, -1\n\
             addi r2, r0, 3\n\
             sll  r3, r1, r2\n\
             srl  r3, r3, r2\n\
             slt  r1, r1, r2\n\
             sltu r2, r3, r2\n"),
    );
}

#[test]
fn hardened_core_matches_architecture() {
    check_program(
        &CoreConfig::hardened(),
        &asm("addi r1, r0, 9\n\
             addi r2, r0, 2\n\
             div  r3, r1, r2\n\
             mul  r1, r3, r2\n"),
    );
}
