//! MiniCache functional tests: write-through transparency (a read always
//! returns the last written value), exactly one response per request with
//! the right transaction id, and hit/miss timing behaviour.

use prng::Rng;
use sim::Simulator;
use uarch::cache::{build_cache, CACHE_ADDR_SPACE};

struct Driver<'a> {
    sim: Simulator<'a>,
    in_req: netlist::SignalId,
    in_valid: netlist::SignalId,
    req_fire: netlist::SignalId,
    rsp_v: netlist::SignalId,
    rsp_id: netlist::SignalId,
    rsp_data: netlist::SignalId,
}

impl<'a> Driver<'a> {
    fn new(nl: &'a netlist::Netlist) -> Self {
        let f = |n: &str| nl.find(n).unwrap();
        Self {
            sim: Simulator::new(nl),
            in_req: f("in_req"),
            in_valid: f("in_valid"),
            req_fire: f("req_fire"),
            rsp_v: f("rsp_v"),
            rsp_id: f("rsp_id"),
            rsp_data: f("rsp_data"),
        }
    }

    /// Issues one request, waits for acceptance, returns its txid.
    fn issue(&mut self, we: bool, addr: u8, data: u8, responses: &mut Vec<(u64, u64)>) -> u64 {
        let pkt = ((we as u64) << 16) | ((addr as u64) << 8) | data as u64;
        self.sim.set_input(self.in_req, pkt);
        self.sim.set_input(self.in_valid, 1);
        for _ in 0..32 {
            let fired = self.sim.value(self.req_fire) == 1;
            let id = self.sim.value_of("txid");
            self.collect(responses);
            self.sim.step();
            if fired {
                self.sim.set_input(self.in_valid, 0);
                return id;
            }
        }
        panic!("request never accepted");
    }

    fn collect(&mut self, responses: &mut Vec<(u64, u64)>) {
        if self.sim.value(self.rsp_v) == 1 {
            let pair = (self.sim.value(self.rsp_id), self.sim.value(self.rsp_data));
            if responses.last() != Some(&pair) || responses.is_empty() {
                responses.push(pair);
            }
        }
    }

    /// Runs idle cycles collecting responses.
    fn drain(&mut self, cycles: usize, responses: &mut Vec<(u64, u64)>) {
        self.sim.set_input(self.in_valid, 0);
        for _ in 0..cycles {
            self.collect(responses);
            self.sim.step();
        }
    }
}

#[test]
fn write_then_read_returns_written_value() {
    let design = build_cache();
    let mut d = Driver::new(&design.netlist);
    let mut resp = Vec::new();
    let wid = d.issue(true, 5, 0x5a, &mut resp);
    d.drain(8, &mut resp);
    let rid = d.issue(false, 5, 0, &mut resp);
    d.drain(10, &mut resp);
    assert!(resp.contains(&(wid, 0x5a)), "write acked: {resp:?}");
    assert!(resp.contains(&(rid, 0x5a)), "read returns data: {resp:?}");
}

#[test]
fn second_read_hits_and_is_faster() {
    let design = build_cache();
    let nl = &design.netlist;
    let mut d = Driver::new(nl);
    let mut resp = Vec::new();
    // First read misses (cold) -> refill path; second read hits.
    let r1 = d.issue(false, 9, 0, &mut resp);
    // Count cycles to response.
    let mut miss_lat = 0;
    for _ in 0..20 {
        if resp.iter().any(|&(id, _)| id == r1) {
            break;
        }
        d.drain(1, &mut resp);
        miss_lat += 1;
    }
    let r2 = d.issue(false, 9, 0, &mut resp);
    let mut hit_lat = 0;
    for _ in 0..20 {
        if resp.iter().any(|&(id, _)| id == r2) {
            break;
        }
        d.drain(1, &mut resp);
        hit_lat += 1;
    }
    assert!(
        hit_lat < miss_lat,
        "hit ({hit_lat}) should be faster than miss ({miss_lat})"
    );
}

#[test]
fn random_requests_are_write_through_transparent() {
    let design = build_cache();
    let mut d = Driver::new(&design.netlist);
    let mut resp = Vec::new();
    let mut reference = [0u8; CACHE_ADDR_SPACE];
    let mut rng = Rng::new(0xcafe);
    let mut expected_reads: Vec<(u64, u8)> = Vec::new();
    for _ in 0..60 {
        let we = rng.chance(0.4);
        let addr = rng.range(0, CACHE_ADDR_SPACE as u64) as u8;
        let data = rng.byte();
        let id = d.issue(we, addr, data, &mut resp);
        if we {
            reference[addr as usize] = data;
        } else {
            expected_reads.push((id, reference[addr as usize]));
        }
        // Occasionally let the pipeline drain fully.
        if rng.chance(0.3) {
            d.drain(12, &mut resp);
        }
    }
    d.drain(24, &mut resp);
    for (id, want) in expected_reads {
        let got = resp
            .iter()
            .find(|&&(rid, _)| rid == id)
            .unwrap_or_else(|| panic!("read {id} never responded: {resp:?}"));
        assert_eq!(got.1, want as u64, "read {id} data");
    }
}

#[test]
fn every_request_gets_exactly_one_response() {
    let design = build_cache();
    let mut d = Driver::new(&design.netlist);
    let mut resp = Vec::new();
    let mut ids = Vec::new();
    let mut rng = Rng::new(7);
    for _ in 0..30 {
        let we = rng.chance(0.5);
        let addr = rng.range(0, CACHE_ADDR_SPACE as u64) as u8;
        let data = rng.byte();
        ids.push(d.issue(we, addr, data, &mut resp));
    }
    d.drain(32, &mut resp);
    for id in ids {
        let n = resp.iter().filter(|&&(rid, _)| rid == id).count();
        assert_eq!(n, 1, "request {id} responded {n} times: {resp:?}");
    }
}
