//! Golden diagnostic snapshots: every `tests/diag/*.nl` file runs through
//! the full frontend (`netlist::text::check`) and its rendered report —
//! codes, messages, caret snippets, notes, summary — must match the
//! checked-in `*.expected` sibling byte for byte.
//!
//! This pins the user-facing shape of the diagnostics engine: a change to
//! a message, a span, or the renderer shows up as a readable diff here.
//!
//! Regenerate after an intentional change:
//!
//! ```text
//! SYNTHLC_BLESS=1 cargo test -p netlist --test diag_snapshots
//! ```

use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("diag")
}

fn blessing() -> bool {
    std::env::var_os("SYNTHLC_BLESS").is_some_and(|v| v == "1")
}

/// The full snapshot for one corpus file: the rendered report (with
/// source snippets) followed by the summary line and the shared
/// lint/check exit code.
fn snapshot(path: &Path) -> String {
    let src = std::fs::read_to_string(path).expect("corpus file");
    let file_name = path.file_name().unwrap().to_string_lossy().into_owned();
    let result = netlist::text::check(&src, &file_name);
    format!(
        "{}-- {} (exit {})\n",
        result.report.render_in(&result.source),
        result.report.summary(),
        result.report.exit_code(true)
    )
}

#[test]
fn corpus_matches_expected_output() {
    let mut cases: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("tests/diag/")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "nl"))
        .collect();
    cases.sort();
    assert!(cases.len() >= 10, "snapshot corpus shrank: {}", cases.len());
    let mut failures = Vec::new();
    for case in &cases {
        let got = snapshot(case);
        let expected_path = case.with_extension("expected");
        if blessing() {
            std::fs::write(&expected_path, &got).expect("write .expected");
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\n(run `SYNTHLC_BLESS=1 cargo test -p netlist --test diag_snapshots`)",
                expected_path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "== {} ==\n--- expected ---\n{want}\n--- got ---\n{got}",
                case.file_name().unwrap().to_string_lossy()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} snapshot(s) drifted (re-bless with SYNTHLC_BLESS=1 if intentional):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_documented_code_appears_in_the_corpus() {
    // The corpus is the executable documentation of the error-code
    // registry: each frontend code must be exercised by at least one file.
    let mut all = String::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/diag/") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "nl") {
            all.push_str(&snapshot(&path));
        }
    }
    for code in [
        "E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008", "E009", "E010", "E011",
        "E012", "E013", "W001", "W002",
    ] {
        assert!(
            all.contains(&format!("[{code}]")),
            "no corpus file triggers {code}"
        );
    }
}
