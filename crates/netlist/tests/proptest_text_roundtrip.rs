//! Textual-format round-trip (property-based): emit(parse(emit(nl))) is a
//! fixpoint and preserves simulation behaviour on random circuits.
//! (Hand-rolled random cases via `prng`.)

use netlist::{Builder, Netlist};
use prng::Rng;
use sim::Simulator;

#[derive(Clone, Debug)]
enum Step {
    Add(usize, usize),
    Xor(usize, usize),
    Mul(usize, usize),
    Mux(usize, usize, usize),
    Not(usize),
    SliceCat(usize),
    Eq(usize, usize),
}

fn random_step(rng: &mut Rng) -> Step {
    let a = rng.range_usize(0, 64);
    let b = rng.range_usize(0, 64);
    let c = rng.range_usize(0, 64);
    match rng.range(0, 7) {
        0 => Step::Add(a, b),
        1 => Step::Xor(a, b),
        2 => Step::Mul(a, b),
        3 => Step::Mux(a, b, c),
        4 => Step::Not(a),
        5 => Step::SliceCat(a),
        _ => Step::Eq(a, b),
    }
}

fn build(steps: &[Step]) -> Netlist {
    let mut b = Builder::new();
    let x = b.input("x", 4);
    let r = b.reg("state", 4, 5);
    let mut pool = vec![x, r];
    for s in steps {
        let pick = |i: &usize| pool[i % pool.len()];
        let w = match s {
            Step::Add(a, c) => {
                let (p, q) = (pick(a), pick(c));
                b.add(p, q)
            }
            Step::Xor(a, c) => {
                let (p, q) = (pick(a), pick(c));
                b.xor(p, q)
            }
            Step::Mul(a, c) => {
                let (p, q) = (pick(a), pick(c));
                b.mul(p, q)
            }
            Step::Mux(s0, a, c) => {
                let sel = {
                    let w = pick(s0);
                    b.red_or(w)
                };
                let (p, q) = (pick(a), pick(c));
                b.mux(sel, p, q)
            }
            Step::Not(a) => {
                let p = pick(a);
                b.not(p)
            }
            Step::SliceCat(a) => {
                let p = pick(a);
                let hi = b.slice(p, 3, 2);
                let lo = b.slice(p, 1, 0);
                b.concat(lo, hi)
            }
            Step::Eq(a, c) => {
                let (p, q) = (pick(a), pick(c));
                let e = b.eq(p, q);
                b.zext(e, 4)
            }
        };
        pool.push(w);
    }
    let last = *pool.last().unwrap();
    b.set_next(r, last).unwrap();
    b.finish().unwrap()
}

#[test]
fn round_trip_is_fixpoint_and_behaviour_preserving() {
    prng::for_each_case("round_trip", 0x0e77, 96, |rng| {
        let steps: Vec<Step> = (0..rng.range_usize(1, 15))
            .map(|_| random_step(rng))
            .collect();
        let script: Vec<u64> = (0..rng.range_usize(1, 6))
            .map(|_| rng.range(0, 16))
            .collect();
        let nl = build(&steps);
        let text = netlist::text::emit(&nl);
        let nl2 = netlist::text::parse(&text).expect("parses");
        assert_eq!(netlist::text::emit(&nl2), text, "emit fixpoint");
        assert_eq!(nl.len(), nl2.len());
        // Behaviour: simulate both with the same script.
        let run = |n: &Netlist| -> Vec<u64> {
            let x = n.find("x").unwrap();
            let r = n.find("state").unwrap();
            let mut s = Simulator::new(n);
            let mut out = Vec::new();
            for &v in &script {
                s.set_input(x, v);
                out.push(s.value(r));
                s.step();
            }
            out.push(s.value(r));
            out
        };
        assert_eq!(run(&nl), run(&nl2), "same behaviour after round trip");
    });
}
