//! Textual-format round-trip (property-based): emit(parse(emit(nl))) is a
//! fixpoint and preserves simulation behaviour on random circuits.

use netlist::{Builder, Netlist};
use proptest::prelude::*;
use sim::Simulator;

#[derive(Clone, Debug)]
enum Step {
    Add(usize, usize),
    Xor(usize, usize),
    Mul(usize, usize),
    Mux(usize, usize, usize),
    Not(usize),
    SliceCat(usize),
    Eq(usize, usize),
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Xor(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Mul(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(s, a, b)| Step::Mux(s, a, b)),
        any::<usize>().prop_map(Step::Not),
        any::<usize>().prop_map(Step::SliceCat),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Step::Eq(a, b)),
    ]
}

fn build(steps: &[Step]) -> Netlist {
    let mut b = Builder::new();
    let x = b.input("x", 4);
    let r = b.reg("state", 4, 5);
    let mut pool = vec![x, r];
    for s in steps {
        let pick = |i: &usize| pool[i % pool.len()];
        let w = match s {
            Step::Add(a, c) => {
                let (p, q) = (pick(a), pick(c));
                b.add(p, q)
            }
            Step::Xor(a, c) => {
                let (p, q) = (pick(a), pick(c));
                b.xor(p, q)
            }
            Step::Mul(a, c) => {
                let (p, q) = (pick(a), pick(c));
                b.mul(p, q)
            }
            Step::Mux(s0, a, c) => {
                let sel = {
                    let w = pick(s0);
                    b.red_or(w)
                };
                let (p, q) = (pick(a), pick(c));
                b.mux(sel, p, q)
            }
            Step::Not(a) => {
                let p = pick(a);
                b.not(p)
            }
            Step::SliceCat(a) => {
                let p = pick(a);
                let hi = b.slice(p, 3, 2);
                let lo = b.slice(p, 1, 0);
                b.concat(lo, hi)
            }
            Step::Eq(a, c) => {
                let (p, q) = (pick(a), pick(c));
                let e = b.eq(p, q);
                b.zext(e, 4)
            }
        };
        pool.push(w);
    }
    let last = *pool.last().unwrap();
    b.set_next(r, last).unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn round_trip_is_fixpoint_and_behaviour_preserving(
        steps in prop::collection::vec(arb_step(), 1..15),
        script in prop::collection::vec(0u64..16, 1..6),
    ) {
        let nl = build(&steps);
        let text = netlist::text::emit(&nl);
        let nl2 = netlist::text::parse(&text).expect("parses");
        prop_assert_eq!(netlist::text::emit(&nl2), text, "emit fixpoint");
        prop_assert_eq!(nl.len(), nl2.len());
        // Behaviour: simulate both with the same script.
        let run = |n: &Netlist| -> Vec<u64> {
            let x = n.find("x").unwrap();
            let r = n.find("state").unwrap();
            let mut s = Simulator::new(n);
            let mut out = Vec::new();
            for &v in &script {
                s.set_input(x, v);
                out.push(s.value(r));
                s.step();
            }
            out.push(s.value(r));
            out
        };
        prop_assert_eq!(run(&nl), run(&nl2), "same behaviour after round trip");
    }
}
