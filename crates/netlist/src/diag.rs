//! Unified diagnostics: one `Diagnostic` type shared by the textual
//! frontend (`E001`+ codes) and the lint suite (`L001`+ codes).
//!
//! The paper's flow assumes a real RTL frontend (Verific/Yosys) whose
//! error reporting users can act on; this module is the reproduction's
//! equivalent. A [`Diagnostic`] carries a stable machine-readable code, a
//! severity, an optional offending [`SignalId`], and — when the input came
//! from a source file — a primary span plus any number of secondary spans,
//! rendered rustc-style with caret snippets by [`Diagnostic::render_in`].
//! [`Report`] aggregates a pass pipeline's findings in emission order and
//! renders them for humans ([`Report::render_in`]) or machines
//! ([`Report::to_json_lines`], the `--diag-json` format).

use crate::ir::SignalId;
use jsonio::Json;
use std::fmt;

/// Diagnostic severity. `Error` diagnostics make downstream tools refuse
/// to run; `Warning`s are advisory unless promoted via deny knobs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory; promotable to `Error` via deny knobs.
    Warning,
    /// Definite problem; downstream tools would panic or produce vacuous
    /// verdicts.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// A half-open byte range `[lo, hi)` into a source file.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Start byte offset (inclusive).
    pub lo: u32,
    /// End byte offset (exclusive).
    pub hi: u32,
}

impl Span {
    /// A span covering `lo..hi` (byte offsets; files are far below 4 GiB).
    pub fn new(lo: usize, hi: usize) -> Self {
        Self {
            lo: lo as u32,
            hi: hi as u32,
        }
    }

    /// The smallest span covering both operands.
    pub fn join(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Byte length (at least 1 for rendering purposes).
    pub fn len(&self) -> usize {
        (self.hi.saturating_sub(self.lo)).max(1) as usize
    }

    /// Whether the span is degenerate (`hi <= lo`).
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// A span plus the message attached to it in the rendered snippet.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Label {
    /// Where the label points.
    pub span: Span,
    /// Message printed after the underline (may be empty).
    pub message: String,
}

/// One finding: a frontend error, a lint, or anything downstream wants to
/// surface through the same channel.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Severity after any deny promotion.
    pub severity: Severity,
    /// Stable machine-readable code (`E001`..., `L001`..., `W001`...).
    pub code: &'static str,
    /// Name of the pass that produced the finding.
    pub pass: &'static str,
    /// The offending signal, when the finding is signal-specific.
    pub signal: Option<SignalId>,
    /// Human-readable description (names already resolved).
    pub message: String,
    /// The span the finding is *about*, underlined with carets.
    pub primary: Option<Label>,
    /// Related locations (first declaration, conflicting operand, ...),
    /// underlined with dashes.
    pub secondary: Vec<Label>,
    /// Free-form `= note:` lines.
    pub notes: Vec<String>,
}

impl Default for Diagnostic {
    fn default() -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code: "",
            pass: "",
            signal: None,
            message: String::new(),
            primary: None,
            secondary: Vec::new(),
            notes: Vec::new(),
        }
    }
}

impl Diagnostic {
    /// An error-severity diagnostic with no spans attached yet.
    pub fn error(code: &'static str, pass: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            pass,
            message: message.into(),
            ..Default::default()
        }
    }

    /// A warning-severity diagnostic with no spans attached yet.
    pub fn warning(code: &'static str, pass: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            pass,
            message: message.into(),
            ..Default::default()
        }
    }

    /// Attaches the primary span.
    pub fn with_primary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.primary = Some(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Appends a secondary span.
    pub fn with_secondary(mut self, span: Span, message: impl Into<String>) -> Self {
        self.secondary.push(Label {
            span,
            message: message.into(),
        });
        self
    }

    /// Appends a `= note:` line.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches the offending signal.
    pub fn with_signal(mut self, signal: SignalId) -> Self {
        self.signal = Some(signal);
        self
    }

    /// Renders the diagnostic as a single report line (the spanless
    /// format the lint suite has always used).
    pub fn render(&self) -> String {
        format!(
            "{}[{}] {}: {}",
            self.severity, self.code, self.pass, self.message
        )
    }

    /// Renders the diagnostic with source snippets: header line, `-->`
    /// location, caret-underlined primary span, dash-underlined secondary
    /// spans, and `= note:` lines. Falls back to [`Diagnostic::render`]
    /// when no primary span is attached.
    pub fn render_in(&self, src: &SourceFile) -> String {
        let Some(primary) = &self.primary else {
            return format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        };
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        let (pline, pcol) = src.line_col(primary.span.lo);
        // Gutter width fits the largest line number we will print.
        let max_line = self
            .secondary
            .iter()
            .map(|l| src.line_col(l.span.lo).0)
            .chain([pline])
            .max()
            .unwrap_or(pline);
        let w = max_line.to_string().len();
        let pad = " ".repeat(w);
        out.push_str(&format!("{pad}--> {}:{pline}:{pcol}\n", src.name));
        out.push_str(&format!("{pad} |\n"));
        src.snippet_rows(&mut out, primary, '^', w);
        for sec in &self.secondary {
            src.snippet_rows(&mut out, sec, '-', w);
        }
        for note in &self.notes {
            out.push_str(&format!("{pad} = note: {note}\n"));
        }
        out
    }

    /// The diagnostic as one machine-readable JSON object. Line/column
    /// fields are included when a primary span and a source file are
    /// available.
    pub fn to_json(&self, src: Option<&SourceFile>) -> Json {
        let mut fields = vec![
            ("severity".into(), Json::str(self.severity.to_string())),
            ("code".into(), Json::str(self.code)),
            ("pass".into(), Json::str(self.pass)),
            ("message".into(), Json::str(self.message.clone())),
        ];
        if let (Some(primary), Some(src)) = (&self.primary, src) {
            let (line, col) = src.line_col(primary.span.lo);
            fields.push(("file".into(), Json::str(src.name.clone())));
            fields.push(("line".into(), Json::Int(line as u64)));
            fields.push(("col".into(), Json::Int(col as u64)));
            if !primary.message.is_empty() {
                fields.push(("label".into(), Json::str(primary.message.clone())));
            }
        }
        if let Some(sig) = self.signal {
            fields.push(("signal".into(), Json::Int(sig.0 as u64)));
        }
        if !self.notes.is_empty() {
            fields.push((
                "notes".into(),
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ));
        }
        Json::Obj(fields)
    }
}

/// A named source file with precomputed line starts, for span-to-line/col
/// translation and snippet rendering.
pub struct SourceFile {
    /// Display name (path as the user gave it).
    pub name: String,
    /// Full text.
    pub text: String,
    line_starts: Vec<u32>,
}

impl SourceFile {
    /// Wraps `text` under display name `name`.
    pub fn new(name: impl Into<String>, text: impl Into<String>) -> Self {
        let text: String = text.into();
        let mut line_starts = vec![0u32];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        Self {
            name: name.into(),
            text,
            line_starts,
        }
    }

    /// 1-based `(line, column)` of a byte offset.
    pub fn line_col(&self, offset: u32) -> (usize, usize) {
        let offset = offset.min(self.text.len() as u32);
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line + 1, (offset - self.line_starts[line]) as usize + 1)
    }

    /// The text of 1-based line `line`, without its newline.
    pub fn line_text(&self, line: usize) -> &str {
        let lo = self.line_starts[line - 1] as usize;
        let hi = self
            .line_starts
            .get(line)
            .map(|&h| h as usize)
            .unwrap_or(self.text.len());
        self.text[lo..hi].trim_end_matches('\n')
    }

    /// Appends the two gutter rows for one label: the source line and the
    /// underline row. Multi-line spans are clamped to their first line.
    fn snippet_rows(&self, out: &mut String, label: &Label, underline: char, w: usize) {
        let (line, col) = self.line_col(label.span.lo);
        let text = self.line_text(line);
        let avail = text.len().saturating_sub(col - 1).max(1);
        let n = label.span.len().min(avail);
        out.push_str(&format!("{line:>w$} | {text}\n"));
        let mut row = format!(
            "{} | {}{}",
            " ".repeat(w),
            " ".repeat(col - 1),
            underline.to_string().repeat(n)
        );
        if !label.message.is_empty() {
            row.push(' ');
            row.push_str(&label.message);
        }
        row.push('\n');
        out.push_str(&row);
    }
}

/// An ordered collection of diagnostics — the result of a frontend
/// compile, a lint run, or both.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Appends one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends every finding of another report.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Whether the run produced no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// Whether any finding is a warning.
    pub fn has_warnings(&self) -> bool {
        self.warnings().next().is_some()
    }

    /// Renders the full report plus a summary line (spanless format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out
    }

    /// Renders the full report with source snippets, one blank line
    /// between diagnostics, ending with the summary line. This is the
    /// golden-tested `check` output format.
    pub fn render_in(&self, src: &SourceFile) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render_in(src));
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// One compact JSON object per line — the `--diag-json` output.
    pub fn to_json_lines(&self, src: Option<&SourceFile>) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_json(src).render_compact());
            out.push('\n');
        }
        out
    }

    /// The process exit code shared by every static-analysis entry point
    /// (`lint`, `check`): 0 = clean, 2 = warnings rejected under
    /// `--deny-warnings`, 1 = errors.
    pub fn exit_code(&self, deny_warnings: bool) -> u8 {
        if self.has_errors() {
            1
        } else if deny_warnings && self.has_warnings() {
            2
        } else {
            0
        }
    }

    /// The one-line summary (`N errors, M warnings`).
    pub fn summary(&self) -> String {
        format!(
            "{} errors, {} warnings",
            self.errors().count(),
            self.warnings().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_translation() {
        let src = SourceFile::new("t.nl", "abc\ndef\n\nxyz");
        assert_eq!(src.line_col(0), (1, 1));
        assert_eq!(src.line_col(2), (1, 3));
        assert_eq!(src.line_col(4), (2, 1));
        assert_eq!(src.line_col(8), (3, 1));
        assert_eq!(src.line_col(9), (4, 1));
        assert_eq!(src.line_text(2), "def");
        assert_eq!(src.line_text(4), "xyz");
    }

    #[test]
    fn render_in_draws_carets_under_the_span() {
        let src = SourceFile::new("t.nl", "wire y = add x zz\n");
        let d = Diagnostic::error("E004", "resolve", "unknown signal `zz`")
            .with_primary(Span::new(15, 17), "not declared");
        let text = d.render_in(&src);
        assert!(text.contains("error[E004]: unknown signal `zz`"));
        assert!(text.contains("--> t.nl:1:16"));
        assert!(text.contains("1 | wire y = add x zz"));
        assert!(text.contains("|                ^^ not declared"), "{text}");
    }

    #[test]
    fn secondary_spans_and_notes_render() {
        let src = SourceFile::new("t.nl", "input a : w1\ninput a : w2\n");
        let d = Diagnostic::error("E003", "resolve", "duplicate definition of `a`")
            .with_primary(Span::new(19, 20), "redefined here")
            .with_secondary(Span::new(6, 7), "first defined here")
            .with_note("each signal may be declared once");
        let text = d.render_in(&src);
        assert!(text.contains("^ redefined here"), "{text}");
        assert!(text.contains("- first defined here"), "{text}");
        assert!(text.contains("= note: each signal may be declared once"));
    }

    #[test]
    fn json_lines_are_compact_and_stable() {
        let src = SourceFile::new("t.nl", "wire y = add x zz\n");
        let mut r = Report::default();
        r.push(
            Diagnostic::error("E004", "resolve", "unknown signal `zz`")
                .with_primary(Span::new(15, 17), ""),
        );
        let lines = r.to_json_lines(Some(&src));
        assert_eq!(
            lines,
            "{\"severity\":\"error\",\"code\":\"E004\",\"pass\":\"resolve\",\
             \"message\":\"unknown signal `zz`\",\"file\":\"t.nl\",\"line\":1,\"col\":16}\n"
        );
    }

    #[test]
    fn spanless_diag_falls_back_to_one_line() {
        let src = SourceFile::new("t.nl", "x\n");
        let d = Diagnostic::warning("L003", "undriven", "input `u` is never read");
        assert_eq!(
            d.render_in(&src),
            "warning[L003]: input `u` is never read\n"
        );
        assert_eq!(
            d.render(),
            "warning[L003] undriven: input `u` is never read"
        );
    }
}
