//! A plain-text netlist format, so the "RTL in, contracts out" flow can run
//! end-to-end from files on disk (standing in for the paper's SystemVerilog
//! inputs).
//!
//! The format is line-based. Each line is one of:
//!
//! ```text
//! # comment
//! input  <name> <width>
//! reg    <name> <width> <init>
//! const  <name> <width> <value>
//! node   <name> <width> <op> <operand>...
//! next   <regname> <signame>
//! ```
//!
//! Operators: `not neg redor redand redxor` (1 operand), `and or xor add sub
//! mul eq ne ult ule shl shr concat` (2 operands), `mux` (3 operands:
//! sel a b), `slice` (operand + two integer indices `hi lo`).
//!
//! # Examples
//!
//! ```
//! let src = "input x 4\nreg acc 4 0\nnode sum 4 add acc x\nnext acc sum\n";
//! let nl = netlist::text::parse(src).unwrap();
//! let round_trip = netlist::text::emit(&nl);
//! let nl2 = netlist::text::parse(&round_trip).unwrap();
//! assert_eq!(nl.len(), nl2.len());
//! ```

use crate::ir::{BinOp, Netlist, Node, Op, SignalId, UnOp};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn bin_op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Ult => "ult",
        BinOp::Ule => "ule",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn bin_op_from(name: &str) -> Option<BinOp> {
    Some(match name {
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "ult" => BinOp::Ult,
        "ule" => BinOp::Ule,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn un_op_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Not => "not",
        UnOp::Neg => "neg",
        UnOp::RedOr => "redor",
        UnOp::RedAnd => "redand",
        UnOp::RedXor => "redxor",
    }
}

fn un_op_from(name: &str) -> Option<UnOp> {
    Some(match name {
        "not" => UnOp::Not,
        "neg" => UnOp::Neg,
        "redor" => UnOp::RedOr,
        "redand" => UnOp::RedAnd,
        "redxor" => UnOp::RedXor,
        _ => return None,
    })
}

/// Serializes a netlist to the textual format. Anonymous signals are given
/// stable generated names (`_n<i>`).
pub fn emit(nl: &Netlist) -> String {
    let name_of = |id: SignalId| -> String {
        match nl.name(id) {
            Some(n) => n.to_owned(),
            None => format!("_n{}", id.0),
        }
    };
    let mut out = String::new();
    let mut next_lines = String::new();
    for (id, node) in nl.iter() {
        let name = name_of(id);
        match &node.op {
            Op::Input => out.push_str(&format!("input {name} {}\n", node.width)),
            Op::Const(v) => out.push_str(&format!("const {name} {} {v}\n", node.width)),
            Op::Reg { next, init } => {
                out.push_str(&format!("reg {name} {} {init}\n", node.width));
                if let Some(nx) = next {
                    next_lines.push_str(&format!("next {name} {}\n", name_of(*nx)));
                }
            }
            Op::Unary(op, a) => out.push_str(&format!(
                "node {name} {} {} {}\n",
                node.width,
                un_op_name(*op),
                name_of(*a)
            )),
            Op::Binary(op, a, b) => out.push_str(&format!(
                "node {name} {} {} {} {}\n",
                node.width,
                bin_op_name(*op),
                name_of(*a),
                name_of(*b)
            )),
            Op::Mux { sel, a, b } => out.push_str(&format!(
                "node {name} {} mux {} {} {}\n",
                node.width,
                name_of(*sel),
                name_of(*a),
                name_of(*b)
            )),
            Op::Slice { src, hi, lo } => out.push_str(&format!(
                "node {name} {} slice {} {hi} {lo}\n",
                node.width,
                name_of(*src)
            )),
            Op::Concat { hi, lo } => out.push_str(&format!(
                "node {name} {} concat {} {}\n",
                node.width,
                name_of(*hi),
                name_of(*lo)
            )),
        }
    }
    out.push_str(&next_lines);
    out
}

/// Parses the textual format into a validated [`Netlist`].
///
/// # Errors
/// Returns a [`ParseError`] on malformed lines, unknown names, or when the
/// resulting netlist fails [`Netlist::validate`] (reported on line 0).
pub fn parse(src: &str) -> Result<Netlist, ParseError> {
    let mut nl = Netlist::new();
    let mut names: HashMap<String, SignalId> = HashMap::new();
    let mut next_fixups: Vec<(usize, String, String)> = Vec::new();
    let err = |line: usize, msg: String| ParseError { line, message: msg };

    for (ix, raw) in src.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let lookup = |names: &HashMap<String, SignalId>, n: &str| -> Result<SignalId, ParseError> {
            names
                .get(n)
                .copied()
                .ok_or_else(|| err(lineno, format!("unknown signal `{n}`")))
        };
        let parse_u64 = |s: &str| -> Result<u64, ParseError> {
            s.parse::<u64>()
                .map_err(|_| err(lineno, format!("bad integer `{s}`")))
        };
        let parse_u8 = |s: &str| -> Result<u8, ParseError> {
            s.parse::<u8>()
                .map_err(|_| err(lineno, format!("bad integer `{s}`")))
        };
        match toks[0] {
            "input" | "reg" | "const" => {
                if toks.len() != if toks[0] == "input" { 3 } else { 4 } {
                    return Err(err(lineno, format!("malformed `{}` line", toks[0])));
                }
                let name = toks[1].to_owned();
                let width = parse_u8(toks[2])?;
                let op = match toks[0] {
                    "input" => Op::Input,
                    "reg" => Op::Reg {
                        next: None,
                        init: parse_u64(toks[3])?,
                    },
                    _ => Op::Const(parse_u64(toks[3])?),
                };
                let id = nl
                    .push(Node {
                        name: Some(name.clone()),
                        width,
                        op,
                    })
                    .map_err(|e| err(lineno, e.to_string()))?;
                names.insert(name, id);
            }
            "node" => {
                if toks.len() < 5 {
                    return Err(err(lineno, "malformed `node` line".into()));
                }
                let name = toks[1].to_owned();
                let width = parse_u8(toks[2])?;
                let opname = toks[3];
                let op = if let Some(u) = un_op_from(opname) {
                    Op::Unary(u, lookup(&names, toks[4])?)
                } else if let Some(bop) = bin_op_from(opname) {
                    if toks.len() != 6 {
                        return Err(err(lineno, format!("`{opname}` needs 2 operands")));
                    }
                    Op::Binary(bop, lookup(&names, toks[4])?, lookup(&names, toks[5])?)
                } else {
                    match opname {
                        "mux" => {
                            if toks.len() != 7 {
                                return Err(err(lineno, "`mux` needs 3 operands".into()));
                            }
                            Op::Mux {
                                sel: lookup(&names, toks[4])?,
                                a: lookup(&names, toks[5])?,
                                b: lookup(&names, toks[6])?,
                            }
                        }
                        "slice" => {
                            if toks.len() != 7 {
                                return Err(err(lineno, "`slice` needs src hi lo".into()));
                            }
                            Op::Slice {
                                src: lookup(&names, toks[4])?,
                                hi: parse_u8(toks[5])?,
                                lo: parse_u8(toks[6])?,
                            }
                        }
                        "concat" => {
                            if toks.len() != 6 {
                                return Err(err(lineno, "`concat` needs 2 operands".into()));
                            }
                            Op::Concat {
                                hi: lookup(&names, toks[4])?,
                                lo: lookup(&names, toks[5])?,
                            }
                        }
                        _ => return Err(err(lineno, format!("unknown op `{opname}`"))),
                    }
                };
                let id = nl
                    .push(Node {
                        name: Some(name.clone()),
                        width,
                        op,
                    })
                    .map_err(|e| err(lineno, e.to_string()))?;
                names.insert(name, id);
            }
            "next" => {
                if toks.len() != 3 {
                    return Err(err(lineno, "malformed `next` line".into()));
                }
                next_fixups.push((lineno, toks[1].to_owned(), toks[2].to_owned()));
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    for (lineno, regname, nextname) in next_fixups {
        let reg = *names
            .get(&regname)
            .ok_or_else(|| err(lineno, format!("unknown register `{regname}`")))?;
        let nxt = *names
            .get(&nextname)
            .ok_or_else(|| err(lineno, format!("unknown signal `{nextname}`")))?;
        match &mut nl.nodes[reg.index()].op {
            Op::Reg { next, .. } => *next = Some(nxt),
            _ => return Err(err(lineno, format!("`{regname}` is not a register"))),
        }
    }
    nl.validate().map_err(|e| err(0, e.to_string()))?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;

    #[test]
    fn round_trip_preserves_structure() {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let sel = b.input("sel", 1);
        let m = b.mux(sel, x, y);
        let r = b.reg("r", 8, 3);
        let s = b.add(m, r);
        let hi = b.slice(s, 7, 4);
        let lo = b.slice(s, 3, 0);
        let cat = b.concat(hi, lo);
        b.set_next(r, cat).unwrap();
        let nl = b.finish().unwrap();
        let text = emit(&nl);
        let nl2 = parse(&text).unwrap();
        assert_eq!(nl.len(), nl2.len());
        assert_eq!(emit(&nl2), text, "emit is a fixpoint");
    }

    #[test]
    fn parse_errors_are_located() {
        let e = parse("input x 8\nnode y 8 add x zz\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("zz"));
    }

    #[test]
    fn unconnected_reg_detected_at_validate() {
        let e = parse("reg r 4 0\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("next"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse("# hello\n\ninput a 1\n").unwrap();
        assert_eq!(nl.len(), 1);
    }
}
