//! Netlist lint: a static-analysis pass framework over (possibly
//! not-yet-validated) netlists and their annotations.
//!
//! The paper's synthesis loop is front-loaded with static analysis (§IV:
//! fan-in cones, performing-instruction detection, µFSM enumeration); this
//! module is the corresponding early-warning layer for the reproduction's
//! hand-written DSL designs. Structural bugs that used to surface as
//! confusing model-checking verdicts — a combinational loop panicking deep
//! inside elaboration, a constant-false fetch strobe making every property
//! vacuously unreachable — are reported here as [`Diagnostic`]s before a
//! single SAT call.
//!
//! A [`Linter`] holds a registry of [`LintPass`]es with per-pass
//! enable/deny knobs; [`Linter::run`] produces a [`LintReport`]. Passes run
//! on the raw node table, so they work on unvalidated netlists (that is the
//! point: several passes re-audit exactly what `Netlist::validate` would
//! reject, but report *all* violations instead of bailing at the first).

use crate::analysis;
use crate::annotate::Annotations;
use crate::ir::{mask, BinOp, Netlist, Op, SignalId};
use std::collections::{BTreeSet, HashSet, VecDeque};

// The lint suite shares one diagnostic type with the textual frontend
// (`crate::diag`): lint codes are `L001`+, frontend codes `E001`+/`W001`+.
// Findings produced here are spanless; `text::check` attaches source spans
// to them when the netlist came from a file.
pub use crate::diag::{Diagnostic, Report as LintReport, Severity};

/// Everything a pass may inspect: the netlist, optional annotations, the
/// root signals that count as "observed" for dead-logic purposes, and named
/// strobe signals whose constancy indicates a vacuous design.
pub struct LintContext<'a> {
    /// The netlist under analysis (validated or not).
    pub netlist: &'a Netlist,
    /// The design's annotation bundle, when linting a full DUV.
    pub annotations: Option<&'a Annotations>,
    /// Signals that count as outputs: annotation signals, harness hook
    /// signals, anything externally observed. Empty roots disable the
    /// dead-logic pass (nothing can be judged dead).
    pub roots: Vec<SignalId>,
    /// `(label, signal)` pairs of 1-bit strobes that must not be
    /// structurally constant (fetch/commit/issue strobes).
    pub strobes: Vec<(String, SignalId)>,
}

impl<'a> LintContext<'a> {
    /// A context with no annotations, roots, or strobes — structural passes
    /// only.
    pub fn netlist_only(netlist: &'a Netlist) -> Self {
        Self {
            netlist,
            annotations: None,
            roots: Vec::new(),
            strobes: Vec::new(),
        }
    }
}

/// A lint pass: a named analysis producing diagnostics.
pub trait LintPass {
    /// Stable pass name used by the enable/deny knobs.
    fn name(&self) -> &'static str;
    /// One-line description for `--help`-style listings.
    fn description(&self) -> &'static str;
    /// Runs the pass, appending findings to `out`.
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// Pass registry with enable/deny knobs.
pub struct Linter {
    passes: Vec<Box<dyn LintPass>>,
    disabled: BTreeSet<String>,
    denied: BTreeSet<String>,
    deny_all: bool,
}

impl Default for Linter {
    fn default() -> Self {
        Self::new()
    }
}

impl Linter {
    /// A linter with every built-in pass registered.
    pub fn new() -> Self {
        let mut l = Self::empty();
        l.register(Box::new(CombLoopPass));
        l.register(Box::new(UndrivenPass));
        l.register(Box::new(WidthAuditPass));
        l.register(Box::new(RegResetPass));
        l.register(Box::new(DeadLogicPass));
        l.register(Box::new(UfsmReachPass));
        l.register(Box::new(AnnotationConstPass));
        l
    }

    /// A linter with no passes (register your own).
    pub fn empty() -> Self {
        Self {
            passes: Vec::new(),
            disabled: BTreeSet::new(),
            denied: BTreeSet::new(),
            deny_all: false,
        }
    }

    /// Adds a pass to the registry (runs in registration order).
    pub fn register(&mut self, pass: Box<dyn LintPass>) {
        self.passes.push(pass);
    }

    /// Disables a pass by name.
    pub fn disable(&mut self, name: &str) {
        self.disabled.insert(name.to_owned());
    }

    /// Re-enables a previously disabled pass.
    pub fn enable(&mut self, name: &str) {
        self.disabled.remove(name);
    }

    /// Promotes one pass's warnings to errors.
    pub fn deny(&mut self, name: &str) {
        self.denied.insert(name.to_owned());
    }

    /// Promotes *every* warning to an error (`--deny-warnings`).
    pub fn deny_all_warnings(&mut self) {
        self.deny_all = true;
    }

    /// `(name, description)` of every registered pass, in run order.
    pub fn pass_list(&self) -> Vec<(&'static str, &'static str)> {
        self.passes
            .iter()
            .map(|p| (p.name(), p.description()))
            .collect()
    }

    /// Runs every enabled pass and applies the deny promotions.
    pub fn run(&self, cx: &LintContext<'_>) -> LintReport {
        let mut diagnostics = Vec::new();
        for pass in &self.passes {
            if self.disabled.contains(pass.name()) {
                continue;
            }
            let start = diagnostics.len();
            pass.run(cx, &mut diagnostics);
            if self.deny_all || self.denied.contains(pass.name()) {
                for d in &mut diagnostics[start..] {
                    d.severity = Severity::Error;
                }
            }
        }
        LintReport { diagnostics }
    }
}

// --------------------------------------------------------------------------
// Built-in passes
// --------------------------------------------------------------------------

/// L001: combinational loops, reported with the full cycle path.
pub struct CombLoopPass;

impl LintPass for CombLoopPass {
    fn name(&self) -> &'static str {
        "comb-loop"
    }
    fn description(&self) -> &'static str {
        "combinational loops, with the cycle path"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if let Some(cycle) = analysis::find_comb_cycle(cx.netlist) {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "L001",
                pass: self.name(),
                signal: cycle.path.first().copied(),
                message: format!("combinational cycle: {}", cycle.render(cx.netlist)),
                ..Default::default()
            });
        }
    }
}

/// L002/L003: undriven registers and floating (never-read) inputs.
pub struct UndrivenPass;

impl LintPass for UndrivenPass {
    fn name(&self) -> &'static str {
        "undriven"
    }
    fn description(&self) -> &'static str {
        "registers without a next connection; inputs nothing reads"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let nl = cx.netlist;
        let mut read: HashSet<SignalId> = HashSet::new();
        for (_, node) in nl.iter() {
            read.extend(node.op.comb_fanin());
            if let Op::Reg { next: Some(nx), .. } = node.op {
                read.insert(nx);
            }
        }
        for (id, node) in nl.iter() {
            match node.op {
                Op::Reg { next: None, .. } => out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "L002",
                    pass: self.name(),
                    signal: Some(id),
                    message: format!("register `{}` has no next connection", nl.display_name(id)),
                    ..Default::default()
                }),
                Op::Input if !read.contains(&id) && !cx.roots.contains(&id) => {
                    out.push(Diagnostic {
                        severity: Severity::Warning,
                        code: "L003",
                        pass: self.name(),
                        signal: Some(id),
                        message: format!("input `{}` is never read", nl.display_name(id)),
                        ..Default::default()
                    });
                }
                _ => {}
            }
        }
    }
}

/// L004: width-rule audit at every use site. `Netlist::validate` stops at
/// the first violation; this pass reports them all.
pub struct WidthAuditPass;

impl LintPass for WidthAuditPass {
    fn name(&self) -> &'static str {
        "width-audit"
    }
    fn description(&self) -> &'static str {
        "operator width rules re-audited at every use site"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let nl = cx.netlist;
        let mut emit = |id: SignalId, msg: String| {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "L004",
                pass: self.name(),
                signal: Some(id),
                message: msg,
                ..Default::default()
            });
        };
        let w_of = |s: SignalId| -> Option<u8> { (s.index() < nl.len()).then(|| nl.width(s)) };
        for (id, node) in nl.iter() {
            let name = nl.display_name(id);
            // Dangling references are reported once, here, and the width
            // rule is skipped for them.
            let mut dangling = false;
            for src in node.op.comb_fanin() {
                if src.index() >= nl.len() {
                    emit(id, format!("`{name}` references out-of-range signal {src}"));
                    dangling = true;
                }
            }
            if dangling {
                continue;
            }
            match &node.op {
                Op::Input | Op::Reg { .. } => {}
                Op::Const(v) => {
                    if *v & !mask(node.width) != 0 {
                        emit(
                            id,
                            format!(
                                "constant `{name}` value {v:#x} does not fit in {} bits",
                                node.width
                            ),
                        );
                    }
                }
                Op::Unary(op, a) => {
                    let aw = w_of(*a).unwrap();
                    let expect = if op.is_reduction() { 1 } else { aw };
                    if node.width != expect {
                        emit(
                            id,
                            format!(
                                "`{name}` = {op}(...): result width {} != expected {expect}",
                                node.width
                            ),
                        );
                    }
                }
                Op::Binary(op, a, b) => {
                    let (aw, bw) = (w_of(*a).unwrap(), w_of(*b).unwrap());
                    match op {
                        BinOp::Shl | BinOp::Shr => {
                            if node.width != aw {
                                emit(
                                    id,
                                    format!(
                                        "`{name}` = {op}(...): result width {} != operand width {aw}",
                                        node.width
                                    ),
                                );
                            }
                        }
                        _ => {
                            if aw != bw {
                                emit(
                                    id,
                                    format!(
                                        "`{name}` = {op}(...): operand widths {aw} and {bw} differ"
                                    ),
                                );
                            } else {
                                let expect = if op.is_comparison() { 1 } else { aw };
                                if node.width != expect {
                                    emit(
                                        id,
                                        format!(
                                            "`{name}` = {op}(...): result width {} != expected {expect}",
                                            node.width
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                Op::Mux { sel, a, b } => {
                    let (sw, aw, bw) = (w_of(*sel).unwrap(), w_of(*a).unwrap(), w_of(*b).unwrap());
                    if sw != 1 {
                        emit(id, format!("`{name}`: mux select is {sw} bits, not 1"));
                    }
                    if aw != bw || node.width != aw {
                        emit(
                            id,
                            format!(
                                "`{name}`: mux arm widths {aw}/{bw} vs result width {}",
                                node.width
                            ),
                        );
                    }
                }
                Op::Slice { src, hi, lo } => {
                    let sw = w_of(*src).unwrap();
                    if hi < lo || *hi >= sw {
                        emit(
                            id,
                            format!("`{name}`: slice [{hi}:{lo}] out of range for {sw}-bit source"),
                        );
                    } else if node.width != hi - lo + 1 {
                        emit(
                            id,
                            format!(
                                "`{name}`: slice [{hi}:{lo}] yields {} bits but node is {} bits",
                                hi - lo + 1,
                                node.width
                            ),
                        );
                    }
                }
                Op::Concat { hi, lo } => {
                    let (hw, lw) = (w_of(*hi).unwrap(), w_of(*lo).unwrap());
                    if node.width as u16 != hw as u16 + lw as u16 {
                        emit(
                            id,
                            format!(
                                "`{name}`: concat of {hw}+{lw} bits but node is {} bits",
                                node.width
                            ),
                        );
                    }
                }
            }
            // Register next-width rule (init-value fit is the reg-reset
            // pass's business).
            if let Op::Reg { next: Some(nx), .. } = &node.op {
                match w_of(*nx) {
                    None => emit(
                        id,
                        format!("register `{name}` next references out-of-range signal {nx}"),
                    ),
                    Some(nw) if nw != node.width => emit(
                        id,
                        format!(
                            "register `{name}` is {} bits but its next is {nw} bits",
                            node.width
                        ),
                    ),
                    _ => {}
                }
            }
        }
    }
}

/// L005: reset values that do not fit the register's width. In this IR
/// every register *has* a reset value, so "register without reset" means a
/// malformed one — the reset would silently truncate in real RTL.
pub struct RegResetPass;

impl LintPass for RegResetPass {
    fn name(&self) -> &'static str {
        "reg-reset"
    }
    fn description(&self) -> &'static str {
        "registers whose reset value does not fit their width"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let nl = cx.netlist;
        for (id, node) in nl.iter() {
            if let Op::Reg { init, .. } = node.op {
                if init & !mask(node.width) != 0 {
                    out.push(Diagnostic {
                        severity: Severity::Error,
                        code: "L005",
                        pass: self.name(),
                        signal: Some(id),
                        message: format!(
                            "register `{}` reset value {init:#x} does not fit in {} bits",
                            nl.display_name(id),
                            node.width
                        ),
                        ..Default::default()
                    });
                }
            }
        }
    }
}

/// L006: dead logic — signals outside the transitive fan-in (through
/// registers, across cycles) of every root and annotation signal. Skipped
/// when the context supplies no roots.
pub struct DeadLogicPass;

impl LintPass for DeadLogicPass {
    fn name(&self) -> &'static str {
        "dead-logic"
    }
    fn description(&self) -> &'static str {
        "signals outside every output/annotation cone"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let nl = cx.netlist;
        let mut roots: Vec<SignalId> = cx.roots.clone();
        if let Some(ann) = cx.annotations {
            roots.extend(annotation_signals(ann));
        }
        roots.extend(cx.strobes.iter().map(|(_, s)| *s));
        roots.retain(|s| s.index() < nl.len());
        if roots.is_empty() {
            return;
        }
        // Backward closure over combinational fan-in plus register next
        // edges — the same edge relation as mc's cone-of-influence slice.
        let mut live: HashSet<SignalId> = HashSet::new();
        let mut queue: VecDeque<SignalId> = roots.into_iter().collect();
        while let Some(s) = queue.pop_front() {
            if !live.insert(s) {
                continue;
            }
            let node = nl.node(s);
            queue.extend(node.op.comb_fanin());
            if let Op::Reg { next: Some(nx), .. } = node.op {
                queue.push_back(nx);
            }
        }
        let mut anonymous = 0usize;
        for (id, node) in nl.iter() {
            if live.contains(&id) || matches!(node.op, Op::Const(_)) {
                continue;
            }
            match &node.name {
                Some(name) => out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "L006",
                    pass: self.name(),
                    signal: Some(id),
                    message: format!("`{name}` drives no root or annotation cone"),
                    ..Default::default()
                }),
                None => anonymous += 1,
            }
        }
        if anonymous > 0 {
            out.push(Diagnostic {
                severity: Severity::Warning,
                code: "L006",
                pass: self.name(),
                signal: None,
                message: format!(
                    "{anonymous} anonymous signal(s) drive no root or annotation cone"
                ),
                ..Default::default()
            });
        }
    }
}

/// L007: µFSM states that no transition function can produce from reset,
/// computed from the annotated state registers' update cones.
pub struct UfsmReachPass;

/// The set of values a register's next-state logic can structurally
/// produce: constant leaves of its mux tree plus its reset value; `None`
/// means unbounded (some leaf is a non-constant expression).
fn producible_values(nl: &Netlist, comb: &[Option<u64>], var: SignalId) -> Option<BTreeSet<u64>> {
    let Op::Reg {
        next: Some(next),
        init,
    } = nl.node(var).op
    else {
        return None;
    };
    let mut vals = BTreeSet::from([init]);
    let mut stack = vec![next];
    let mut seen = HashSet::new();
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        if s == var {
            continue; // hold: contributes no new value
        }
        if let Some(v) = comb[s.index()] {
            vals.insert(v);
            continue;
        }
        match nl.node(s).op {
            Op::Mux { a, b, .. } => {
                stack.push(a);
                stack.push(b);
            }
            // A full-width slice is the builder's naming alias; follow it.
            Op::Slice { src, hi, lo } if lo == 0 && hi + 1 == nl.width(src) => stack.push(src),
            _ => return None,
        }
    }
    Some(vals)
}

impl LintPass for UfsmReachPass {
    fn name(&self) -> &'static str {
        "ufsm-reach"
    }
    fn description(&self) -> &'static str {
        "µFSM states no transition function can produce"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(ann) = cx.annotations else { return };
        let nl = cx.netlist;
        let Ok(comb) = analysis::comb_consts(nl) else {
            return; // comb-loop pass already reports the cycle
        };
        for ufsm in &ann.ufsms {
            if ufsm.vars.iter().any(|v| v.index() >= nl.len()) {
                continue; // annotation-consistency pass reports this
            }
            let sets: Vec<Option<BTreeSet<u64>>> = ufsm
                .vars
                .iter()
                .map(|&v| producible_values(nl, &comb, v))
                .collect();
            for st in ufsm.candidate_states(nl) {
                for (vi, set) in sets.iter().enumerate() {
                    let Some(set) = set else { continue };
                    let want = st.state.0[vi];
                    if !set.contains(&want) {
                        out.push(Diagnostic {
                            severity: Severity::Warning,
                            code: "L007",
                            pass: self.name(),
                            signal: Some(ufsm.vars[vi]),
                            message: format!(
                                "µFSM `{}` state `{}` is structurally unreachable: \
                                 var `{}` can only take {:?}, not {want}",
                                ufsm.name,
                                st.name,
                                nl.display_name(ufsm.vars[vi]),
                                set.iter().collect::<Vec<_>>()
                            ),
                            ..Default::default()
                        });
                    }
                }
            }
        }
    }
}

/// L008/L009: annotation consistency — `Annotations::validate` failures
/// plus performing/fetch strobes that are structurally constant (by the
/// sequential constant propagation of [`analysis::seq_consts`]).
pub struct AnnotationConstPass;

impl LintPass for AnnotationConstPass {
    fn name(&self) -> &'static str {
        "annotation-const"
    }
    fn description(&self) -> &'static str {
        "annotation validity; structurally constant strobes"
    }
    fn run(&self, cx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(ann) = cx.annotations else { return };
        let nl = cx.netlist;
        if let Err(e) = ann.validate(nl) {
            out.push(Diagnostic {
                severity: Severity::Error,
                code: "L008",
                pass: self.name(),
                signal: None,
                message: format!("inconsistent annotations: {e}"),
                ..Default::default()
            });
            return;
        }
        let Ok(consts) = analysis::seq_consts(nl) else {
            return; // comb-loop pass already reports the cycle
        };
        let mut strobes: Vec<(String, SignalId)> = vec![
            ("fetch_valid".into(), ann.fetch_valid),
            ("commit".into(), ann.commit),
        ];
        strobes.extend(cx.strobes.iter().cloned());
        for (label, sig) in strobes {
            match consts[sig.index()] {
                Some(0) => out.push(Diagnostic {
                    severity: Severity::Error,
                    code: "L009",
                    pass: self.name(),
                    signal: Some(sig),
                    message: format!(
                        "strobe {label} (`{}`) is structurally constant 0 — \
                         every property over it is vacuous",
                        nl.display_name(sig)
                    ),
                    ..Default::default()
                }),
                Some(_) => out.push(Diagnostic {
                    severity: Severity::Warning,
                    code: "L009",
                    pass: self.name(),
                    signal: Some(sig),
                    message: format!(
                        "strobe {label} (`{}`) is structurally constant 1",
                        nl.display_name(sig)
                    ),
                    ..Default::default()
                }),
                None => {}
            }
        }
    }
}

/// Every signal an annotation bundle references — the annotation side of
/// the dead-logic root set.
pub fn annotation_signals(ann: &Annotations) -> Vec<SignalId> {
    let mut out = vec![
        ann.ifr,
        ann.fetch_valid,
        ann.fetch_pc,
        ann.commit,
        ann.commit_pc,
    ];
    out.extend(ann.operand_regs.iter().copied());
    out.extend(ann.arf.iter().copied());
    out.extend(ann.amem.iter().copied());
    out.extend(ann.persistent.iter().copied());
    for f in &ann.ufsms {
        out.push(f.pcr);
        out.extend(f.vars.iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::{Annotations, FsmState, NamedState, UFsm};
    use crate::build::Builder;
    use crate::ir::Node;

    fn lint(nl: &Netlist) -> LintReport {
        Linter::new().run(&LintContext::netlist_only(nl))
    }

    fn codes(r: &LintReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_netlist_has_no_findings() {
        let mut b = Builder::new();
        let x = b.input("x", 4);
        let r = b.reg("r", 4, 0);
        let n = b.add(r, x);
        b.set_next(r, n).unwrap();
        let nl = b.finish().unwrap();
        let mut linter = Linter::new();
        let mut cx = LintContext::netlist_only(&nl);
        cx.roots = vec![nl.find("r").unwrap()];
        let report = linter.run(&cx);
        assert!(report.is_clean(), "{}", report.render());
        // Knob round-trip: disable/enable are inverses.
        linter.disable("dead-logic");
        linter.enable("dead-logic");
        assert!(linter.run(&cx).is_clean());
    }

    #[test]
    fn comb_loop_reported_with_path() {
        let mut nl = Netlist::new();
        nl.push(Node {
            name: Some("a".into()),
            width: 1,
            op: Op::Unary(crate::ir::UnOp::Not, SignalId(1)),
        })
        .unwrap();
        nl.push(Node {
            name: Some("b".into()),
            width: 1,
            op: Op::Unary(crate::ir::UnOp::Not, SignalId(0)),
        })
        .unwrap();
        let report = lint(&nl);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "L001")
            .expect("loop reported");
        assert_eq!(d.severity, Severity::Error);
        assert!(
            d.message.contains('a') && d.message.contains('b'),
            "{}",
            d.message
        );
    }

    #[test]
    fn undriven_reg_and_floating_input() {
        let mut b = Builder::new();
        b.reg("orphan", 4, 0); // never connected
        b.input("unused", 1); // never read
        let r = b.reg("ok", 1, 0);
        b.set_next(r, r).unwrap();
        let nl = b.netlist().clone();
        let report = lint(&nl);
        assert!(codes(&report).contains(&"L002"));
        assert!(codes(&report).contains(&"L003"));
        let orphan = report
            .diagnostics
            .iter()
            .find(|d| d.code == "L002")
            .unwrap();
        assert_eq!(orphan.signal, Some(nl.find("orphan").unwrap()));
    }

    #[test]
    fn width_audit_reports_all_violations() {
        // validate() stops at the first mismatch; the lint pass reports
        // both the bad binary op and the bad mux.
        let mut nl = Netlist::new();
        let a = nl
            .push(Node {
                name: Some("a".into()),
                width: 4,
                op: Op::Input,
            })
            .unwrap();
        let b = nl
            .push(Node {
                name: Some("b".into()),
                width: 8,
                op: Op::Input,
            })
            .unwrap();
        nl.push(Node {
            name: Some("bad_add".into()),
            width: 4,
            op: Op::Binary(BinOp::Add, a, b),
        })
        .unwrap();
        nl.push(Node {
            name: Some("bad_mux".into()),
            width: 4,
            op: Op::Mux { sel: b, a, b: a },
        })
        .unwrap();
        let report = lint(&nl);
        let width_errors: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L004")
            .collect();
        assert_eq!(width_errors.len(), 2, "{}", report.render());
        assert!(nl.validate().is_err());
    }

    #[test]
    fn bad_reset_value_reported() {
        let mut nl = Netlist::new();
        let r = nl
            .push(Node {
                name: Some("r".into()),
                width: 2,
                op: Op::Reg {
                    next: None,
                    init: 9, // does not fit in 2 bits
                },
            })
            .unwrap();
        let _ = r;
        let report = lint(&nl);
        assert!(codes(&report).contains(&"L005"));
        assert!(codes(&report).contains(&"L002"), "also undriven");
    }

    #[test]
    fn dead_logic_found_relative_to_roots() {
        let mut b = Builder::new();
        let x = b.input("x", 1);
        let live = b.reg("live", 1, 0);
        b.set_next(live, x).unwrap();
        let dead = b.reg("dead_reg", 1, 0);
        let dn = b.not(dead);
        b.set_next(dead, dn).unwrap();
        let nl = b.finish().unwrap();
        let mut cx = LintContext::netlist_only(&nl);
        cx.roots = vec![nl.find("live").unwrap()];
        let report = Linter::new().run(&cx);
        let dead_diags: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "L006")
            .collect();
        assert!(
            dead_diags.iter().any(|d| d.message.contains("dead_reg")),
            "{}",
            report.render()
        );
        // Without roots the pass stays silent.
        let silent = Linter::new().run(&LintContext::netlist_only(&nl));
        assert!(!codes(&silent).contains(&"L006"));
    }

    /// A minimal annotated design: a 2-bit FSM that can only ever produce
    /// values {0, 1} but declares a state at 3.
    fn annotated_fsm() -> (Netlist, Annotations) {
        let mut b = Builder::new();
        let go = b.input("go", 1);
        let pc = b.reg("pc", 4, 0);
        let one4 = b.constant(1, 4);
        let pcn = b.add(pc, one4);
        b.set_next(pc, pcn).unwrap();
        let st = b.reg("st", 2, 0);
        let c1 = b.constant(1, 2);
        let c0 = b.constant(0, 2);
        let stn = b.mux(go, c1, c0);
        b.set_next(st, stn).unwrap();
        let upc = b.reg("upc", 4, 0);
        b.set_next(upc, pc).unwrap();
        let ifr = b.reg("ifr", 8, 0);
        let z8 = b.constant(0, 8);
        b.set_next(ifr, z8).unwrap();
        let fv = b.reg("fetch_valid", 1, 0);
        b.set_next(fv, go).unwrap();
        let commit = b.reg("commit", 1, 0);
        b.set_next(commit, fv).unwrap();
        let cpc = b.reg("commit_pc", 4, 0);
        b.set_next(cpc, pc).unwrap();
        let nl = b.finish().unwrap();
        let f = |n: &str| nl.find(n).unwrap();
        let ann = Annotations {
            ifr: f("ifr"),
            fetch_valid: f("fetch_valid"),
            fetch_pc: f("pc"),
            commit: f("commit"),
            commit_pc: f("commit_pc"),
            operand_regs: vec![],
            arf: vec![],
            amem: vec![],
            persistent: vec![],
            ufsms: vec![UFsm {
                name: "u".into(),
                pcr: f("upc"),
                vars: vec![f("st")],
                idle: vec![FsmState(vec![0])],
                states: Some(vec![
                    NamedState {
                        name: "busy".into(),
                        state: FsmState(vec![1]),
                    },
                    NamedState {
                        name: "ghost".into(),
                        state: FsmState(vec![3]),
                    },
                ]),
                pcr_added: true,
            }],
            added_loc: 0,
        };
        (nl, ann)
    }

    #[test]
    fn unreachable_ufsm_state_flagged() {
        let (nl, ann) = annotated_fsm();
        let mut cx = LintContext::netlist_only(&nl);
        cx.annotations = Some(&ann);
        let report = Linter::new().run(&cx);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "L007")
            .expect("ghost state flagged");
        assert!(d.message.contains("ghost"), "{}", d.message);
        assert!(
            !report
                .diagnostics
                .iter()
                .any(|d| d.message.contains("busy")),
            "reachable state not flagged: {}",
            report.render()
        );
    }

    #[test]
    fn constant_strobe_flagged_as_error() {
        let (nl, mut ann) = annotated_fsm();
        // Point the commit strobe at a register stuck at 0.
        let mut b = Builder::from_netlist(nl);
        let stuck = b.reg("stuck", 1, 0);
        b.set_next(stuck, stuck).unwrap();
        let nl = b.finish().unwrap();
        ann.commit = nl.find("stuck").unwrap();
        let mut cx = LintContext::netlist_only(&nl);
        cx.annotations = Some(&ann);
        let report = Linter::new().run(&cx);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "L009")
            .expect("constant strobe flagged");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("commit"), "{}", d.message);
        assert!(report.has_errors());
    }

    #[test]
    fn deny_all_promotes_warnings() {
        let mut b = Builder::new();
        b.input("unused", 1);
        let r = b.reg("r", 1, 0);
        b.set_next(r, r).unwrap();
        let nl = b.finish().unwrap();
        let mut linter = Linter::new();
        linter.deny_all_warnings();
        let report = linter.run(&LintContext::netlist_only(&nl));
        assert!(report.has_errors(), "{}", report.render());
        // The targeted deny knob does the same for one pass.
        let mut linter = Linter::new();
        linter.deny("undriven");
        assert!(linter.run(&LintContext::netlist_only(&nl)).has_errors());
        // Disabling the pass silences it entirely.
        let mut linter = Linter::new();
        linter.disable("undriven");
        assert!(linter.run(&LintContext::netlist_only(&nl)).is_clean());
    }

    #[test]
    fn pass_list_names_all_builtins() {
        let names: Vec<_> = Linter::new().pass_list().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "comb-loop",
                "undriven",
                "width-audit",
                "reg-reset",
                "dead-logic",
                "ufsm-reach",
                "annotation-const"
            ]
        );
    }
}
