//! Static netlist analyses used by RTL2MµPATH.
//!
//! The key consumer is happens-before candidate-edge generation (§V-B5 of
//! the paper): two performing locations are candidate HB-related when the
//! state variables of one µFSM lie in the *combinational fan-in cone* of the
//! other's next-state logic. The lint layer (`crate::lint`) and the model
//! checker's cone-of-influence reduction (`mc::coi`) build on the same
//! primitives, so cycle detection here reports a *typed* error carrying the
//! offending path instead of panicking.

use crate::ir::{BinOp, Netlist, Op, SignalId};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// A combinational cycle, reported as the closed path of signals involved.
///
/// `path` lists the signals on the cycle in fan-in order; the last element
/// feeds the first. Render against the netlist for human-readable names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CycleError {
    /// The signals on the cycle, in order (no repetition of the start).
    pub path: Vec<SignalId>,
}

impl CycleError {
    /// Renders the cycle with signal names, e.g. `a -> b -> a`.
    pub fn render(&self, nl: &Netlist) -> String {
        let mut names: Vec<String> = self.path.iter().map(|&s| nl.display_name(s)).collect();
        if let Some(first) = names.first().cloned() {
            names.push(first);
        }
        names.join(" -> ")
    }
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.path.iter().map(|s| s.to_string()).collect();
        write!(f, "combinational cycle: {}", ids.join(" -> "))
    }
}

impl std::error::Error for CycleError {}

/// Searches the whole netlist for a combinational cycle.
///
/// Returns the first cycle found (in a deterministic node-id order) or
/// `None` when the combinational logic is acyclic. This is the engine behind
/// [`topo_order`]'s error path and the `comb-loop` lint pass.
pub fn find_comb_cycle(nl: &Netlist) -> Option<CycleError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = nl.len();
    let mut marks = vec![Mark::White; n];
    for start in 0..n {
        if marks[start] != Mark::White {
            continue;
        }
        // Iterative DFS keeping the grey path on the explicit stack so a
        // back edge yields the full cycle, not just one member.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        marks[start] = Mark::Grey;
        while let Some(&mut (node_ix, ref mut child_ix)) = stack.last_mut() {
            let fanin = nl.node(SignalId(node_ix as u32)).op.comb_fanin();
            if *child_ix < fanin.len() {
                let child = fanin[*child_ix].index();
                *child_ix += 1;
                match marks[child] {
                    Mark::White => {
                        marks[child] = Mark::Grey;
                        stack.push((child, 0));
                    }
                    Mark::Grey => {
                        // The cycle is the stack suffix from `child` on.
                        let from = stack
                            .iter()
                            .position(|&(ix, _)| ix == child)
                            .expect("grey node is on the DFS stack");
                        let path = stack[from..]
                            .iter()
                            .map(|&(ix, _)| SignalId(ix as u32))
                            .collect();
                        return Some(CycleError { path });
                    }
                    Mark::Black => {}
                }
            } else {
                marks[node_ix] = Mark::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Computes a topological evaluation order of the combinational logic.
///
/// Registers, constants and inputs appear first (they are sources); every
/// other node appears after all of its combinational fan-in.
///
/// # Errors
/// Returns the combinational cycle when one exists (previously this
/// panicked, which turned a design bug into an opaque crash deep inside the
/// model checker).
pub fn topo_order(nl: &Netlist) -> Result<Vec<SignalId>, CycleError> {
    let n = nl.len();
    let mut indeg = vec![0usize; n];
    let mut fanout: HashMap<usize, Vec<usize>> = HashMap::new();
    for (id, node) in nl.iter() {
        for src in node.op.comb_fanin() {
            indeg[id.index()] += 1;
            fanout.entry(src.index()).or_default().push(id.index());
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(SignalId(i as u32));
        if let Some(outs) = fanout.get(&i) {
            for &o in outs {
                indeg[o] -= 1;
                if indeg[o] == 0 {
                    queue.push_back(o);
                }
            }
        }
    }
    if order.len() != n {
        return Err(find_comb_cycle(nl).expect("incomplete Kahn order implies a cycle"));
    }
    Ok(order)
}

/// Returns the set of *sequential sources* (registers and primary inputs) in
/// the combinational fan-in cone of `sig`.
///
/// The traversal walks combinational fan-in edges and stops at registers and
/// inputs, which are the cone's frontier.
///
/// # Errors
/// Returns the cycle when the cone contains a combinational loop (on which
/// the old implementation silently returned a partial cone).
pub fn comb_cone_sources(nl: &Netlist, sig: SignalId) -> Result<HashSet<SignalId>, CycleError> {
    let mut sources = HashSet::new();
    // DFS with an explicit grey path so a back edge inside the cone is
    // reported as a typed error rather than walked around.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; nl.len()];
    let mut stack: Vec<(SignalId, usize)> = vec![(sig, 0)];
    marks[sig.index()] = Mark::Grey;
    while let Some(&mut (s, ref mut child_ix)) = stack.last_mut() {
        let node = nl.node(s);
        let fanin = match &node.op {
            Op::Reg { .. } | Op::Input => {
                sources.insert(s);
                vec![]
            }
            Op::Const(_) => vec![],
            op => op.comb_fanin(),
        };
        if *child_ix < fanin.len() {
            let child = fanin[*child_ix];
            *child_ix += 1;
            match marks[child.index()] {
                Mark::White => {
                    marks[child.index()] = Mark::Grey;
                    stack.push((child, 0));
                }
                Mark::Grey => {
                    let from = stack
                        .iter()
                        .position(|&(ix, _)| ix == child)
                        .expect("grey node is on the DFS stack");
                    let path = stack[from..].iter().map(|&(ix, _)| ix).collect();
                    return Err(CycleError { path });
                }
                Mark::Black => {}
            }
        } else {
            marks[s.index()] = Mark::Black;
            stack.pop();
        }
    }
    Ok(sources)
}

/// Returns the registers whose *next-state* logic combinationally depends on
/// at least one register in `from`.
///
/// This is the paper's notion of "PLs connected via pure combinational
/// logic" lifted to register granularity: if any of µFSM *B*'s state
/// registers' next-state cones contain any of µFSM *A*'s state registers,
/// then an instruction's occupancy of *A* can causally influence its
/// occupancy of *B* one cycle later — making (A, B) a candidate HB edge.
///
/// # Panics
/// Panics on a combinational cycle; callers hold validated netlists.
pub fn regs_feeding(nl: &Netlist, from: &HashSet<SignalId>) -> HashSet<SignalId> {
    let mut out = HashSet::new();
    for r in nl.regs() {
        let next = nl.reg_next(r);
        let cone = comb_cone_sources(nl, next).expect("validated netlist is acyclic");
        if cone.iter().any(|s| from.contains(s)) {
            out.insert(r);
        }
    }
    out
}

/// Whether any register in `dst_regs` has a next-state cone containing any
/// register in `src_regs` — i.e. `src` can influence `dst` within one cycle.
///
/// # Panics
/// Panics on a combinational cycle; callers hold validated netlists.
pub fn comb_connected(
    nl: &Netlist,
    src_regs: &HashSet<SignalId>,
    dst_regs: &HashSet<SignalId>,
) -> bool {
    dst_regs.iter().any(|&d| {
        let next = nl.reg_next(d);
        let cone = comb_cone_sources(nl, next).expect("validated netlist is acyclic");
        cone.iter().any(|s| src_regs.contains(s))
    })
}

/// Evaluates every signal that is a *pure combinational constant*: a cone
/// with no register or input in it. Registers, inputs, and anything fed by
/// them map to `None`.
///
/// Used by the µFSM-reachability lint pass to resolve constant leaves of
/// next-state mux trees (e.g. a state encoding built with `concat`).
///
/// # Errors
/// Returns the cycle when the combinational logic is cyclic.
pub fn comb_consts(nl: &Netlist) -> Result<Vec<Option<u64>>, CycleError> {
    let order = topo_order(nl)?;
    let mut vals: Vec<Option<u64>> = vec![None; nl.len()];
    for &id in &order {
        vals[id.index()] = eval_node(nl, id, &vals);
    }
    Ok(vals)
}

/// Structural *sequential* constant propagation: the greatest fixpoint in
/// which a register is constant iff its next-state cone evaluates to its
/// reset value under the current constant assumptions. Primary inputs are
/// never constant.
///
/// This is the engine behind the annotation-consistency lint pass: a
/// performing/fetch strobe that comes back `Some(0)` here is structurally
/// stuck at zero from reset, for every input sequence.
///
/// # Errors
/// Returns the cycle when the combinational logic is cyclic.
pub fn seq_consts(nl: &Netlist) -> Result<Vec<Option<u64>>, CycleError> {
    let order = topo_order(nl)?;
    // Optimistically assume every connected register holds its reset value
    // forever, then knock out registers whose next-state disagrees until the
    // fixpoint. Unconnected registers are left non-constant (the undriven
    // lint pass reports those separately).
    let mut reg_const: HashMap<SignalId, u64> = nl
        .regs()
        .into_iter()
        .filter(|&r| matches!(nl.node(r).op, Op::Reg { next: Some(_), .. }))
        .map(|r| (r, nl.reg_init(r)))
        .collect();
    loop {
        let mut vals: Vec<Option<u64>> = vec![None; nl.len()];
        for &id in &order {
            vals[id.index()] = match &nl.node(id).op {
                Op::Reg { .. } => reg_const.get(&id).copied(),
                _ => eval_node(nl, id, &vals),
            };
        }
        let demoted: Vec<SignalId> = reg_const
            .iter()
            .filter(|&(&r, &v)| vals[nl.reg_next(r).index()] != Some(v))
            .map(|(&r, _)| r)
            .collect();
        if demoted.is_empty() {
            return Ok(vals);
        }
        for r in demoted {
            reg_const.remove(&r);
        }
    }
}

/// Evaluates one non-register node given the constant assignments of its
/// fan-in (`None` = not constant). Inputs and registers return `None`.
fn eval_node(nl: &Netlist, id: SignalId, vals: &[Option<u64>]) -> Option<u64> {
    let node = nl.node(id);
    let v = |s: SignalId| vals[s.index()];
    match &node.op {
        Op::Input | Op::Reg { .. } => None,
        Op::Const(c) => Some(*c),
        Op::Unary(op, a) => Some(op.eval(v(*a)?, nl.width(*a))),
        Op::Binary(op, a, b) => {
            let (va, vb) = (v(*a), v(*b));
            // Absorbing elements make one constant operand enough — the
            // common "strobe gated by a stuck-at-zero register" shape.
            match (op, va, vb) {
                (BinOp::And | BinOp::Mul, Some(0), _) | (BinOp::And | BinOp::Mul, _, Some(0)) => {
                    Some(0)
                }
                (BinOp::Or, Some(x), _) | (BinOp::Or, _, Some(x))
                    if x == crate::ir::mask(node.width) =>
                {
                    Some(x)
                }
                _ => Some(op.eval(va?, vb?, node.width)),
            }
        }
        Op::Mux { sel, a, b } => match v(*sel) {
            Some(0) => v(*b),
            Some(_) => v(*a),
            // Unknown select but agreeing constant arms.
            None => match (v(*a), v(*b)) {
                (Some(x), Some(y)) if x == y => Some(x),
                _ => None,
            },
        },
        Op::Slice { src, hi, lo } => {
            let width = hi - lo + 1;
            Some((v(*src)? >> lo) & crate::ir::mask(width))
        }
        Op::Concat { hi, lo } => {
            let lw = nl.width(*lo);
            Some((v(*hi)? << lw) | v(*lo)?)
        }
    }
}

/// Summary statistics of a netlist, analogous to the elaboration statistics
/// the paper reports for CVA6 (§VI: wires, cells, registers, flip-flop bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NetlistStats {
    /// Total nodes (signals).
    pub nodes: usize,
    /// Combinational cells (everything except inputs, constants, registers).
    pub cells: usize,
    /// Register count.
    pub regs: usize,
    /// Total flip-flop bits.
    pub flop_bits: usize,
    /// Primary inputs.
    pub inputs: usize,
}

/// Computes [`NetlistStats`] for a netlist.
pub fn stats(nl: &Netlist) -> NetlistStats {
    let mut s = NetlistStats {
        nodes: nl.len(),
        ..Default::default()
    };
    for (_, node) in nl.iter() {
        match &node.op {
            Op::Input => s.inputs += 1,
            Op::Const(_) => {}
            Op::Reg { .. } => {
                s.regs += 1;
                s.flop_bits += node.width as usize;
            }
            _ => s.cells += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use crate::ir::{BinOp, Node, Op};

    /// r2's next depends on r1; r1's next depends only on itself.
    fn two_stage() -> (Netlist, SignalId, SignalId) {
        let mut b = Builder::new();
        let r1 = b.reg("r1", 4, 0);
        let r2 = b.reg("r2", 4, 0);
        let one = b.constant(1, 4);
        let n1 = b.add(r1, one);
        b.set_next(r1, n1).unwrap();
        let n2 = b.add(r1, r1);
        b.set_next(r2, n2).unwrap();
        let nl = b.finish().unwrap();
        let r1 = nl.find("r1").unwrap();
        let r2 = nl.find("r2").unwrap();
        (nl, r1, r2)
    }

    /// A deliberately cyclic netlist: `a = b & in`, `b = a | in` — the
    /// builder cannot express this (operands must already exist), so the
    /// nodes are pushed raw with forward references.
    fn cyclic() -> Netlist {
        let mut nl = Netlist::new();
        let inp = nl
            .push(Node {
                name: Some("in".into()),
                width: 1,
                op: Op::Input,
            })
            .unwrap();
        // a = and(b, in) with b = SignalId(2) pushed next.
        let a = nl
            .push(Node {
                name: Some("a".into()),
                width: 1,
                op: Op::Binary(BinOp::And, SignalId(2), inp),
            })
            .unwrap();
        nl.push(Node {
            name: Some("b".into()),
            width: 1,
            op: Op::Binary(BinOp::Or, a, inp),
        })
        .unwrap();
        nl
    }

    #[test]
    fn topo_order_is_complete_and_ordered() {
        let (nl, _, _) = two_stage();
        let order = topo_order(&nl).unwrap();
        assert_eq!(order.len(), nl.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for (id, node) in nl.iter() {
            for src in node.op.comb_fanin() {
                assert!(pos[&src] < pos[&id], "fan-in after consumer");
            }
        }
    }

    #[test]
    fn cyclic_netlist_yields_typed_error() {
        let nl = cyclic();
        let err = topo_order(&nl).expect_err("cyclic netlist must not order");
        // The reported path is the two-node loop a <-> b (in either
        // rotation), never the acyclic input.
        let names: Vec<_> = err.path.iter().map(|&s| nl.display_name(s)).collect();
        assert_eq!(err.path.len(), 2, "cycle is a two-node loop: {names:?}");
        assert!(names.contains(&"a".to_owned()) && names.contains(&"b".to_owned()));
        let rendered = err.render(&nl);
        assert!(
            rendered == "a -> b -> a" || rendered == "b -> a -> b",
            "rendered cycle closes on itself: {rendered}"
        );
        let cone_err =
            comb_cone_sources(&nl, nl.find("a").unwrap()).expect_err("cone walk reports the loop");
        assert_eq!(cone_err.path.len(), 2);
        assert!(find_comb_cycle(&nl).is_some());
    }

    #[test]
    fn acyclic_netlist_has_no_cycle() {
        let (nl, _, _) = two_stage();
        assert!(find_comb_cycle(&nl).is_none());
    }

    #[test]
    fn cone_sources_stop_at_regs() {
        let (nl, r1, r2) = two_stage();
        let cone = comb_cone_sources(&nl, nl.reg_next(r2)).unwrap();
        assert!(cone.contains(&r1));
        assert!(!cone.contains(&r2));
    }

    #[test]
    fn cone_of_source_is_itself() {
        let (nl, r1, _) = two_stage();
        let cone = comb_cone_sources(&nl, r1).unwrap();
        assert_eq!(cone.len(), 1);
        assert!(cone.contains(&r1));
    }

    #[test]
    fn connectivity_is_directional() {
        let (nl, r1, r2) = two_stage();
        let a: HashSet<_> = [r1].into_iter().collect();
        let b: HashSet<_> = [r2].into_iter().collect();
        assert!(comb_connected(&nl, &a, &b), "r1 feeds r2");
        assert!(!comb_connected(&nl, &b, &a), "r2 does not feed r1");
    }

    #[test]
    fn comb_consts_fold_pure_cones() {
        let mut b = Builder::new();
        let x = b.input("x", 4);
        let c3 = b.constant(3, 4);
        let c4 = b.constant(4, 4);
        let sum = b.add(c3, c4);
        b.name(sum, "sum");
        let mixed = b.add(x, c3);
        b.name(mixed, "mixed");
        let r = b.reg("r", 4, 0);
        b.set_next(r, mixed).unwrap();
        let nl = b.finish().unwrap();
        let vals = comb_consts(&nl).unwrap();
        assert_eq!(vals[nl.find("sum").unwrap().index()], Some(7));
        assert_eq!(vals[nl.find("mixed").unwrap().index()], None);
        assert_eq!(vals[nl.find("r").unwrap().index()], None);
    }

    #[test]
    fn seq_consts_find_stuck_registers() {
        let mut b = Builder::new();
        let x = b.input("x", 1);
        // `stuck` holds itself: constant 0 forever.
        let stuck = b.reg("stuck", 1, 0);
        b.set_next(stuck, stuck).unwrap();
        // `gated` can only change when `stuck` is 1 — never.
        let gated = b.reg("gated", 1, 0);
        let gnext = b.mux(stuck, x, gated);
        b.set_next(gated, gnext).unwrap();
        // `live` follows the input.
        let live = b.reg("live", 1, 0);
        b.set_next(live, x).unwrap();
        // A derived strobe off the stuck register.
        let strobe = b.and(stuck, x);
        b.name(strobe, "strobe");
        let nl = b.finish().unwrap();
        let vals = seq_consts(&nl).unwrap();
        assert_eq!(vals[nl.find("stuck").unwrap().index()], Some(0));
        assert_eq!(vals[nl.find("gated").unwrap().index()], Some(0));
        assert_eq!(vals[nl.find("live").unwrap().index()], None);
        assert_eq!(vals[nl.find("strobe").unwrap().index()], Some(0));
    }

    #[test]
    fn stats_counts() {
        let (nl, _, _) = two_stage();
        let s = stats(&nl);
        assert_eq!(s.regs, 2);
        assert_eq!(s.flop_bits, 8);
        assert!(s.cells >= 2);
    }
}
