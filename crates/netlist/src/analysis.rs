//! Static netlist analyses used by RTL2MµPATH.
//!
//! The key consumer is happens-before candidate-edge generation (§V-B5 of
//! the paper): two performing locations are candidate HB-related when the
//! state variables of one µFSM lie in the *combinational fan-in cone* of the
//! other's next-state logic.

use crate::ir::{Netlist, Op, SignalId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Computes a topological evaluation order of the combinational logic.
///
/// Registers, constants and inputs appear first (they are sources); every
/// other node appears after all of its combinational fan-in.
///
/// # Panics
/// Panics if the netlist has a combinational cycle (call
/// [`Netlist::validate`] first).
pub fn topo_order(nl: &Netlist) -> Vec<SignalId> {
    let n = nl.len();
    let mut indeg = vec![0usize; n];
    let mut fanout: HashMap<usize, Vec<usize>> = HashMap::new();
    for (id, node) in nl.iter() {
        for src in node.op.comb_fanin() {
            indeg[id.index()] += 1;
            fanout.entry(src.index()).or_default().push(id.index());
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        order.push(SignalId(i as u32));
        if let Some(outs) = fanout.get(&i) {
            for &o in outs {
                indeg[o] -= 1;
                if indeg[o] == 0 {
                    queue.push_back(o);
                }
            }
        }
    }
    assert_eq!(order.len(), n, "combinational cycle in netlist");
    order
}

/// Returns the set of *sequential sources* (registers and primary inputs) in
/// the combinational fan-in cone of `sig`.
///
/// The traversal walks combinational fan-in edges and stops at registers and
/// inputs, which are the cone's frontier.
pub fn comb_cone_sources(nl: &Netlist, sig: SignalId) -> HashSet<SignalId> {
    let mut seen = HashSet::new();
    let mut sources = HashSet::new();
    let mut stack = vec![sig];
    while let Some(s) = stack.pop() {
        if !seen.insert(s) {
            continue;
        }
        let node = nl.node(s);
        match &node.op {
            Op::Reg { .. } | Op::Input => {
                sources.insert(s);
            }
            Op::Const(_) => {}
            _ => stack.extend(node.op.comb_fanin()),
        }
    }
    // The starting signal itself may be a register/input.
    if nl.node(sig).op.is_reg() || nl.node(sig).op.is_input() {
        sources.insert(sig);
    }
    sources
}

/// Returns the registers whose *next-state* logic combinationally depends on
/// at least one register in `from`.
///
/// This is the paper's notion of "PLs connected via pure combinational
/// logic" lifted to register granularity: if any of µFSM *B*'s state
/// registers' next-state cones contain any of µFSM *A*'s state registers,
/// then an instruction's occupancy of *A* can causally influence its
/// occupancy of *B* one cycle later — making (A, B) a candidate HB edge.
pub fn regs_feeding(nl: &Netlist, from: &HashSet<SignalId>) -> HashSet<SignalId> {
    let mut out = HashSet::new();
    for r in nl.regs() {
        let next = nl.reg_next(r);
        let cone = comb_cone_sources(nl, next);
        if cone.iter().any(|s| from.contains(s)) {
            out.insert(r);
        }
    }
    out
}

/// Whether any register in `dst_regs` has a next-state cone containing any
/// register in `src_regs` — i.e. `src` can influence `dst` within one cycle.
pub fn comb_connected(
    nl: &Netlist,
    src_regs: &HashSet<SignalId>,
    dst_regs: &HashSet<SignalId>,
) -> bool {
    dst_regs.iter().any(|&d| {
        let next = nl.reg_next(d);
        let cone = comb_cone_sources(nl, next);
        cone.iter().any(|s| src_regs.contains(s))
    })
}

/// Summary statistics of a netlist, analogous to the elaboration statistics
/// the paper reports for CVA6 (§VI: wires, cells, registers, flip-flop bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NetlistStats {
    /// Total nodes (signals).
    pub nodes: usize,
    /// Combinational cells (everything except inputs, constants, registers).
    pub cells: usize,
    /// Register count.
    pub regs: usize,
    /// Total flip-flop bits.
    pub flop_bits: usize,
    /// Primary inputs.
    pub inputs: usize,
}

/// Computes [`NetlistStats`] for a netlist.
pub fn stats(nl: &Netlist) -> NetlistStats {
    let mut s = NetlistStats {
        nodes: nl.len(),
        ..Default::default()
    };
    for (_, node) in nl.iter() {
        match &node.op {
            Op::Input => s.inputs += 1,
            Op::Const(_) => {}
            Op::Reg { .. } => {
                s.regs += 1;
                s.flop_bits += node.width as usize;
            }
            _ => s.cells += 1,
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;

    /// r2's next depends on r1; r1's next depends only on itself.
    fn two_stage() -> (Netlist, SignalId, SignalId) {
        let mut b = Builder::new();
        let r1 = b.reg("r1", 4, 0);
        let r2 = b.reg("r2", 4, 0);
        let one = b.constant(1, 4);
        let n1 = b.add(r1, one);
        b.set_next(r1, n1).unwrap();
        let n2 = b.add(r1, r1);
        b.set_next(r2, n2).unwrap();
        let nl = b.finish().unwrap();
        let r1 = nl.find("r1").unwrap();
        let r2 = nl.find("r2").unwrap();
        (nl, r1, r2)
    }

    #[test]
    fn topo_order_is_complete_and_ordered() {
        let (nl, _, _) = two_stage();
        let order = topo_order(&nl);
        assert_eq!(order.len(), nl.len());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        for (id, node) in nl.iter() {
            for src in node.op.comb_fanin() {
                assert!(pos[&src] < pos[&id], "fan-in after consumer");
            }
        }
    }

    #[test]
    fn cone_sources_stop_at_regs() {
        let (nl, r1, r2) = two_stage();
        let cone = comb_cone_sources(&nl, nl.reg_next(r2));
        assert!(cone.contains(&r1));
        assert!(!cone.contains(&r2));
    }

    #[test]
    fn connectivity_is_directional() {
        let (nl, r1, r2) = two_stage();
        let a: HashSet<_> = [r1].into_iter().collect();
        let b: HashSet<_> = [r2].into_iter().collect();
        assert!(comb_connected(&nl, &a, &b), "r1 feeds r2");
        assert!(!comb_connected(&nl, &b, &a), "r2 does not feed r1");
    }

    #[test]
    fn stats_counts() {
        let (nl, _, _) = two_stage();
        let s = stats(&nl);
        assert_eq!(s.regs, 2);
        assert_eq!(s.flop_bits, 8);
        assert!(s.cells >= 2);
    }
}
