//! A structural hardware-construction DSL over the IR.
//!
//! [`Builder`] plays the role that SystemVerilog elaboration plays in the
//! paper's toolflow: designs under verification are *constructed* as netlists
//! rather than parsed from text (see `DESIGN.md` for the substitution
//! rationale; a textual format also exists in [`crate::text`]).
//!
//! # Examples
//!
//! A 4-bit counter that wraps:
//!
//! ```
//! use netlist::Builder;
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = Builder::new();
//! let count = b.reg("count", 4, 0);
//! let one = b.constant(1, 4);
//! let next = b.add(count, one);
//! b.set_next(count, next)?;
//! let netlist = b.finish()?;
//! assert_eq!(netlist.regs().len(), 1);
//! # Ok(())
//! # }
//! ```

use crate::ir::{BinOp, Netlist, NetlistError, Node, Op, SignalId, UnOp};

/// A handle to a signal under construction: its id plus width.
///
/// `Wire`s are cheap copies; all operations go through [`Builder`] methods.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Wire {
    /// Signal id in the builder's netlist.
    pub id: SignalId,
    /// Bit width.
    pub width: u8,
}

/// Incrementally constructs a [`Netlist`].
///
/// Registers are declared up front (so feedback loops can reference them) and
/// wired with [`Builder::set_next`] once their next-state logic exists.
/// [`Builder::finish`] validates the result.
#[derive(Debug, Default)]
pub struct Builder {
    nl: Netlist,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reopens a finished netlist for extension — used to weave verification
    /// monitors (sticky bits, delay lines, taint covers) into a design
    /// without disturbing existing nodes, exactly as the paper adds
    /// verification-only state next to the DUV (§V-A footnote 2).
    pub fn from_netlist(nl: Netlist) -> Self {
        Self { nl }
    }

    /// A wire handle for an existing signal.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn wire(&self, id: crate::ir::SignalId) -> Wire {
        Wire {
            id,
            width: self.nl.width(id),
        }
    }

    /// A wire handle for an existing named signal.
    ///
    /// # Panics
    /// Panics if no signal has that name.
    pub fn wire_named(&self, name: &str) -> Wire {
        let id = self
            .nl
            .find(name)
            .unwrap_or_else(|| panic!("no signal named `{name}`"));
        self.wire(id)
    }

    /// Read-only access to the netlist under construction.
    pub fn netlist(&self) -> &Netlist {
        &self.nl
    }

    fn push(&mut self, name: Option<String>, width: u8, op: Op) -> Wire {
        let id = self
            .nl
            .push(Node { name, width, op })
            .unwrap_or_else(|e| panic!("netlist construction error: {e}"));
        Wire { id, width }
    }

    /// Declares a named primary input of the given width.
    ///
    /// # Panics
    /// Panics on duplicate names or invalid widths; inputs are declared by
    /// design code where such mistakes are programming errors.
    pub fn input(&mut self, name: &str, width: u8) -> Wire {
        self.push(Some(name.to_owned()), width, Op::Input)
    }

    /// Declares a named register with a reset value.
    ///
    /// The returned wire carries the register's *current* value. Wire the
    /// next-state value later with [`Builder::set_next`].
    pub fn reg(&mut self, name: &str, width: u8, init: u64) -> Wire {
        self.push(Some(name.to_owned()), width, Op::Reg { next: None, init })
    }

    /// An anonymous constant.
    pub fn constant(&mut self, value: u64, width: u8) -> Wire {
        self.push(None, width, Op::Const(value))
    }

    /// Convenience: a 1-bit constant 1.
    pub fn one(&mut self) -> Wire {
        self.constant(1, 1)
    }

    /// Convenience: a 1-bit constant 0.
    pub fn zero(&mut self) -> Wire {
        self.constant(0, 1)
    }

    /// Attaches a name to an existing signal by inserting a named 1:1 alias
    /// (`Slice` of the full width). Returns the alias wire.
    pub fn name(&mut self, w: Wire, name: &str) -> Wire {
        self.push(
            Some(name.to_owned()),
            w.width,
            Op::Slice {
                src: w.id,
                hi: w.width - 1,
                lo: 0,
            },
        )
    }

    /// Connects a register's next-state input.
    ///
    /// # Errors
    /// Fails if `reg` is not a register, is already connected, or `next` has
    /// a different width.
    pub fn set_next(&mut self, reg: Wire, next: Wire) -> Result<(), NetlistError> {
        self.nl.set_reg_next(reg.id, next.id)
    }

    /// Validates and returns the finished netlist.
    ///
    /// # Errors
    /// Propagates any [`NetlistError`] found by [`Netlist::validate`].
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        self.nl.validate()?;
        Ok(self.nl)
    }

    // ---- combinational operators -------------------------------------------

    fn binary(&mut self, op: BinOp, a: Wire, b: Wire) -> Wire {
        let width = match op {
            _ if op.is_comparison() => 1,
            BinOp::Shl | BinOp::Shr => a.width,
            _ => {
                assert_eq!(
                    a.width, b.width,
                    "width mismatch in {op}: {} vs {}",
                    a.width, b.width
                );
                a.width
            }
        };
        if !matches!(op, BinOp::Shl | BinOp::Shr) {
            assert_eq!(a.width, b.width, "width mismatch in {op}");
        }
        self.push(None, width, Op::Binary(op, a.id, b.id))
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Xor, a, b)
    }

    /// Truncating addition.
    pub fn add(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Sub, a, b)
    }

    /// Truncating multiplication.
    pub fn mul(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Mul, a, b)
    }

    /// Equality comparison (1-bit result).
    pub fn eq(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Eq, a, b)
    }

    /// Inequality comparison (1-bit result).
    pub fn ne(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Ne, a, b)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Ult, a, b)
    }

    /// Unsigned less-or-equal (1-bit result).
    pub fn ule(&mut self, a: Wire, b: Wire) -> Wire {
        self.binary(BinOp::Ule, a, b)
    }

    /// Logical shift left by a variable amount.
    pub fn shl(&mut self, a: Wire, amount: Wire) -> Wire {
        self.binary(BinOp::Shl, a, amount)
    }

    /// Logical shift right by a variable amount.
    pub fn shr(&mut self, a: Wire, amount: Wire) -> Wire {
        self.binary(BinOp::Shr, a, amount)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: Wire) -> Wire {
        self.push(None, a.width, Op::Unary(UnOp::Not, a.id))
    }

    /// Two's-complement negation.
    pub fn neg(&mut self, a: Wire) -> Wire {
        self.push(None, a.width, Op::Unary(UnOp::Neg, a.id))
    }

    /// OR-reduction: 1 iff any bit set.
    pub fn red_or(&mut self, a: Wire) -> Wire {
        self.push(None, 1, Op::Unary(UnOp::RedOr, a.id))
    }

    /// AND-reduction: 1 iff all bits set.
    pub fn red_and(&mut self, a: Wire) -> Wire {
        self.push(None, 1, Op::Unary(UnOp::RedAnd, a.id))
    }

    /// XOR-reduction (parity).
    pub fn red_xor(&mut self, a: Wire) -> Wire {
        self.push(None, 1, Op::Unary(UnOp::RedXor, a.id))
    }

    /// 1 iff the value is zero.
    pub fn is_zero(&mut self, a: Wire) -> Wire {
        let any = self.red_or(a);
        self.not(any)
    }

    /// 2:1 multiplexer: `sel ? a : b`.
    ///
    /// # Panics
    /// Panics if `sel` is not 1 bit wide or `a`/`b` widths differ.
    pub fn mux(&mut self, sel: Wire, a: Wire, b: Wire) -> Wire {
        assert_eq!(sel.width, 1, "mux select must be 1 bit");
        assert_eq!(a.width, b.width, "mux arm width mismatch");
        self.push(
            None,
            a.width,
            Op::Mux {
                sel: sel.id,
                a: a.id,
                b: b.id,
            },
        )
    }

    /// Bit slice `[hi:lo]` (inclusive).
    pub fn slice(&mut self, src: Wire, hi: u8, lo: u8) -> Wire {
        assert!(hi >= lo && hi < src.width, "invalid slice [{hi}:{lo}]");
        self.push(
            None,
            hi - lo + 1,
            Op::Slice {
                src: src.id,
                hi,
                lo,
            },
        )
    }

    /// Extracts one bit.
    pub fn bit(&mut self, src: Wire, ix: u8) -> Wire {
        self.slice(src, ix, ix)
    }

    /// Concatenation with `hi` in the upper bits.
    pub fn concat(&mut self, hi: Wire, lo: Wire) -> Wire {
        self.push(
            None,
            hi.width + lo.width,
            Op::Concat {
                hi: hi.id,
                lo: lo.id,
            },
        )
    }

    /// Zero-extends (or returns unchanged) to `width` bits.
    ///
    /// # Panics
    /// Panics if `width < a.width`.
    pub fn zext(&mut self, a: Wire, width: u8) -> Wire {
        assert!(width >= a.width, "zext target narrower than source");
        if width == a.width {
            a
        } else {
            let zeros = self.constant(0, width - a.width);
            self.concat(zeros, a)
        }
    }

    /// Sign-extends to `width` bits.
    pub fn sext(&mut self, a: Wire, width: u8) -> Wire {
        assert!(width >= a.width, "sext target narrower than source");
        if width == a.width {
            return a;
        }
        let sign = self.bit(a, a.width - 1);
        let ones = self.constant(crate::ir::mask(width - a.width), width - a.width);
        let zeros = self.constant(0, width - a.width);
        let upper = self.mux(sign, ones, zeros);
        self.concat(upper, a)
    }

    /// Truncates to the low `width` bits.
    pub fn trunc(&mut self, a: Wire, width: u8) -> Wire {
        assert!(width <= a.width);
        if width == a.width {
            a
        } else {
            self.slice(a, width - 1, 0)
        }
    }

    /// 1 iff `a == value` (constant comparison).
    pub fn eq_const(&mut self, a: Wire, value: u64) -> Wire {
        let c = self.constant(value & crate::ir::mask(a.width), a.width);
        self.eq(a, c)
    }

    /// AND of many 1-bit wires (1 for the empty list).
    pub fn all(&mut self, xs: &[Wire]) -> Wire {
        let mut acc = self.one();
        for &x in xs {
            acc = self.and(acc, x);
        }
        acc
    }

    /// OR of many 1-bit wires (0 for the empty list).
    pub fn any(&mut self, xs: &[Wire]) -> Wire {
        let mut acc = self.zero();
        for &x in xs {
            acc = self.or(acc, x);
        }
        acc
    }

    /// Priority selector: returns the value paired with the first true
    /// condition, or `default` when none hold.
    ///
    /// # Panics
    /// Panics on width mismatches between arms and default.
    pub fn select(&mut self, arms: &[(Wire, Wire)], default: Wire) -> Wire {
        let mut acc = default;
        for &(cond, value) in arms.iter().rev() {
            acc = self.mux(cond, value, acc);
        }
        acc
    }

    /// Register with enable: holds its value unless `en` is set; a
    /// common idiom that returns the register's current-value wire.
    pub fn reg_en(&mut self, name: &str, width: u8, init: u64, en: Wire, next: Wire) -> Wire {
        let r = self.reg(name, width, init);
        let held = self.mux(en, next, r);
        self.set_next(r, held)
            .unwrap_or_else(|e| panic!("reg_en: {e}"));
        r
    }
}

/// A small register-file / memory helper built from registers and muxes.
///
/// Models the paper's behavioural memory arrays (ARF, AMEM, cache data banks)
/// without a dedicated memory primitive, so the simulator, bit-blaster and
/// IFT pass need no special cases. Writes are accumulated with
/// [`MemArray::write`] and committed by [`MemArray::finish`], which wires
/// every word register's next-state mux chain.
#[derive(Debug)]
pub struct MemArray {
    words: Vec<Wire>,
    /// Pending writes: (enable, address, data), later writes take priority.
    writes: Vec<(Wire, Wire, Wire)>,
    addr_width: u8,
    data_width: u8,
    name: String,
}

impl MemArray {
    /// Declares `len` words of `data_width` bits, each initialised to 0, as
    /// registers named `name[i]`.
    ///
    /// # Panics
    /// Panics if `len` is not a power of two or is 0.
    pub fn new(b: &mut Builder, name: &str, len: usize, data_width: u8) -> Self {
        assert!(len.is_power_of_two() && len > 0, "mem len must be 2^k");
        let addr_width = len.trailing_zeros() as u8;
        let words = (0..len)
            .map(|i| b.reg(&format!("{name}[{i}]"), data_width, 0))
            .collect();
        Self {
            words,
            writes: Vec::new(),
            addr_width: addr_width.max(1),
            data_width,
            name: name.to_owned(),
        }
    }

    /// The word registers (current values).
    pub fn words(&self) -> &[Wire] {
        &self.words
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array has no words (never true for a constructed array).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Asynchronous (combinational) read port.
    ///
    /// # Panics
    /// Panics if the address is narrower than needed to index every word.
    pub fn read(&self, b: &mut Builder, addr: Wire) -> Wire {
        assert!(
            addr.width >= self.addr_width || self.words.len() == 1,
            "address too narrow for {}",
            self.name
        );
        let mut acc = b.constant(0, self.data_width);
        for (i, &w) in self.words.iter().enumerate() {
            let hit = b.eq_const(addr, i as u64);
            acc = b.mux(hit, w, acc);
        }
        acc
    }

    /// Queues a synchronous write; writes queued later take priority when
    /// multiple enables fire for the same word in one cycle.
    pub fn write(&mut self, en: Wire, addr: Wire, data: Wire) {
        assert_eq!(data.width, self.data_width, "write data width mismatch");
        self.writes.push((en, addr, data));
    }

    /// Wires every word's next-state logic.
    ///
    /// # Errors
    /// Propagates register-wiring errors (double-finish, width mismatch).
    pub fn finish(self, b: &mut Builder) -> Result<(), NetlistError> {
        for (i, &word) in self.words.iter().enumerate() {
            let mut next = word;
            for &(en, addr, data) in &self.writes {
                let hit = b.eq_const(addr, i as u64);
                let strobe = b.and(en, hit);
                next = b.mux(strobe, data, next);
            }
            b.set_next(word, next)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_builds_and_validates() {
        let mut b = Builder::new();
        let c = b.reg("c", 4, 0);
        let one = b.constant(1, 4);
        let next = b.add(c, one);
        b.set_next(c, next).unwrap();
        let nl = b.finish().unwrap();
        assert_eq!(nl.state_bits(), 4);
        assert!(nl.find("c").is_some());
    }

    #[test]
    fn unconnected_reg_rejected() {
        let mut b = Builder::new();
        let _ = b.reg("r", 4, 0);
        assert!(matches!(b.finish(), Err(NetlistError::UnconnectedReg(_))));
    }

    #[test]
    fn double_connect_rejected() {
        let mut b = Builder::new();
        let r = b.reg("r", 4, 0);
        let c = b.constant(3, 4);
        b.set_next(r, c).unwrap();
        assert!(matches!(
            b.set_next(r, c),
            Err(NetlistError::RegAlreadyConnected(_))
        ));
    }

    #[test]
    fn comb_cycle_detected() {
        // a = a & a is impossible to build through the DSL (ids are created
        // before use), so force one through a register-free feedback by
        // constructing nodes manually.
        let mut nl = Netlist::new();
        let a = nl
            .push(Node {
                name: Some("a".into()),
                width: 1,
                op: Op::Input,
            })
            .unwrap();
        // b = b & a  (self reference)
        let b_id = SignalId(1);
        nl.push(Node {
            name: Some("b".into()),
            width: 1,
            op: Op::Binary(BinOp::And, b_id, a),
        })
        .unwrap();
        assert!(matches!(nl.validate(), Err(NetlistError::CombCycle(_))));
    }

    #[test]
    fn sext_zext() {
        let mut b = Builder::new();
        let x = b.input("x", 4);
        let z = b.zext(x, 8);
        let s = b.sext(x, 8);
        assert_eq!(z.width, 8);
        assert_eq!(s.width, 8);
        b.finish().unwrap();
    }

    #[test]
    fn mem_array_wiring() {
        let mut b = Builder::new();
        let addr = b.input("addr", 2);
        let data = b.input("data", 8);
        let we = b.input("we", 1);
        let mut mem = MemArray::new(&mut b, "m", 4, 8);
        let _rd = mem.read(&mut b, addr);
        mem.write(we, addr, data);
        mem.finish(&mut b).unwrap();
        let nl = b.finish().unwrap();
        assert_eq!(nl.state_bits(), 32);
    }

    #[test]
    fn select_priority_shape() {
        let mut b = Builder::new();
        let c0 = b.input("c0", 1);
        let c1 = b.input("c1", 1);
        let v0 = b.constant(1, 4);
        let v1 = b.constant(2, 4);
        let d = b.constant(0, 4);
        let out = b.select(&[(c0, v0), (c1, v1)], d);
        assert_eq!(out.width, 4);
        b.finish().unwrap();
    }
}
