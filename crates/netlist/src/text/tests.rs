//! Unit tests for the textual frontend pipeline.

use super::*;
use crate::ir::Op;

const COUNTER: &str = "\
module counter {
  input en : w1
  reg count : w8 = 0
  const one : w8 = 1
  wire bumped = add count one
  wire next_count = mux en bumped count
  next count <- next_count
}
";

fn codes(r: &Report) -> Vec<&'static str> {
    r.diagnostics.iter().map(|d| d.code).collect()
}

#[test]
fn compiles_a_counter() {
    let out = compile(COUNTER, "counter.nl");
    assert!(
        out.report.is_clean(),
        "{}",
        out.report.render_in(&out.source)
    );
    let m = out.module.expect("module");
    assert_eq!(m.name, "counter");
    assert_eq!(m.netlist.len(), 5);
    let count = m.netlist.find("count").unwrap();
    assert_eq!(m.netlist.width(count), 8);
    assert_eq!(m.netlist.reg_init(count), 0);
    // Spans point back at the declarations.
    let span = m.span_of(count).unwrap();
    assert_eq!(&COUNTER[span.lo as usize..span.hi as usize], "count");
}

#[test]
fn round_trips_byte_identically() {
    let out = compile(COUNTER, "counter.nl");
    let m = out.module.unwrap();
    let text = emit_module(&ModuleText {
        name: &m.name,
        netlist: &m.netlist,
        annotations: None,
        harness: None,
    });
    let again = compile(&text, "counter.nl");
    assert!(again.report.is_clean(), "{}", again.report.render());
    let m2 = again.module.unwrap();
    m.netlist.same_structure(&m2.netlist).unwrap();
    let text2 = emit_module(&ModuleText {
        name: &m2.name,
        netlist: &m2.netlist,
        annotations: None,
        harness: None,
    });
    assert_eq!(text, text2);
}

#[test]
fn anonymous_names_survive_round_trip() {
    let src = "\
module t {
  input a : w4
  wire _n1 = not a
  wire y = not _n1
}
";
    let out = compile(src, "t.nl");
    assert!(out.report.is_clean(), "{}", out.report.render());
    let m = out.module.unwrap();
    // `_n1` is the reserved anonymous spelling for node 1: no IR name.
    assert!(m.netlist.find("_n1").is_none());
    assert_eq!(m.netlist.name(crate::ir::SignalId(1)), None);
    assert!(m.netlist.find("y").is_some());
}

#[test]
fn misplaced_anonymous_name_warns_w001() {
    let src = "\
module t {
  input a : w4
  wire _n7 = not a
}
";
    let out = compile(src, "t.nl");
    assert_eq!(codes(&out.report), vec!["W001"]);
    assert!(out.module.is_some(), "W001 is a warning, not an error");
}

#[test]
fn duplicate_undefined_and_use_before_declare() {
    let src = "\
module t {
  input a : w4
  input a : w4
  wire x = add a zz
  wire y = not z2
  wire z2 = not a
}
";
    let out = compile(src, "t.nl");
    let c = codes(&out.report);
    assert!(c.contains(&"E003"), "{c:?}");
    assert!(c.contains(&"E004"), "{c:?}");
    assert!(c.contains(&"E005"), "{c:?}");
    assert!(out.module.is_none());
}

#[test]
fn undefined_name_suggests_a_neighbour() {
    let src = "\
module t {
  input count : w4
  wire y = not cout
}
";
    let out = compile(src, "t.nl");
    let d = out.report.errors().next().unwrap();
    assert_eq!(d.code, "E004");
    assert!(
        d.notes.iter().any(|n| n.contains("`count`")),
        "{:?}",
        d.notes
    );
}

#[test]
fn width_errors_have_stable_codes() {
    let src = "\
module t {
  input a : w4
  input b : w8
  wire x = add a b
  wire s = slice a 9 0
  const c : w4 = 300
  reg r : w99 = 0
}
";
    let out = compile(src, "t.nl");
    let c = codes(&out.report);
    assert!(c.contains(&"E007"), "{c:?}");
    assert!(c.contains(&"E008"), "{c:?}");
    assert!(c.contains(&"E009"), "{c:?}");
    assert!(c.contains(&"E006"), "{c:?}");
}

#[test]
fn mem_read_write_sugar_lowers_to_mux_chains() {
    let src = "\
module t {
  input we : w1
  input addr : w2
  input data : w8
  mem m[4] : w8
  wire rd = read m addr
  write m we addr data
}
";
    let out = compile(src, "t.nl");
    assert!(
        out.report.is_clean(),
        "{}",
        out.report.render_in(&out.source)
    );
    let m = out.module.unwrap();
    m.netlist.validate().unwrap();
    // Four words, each a register with a mux-selected next.
    for i in 0..4 {
        let w = m.netlist.find(&format!("m[{i}]")).unwrap();
        assert!(m.netlist.node(w).op.is_reg());
        assert!(matches!(
            m.netlist.node(m.netlist.reg_next(w)).op,
            Op::Mux { .. }
        ));
    }
    let rd = m.netlist.find("rd").unwrap();
    assert_eq!(m.netlist.width(rd), 8);
}

#[test]
fn mem_port_mismatches_are_e010() {
    let src = "\
module t {
  input we : w1
  input addr : w1
  input data : w4
  mem m[4] : w8
  wire rd = read m addr
  write m we addr data
}
";
    let out = compile(src, "t.nl");
    let c = codes(&out.report);
    // Narrow address (twice: read + write) and wrong data width.
    assert!(c.iter().filter(|&&x| x == "E010").count() >= 3, "{c:?}");
}

#[test]
fn next_errors_are_e011() {
    let src = "\
module t {
  input a : w4
  reg r : w4 = 0
  reg s : w4 = 0
  wire w = not a
  next r <- w
  next r <- a
  next w <- a
}
";
    let out = compile(src, "t.nl");
    let c = codes(&out.report);
    // duplicate next, next on a wire, and `s` never connected.
    assert!(c.iter().filter(|&&x| x == "E011").count() >= 3, "{c:?}");
}

#[test]
fn parse_errors_recover_per_line() {
    let src = "\
module t {
  input a w4
  input b : w4
  wire y = frobnicate a b
  wire z = not b
}
";
    let out = compile(src, "t.nl");
    assert!(out.report.has_errors());
    // Both bad lines reported; the good lines still parsed.
    let c = codes(&out.report);
    assert!(c.iter().filter(|&&x| x == "E002").count() >= 2, "{c:?}");
}

#[test]
fn check_runs_the_lint_suite() {
    // `orphan` is undriven-by-roots: stand-alone lint still flags unread
    // inputs (L-codes join the same report).
    let src = "\
module t {
  input used : w1
  input orphan : w8
  reg r : w1 = 0
  next r <- used
}
";
    let out = check(src, "t.nl");
    assert!(out.module.is_some());
    assert!(
        out.report
            .diagnostics
            .iter()
            .any(|d| d.code.starts_with('L')),
        "{}",
        out.report.render()
    );
}

#[test]
fn legacy_parse_api_reports_first_error_line() {
    let err = parse("module t {\n  wire y = not ghost\n}\n").unwrap_err();
    assert_eq!(err.line, 2);
    assert!(err.message.contains("ghost"));
    let nl = parse(COUNTER).unwrap();
    assert_eq!(nl.len(), 5);
}

#[test]
fn full_module_with_metadata_round_trips() {
    let src = "\
module tiny {
  input instr : w16
  input fv_in : w1
  reg pc : w4 = 0
  reg ifr : w16 = 0
  reg committed : w1 = 0
  const one : w4 = 1
  wire ff = and fv_in fv_in
  wire pc_next = add pc one
  wire rs1 = slice instr 10 8
  wire rs2 = slice instr 7 5
  next pc <- pc_next
  next ifr <- instr
  next committed <- ff
  annotations {
    ifr ifr
    fetch_valid committed
    fetch_pc pc
    commit committed
    commit_pc pc
    ufsm fetch {
      pcr pc
      vars committed
      idle (0)
      state busy = (1)
    }
  }
  harness {
    fetch_instr_input instr
    fetch_valid_input fv_in
    fetch_fire ff
    issue_fire ff
    issue_pc pc
    issue_valid committed
    rs_fields rs1 rs2
    pc pc
    isa nop add sub
    type_field 15 11
    max_latency 4
    outputs pc_next
  }
}
";
    let out = check(src, "tiny.nl");
    assert!(
        !out.report.has_errors(),
        "{}",
        out.report.render_in(&out.source)
    );
    let m = out.module.unwrap();
    let ann = m.annotations.as_ref().unwrap();
    assert_eq!(ann.ufsms.len(), 1);
    assert_eq!(ann.ufsms[0].idle, vec![crate::annotate::FsmState(vec![0])]);
    let h = m.harness.as_ref().unwrap();
    assert_eq!(h.isa, vec!["nop", "add", "sub"]);
    assert_eq!((h.type_field_hi, h.type_field_lo), (15, 11));

    let text = emit_module(&ModuleText {
        name: &m.name,
        netlist: &m.netlist,
        annotations: m.annotations.as_ref(),
        harness: m.harness.as_ref(),
    });
    let again = compile(&text, "tiny.nl");
    assert!(!again.report.has_errors(), "{}", again.report.render());
    let m2 = again.module.unwrap();
    m.netlist.same_structure(&m2.netlist).unwrap();
    let text2 = emit_module(&ModuleText {
        name: &m2.name,
        netlist: &m2.netlist,
        annotations: m2.annotations.as_ref(),
        harness: m2.harness.as_ref(),
    });
    assert_eq!(text, text2);
}

#[test]
fn missing_required_metadata_fields_are_reported() {
    let src = "\
module t {
  input a : w1
  reg r : w1 = 0
  next r <- a
  annotations {
    ifr r
  }
  harness {
    pc r
  }
}
";
    let out = compile(src, "t.nl");
    let c = codes(&out.report);
    assert!(c.iter().filter(|&&x| x == "E012").count() >= 4, "{c:?}");
    assert!(c.iter().filter(|&&x| x == "E013").count() >= 5, "{c:?}");
}
