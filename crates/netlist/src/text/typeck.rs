//! Width and type inference/checking for the netlist language.
//!
//! Runs after [`super::resolve`]; operands that failed resolution are
//! simply absent from the width environment and their checks are skipped,
//! so one undefined name does not fan out into spurious width errors.
//!
//! Codes: `E006` bad width, `E007` operand/result width disagreement,
//! `E008` slice out of bounds, `E009` constant or reset value too wide,
//! `E010` memory-port problems, `E011` next-connection problems, `E012`
//! annotation shape problems, `E013` harness shape problems.

use std::collections::{HashMap, HashSet};

use super::ast::{Item, Module, Name, Spanned, WireOp};
use super::resolve::MAX_MEM_LEN;
use crate::diag::{Diagnostic, Report, Span};
use crate::ir::{mask, UnOp};

/// Width limits of the IR.
const MAX_WIDTH: u64 = 64;

/// Signature of a declared memory array.
#[derive(Clone, Copy, Debug)]
pub struct MemSig {
    /// Word count.
    pub len: u64,
    /// Word width.
    pub width: u8,
    /// Declaration span (for secondary labels).
    pub span: Span,
}

/// Per-module width environment, also consumed by lowering.
#[derive(Default)]
pub struct TypeEnv {
    /// Signal name → width. Memory words are included.
    pub widths: HashMap<String, u8>,
    /// Memory array name → signature.
    pub mems: HashMap<String, MemSig>,
}

impl TypeEnv {
    fn width_of(&self, n: &Name) -> Option<u8> {
        self.widths.get(&n.node).copied()
    }
}

fn check_width(w: &Spanned<u64>, report: &mut Report) -> Option<u8> {
    if w.node == 0 || w.node > MAX_WIDTH {
        report.push(
            Diagnostic::error(
                "E006",
                "typeck",
                format!("width w{} is outside the supported range", w.node),
            )
            .with_primary(w.span, "widths must be between w1 and w64"),
        );
        None
    } else {
        Some(w.node as u8)
    }
}

fn check_value_fits(value: &Spanned<u64>, width: u8, what: &str, report: &mut Report) {
    if value.node & !mask(width) != 0 {
        report.push(
            Diagnostic::error(
                "E009",
                "typeck",
                format!("{what} {} does not fit in w{width}", value.node),
            )
            .with_primary(
                value.span,
                format!("largest w{width} value is {}", mask(width)),
            ),
        );
    }
}

fn addr_covers(len: u64, addr_width: u8) -> bool {
    addr_width as u32 >= 64 || len <= 1u64 << addr_width
}

/// Runs width/type checking, returning the environment for lowering.
pub fn run(m: &Module, report: &mut Report) -> TypeEnv {
    let mut env = TypeEnv::default();
    // Registers awaiting a `next` connection, and where each got one.
    let mut next_seen: HashMap<String, Span> = HashMap::new();
    let mut regs: Vec<(String, Span)> = Vec::new();
    let mut mem_written: HashSet<String> = HashSet::new();

    for item in &m.items {
        match item {
            Item::Input { name, width } => {
                if let Some(w) = check_width(width, report) {
                    env.widths.insert(name.node.clone(), w);
                }
            }
            Item::Reg { name, width, init } => {
                if let Some(w) = check_width(width, report) {
                    check_value_fits(init, w, "reset value", report);
                    env.widths.insert(name.node.clone(), w);
                }
                regs.push((name.node.clone(), name.span));
            }
            Item::Const { name, width, value } => {
                if let Some(w) = check_width(width, report) {
                    check_value_fits(value, w, "constant", report);
                    env.widths.insert(name.node.clone(), w);
                }
            }
            Item::Wire { name, width, op } => {
                let declared = width.as_ref().and_then(|w| check_width(w, report));
                let inferred = infer_wire(op, &env, report);
                if let (Some(d), Some(i)) = (declared, inferred) {
                    if d != i {
                        report.push(
                            Diagnostic::error(
                                "E007",
                                "typeck",
                                format!(
                                    "`{}` is declared w{d} but its operator yields w{i}",
                                    name.node
                                ),
                            )
                            .with_primary(
                                width.as_ref().expect("declared width").span,
                                "declared width disagrees with the operator",
                            ),
                        );
                    }
                }
                if let Some(w) = declared.or(inferred) {
                    env.widths.insert(name.node.clone(), w);
                }
            }
            Item::Mem {
                name,
                len,
                width,
                init,
            } => {
                if len.node == 0 || !len.node.is_power_of_two() || len.node > MAX_MEM_LEN {
                    report.push(
                        Diagnostic::error(
                            "E010",
                            "typeck",
                            format!(
                                "memory length {} is not a power of two in 1..={MAX_MEM_LEN}",
                                len.node
                            ),
                        )
                        .with_primary(len.span, "unsupported memory length"),
                    );
                    continue;
                }
                let Some(w) = check_width(width, report) else {
                    continue;
                };
                if let Some(init) = init {
                    check_value_fits(init, w, "reset value", report);
                }
                env.mems.insert(
                    name.node.clone(),
                    MemSig {
                        len: len.node,
                        width: w,
                        span: name.span,
                    },
                );
                for i in 0..len.node {
                    let word = format!("{}[{i}]", name.node);
                    env.widths.insert(word.clone(), w);
                    regs.push((word, name.span));
                }
            }
            Item::Write {
                mem,
                en,
                addr,
                data,
            } => {
                let Some(sig) = env.mems.get(&mem.node).copied() else {
                    continue; // resolve already complained
                };
                if !mem_written.insert(mem.node.clone()) {
                    report.push(
                        Diagnostic::error(
                            "E010",
                            "typeck",
                            format!("memory `{}` has more than one write port", mem.node),
                        )
                        .with_primary(mem.span, "second `write` statement")
                        .with_note("a memory array supports a single write port"),
                    );
                    continue;
                }
                if let Some(ew) = env.width_of(en) {
                    if ew != 1 {
                        report.push(
                            Diagnostic::error(
                                "E010",
                                "typeck",
                                format!("write enable `{}` must be 1 bit wide, not w{ew}", en.node),
                            )
                            .with_primary(en.span, "write enables are single-bit"),
                        );
                    }
                }
                if let Some(aw) = env.width_of(addr) {
                    if !addr_covers(sig.len, aw) {
                        report.push(
                            Diagnostic::error(
                                "E010",
                                "typeck",
                                format!(
                                    "address `{}` (w{aw}) cannot address all {} words of `{}`",
                                    addr.node, sig.len, mem.node
                                ),
                            )
                            .with_primary(addr.span, "address too narrow")
                            .with_secondary(sig.span, "memory declared here"),
                        );
                    }
                }
                if let Some(dw) = env.width_of(data) {
                    if dw != sig.width {
                        report.push(
                            Diagnostic::error(
                                "E010",
                                "typeck",
                                format!(
                                    "write data `{}` is w{dw} but `{}` stores w{} words",
                                    data.node, mem.node, sig.width
                                ),
                            )
                            .with_primary(data.span, "width mismatch")
                            .with_secondary(sig.span, "memory declared here"),
                        );
                    }
                }
                // One write port drives the next of every word.
                for i in 0..sig.len {
                    next_seen.insert(format!("{}[{i}]", mem.node), mem.span);
                }
            }
            Item::Next { reg, src } => {
                if let Some(prev) = next_seen.get(&reg.node) {
                    report.push(
                        Diagnostic::error(
                            "E011",
                            "typeck",
                            format!(
                                "register `{}` is connected by more than one `next`",
                                reg.node
                            ),
                        )
                        .with_primary(reg.span, "second connection")
                        .with_secondary(*prev, "first connected here"),
                    );
                    continue;
                }
                next_seen.insert(reg.node.clone(), reg.span);
                if let (Some(rw), Some(sw)) = (env.width_of(reg), env.width_of(src)) {
                    if rw != sw {
                        report.push(
                            Diagnostic::error(
                                "E011",
                                "typeck",
                                format!(
                                    "`next` source `{}` is w{sw} but register `{}` is w{rw}",
                                    src.node, reg.node
                                ),
                            )
                            .with_primary(src.span, "width mismatch"),
                        );
                    }
                }
            }
        }
    }

    // Every register must end up connected.
    for (reg, span) in &regs {
        if !next_seen.contains_key(reg) {
            report.push(
                Diagnostic::error(
                    "E011",
                    "typeck",
                    format!("register `{reg}` has no `next` connection"),
                )
                .with_primary(*span, "declared here")
                .with_note("every register needs `next <reg> <- <src>` (or a `write` port for memory words)"),
            );
        }
    }

    check_annotations(m, &env, report);
    check_harness(m, &env, report);
    env
}

fn infer_wire(op: &WireOp, env: &TypeEnv, report: &mut Report) -> Option<u8> {
    match op {
        WireOp::Unary { op, a, .. } => {
            let aw = env.width_of(a)?;
            Some(match op {
                UnOp::RedOr | UnOp::RedAnd | UnOp::RedXor => 1,
                UnOp::Not | UnOp::Neg => aw,
            })
        }
        WireOp::Binary { op, op_span, a, b } => {
            use crate::ir::BinOp::*;
            let (aw, bw) = (env.width_of(a)?, env.width_of(b)?);
            match op {
                Eq | Ne | Ult | Ule => {
                    if aw != bw {
                        mismatch(report, *op_span, a, aw, b, bw);
                        return None;
                    }
                    Some(1)
                }
                Shl | Shr => Some(aw),
                And | Or | Xor | Add | Sub | Mul => {
                    if aw != bw {
                        mismatch(report, *op_span, a, aw, b, bw);
                        return None;
                    }
                    Some(aw)
                }
            }
        }
        WireOp::Mux { sel, a, b } => {
            if let Some(sw) = env.width_of(sel) {
                if sw != 1 {
                    report.push(
                        Diagnostic::error(
                            "E007",
                            "typeck",
                            format!("mux select `{}` must be 1 bit wide, not w{sw}", sel.node),
                        )
                        .with_primary(sel.span, "selects are single-bit"),
                    );
                }
            }
            let (aw, bw) = (env.width_of(a)?, env.width_of(b)?);
            if aw != bw {
                report.push(
                    Diagnostic::error(
                        "E007",
                        "typeck",
                        format!(
                            "mux arms disagree: `{}` is w{aw}, `{}` is w{bw}",
                            a.node, b.node
                        ),
                    )
                    .with_primary(a.span, format!("this arm is w{aw}"))
                    .with_secondary(b.span, format!("this arm is w{bw}")),
                );
                return None;
            }
            Some(aw)
        }
        WireOp::Slice { src, hi, lo } => {
            let sw = env.width_of(src)?;
            if hi.node < lo.node || hi.node >= sw as u64 {
                report.push(
                    Diagnostic::error(
                        "E008",
                        "typeck",
                        format!(
                            "slice [{}:{}] is out of bounds for `{}` (w{sw})",
                            hi.node, lo.node, src.node
                        ),
                    )
                    .with_primary(
                        hi.span.join(lo.span),
                        format!("valid bit indices are 0..={}", sw - 1),
                    ),
                );
                return None;
            }
            Some((hi.node - lo.node + 1) as u8)
        }
        WireOp::Concat { hi, lo } => {
            let (hw, lw) = (env.width_of(hi)?, env.width_of(lo)?);
            let total = hw as u64 + lw as u64;
            if total > MAX_WIDTH {
                report.push(
                    Diagnostic::error(
                        "E006",
                        "typeck",
                        format!("concat of w{hw} and w{lw} exceeds w64"),
                    )
                    .with_primary(hi.span.join(lo.span), "result is too wide"),
                );
                return None;
            }
            Some(total as u8)
        }
        WireOp::Read { mem, addr } => {
            let sig = env.mems.get(&mem.node).copied()?;
            if let Some(aw) = env.width_of(addr) {
                if !addr_covers(sig.len, aw) {
                    report.push(
                        Diagnostic::error(
                            "E010",
                            "typeck",
                            format!(
                                "address `{}` (w{aw}) cannot address all {} words of `{}`",
                                addr.node, sig.len, mem.node
                            ),
                        )
                        .with_primary(addr.span, "address too narrow")
                        .with_secondary(sig.span, "memory declared here"),
                    );
                }
            }
            Some(sig.width)
        }
    }
}

fn mismatch(report: &mut Report, op_span: Span, a: &Name, aw: u8, b: &Name, bw: u8) {
    report.push(
        Diagnostic::error(
            "E007",
            "typeck",
            format!(
                "operand widths disagree: `{}` is w{aw}, `{}` is w{bw}",
                a.node, b.node
            ),
        )
        .with_primary(op_span, "this operator needs equal widths")
        .with_secondary(a.span, format!("w{aw}"))
        .with_secondary(b.span, format!("w{bw}")),
    );
}

fn require_1bit(env: &TypeEnv, n: &Name, what: &str, code: &'static str, report: &mut Report) {
    if let Some(w) = env.width_of(n) {
        if w != 1 {
            report.push(
                Diagnostic::error(
                    code,
                    "typeck",
                    format!("{what} `{}` must be 1 bit wide, not w{w}", n.node),
                )
                .with_primary(n.span, "expected a single-bit signal"),
            );
        }
    }
}

fn missing(span: Span, block: &str, field: &str, code: &'static str) -> Diagnostic {
    Diagnostic::error(
        code,
        "typeck",
        format!("`{block}` block is missing the required `{field}` field"),
    )
    .with_primary(span, format!("add `{field} ...` inside this block"))
}

fn check_annotations(m: &Module, env: &TypeEnv, report: &mut Report) {
    let Some(ann) = &m.annotations else {
        return;
    };
    for (field, slot) in [
        ("ifr", &ann.ifr),
        ("fetch_valid", &ann.fetch_valid),
        ("fetch_pc", &ann.fetch_pc),
        ("commit", &ann.commit),
        ("commit_pc", &ann.commit_pc),
    ] {
        if slot.is_none() {
            report.push(missing(ann.span, "annotations", field, "E012"));
        }
    }
    for n in [&ann.fetch_valid, &ann.commit].into_iter().flatten() {
        require_1bit(env, n, "annotation hook", "E012", report);
    }
    for u in &ann.ufsms {
        if u.pcr.is_none() {
            report.push(
                Diagnostic::error(
                    "E012",
                    "typeck",
                    format!("ufsm `{}` is missing its `pcr` field", u.name.node),
                )
                .with_primary(
                    u.name.span,
                    "every ufsm names its performing-confirmation register",
                ),
            );
        }
        if u.vars.is_empty() {
            report.push(
                Diagnostic::error(
                    "E012",
                    "typeck",
                    format!("ufsm `{}` declares no `vars`", u.name.node),
                )
                .with_primary(u.name.span, "state tuples need at least one variable"),
            );
            continue;
        }
        let var_widths: Vec<Option<u8>> = u.vars.iter().map(|v| env.width_of(v)).collect();
        let arity = u.vars.len();
        let tuples = u.idle.iter().chain(u.states.iter().map(|(_, t)| t));
        for t in tuples {
            if t.node.len() != arity {
                report.push(
                    Diagnostic::error(
                        "E012",
                        "typeck",
                        format!(
                            "state tuple has {} values but ufsm `{}` has {arity} vars",
                            t.node.len(),
                            u.name.node
                        ),
                    )
                    .with_primary(t.span, format!("expected {arity} values")),
                );
                continue;
            }
            for (i, (&v, w)) in t.node.iter().zip(&var_widths).enumerate() {
                if let Some(w) = w {
                    if v & !mask(*w) != 0 {
                        report.push(
                            Diagnostic::error(
                                "E009",
                                "typeck",
                                format!(
                                    "state value {v} does not fit var `{}` (w{w})",
                                    u.vars[i].node
                                ),
                            )
                            .with_primary(t.span, format!("component {} is too wide", i + 1)),
                        );
                    }
                }
            }
        }
    }
}

fn check_harness(m: &Module, env: &TypeEnv, report: &mut Report) {
    let Some(h) = &m.harness else {
        return;
    };
    if m.annotations.is_none() {
        report.push(
            Diagnostic::error(
                "E013",
                "typeck",
                "a `harness` block requires an `annotations` block",
            )
            .with_primary(h.span, "synthesis needs the §V-A metadata too"),
        );
    }
    for (field, missing_it) in [
        ("fetch_instr_input", h.fetch_instr_input.is_none()),
        ("fetch_valid_input", h.fetch_valid_input.is_none()),
        ("fetch_fire", h.fetch_fire.is_none()),
        ("issue_fire", h.issue_fire.is_none()),
        ("issue_pc", h.issue_pc.is_none()),
        ("issue_valid", h.issue_valid.is_none()),
        ("pc", h.pc.is_none()),
        ("type_field", h.type_field.is_none()),
        ("max_latency", h.max_latency.is_none()),
    ] {
        if missing_it {
            report.push(missing(h.span, "harness", field, "E013"));
        }
    }
    if h.isa.is_empty() {
        report.push(missing(h.span, "harness", "isa", "E013"));
    }
    for n in [
        &h.fetch_valid_input,
        &h.fetch_fire,
        &h.issue_fire,
        &h.issue_valid,
    ]
    .into_iter()
    .flatten()
    {
        require_1bit(env, n, "harness hook", "E013", report);
    }
    if let Some((hi, lo)) = &h.type_field {
        if hi.node < lo.node || hi.node >= MAX_WIDTH {
            report.push(
                Diagnostic::error(
                    "E013",
                    "typeck",
                    format!(
                        "type_field [{}:{}] is not a valid bit range",
                        hi.node, lo.node
                    ),
                )
                .with_primary(
                    hi.span.join(lo.span),
                    "expected `type_field <hi> <lo>` with hi >= lo",
                ),
            );
        }
    }
    if let Some(ml) = &h.max_latency {
        if ml.node == 0 || ml.node > 64 {
            report.push(
                Diagnostic::error(
                    "E013",
                    "typeck",
                    format!("max_latency {} is outside 1..=64", ml.node),
                )
                .with_primary(ml.span, "unreasonable issue-latency bound"),
            );
        }
    }
}
