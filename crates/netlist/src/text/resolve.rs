//! Name resolution for the netlist language.
//!
//! Walks the AST once to build the declaration table, then checks every
//! identifier use:
//!
//! * `E003` — duplicate declaration (secondary label at the first one),
//! * `E004` — undefined identifier (with a nearest-name suggestion),
//! * `E005` — a combinational operand referring to a later declaration
//!   (the language is def-before-use for everything except `next`,
//!   `write` data, and the metadata blocks, which are fix-ups),
//! * `E011`/`E012` — identifier of the wrong kind (e.g. `next` on a wire,
//!   a µFSM var that is not a register),
//! * `W002` — a declaration shadowing an operator mnemonic.

use std::collections::HashMap;

use super::ast::{Item, Module, Name, WireOp};
use super::parser::{bin_op_from_str, un_op_from_str};
use crate::diag::{Diagnostic, Report, Span};

/// What a name was declared as.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeclKind {
    /// `input`
    Input,
    /// `reg` (or a `mem` word)
    Reg,
    /// `const`
    Const,
    /// `wire`
    Wire,
    /// A `mem` array name (not itself a signal).
    Mem,
}

impl DeclKind {
    fn describe(self) -> &'static str {
        match self {
            DeclKind::Input => "an input",
            DeclKind::Reg => "a register",
            DeclKind::Const => "a constant",
            DeclKind::Wire => "a wire",
            DeclKind::Mem => "a memory array",
        }
    }

    /// Registers and memory words hold state.
    pub fn is_stateful(self) -> bool {
        matches!(self, DeclKind::Reg)
    }
}

/// One resolved declaration.
#[derive(Clone, Debug)]
pub struct Decl {
    /// Statement index (position in `Module::items`) of the declaration.
    pub order: usize,
    /// What it is.
    pub kind: DeclKind,
    /// Span of the declaring name.
    pub span: Span,
}

/// The declaration table produced by [`run`]. Memory words (`m[i]`) get
/// their own entries of kind [`DeclKind::Reg`].
pub type DeclTable = HashMap<String, Decl>;

/// Largest memory the `mem` sugar will expand (matches the builder DSL's
/// practical sizes; keeps pathological inputs from allocating millions of
/// nodes before type checking rejects them).
pub const MAX_MEM_LEN: u64 = 1024;

fn is_operator_name(s: &str) -> bool {
    un_op_from_str(s).is_some()
        || bin_op_from_str(s).is_some()
        || matches!(s, "mux" | "slice" | "concat" | "read" | "write")
}

/// Edit distance with early exit, for `E004` suggestions.
fn close_enough(a: &str, b: &str) -> bool {
    if a == b {
        return false;
    }
    let (a, b) = (a.as_bytes(), b.as_bytes());
    if a.len().abs_diff(b.len()) > 1 {
        return false;
    }
    // Accept one substitution, insertion, or deletion.
    let mut i = 0;
    while i < a.len() && i < b.len() && a[i] == b[i] {
        i += 1;
    }
    let ta = &a[i..];
    let tb = &b[i..];
    if ta.is_empty() || tb.is_empty() {
        return ta.len() + tb.len() == 1;
    }
    ta[1..] == tb[1..] || ta == &tb[1..] || &ta[1..] == tb
}

/// Runs name resolution over `m`, reporting into `report`. The returned
/// table is usable even when errors were reported (later passes skip
/// unresolved names).
pub fn run(m: &Module, report: &mut Report) -> DeclTable {
    let mut table: DeclTable = HashMap::new();

    // Pass 1: collect declarations in statement order.
    for (order, item) in m.items.iter().enumerate() {
        let Some(name) = item.decl_name() else {
            continue;
        };
        let kind = match item {
            Item::Input { .. } => DeclKind::Input,
            Item::Reg { .. } => DeclKind::Reg,
            Item::Const { .. } => DeclKind::Const,
            Item::Wire { .. } => DeclKind::Wire,
            Item::Mem { .. } => DeclKind::Mem,
            Item::Write { .. } | Item::Next { .. } => unreachable!(),
        };
        declare(&mut table, report, name, kind, order);
        if is_operator_name(&name.node) {
            report.push(
                Diagnostic::warning(
                    "W002",
                    "resolve",
                    format!(
                        "declaration of `{}` shadows an operator mnemonic",
                        name.node
                    ),
                )
                .with_primary(name.span, "rename to avoid confusion"),
            );
        }
        if let Item::Mem { name, len, .. } = item {
            // Each word is an addressable register in its own right.
            for i in 0..len.node.min(MAX_MEM_LEN) {
                let word = format!("{}[{i}]", name.node);
                declare_raw(&mut table, report, &word, name.span, DeclKind::Reg, order);
            }
        }
    }

    // Pass 2: check uses.
    for (order, item) in m.items.iter().enumerate() {
        match item {
            Item::Wire { op, .. } => {
                for operand in op.operands() {
                    check_use_before(&table, report, operand, order);
                }
                if let WireOp::Read { mem, .. } = op {
                    check_kind(&table, report, mem, DeclKind::Mem, "E010", "typeck");
                    check_use_before(&table, report, mem, order);
                }
            }
            Item::Write {
                mem,
                en,
                addr,
                data,
            } => {
                check_kind(&table, report, mem, DeclKind::Mem, "E010", "typeck");
                check_exists(&table, report, mem);
                // Write operands are sequential fix-ups: they may be
                // declared later in the file.
                check_exists(&table, report, en);
                check_exists(&table, report, addr);
                check_exists(&table, report, data);
            }
            Item::Next { reg, src } => {
                if check_exists(&table, report, reg) {
                    let d = &table[&reg.node];
                    if !d.kind.is_stateful() {
                        report.push(
                            Diagnostic::error(
                                "E011",
                                "resolve",
                                format!("`next` target `{}` is not a register", reg.node),
                            )
                            .with_primary(reg.span, format!("this is {}", d.kind.describe()))
                            .with_secondary(d.span, "declared here"),
                        );
                    }
                }
                check_exists(&table, report, src);
            }
            Item::Input { .. } | Item::Reg { .. } | Item::Const { .. } | Item::Mem { .. } => {}
        }
    }

    // Metadata blocks: every referenced name must exist; kind constraints
    // for the state-bearing lists.
    if let Some(ann) = &m.annotations {
        for n in [
            &ann.ifr,
            &ann.fetch_valid,
            &ann.fetch_pc,
            &ann.commit,
            &ann.commit_pc,
        ]
        .into_iter()
        .flatten()
        {
            check_exists(&table, report, n);
        }
        for n in ann
            .operands
            .iter()
            .chain(&ann.arf)
            .chain(&ann.amem)
            .chain(&ann.persistent)
        {
            check_stateful(&table, report, n, "annotation list entry");
        }
        for u in &ann.ufsms {
            if let Some(pcr) = &u.pcr {
                check_stateful(&table, report, pcr, "ufsm pcr");
            }
            for v in &u.vars {
                check_stateful(&table, report, v, "ufsm var");
            }
        }
    }
    if let Some(h) = &m.harness {
        let singles = [
            &h.fetch_instr_input,
            &h.fetch_valid_input,
            &h.fetch_fire,
            &h.issue_fire,
            &h.issue_pc,
            &h.issue_valid,
            &h.pc,
        ];
        for n in singles.into_iter().flatten() {
            check_exists(&table, report, n);
        }
        if let Some((a, b)) = &h.rs_fields {
            check_exists(&table, report, a);
            check_exists(&table, report, b);
        }
        for n in &h.outputs {
            check_exists(&table, report, n);
        }
    }

    table
}

fn declare(table: &mut DeclTable, report: &mut Report, name: &Name, kind: DeclKind, order: usize) {
    declare_raw(table, report, &name.node, name.span, kind, order);
}

fn declare_raw(
    table: &mut DeclTable,
    report: &mut Report,
    name: &str,
    span: Span,
    kind: DeclKind,
    order: usize,
) {
    if let Some(prev) = table.get(name) {
        report.push(
            Diagnostic::error(
                "E003",
                "resolve",
                format!("duplicate declaration of `{name}`"),
            )
            .with_primary(span, "redeclared here")
            .with_secondary(prev.span, "first declared here"),
        );
        return;
    }
    table.insert(name.to_string(), Decl { order, kind, span });
}

fn check_exists(table: &DeclTable, report: &mut Report, name: &Name) -> bool {
    if table.contains_key(&name.node) {
        return true;
    }
    let mut d = Diagnostic::error(
        "E004",
        "resolve",
        format!("undefined signal `{}`", name.node),
    )
    .with_primary(name.span, "not declared anywhere in this module");
    if let Some(sugg) = table.keys().find(|k| close_enough(&name.node, k)) {
        d = d.with_note(format!("did you mean `{sugg}`?"));
    }
    report.push(d);
    false
}

fn check_use_before(table: &DeclTable, report: &mut Report, name: &Name, use_order: usize) {
    if !check_exists(table, report, name) {
        return;
    }
    let d = &table[&name.node];
    if d.order >= use_order {
        report.push(
            Diagnostic::error(
                "E005",
                "resolve",
                format!("`{}` is used before its declaration", name.node),
            )
            .with_primary(name.span, "combinational operands must already be declared")
            .with_secondary(d.span, "declared here")
            .with_note("feedback must go through a register: connect it with `next`"),
        );
    }
}

fn check_kind(
    table: &DeclTable,
    report: &mut Report,
    name: &Name,
    want: DeclKind,
    code: &'static str,
    pass: &'static str,
) {
    if let Some(d) = table.get(&name.node) {
        if d.kind != want {
            report.push(
                Diagnostic::error(
                    code,
                    pass,
                    format!("`{}` is not {}", name.node, want.describe()),
                )
                .with_primary(name.span, format!("this is {}", d.kind.describe()))
                .with_secondary(d.span, "declared here"),
            );
        }
    }
}

fn check_stateful(table: &DeclTable, report: &mut Report, name: &Name, what: &str) {
    if !check_exists(table, report, name) {
        return;
    }
    let d = &table[&name.node];
    if !d.kind.is_stateful() {
        report.push(
            Diagnostic::error(
                "E012",
                "resolve",
                format!("{what} `{}` must be a register", name.node),
            )
            .with_primary(name.span, format!("this is {}", d.kind.describe()))
            .with_secondary(d.span, "declared here"),
        );
    }
}
