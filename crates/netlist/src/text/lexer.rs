//! Lexer for the netlist language.
//!
//! Produces a flat token stream with byte spans. Lexical errors (stray
//! characters, malformed integers) are reported as `E001` diagnostics and
//! the offending character is skipped, so the parser always receives a
//! well-formed stream terminated by [`TokKind::Eof`].

use crate::diag::{Diagnostic, Report, Span};

/// The kind of a lexed token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier. Includes a folded `[N]` suffix when present, so memory
    /// word names such as `dmem[3]` are single tokens.
    Ident(String),
    /// Unsigned integer literal (decimal or `0x` hex).
    Int(u64),
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `<-`
    Arrow,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// End of a source line (consecutive blank lines are collapsed).
    Newline,
    /// End of input.
    Eof,
}

impl TokKind {
    /// Human-readable description used in `expected X, found Y` messages.
    pub fn describe(&self) -> String {
        match self {
            TokKind::Ident(s) => format!("`{s}`"),
            TokKind::Int(n) => format!("integer `{n}`"),
            TokKind::Colon => "`:`".into(),
            TokKind::Eq => "`=`".into(),
            TokKind::Arrow => "`<-`".into(),
            TokKind::LBrace => "`{`".into(),
            TokKind::RBrace => "`}`".into(),
            TokKind::LParen => "`(`".into(),
            TokKind::RParen => "`)`".into(),
            TokKind::Comma => "`,`".into(),
            TokKind::Newline => "end of line".into(),
            TokKind::Eof => "end of file".into(),
        }
    }
}

/// A token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// Where it sits in the source.
    pub span: Span,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
}

/// Lexes `src` into tokens, appending `E001` diagnostics to `report` for
/// anything unrecognisable. Always returns an `Eof`-terminated stream.
pub fn lex(src: &str, report: &mut Report) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks: Vec<Token> = Vec::new();
    let mut i = 0usize;
    let push = |toks: &mut Vec<Token>, kind: TokKind, lo: usize, hi: usize| {
        toks.push(Token {
            kind,
            span: Span::new(lo, hi),
        });
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'\n' => {
                if !matches!(toks.last().map(|t| &t.kind), Some(TokKind::Newline) | None) {
                    push(&mut toks, TokKind::Newline, i, i + 1);
                }
                i += 1;
            }
            b':' => {
                push(&mut toks, TokKind::Colon, i, i + 1);
                i += 1;
            }
            b'=' => {
                push(&mut toks, TokKind::Eq, i, i + 1);
                i += 1;
            }
            b'{' => {
                push(&mut toks, TokKind::LBrace, i, i + 1);
                i += 1;
            }
            b'}' => {
                push(&mut toks, TokKind::RBrace, i, i + 1);
                i += 1;
            }
            b'(' => {
                push(&mut toks, TokKind::LParen, i, i + 1);
                i += 1;
            }
            b')' => {
                push(&mut toks, TokKind::RParen, i, i + 1);
                i += 1;
            }
            b',' => {
                push(&mut toks, TokKind::Comma, i, i + 1);
                i += 1;
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'-' {
                    push(&mut toks, TokKind::Arrow, i, i + 2);
                    i += 2;
                } else {
                    report.push(
                        Diagnostic::error("E001", "lex", "stray `<`; did you mean `<-`?")
                            .with_primary(Span::new(i, i + 1), "unexpected character"),
                    );
                    i += 1;
                }
            }
            _ if c.is_ascii_digit() => {
                let lo = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = &src[lo..i];
                let parsed = if let Some(hex) =
                    text.strip_prefix("0x").or_else(|| text.strip_prefix("0X"))
                {
                    u64::from_str_radix(hex, 16)
                } else {
                    text.parse::<u64>()
                };
                match parsed {
                    Ok(n) => push(&mut toks, TokKind::Int(n), lo, i),
                    Err(_) => {
                        report.push(
                            Diagnostic::error(
                                "E001",
                                "lex",
                                format!("malformed integer literal `{text}`"),
                            )
                            .with_primary(Span::new(lo, i), "not a valid integer")
                            .with_note("literals are decimal or `0x` hex and must fit in 64 bits"),
                        );
                        push(&mut toks, TokKind::Int(0), lo, i);
                    }
                }
            }
            _ if is_ident_start(c) => {
                let lo = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                // Fold a `[digits]` suffix into the identifier so memory
                // words (`dmem[3]`) lex as one name token.
                if i < b.len() && b[i] == b'[' {
                    let mut j = i + 1;
                    while j < b.len() && b[j].is_ascii_digit() {
                        j += 1;
                    }
                    if j > i + 1 && j < b.len() && b[j] == b']' {
                        i = j + 1;
                    }
                }
                push(&mut toks, TokKind::Ident(src[lo..i].to_string()), lo, i);
            }
            _ => {
                let ch = src[i..].chars().next().unwrap_or('?');
                report.push(
                    Diagnostic::error("E001", "lex", format!("unexpected character `{ch}`"))
                        .with_primary(Span::new(i, i + ch.len_utf8()), "not part of the language"),
                );
                i += ch.len_utf8();
            }
        }
    }
    // Terminate the final line so the parser can uniformly expect
    // statement boundaries.
    if !matches!(toks.last().map(|t| &t.kind), Some(TokKind::Newline) | None) {
        push(&mut toks, TokKind::Newline, b.len(), b.len());
    }
    push(&mut toks, TokKind::Eof, b.len(), b.len());
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> (Vec<TokKind>, Report) {
        let mut r = Report::default();
        let toks = lex(src, &mut r);
        (toks.into_iter().map(|t| t.kind).collect(), r)
    }

    #[test]
    fn lexes_declaration_line() {
        let (k, r) = kinds("wire s : w8 = add a b\n");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(
            k,
            vec![
                TokKind::Ident("wire".into()),
                TokKind::Ident("s".into()),
                TokKind::Colon,
                TokKind::Ident("w8".into()),
                TokKind::Eq,
                TokKind::Ident("add".into()),
                TokKind::Ident("a".into()),
                TokKind::Ident("b".into()),
                TokKind::Newline,
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn folds_bracket_suffix_and_dashes() {
        let (k, r) = kinds("dmem[12] minicva6-mul");
        assert!(r.is_clean());
        assert_eq!(k[0], TokKind::Ident("dmem[12]".into()));
        assert_eq!(k[1], TokKind::Ident("minicva6-mul".into()));
    }

    #[test]
    fn hex_and_comments_and_blank_lines() {
        let (k, r) = kinds("# header\n\n\nnext pc <- a # trailing\n0x1f");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(
            k,
            vec![
                TokKind::Ident("next".into()),
                TokKind::Ident("pc".into()),
                TokKind::Arrow,
                TokKind::Ident("a".into()),
                TokKind::Newline,
                TokKind::Int(0x1f),
                TokKind::Newline,
                TokKind::Eof,
            ]
        );
    }

    #[test]
    fn reports_stray_character_with_span() {
        let (_, r) = kinds("wire s = add a @ b\n");
        assert_eq!(r.errors().count(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.code, "E001");
        assert_eq!(d.primary.as_ref().unwrap().span, Span::new(15, 16));
    }

    #[test]
    fn reports_overflowing_literal() {
        let (k, r) = kinds("const c : w64 = 0xffffffffffffffff1\n");
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.diagnostics[0].code, "E001");
        // Placeholder value keeps the stream parseable.
        assert!(k.contains(&TokKind::Int(0)));
    }
}
