//! Textual netlist frontend: a multi-pass compiler for the `.nl` netlist
//! language, plus the canonical emitter that inverts it.
//!
//! The pipeline is the classic shape — every pass appends to one shared
//! [`Report`](crate::diag::Report) so a single run surfaces everything it
//! can:
//!
//! 1. [`lexer`] — tokens with byte spans (`E001`),
//! 2. [`parser`] — span-carrying surface AST (`E002`),
//! 3. [`resolve`] — duplicate/undefined/use-before-declare names
//!    (`E003`–`E005`, `E011`, `E012`, `W002`),
//! 4. [`typeck`] — width/type inference and checking (`E006`–`E013`),
//! 5. [`lower`] — AST → [`Netlist`] IR, only when error-free (`W001`,
//!    `E014`),
//!
//! and [`emit`] renders IR (plus optional annotation/harness metadata)
//! back to canonical text. `emit → compile → emit` is byte-identical; the
//! sixth differential-fuzz oracle and `tests/frontend_roundtrip.rs` hold
//! the toolchain to that.
//!
//! [`check`] additionally runs the `L001`–`L009` lint suite on the
//! lowered module, so `.nl` files get the same static analysis as
//! built-in designs.

pub mod ast;
pub mod emit;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod resolve;
pub mod typeck;

pub use emit::{emit_module, surface_name, ModuleText};
pub use lower::{HarnessData, LoweredModule};

use crate::diag::{Report, SourceFile};
use crate::ir::Netlist;
use crate::lint::{LintContext, Linter};

/// Everything a frontend run produced: the lowered module (absent when
/// errors stopped the pipeline), the diagnostic stream, and the source
/// file for rendering.
pub struct CompileResult {
    /// The lowered module, when compilation got that far.
    pub module: Option<LoweredModule>,
    /// All diagnostics, in pass order.
    pub report: Report,
    /// The input, wrapped for span rendering.
    pub source: SourceFile,
}

/// Runs the frontend pipeline (lex → parse → resolve → typeck → lower)
/// on `src`. `file_name` is only used in rendered diagnostics.
pub fn compile(src: &str, file_name: &str) -> CompileResult {
    let mut report = Report::default();
    let toks = lexer::lex(src, &mut report);
    let ast = parser::parse(&toks, &mut report);
    let mut module = None;
    if let Some(m) = &ast {
        resolve::run(m, &mut report);
        typeck::run(m, &mut report);
        if !report.has_errors() {
            module = lower::run(m, &mut report);
        }
    }
    CompileResult {
        module,
        report,
        source: SourceFile::new(file_name, src),
    }
}

/// [`compile`] plus the `L001`–`L009` lint suite. Lint roots and strobes
/// come from the `harness` block when present (mirroring how built-in
/// designs are linted); otherwise the netlist is linted stand-alone.
/// Lint findings about a declared signal gain that declaration's span.
pub fn check(src: &str, file_name: &str) -> CompileResult {
    let mut out = compile(src, file_name);
    if let Some(module) = &out.module {
        let cx = match (&module.harness, &module.annotations) {
            (Some(h), ann) => {
                let mut roots = vec![
                    h.fetch_instr_input,
                    h.fetch_valid_input,
                    h.fetch_fire,
                    h.issue_fire,
                    h.issue_pc,
                    h.issue_valid,
                    h.pc,
                ];
                if let Some((rs1, rs2)) = h.rs_fields {
                    roots.extend([rs1, rs2]);
                }
                roots.extend(h.outputs.iter().copied());
                LintContext {
                    netlist: &module.netlist,
                    annotations: ann.as_ref(),
                    roots,
                    strobes: vec![
                        ("fetch_fire".to_owned(), h.fetch_fire),
                        ("issue_fire".to_owned(), h.issue_fire),
                    ],
                }
            }
            (None, ann) => LintContext {
                annotations: ann.as_ref(),
                ..LintContext::netlist_only(&module.netlist)
            },
        };
        let lint_report = Linter::new().run(&cx);
        for mut d in lint_report.diagnostics {
            if d.primary.is_none() {
                if let Some(span) = d.signal.and_then(|s| module.span_of(s)) {
                    d = d.with_primary(span, "declared here");
                }
            }
            out.report.push(d);
        }
    }
    out
}

/// A parse failure in the legacy line-oriented API: the first error of
/// the diagnostic stream, reduced to a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the first error.
    pub line: usize,
    /// Its message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Emits a bare netlist (no metadata blocks) as a `module main`. This is
/// the stable fingerprinting surface `mupath` hashes designs through.
pub fn emit(nl: &Netlist) -> String {
    emit_module(&ModuleText {
        name: "main",
        netlist: nl,
        annotations: None,
        harness: None,
    })
}

/// Parses a netlist from text, discarding metadata blocks and warnings.
///
/// # Errors
/// Returns the first error diagnostic, reduced to [`ParseError`].
pub fn parse(src: &str) -> Result<Netlist, ParseError> {
    let result = compile(src, "<input>");
    match result.module {
        Some(module) if !result.report.has_errors() => Ok(module.netlist),
        _ => {
            let first = result
                .report
                .errors()
                .next()
                .expect("no module implies at least one error");
            let line = first
                .primary
                .as_ref()
                .map(|l| result.source.line_col(l.span.lo).0)
                .unwrap_or(0);
            Err(ParseError {
                line,
                message: first.message.clone(),
            })
        }
    }
}

#[cfg(test)]
mod tests;
