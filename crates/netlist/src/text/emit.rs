//! Canonical emitter: IR → netlist language text.
//!
//! The output is deterministic and minimal: declarations in node-id
//! order (one statement per node, anonymous nodes spelled `_n<id>`),
//! `next` connections in register-id order, then the `annotations` and
//! `harness` blocks. Empty list fields are omitted. Parsing and lowering
//! the emission reproduces the IR node-for-node, and re-emitting yields
//! byte-identical text — the property the round-trip fuzz oracle checks.

use std::fmt::Write as _;

use super::lower::HarnessData;
use crate::annotate::{Annotations, FsmState};
use crate::ir::{Netlist, Op, SignalId};

/// A borrowed view of everything one module emission needs.
pub struct ModuleText<'a> {
    /// Module name.
    pub name: &'a str,
    /// The IR.
    pub netlist: &'a Netlist,
    /// Optional §V-A metadata.
    pub annotations: Option<&'a Annotations>,
    /// Optional harness metadata.
    pub harness: Option<&'a HarnessData>,
}

/// The surface spelling of a signal: its name, or `_n<id>` when anonymous.
pub fn surface_name(nl: &Netlist, id: SignalId) -> String {
    match nl.name(id) {
        Some(n) => n.to_string(),
        None => format!("_n{}", id.0),
    }
}

fn tuple(s: &FsmState) -> String {
    let vals: Vec<String> = s.0.iter().map(u64::to_string).collect();
    format!("({})", vals.join(", "))
}

fn name_list(nl: &Netlist, ids: &[SignalId]) -> String {
    let names: Vec<String> = ids.iter().map(|&id| surface_name(nl, id)).collect();
    names.join(" ")
}

/// Renders a module in canonical form.
pub fn emit_module(m: &ModuleText<'_>) -> String {
    let nl = m.netlist;
    let mut out = String::new();
    let _ = writeln!(out, "module {} {{", m.name);

    for (id, node) in nl.iter() {
        let n = surface_name(nl, id);
        let w = node.width;
        match &node.op {
            Op::Input => {
                let _ = writeln!(out, "  input {n} : w{w}");
            }
            Op::Reg { init, .. } => {
                let _ = writeln!(out, "  reg {n} : w{w} = {init}");
            }
            Op::Const(v) => {
                let _ = writeln!(out, "  const {n} : w{w} = {v}");
            }
            Op::Unary(op, a) => {
                let _ = writeln!(out, "  wire {n} = {op} {}", surface_name(nl, *a));
            }
            Op::Binary(op, a, b) => {
                let _ = writeln!(
                    out,
                    "  wire {n} = {op} {} {}",
                    surface_name(nl, *a),
                    surface_name(nl, *b)
                );
            }
            Op::Mux { sel, a, b } => {
                let _ = writeln!(
                    out,
                    "  wire {n} = mux {} {} {}",
                    surface_name(nl, *sel),
                    surface_name(nl, *a),
                    surface_name(nl, *b)
                );
            }
            Op::Slice { src, hi, lo } => {
                let _ = writeln!(
                    out,
                    "  wire {n} = slice {} {hi} {lo}",
                    surface_name(nl, *src)
                );
            }
            Op::Concat { hi, lo } => {
                let _ = writeln!(
                    out,
                    "  wire {n} = concat {} {}",
                    surface_name(nl, *hi),
                    surface_name(nl, *lo)
                );
            }
        }
    }

    for reg in nl.regs() {
        let next = nl.reg_next(reg);
        let _ = writeln!(
            out,
            "  next {} <- {}",
            surface_name(nl, reg),
            surface_name(nl, next)
        );
    }

    if let Some(ann) = m.annotations {
        out.push_str("  annotations {\n");
        let _ = writeln!(out, "    ifr {}", surface_name(nl, ann.ifr));
        let _ = writeln!(out, "    fetch_valid {}", surface_name(nl, ann.fetch_valid));
        let _ = writeln!(out, "    fetch_pc {}", surface_name(nl, ann.fetch_pc));
        let _ = writeln!(out, "    commit {}", surface_name(nl, ann.commit));
        let _ = writeln!(out, "    commit_pc {}", surface_name(nl, ann.commit_pc));
        for (field, ids) in [
            ("operands", &ann.operand_regs),
            ("arf", &ann.arf),
            ("amem", &ann.amem),
            ("persistent", &ann.persistent),
        ] {
            if !ids.is_empty() {
                let _ = writeln!(out, "    {field} {}", name_list(nl, ids));
            }
        }
        if ann.added_loc != 0 {
            let _ = writeln!(out, "    added_loc {}", ann.added_loc);
        }
        for u in &ann.ufsms {
            let added = if u.pcr_added { " added" } else { "" };
            let _ = writeln!(out, "    ufsm {}{added} {{", u.name);
            let _ = writeln!(out, "      pcr {}", surface_name(nl, u.pcr));
            let _ = writeln!(out, "      vars {}", name_list(nl, &u.vars));
            for s in &u.idle {
                let _ = writeln!(out, "      idle {}", tuple(s));
            }
            if let Some(states) = &u.states {
                for ns in states {
                    let _ = writeln!(out, "      state {} = {}", ns.name, tuple(&ns.state));
                }
            }
            out.push_str("    }\n");
        }
        out.push_str("  }\n");
    }

    if let Some(h) = m.harness {
        out.push_str("  harness {\n");
        for (field, id) in [
            ("fetch_instr_input", h.fetch_instr_input),
            ("fetch_valid_input", h.fetch_valid_input),
            ("fetch_fire", h.fetch_fire),
            ("issue_fire", h.issue_fire),
            ("issue_pc", h.issue_pc),
            ("issue_valid", h.issue_valid),
        ] {
            let _ = writeln!(out, "    {field} {}", surface_name(nl, id));
        }
        if let Some((a, b)) = h.rs_fields {
            let _ = writeln!(
                out,
                "    rs_fields {} {}",
                surface_name(nl, a),
                surface_name(nl, b)
            );
        }
        let _ = writeln!(out, "    pc {}", surface_name(nl, h.pc));
        if !h.isa.is_empty() {
            let _ = writeln!(out, "    isa {}", h.isa.join(" "));
        }
        let _ = writeln!(
            out,
            "    type_field {} {}",
            h.type_field_hi, h.type_field_lo
        );
        for (mn, v) in &h.type_values {
            let _ = writeln!(out, "    type_value {mn} {v}");
        }
        let _ = writeln!(out, "    max_latency {}", h.max_latency);
        if !h.outputs.is_empty() {
            let _ = writeln!(out, "    outputs {}", name_list(nl, &h.outputs));
        }
        out.push_str("  }\n");
    }

    out.push_str("}\n");
    out
}
