//! Lowering: AST → IR.
//!
//! Runs only when resolution and type checking produced no errors, so it
//! can assume every name resolves and every width agrees. Each
//! declaration statement lowers to exactly one node, in statement order —
//! the invariant behind byte-identical emit→parse→lower→emit round trips.
//! The `mem`/`read`/`write` sugar expands to register words plus
//! anonymous mux/eq chains (write expansions are deferred to the end of
//! the node table so they may reference later declarations).
//!
//! Surface names of the reserved shape `_n<digits>` are the emitter's
//! spelling of *anonymous* nodes: lowering drops them from the IR (the
//! node gets `name: None`) and warns `W001` when the digits do not match
//! the node index they land on.

use std::collections::HashMap;

use super::ast::{Item, Module, Name, UfsmBlock, WireOp};
use crate::annotate::{Annotations, FsmState, NamedState, UFsm};
use crate::diag::{Diagnostic, Report, Span};
use crate::ir::{Netlist, Node, Op, SignalId};

/// Harness metadata in netlist-crate terms: hook signals resolved to ids,
/// ISA mnemonics and type encodings kept as strings/values (the `uarch`
/// crate converts them to `Opcode`s; `netlist` cannot see the `isa` crate).
#[derive(Clone, Debug)]
pub struct HarnessData {
    /// The instruction-word input driven by the verification harness.
    pub fetch_instr_input: SignalId,
    /// The fetch-valid input.
    pub fetch_valid_input: SignalId,
    /// 1-bit strobe: a fetch happened this cycle.
    pub fetch_fire: SignalId,
    /// 1-bit strobe: an issue happened this cycle.
    pub issue_fire: SignalId,
    /// PC of the issuing instruction.
    pub issue_pc: SignalId,
    /// 1-bit: issue stage holds a valid instruction.
    pub issue_valid: SignalId,
    /// Source-register fields of the issue-stage instruction.
    pub rs_fields: Option<(SignalId, SignalId)>,
    /// The architectural PC register.
    pub pc: SignalId,
    /// ISA mnemonics, in declaration order.
    pub isa: Vec<String>,
    /// High bit of the opcode type field.
    pub type_field_hi: u8,
    /// Low bit of the opcode type field.
    pub type_field_lo: u8,
    /// Explicit `mnemonic -> type value` encodings.
    pub type_values: Vec<(String, u64)>,
    /// Issue-latency bound for the synthesis procedures.
    pub max_latency: usize,
    /// Extra observable outputs.
    pub outputs: Vec<SignalId>,
}

/// The result of lowering one module.
pub struct LoweredModule {
    /// Module name.
    pub name: String,
    /// The lowered IR.
    pub netlist: Netlist,
    /// Per-node source span (None for sugar-generated nodes).
    pub spans: Vec<Option<Span>>,
    /// §V-A metadata, when an `annotations` block was present.
    pub annotations: Option<Annotations>,
    /// Harness metadata, when a `harness` block was present.
    pub harness: Option<HarnessData>,
}

impl LoweredModule {
    /// The source span of `id`'s declaration, when it has one.
    pub fn span_of(&self, id: SignalId) -> Option<Span> {
        self.spans.get(id.index()).copied().flatten()
    }
}

/// `_n<digits>` — the reserved spelling of anonymous nodes.
fn anonymous_index(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("_n")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

struct Lowerer<'r> {
    nl: Netlist,
    spans: Vec<Option<Span>>,
    map: HashMap<String, SignalId>,
    /// Memory name → (word ids, word width, addr width needed).
    mems: HashMap<String, (Vec<SignalId>, u8)>,
    report: &'r mut Report,
}

impl Lowerer<'_> {
    /// Pushes an anonymous node.
    fn push_anon(&mut self, width: u8, op: Op, span: Option<Span>) -> SignalId {
        let id = self
            .nl
            .push(Node {
                name: None,
                width,
                op,
            })
            .expect("lowering pushed an invalid node");
        self.spans.push(span);
        id
    }

    /// Pushes a named declaration, applying the `_n` anonymity rule.
    fn push_named(&mut self, name: &Name, width: u8, op: Op) -> SignalId {
        let next_index = self.nl.len() as u32;
        let ir_name = match anonymous_index(&name.node) {
            Some(idx) => {
                if idx != next_index {
                    self.report.push(
                        Diagnostic::warning(
                            "W001",
                            "lower",
                            format!(
                                "`{}` uses the reserved anonymous-name shape but lands on node {next_index}",
                                name.node
                            ),
                        )
                        .with_primary(name.span, "names starting with `_n` + digits are reserved for anonymous nodes")
                        .with_note("the canonical emitter will rename this node"),
                    );
                }
                None
            }
            None => Some(name.node.clone()),
        };
        let id = self
            .nl
            .push(Node {
                name: ir_name,
                width,
                op,
            })
            .expect("lowering pushed an invalid node");
        self.spans.push(Some(name.span));
        self.map.insert(name.node.clone(), id);
        id
    }

    fn get(&self, name: &Name) -> SignalId {
        self.map[&name.node]
    }

    fn width(&self, id: SignalId) -> u8 {
        self.nl.width(id)
    }

    /// Builds the read mux chain for `mem[addr]`.
    fn lower_read(&mut self, name: &Name, mem_name: &str, addr: &Name) -> SignalId {
        let (words, width) = self.mems[mem_name].clone();
        let addr_id = self.get(addr);
        let aw = self.width(addr_id);
        let mut acc = words[0];
        for (i, &word) in words.iter().enumerate().skip(1) {
            let idx = self.push_anon(aw, Op::Const(i as u64), Some(name.span));
            let sel = self.push_anon(
                1,
                Op::Binary(crate::ir::BinOp::Eq, addr_id, idx),
                Some(name.span),
            );
            acc = self.push_anon(
                width,
                Op::Mux {
                    sel,
                    a: word,
                    b: acc,
                },
                Some(name.span),
            );
        }
        // The named result node: for multi-word memories the final mux
        // would do, but a single-word memory needs a fresh alias node, so
        // uniformly finish with a full-width slice carrying the name.
        self.push_named(
            name,
            width,
            Op::Slice {
                src: acc,
                hi: width - 1,
                lo: 0,
            },
        )
    }

    /// Expands one `write` statement into per-word next-state muxes.
    fn lower_write(&mut self, mem: &Name, en: &Name, addr: &Name, data: &Name) {
        let (words, width) = self.mems[&mem.node].clone();
        let (en_id, addr_id, data_id) = (self.get(en), self.get(addr), self.get(data));
        let aw = self.width(addr_id);
        for (i, &word) in words.iter().enumerate() {
            let idx = self.push_anon(aw, Op::Const(i as u64), Some(mem.span));
            let hit = self.push_anon(
                1,
                Op::Binary(crate::ir::BinOp::Eq, addr_id, idx),
                Some(mem.span),
            );
            let sel = self.push_anon(
                1,
                Op::Binary(crate::ir::BinOp::And, en_id, hit),
                Some(mem.span),
            );
            let next = self.push_anon(
                width,
                Op::Mux {
                    sel,
                    a: data_id,
                    b: word,
                },
                Some(mem.span),
            );
            self.nl
                .set_reg_next(word, next)
                .expect("write expansion re-wired a register");
        }
    }
}

/// Lowers a checked module. `report` receives `W001` warnings and (belt
/// and braces) an `E014` internal error if the produced IR fails
/// [`Netlist::validate`] — which would be a frontend bug, not a user error.
pub fn run(m: &Module, report: &mut Report) -> Option<LoweredModule> {
    let mut lw = Lowerer {
        nl: Netlist::new(),
        spans: Vec::new(),
        map: HashMap::new(),
        mems: HashMap::new(),
        report,
    };

    let mut writes: Vec<(&Name, &Name, &Name, &Name)> = Vec::new();
    let mut nexts: Vec<(&Name, &Name)> = Vec::new();

    for item in &m.items {
        match item {
            Item::Input { name, width } => {
                lw.push_named(name, width.node as u8, Op::Input);
            }
            Item::Reg { name, width, init } => {
                lw.push_named(
                    name,
                    width.node as u8,
                    Op::Reg {
                        next: None,
                        init: init.node,
                    },
                );
            }
            Item::Const { name, width, value } => {
                lw.push_named(name, width.node as u8, Op::Const(value.node));
            }
            Item::Wire { name, op, .. } => {
                lower_wire(&mut lw, name, op);
            }
            Item::Mem {
                name,
                len,
                width,
                init,
            } => {
                let w = width.node as u8;
                let init = init.as_ref().map(|i| i.node).unwrap_or(0);
                let mut words = Vec::with_capacity(len.node as usize);
                for i in 0..len.node {
                    let word = Name {
                        node: format!("{}[{i}]", name.node),
                        span: name.span,
                    };
                    words.push(lw.push_named(&word, w, Op::Reg { next: None, init }));
                }
                lw.mems.insert(name.node.clone(), (words, w));
            }
            Item::Write {
                mem,
                en,
                addr,
                data,
            } => writes.push((mem, en, addr, data)),
            Item::Next { reg, src } => nexts.push((reg, src)),
        }
    }

    // Fix-ups: `next` connections and deferred write-port expansions (both
    // may reference declarations that came later in the file).
    for (reg, src) in nexts {
        let (r, s) = (lw.get(reg), lw.get(src));
        lw.nl
            .set_reg_next(r, s)
            .expect("typeck admitted a bad next connection");
    }
    for (mem, en, addr, data) in writes {
        lw.lower_write(mem, en, addr, data);
    }

    let annotations = m.annotations.as_ref().map(|ann| Annotations {
        ifr: lw.get(ann.ifr.as_ref().expect("typeck requires ifr")),
        fetch_valid: lw.get(
            ann.fetch_valid
                .as_ref()
                .expect("typeck requires fetch_valid"),
        ),
        fetch_pc: lw.get(ann.fetch_pc.as_ref().expect("typeck requires fetch_pc")),
        commit: lw.get(ann.commit.as_ref().expect("typeck requires commit")),
        commit_pc: lw.get(ann.commit_pc.as_ref().expect("typeck requires commit_pc")),
        operand_regs: ann.operands.iter().map(|n| lw.get(n)).collect(),
        arf: ann.arf.iter().map(|n| lw.get(n)).collect(),
        amem: ann.amem.iter().map(|n| lw.get(n)).collect(),
        ufsms: ann.ufsms.iter().map(|u| lower_ufsm(&lw, u)).collect(),
        persistent: ann.persistent.iter().map(|n| lw.get(n)).collect(),
        added_loc: ann.added_loc.as_ref().map(|l| l.node as usize).unwrap_or(0),
    });

    let harness = m.harness.as_ref().map(|h| {
        let get = |n: &Option<Name>, field: &str| -> SignalId {
            lw.get(
                n.as_ref()
                    .unwrap_or_else(|| panic!("typeck requires {field}")),
            )
        };
        let (tf_hi, tf_lo) = h.type_field.as_ref().expect("typeck requires type_field");
        HarnessData {
            fetch_instr_input: get(&h.fetch_instr_input, "fetch_instr_input"),
            fetch_valid_input: get(&h.fetch_valid_input, "fetch_valid_input"),
            fetch_fire: get(&h.fetch_fire, "fetch_fire"),
            issue_fire: get(&h.issue_fire, "issue_fire"),
            issue_pc: get(&h.issue_pc, "issue_pc"),
            issue_valid: get(&h.issue_valid, "issue_valid"),
            rs_fields: h.rs_fields.as_ref().map(|(a, b)| (lw.get(a), lw.get(b))),
            pc: get(&h.pc, "pc"),
            isa: h.isa.iter().map(|n| n.node.clone()).collect(),
            type_field_hi: tf_hi.node as u8,
            type_field_lo: tf_lo.node as u8,
            type_values: h
                .type_values
                .iter()
                .map(|(mn, v)| (mn.node.clone(), v.node))
                .collect(),
            max_latency: h
                .max_latency
                .as_ref()
                .expect("typeck requires max_latency")
                .node as usize,
            outputs: h.outputs.iter().map(|n| lw.get(n)).collect(),
        }
    });

    if let Err(e) = lw.nl.validate() {
        lw.report.push(Diagnostic::error(
            "E014",
            "lower",
            format!("internal: lowered netlist failed validation: {e}"),
        ));
        return None;
    }
    if let Some(ann) = &annotations {
        if let Err(e) = ann.validate(&lw.nl) {
            lw.report.push(Diagnostic::error(
                "E012",
                "lower",
                format!("annotations failed validation: {e}"),
            ));
            return None;
        }
    }

    Some(LoweredModule {
        name: m.name.node.clone(),
        netlist: lw.nl,
        spans: lw.spans,
        annotations,
        harness,
    })
}

fn lower_wire(lw: &mut Lowerer<'_>, name: &Name, op: &WireOp) {
    match op {
        WireOp::Unary { op, a, .. } => {
            let a_id = lw.get(a);
            let w = if op.is_reduction() { 1 } else { lw.width(a_id) };
            lw.push_named(name, w, Op::Unary(*op, a_id));
        }
        WireOp::Binary { op, a, b, .. } => {
            let (a_id, b_id) = (lw.get(a), lw.get(b));
            let w = if op.is_comparison() {
                1
            } else {
                lw.width(a_id)
            };
            lw.push_named(name, w, Op::Binary(*op, a_id, b_id));
        }
        WireOp::Mux { sel, a, b } => {
            let (s, a_id, b_id) = (lw.get(sel), lw.get(a), lw.get(b));
            let w = lw.width(a_id);
            lw.push_named(
                name,
                w,
                Op::Mux {
                    sel: s,
                    a: a_id,
                    b: b_id,
                },
            );
        }
        WireOp::Slice { src, hi, lo } => {
            let s = lw.get(src);
            lw.push_named(
                name,
                (hi.node - lo.node + 1) as u8,
                Op::Slice {
                    src: s,
                    hi: hi.node as u8,
                    lo: lo.node as u8,
                },
            );
        }
        WireOp::Concat { hi, lo } => {
            let (h, l) = (lw.get(hi), lw.get(lo));
            let w = lw.width(h) + lw.width(l);
            lw.push_named(name, w, Op::Concat { hi: h, lo: l });
        }
        WireOp::Read { mem, addr } => {
            lw.lower_read(name, &mem.node, addr);
        }
    }
}

fn lower_ufsm(lw: &Lowerer<'_>, u: &UfsmBlock) -> UFsm {
    UFsm {
        name: u.name.node.clone(),
        pcr: lw.get(u.pcr.as_ref().expect("typeck requires pcr")),
        vars: u.vars.iter().map(|v| lw.get(v)).collect(),
        idle: u.idle.iter().map(|t| FsmState(t.node.clone())).collect(),
        states: if u.states.is_empty() {
            None
        } else {
            Some(
                u.states
                    .iter()
                    .map(|(n, t)| NamedState {
                        name: n.node.clone(),
                        state: FsmState(t.node.clone()),
                    })
                    .collect(),
            )
        },
        pcr_added: u.added,
    }
}
