//! Recursive-descent parser for the netlist language.
//!
//! Grammar (newline-separated statements, `#` comments, nesting via `{}`):
//!
//! ```text
//! module    := "module" name "{" stmt* "}"
//! stmt      := "input" name ":" width
//!            | "reg" name ":" width "=" int
//!            | "const" name ":" width "=" int
//!            | "wire" name [":" width] "=" wireop
//!            | "mem" name "[" int "]" ":" width ["=" int]
//!            | "write" name name name name
//!            | "next" name "<-" name
//!            | annotations | harness
//! wireop    := unop name | binop name name | "mux" name name name
//!            | "slice" name int int | "concat" name name | "read" name name
//! width     := "w" int       (single token, e.g. `w8`)
//! ```
//!
//! Errors are `E002` diagnostics; recovery is per line (skip to the next
//! newline), so one typo does not cascade through the whole file.

use super::ast::{AnnBlock, HarnessBlock, Item, Module, Name, Spanned, UfsmBlock, WireOp};
use super::lexer::{TokKind, Token};
use crate::diag::{Diagnostic, Report, Span};
use crate::ir::{BinOp, UnOp};

/// Maps an operator mnemonic to a unary IR op.
pub fn un_op_from_str(s: &str) -> Option<UnOp> {
    Some(match s {
        "not" => UnOp::Not,
        "neg" => UnOp::Neg,
        "redor" => UnOp::RedOr,
        "redand" => UnOp::RedAnd,
        "redxor" => UnOp::RedXor,
        _ => return None,
    })
}

/// Maps an operator mnemonic to a binary IR op.
pub fn bin_op_from_str(s: &str) -> Option<BinOp> {
    Some(match s {
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "ult" => BinOp::Ult,
        "ule" => BinOp::Ule,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

/// Parses a token stream into a [`Module`]. Returns `None` only when no
/// module header could be found at all; otherwise a best-effort AST is
/// returned alongside whatever `E002` diagnostics were pushed.
pub fn parse(tokens: &[Token], report: &mut Report) -> Option<Module> {
    Parser {
        toks: tokens,
        pos: 0,
        report,
    }
    .module()
}

struct Parser<'a, 'r> {
    toks: &'a [Token],
    pos: usize,
    report: &'r mut Report,
}

impl Parser<'_, '_> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokKind) -> bool {
        &self.peek().kind == kind
    }

    fn skip_newlines(&mut self) {
        while self.at(&TokKind::Newline) {
            self.bump();
        }
    }

    fn error(&mut self, span: Span, msg: impl Into<String>, label: &str) {
        self.report
            .push(Diagnostic::error("E002", "parse", msg).with_primary(span, label));
    }

    /// Skips to the end of the current line without consuming the closing
    /// brace of the enclosing block, so recovery stays local.
    fn sync_line(&mut self) {
        loop {
            match &self.peek().kind {
                TokKind::Newline => {
                    self.bump();
                    return;
                }
                TokKind::RBrace | TokKind::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn expect(&mut self, kind: TokKind, what: &str) -> Option<Token> {
        if self.at(&kind) {
            Some(self.bump())
        } else {
            let found = self.peek().kind.describe();
            let span = self.peek().span;
            self.error(
                span,
                format!("expected {what}, found {found}"),
                &format!("expected {what}"),
            );
            None
        }
    }

    fn name(&mut self, what: &str) -> Option<Name> {
        match &self.peek().kind {
            TokKind::Ident(s) => {
                let s = s.clone();
                let t = self.bump();
                Some(Spanned::new(s, t.span))
            }
            k => {
                let found = k.describe();
                let span = self.peek().span;
                self.error(
                    span,
                    format!("expected {what}, found {found}"),
                    &format!("expected {what}"),
                );
                None
            }
        }
    }

    fn int(&mut self, what: &str) -> Option<Spanned<u64>> {
        match &self.peek().kind {
            TokKind::Int(n) => {
                let n = *n;
                let t = self.bump();
                Some(Spanned::new(n, t.span))
            }
            k => {
                let found = k.describe();
                let span = self.peek().span;
                self.error(
                    span,
                    format!("expected {what}, found {found}"),
                    &format!("expected {what}"),
                );
                None
            }
        }
    }

    /// A width token: an identifier of the shape `w<digits>`.
    fn width(&mut self) -> Option<Spanned<u64>> {
        match &self.peek().kind {
            TokKind::Ident(s)
                if s.starts_with('w')
                    && s[1..].chars().all(|c| c.is_ascii_digit())
                    && s.len() > 1 =>
            {
                let n: u64 = s[1..].parse().unwrap_or(u64::MAX);
                let t = self.bump();
                Some(Spanned::new(n, t.span))
            }
            k => {
                let found = k.describe();
                let span = self.peek().span;
                self.error(
                    span,
                    format!("expected a width such as `w8`, found {found}"),
                    "expected a width",
                );
                None
            }
        }
    }

    /// Consumes the end of a statement line; on junk, reports and recovers.
    fn end_line(&mut self) {
        match &self.peek().kind {
            TokKind::Newline => {
                self.bump();
            }
            TokKind::RBrace | TokKind::Eof => {}
            k => {
                let found = k.describe();
                let span = self.peek().span;
                self.error(
                    span,
                    format!("expected end of line, found {found}"),
                    "trailing tokens",
                );
                self.sync_line();
            }
        }
    }

    fn module(&mut self) -> Option<Module> {
        self.skip_newlines();
        match &self.peek().kind {
            TokKind::Ident(s) if s == "module" => {
                self.bump();
            }
            k => {
                let found = k.describe();
                let span = self.peek().span;
                self.error(
                    span,
                    format!("expected `module`, found {found}"),
                    "a netlist file starts with `module <name> {{`",
                );
                return None;
            }
        }
        let name = self.name("a module name")?;
        self.expect(TokKind::LBrace, "`{`")?;
        self.end_line();

        let mut m = Module {
            name,
            items: Vec::new(),
            annotations: None,
            harness: None,
        };
        loop {
            self.skip_newlines();
            match &self.peek().kind {
                TokKind::RBrace => {
                    self.bump();
                    break;
                }
                TokKind::Eof => {
                    let span = self.peek().span;
                    self.error(
                        span,
                        "unexpected end of file: unclosed module block",
                        "expected `}`",
                    );
                    break;
                }
                _ => self.statement(&mut m),
            }
        }
        Some(m)
    }

    fn statement(&mut self, m: &mut Module) {
        let kw = match &self.peek().kind {
            TokKind::Ident(s) => s.clone(),
            k => {
                let found = k.describe();
                let span = self.peek().span;
                self.error(
                    span,
                    format!("expected a statement, found {found}"),
                    "not a statement",
                );
                self.sync_line();
                return;
            }
        };
        let kw_span = self.peek().span;
        match kw.as_str() {
            "input" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let name = p.name("a signal name")?;
                    p.expect(TokKind::Colon, "`:`")?;
                    let width = p.width()?;
                    Some(Item::Input { name, width })
                })(self);
                self.finish_stmt(m, item);
            }
            "reg" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let name = p.name("a register name")?;
                    p.expect(TokKind::Colon, "`:`")?;
                    let width = p.width()?;
                    p.expect(TokKind::Eq, "`=`")?;
                    let init = p.int("a reset value")?;
                    Some(Item::Reg { name, width, init })
                })(self);
                self.finish_stmt(m, item);
            }
            "const" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let name = p.name("a constant name")?;
                    p.expect(TokKind::Colon, "`:`")?;
                    let width = p.width()?;
                    p.expect(TokKind::Eq, "`=`")?;
                    let value = p.int("a constant value")?;
                    Some(Item::Const { name, width, value })
                })(self);
                self.finish_stmt(m, item);
            }
            "wire" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let name = p.name("a wire name")?;
                    let width = if p.at(&TokKind::Colon) {
                        p.bump();
                        Some(p.width()?)
                    } else {
                        None
                    };
                    p.expect(TokKind::Eq, "`=`")?;
                    let op = p.wire_op()?;
                    Some(Item::Wire { name, width, op })
                })(self);
                self.finish_stmt(m, item);
            }
            "mem" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let raw = p.name("a memory name like `m[16]`")?;
                    let (name, len) = match raw.node.find('[') {
                        Some(br) if raw.node.ends_with(']') => {
                            let base = raw.node[..br].to_string();
                            let digits = &raw.node[br + 1..raw.node.len() - 1];
                            let len: u64 = digits.parse().unwrap_or(0);
                            let (rlo, rhi) = (raw.span.lo as usize, raw.span.hi as usize);
                            let name = Spanned::new(base, Span::new(rlo, rlo + br));
                            let len = Spanned::new(len, Span::new(rlo + br + 1, rhi - 1));
                            (name, len)
                        }
                        _ => {
                            p.error(
                                raw.span,
                                "memory declarations need a length suffix, e.g. `mem m[16] : w8`",
                                "missing `[len]`",
                            );
                            return None;
                        }
                    };
                    p.expect(TokKind::Colon, "`:`")?;
                    let width = p.width()?;
                    let init = if p.at(&TokKind::Eq) {
                        p.bump();
                        Some(p.int("a reset value")?)
                    } else {
                        None
                    };
                    Some(Item::Mem {
                        name,
                        len,
                        width,
                        init,
                    })
                })(self);
                self.finish_stmt(m, item);
            }
            "write" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let mem = p.name("a memory name")?;
                    let en = p.name("a write-enable signal")?;
                    let addr = p.name("an address signal")?;
                    let data = p.name("a data signal")?;
                    Some(Item::Write {
                        mem,
                        en,
                        addr,
                        data,
                    })
                })(self);
                self.finish_stmt(m, item);
            }
            "next" => {
                self.bump();
                let item = (|p: &mut Self| {
                    let reg = p.name("a register name")?;
                    p.expect(TokKind::Arrow, "`<-`")?;
                    let src = p.name("a signal name")?;
                    Some(Item::Next { reg, src })
                })(self);
                self.finish_stmt(m, item);
            }
            "annotations" => {
                self.bump();
                let block = self.annotations_block(kw_span);
                if m.annotations.is_some() {
                    self.error(
                        kw_span,
                        "duplicate `annotations` block",
                        "a module has at most one",
                    );
                } else {
                    m.annotations = block;
                }
            }
            "harness" => {
                self.bump();
                let block = self.harness_block(kw_span);
                if m.harness.is_some() {
                    self.error(
                        kw_span,
                        "duplicate `harness` block",
                        "a module has at most one",
                    );
                } else {
                    m.harness = block;
                }
            }
            other => {
                self.error(
                    kw_span,
                    format!("unknown statement `{other}`"),
                    "expected `input`, `reg`, `const`, `wire`, `mem`, `write`, `next`, `annotations`, or `harness`",
                );
                self.sync_line();
            }
        }
    }

    fn finish_stmt(&mut self, m: &mut Module, item: Option<Item>) {
        match item {
            Some(item) => {
                m.items.push(item);
                self.end_line();
            }
            None => self.sync_line(),
        }
    }

    fn wire_op(&mut self) -> Option<WireOp> {
        let op = self.name("an operator")?;
        let op_span = op.span;
        if let Some(u) = un_op_from_str(&op.node) {
            let a = self.name("an operand")?;
            return Some(WireOp::Unary { op: u, op_span, a });
        }
        if let Some(b) = bin_op_from_str(&op.node) {
            let x = self.name("an operand")?;
            let y = self.name("an operand")?;
            return Some(WireOp::Binary {
                op: b,
                op_span,
                a: x,
                b: y,
            });
        }
        match op.node.as_str() {
            "mux" => {
                let sel = self.name("a select signal")?;
                let a = self.name("an operand")?;
                let b = self.name("an operand")?;
                Some(WireOp::Mux { sel, a, b })
            }
            "slice" => {
                let src = self.name("a source signal")?;
                let hi = self.int("a high bit index")?;
                let lo = self.int("a low bit index")?;
                Some(WireOp::Slice { src, hi, lo })
            }
            "concat" => {
                let hi = self.name("an operand")?;
                let lo = self.name("an operand")?;
                Some(WireOp::Concat { hi, lo })
            }
            "read" => {
                let mem = self.name("a memory name")?;
                let addr = self.name("an address signal")?;
                Some(WireOp::Read { mem, addr })
            }
            other => {
                self.error(
                    op_span,
                    format!("unknown operator `{other}`"),
                    "not an operator",
                );
                None
            }
        }
    }

    /// `( <int> {, <int>} )` — a µFSM state valuation.
    fn tuple(&mut self) -> Option<Spanned<Vec<u64>>> {
        let open = self.expect(TokKind::LParen, "`(`")?;
        let mut vals = Vec::new();
        loop {
            vals.push(self.int("a state value")?.node);
            match &self.peek().kind {
                TokKind::Comma => {
                    self.bump();
                }
                TokKind::RParen => break,
                k => {
                    let found = k.describe();
                    let span = self.peek().span;
                    self.error(
                        span,
                        format!("expected `,` or `)`, found {found}"),
                        "in state tuple",
                    );
                    return None;
                }
            }
        }
        let close = self.bump(); // RParen
        Some(Spanned::new(vals, open.span.join(close.span)))
    }

    /// Names until end-of-line.
    fn name_list(&mut self) -> Vec<Name> {
        let mut out = Vec::new();
        while let TokKind::Ident(s) = &self.peek().kind {
            let s = s.clone();
            let t = self.bump();
            out.push(Spanned::new(s, t.span));
        }
        out
    }

    fn set_once<T>(&mut self, slot: &mut Option<T>, value: Option<T>, field: &str, span: Span) {
        if value.is_none() {
            return;
        }
        if slot.is_some() {
            self.error(
                span,
                format!("duplicate `{field}` field"),
                "already set above",
            );
        } else {
            *slot = value;
        }
    }

    fn annotations_block(&mut self, kw_span: Span) -> Option<AnnBlock> {
        self.expect(TokKind::LBrace, "`{`")?;
        self.end_line();
        let mut blk = AnnBlock {
            span: kw_span,
            ..AnnBlock::default()
        };
        loop {
            self.skip_newlines();
            match &self.peek().kind {
                TokKind::RBrace => {
                    self.bump();
                    break;
                }
                TokKind::Eof => {
                    let span = self.peek().span;
                    self.error(
                        span,
                        "unexpected end of file: unclosed `annotations` block",
                        "expected `}`",
                    );
                    return Some(blk);
                }
                _ => {}
            }
            let Some(field) = self.name("an annotation field") else {
                self.sync_line();
                continue;
            };
            let fspan = field.span;
            match field.node.as_str() {
                "ifr" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.ifr, v, "ifr", fspan);
                    self.end_line();
                }
                "fetch_valid" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.fetch_valid, v, "fetch_valid", fspan);
                    self.end_line();
                }
                "fetch_pc" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.fetch_pc, v, "fetch_pc", fspan);
                    self.end_line();
                }
                "commit" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.commit, v, "commit", fspan);
                    self.end_line();
                }
                "commit_pc" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.commit_pc, v, "commit_pc", fspan);
                    self.end_line();
                }
                "operands" => {
                    blk.operands.extend(self.name_list());
                    self.end_line();
                }
                "arf" => {
                    blk.arf.extend(self.name_list());
                    self.end_line();
                }
                "amem" => {
                    blk.amem.extend(self.name_list());
                    self.end_line();
                }
                "persistent" => {
                    blk.persistent.extend(self.name_list());
                    self.end_line();
                }
                "added_loc" => {
                    let v = self.int("a location count");
                    self.set_once(&mut blk.added_loc, v, "added_loc", fspan);
                    self.end_line();
                }
                "ufsm" => {
                    if let Some(u) = self.ufsm_block() {
                        blk.ufsms.push(u);
                    }
                }
                other => {
                    self.error(
                        fspan,
                        format!("unknown annotation field `{other}`"),
                        "expected `ifr`, `fetch_valid`, `fetch_pc`, `commit`, `commit_pc`, `operands`, `arf`, `amem`, `persistent`, `added_loc`, or `ufsm`",
                    );
                    self.sync_line();
                }
            }
        }
        Some(blk)
    }

    fn ufsm_block(&mut self) -> Option<UfsmBlock> {
        let name = self.name("a ufsm name")?;
        let added = match &self.peek().kind {
            TokKind::Ident(s) if s == "added" => {
                self.bump();
                true
            }
            _ => false,
        };
        self.expect(TokKind::LBrace, "`{`")?;
        self.end_line();
        let mut u = UfsmBlock {
            name,
            added,
            pcr: None,
            vars: Vec::new(),
            idle: Vec::new(),
            states: Vec::new(),
        };
        loop {
            self.skip_newlines();
            match &self.peek().kind {
                TokKind::RBrace => {
                    self.bump();
                    break;
                }
                TokKind::Eof => {
                    let span = self.peek().span;
                    self.error(
                        span,
                        "unexpected end of file: unclosed `ufsm` block",
                        "expected `}`",
                    );
                    return Some(u);
                }
                _ => {}
            }
            let Some(field) = self.name("a ufsm field") else {
                self.sync_line();
                continue;
            };
            let fspan = field.span;
            match field.node.as_str() {
                "pcr" => {
                    let v = self.name("a register name");
                    self.set_once(&mut u.pcr, v, "pcr", fspan);
                    self.end_line();
                }
                "vars" => {
                    u.vars.extend(self.name_list());
                    self.end_line();
                }
                "idle" => {
                    if let Some(t) = self.tuple() {
                        u.idle.push(t);
                        self.end_line();
                    } else {
                        self.sync_line();
                    }
                }
                "state" => {
                    let item = (|p: &mut Self| {
                        let n = p.name("a state name")?;
                        p.expect(TokKind::Eq, "`=`")?;
                        let t = p.tuple()?;
                        Some((n, t))
                    })(self);
                    match item {
                        Some(s) => {
                            u.states.push(s);
                            self.end_line();
                        }
                        None => self.sync_line(),
                    }
                }
                other => {
                    self.error(
                        fspan,
                        format!("unknown ufsm field `{other}`"),
                        "expected `pcr`, `vars`, `idle`, or `state`",
                    );
                    self.sync_line();
                }
            }
        }
        Some(u)
    }

    fn harness_block(&mut self, kw_span: Span) -> Option<HarnessBlock> {
        self.expect(TokKind::LBrace, "`{`")?;
        self.end_line();
        let mut blk = HarnessBlock {
            span: kw_span,
            ..HarnessBlock::default()
        };
        loop {
            self.skip_newlines();
            match &self.peek().kind {
                TokKind::RBrace => {
                    self.bump();
                    break;
                }
                TokKind::Eof => {
                    let span = self.peek().span;
                    self.error(
                        span,
                        "unexpected end of file: unclosed `harness` block",
                        "expected `}`",
                    );
                    return Some(blk);
                }
                _ => {}
            }
            let Some(field) = self.name("a harness field") else {
                self.sync_line();
                continue;
            };
            let fspan = field.span;
            match field.node.as_str() {
                "fetch_instr_input" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.fetch_instr_input, v, "fetch_instr_input", fspan);
                    self.end_line();
                }
                "fetch_valid_input" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.fetch_valid_input, v, "fetch_valid_input", fspan);
                    self.end_line();
                }
                "fetch_fire" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.fetch_fire, v, "fetch_fire", fspan);
                    self.end_line();
                }
                "issue_fire" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.issue_fire, v, "issue_fire", fspan);
                    self.end_line();
                }
                "issue_pc" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.issue_pc, v, "issue_pc", fspan);
                    self.end_line();
                }
                "issue_valid" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.issue_valid, v, "issue_valid", fspan);
                    self.end_line();
                }
                "rs_fields" => {
                    let v = (|p: &mut Self| {
                        let a = p.name("a signal name")?;
                        let b = p.name("a signal name")?;
                        Some((a, b))
                    })(self);
                    self.set_once(&mut blk.rs_fields, v, "rs_fields", fspan);
                    self.end_line();
                }
                "pc" => {
                    let v = self.name("a signal name");
                    self.set_once(&mut blk.pc, v, "pc", fspan);
                    self.end_line();
                }
                "isa" => {
                    blk.isa.extend(self.name_list());
                    self.end_line();
                }
                "type_field" => {
                    let v = (|p: &mut Self| {
                        let hi = p.int("a high bit index")?;
                        let lo = p.int("a low bit index")?;
                        Some((hi, lo))
                    })(self);
                    self.set_once(&mut blk.type_field, v, "type_field", fspan);
                    self.end_line();
                }
                "type_value" => {
                    let item = (|p: &mut Self| {
                        let mn = p.name("a mnemonic")?;
                        let v = p.int("a type value")?;
                        Some((mn, v))
                    })(self);
                    match item {
                        Some(tv) => {
                            blk.type_values.push(tv);
                            self.end_line();
                        }
                        None => self.sync_line(),
                    }
                }
                "max_latency" => {
                    let v = self.int("a cycle count");
                    self.set_once(&mut blk.max_latency, v, "max_latency", fspan);
                    self.end_line();
                }
                "outputs" => {
                    blk.outputs.extend(self.name_list());
                    self.end_line();
                }
                other => {
                    self.error(
                        fspan,
                        format!("unknown harness field `{other}`"),
                        "expected a harness hook, `isa`, `type_field`, `type_value`, `max_latency`, or `outputs`",
                    );
                    self.sync_line();
                }
            }
        }
        Some(blk)
    }
}
