//! Span-carrying surface AST for the netlist language.
//!
//! One [`Item`] is (at most) one statement of the source file; the
//! declaration items other than `mem` lower to exactly one IR node each,
//! which is what makes canonical emission a byte-identical round trip.
//! `mem`/`read`/`write` are surface sugar that expand to register words
//! plus mux chains during lowering (the emitter never produces them).

use crate::diag::Span;
use crate::ir::{BinOp, UnOp};

/// A value paired with the source span it was written at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned<T> {
    /// The parsed value.
    pub node: T,
    /// Where it appeared.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `node` with `span`.
    pub fn new(node: T, span: Span) -> Self {
        Self { node, span }
    }
}

/// An identifier occurrence.
pub type Name = Spanned<String>;

/// A parsed `module` with its optional metadata blocks.
#[derive(Clone, Debug)]
pub struct Module {
    /// Module name (becomes the design name).
    pub name: Name,
    /// Declaration/connection statements, in source order.
    pub items: Vec<Item>,
    /// The `annotations { ... }` block, at most one.
    pub annotations: Option<AnnBlock>,
    /// The `harness { ... }` block, at most one.
    pub harness: Option<HarnessBlock>,
}

/// One module-level statement.
#[derive(Clone, Debug)]
pub enum Item {
    /// `input <name> : w<N>`
    Input {
        /// Declared name.
        name: Name,
        /// Declared width.
        width: Spanned<u64>,
    },
    /// `reg <name> : w<N> = <init>`
    Reg {
        /// Declared name.
        name: Name,
        /// Declared width.
        width: Spanned<u64>,
        /// Reset value.
        init: Spanned<u64>,
    },
    /// `const <name> : w<N> = <value>`
    Const {
        /// Declared name.
        name: Name,
        /// Declared width.
        width: Spanned<u64>,
        /// Constant value.
        value: Spanned<u64>,
    },
    /// `wire <name> [: w<N>] = <op> <operands>`
    Wire {
        /// Declared name.
        name: Name,
        /// Optional declared width (inferred from the operator otherwise).
        width: Option<Spanned<u64>>,
        /// The defining operator application.
        op: WireOp,
    },
    /// `mem <name>[<len>] : w<N> [= <init>]` — sugar for `len` register
    /// words named `name[0]`..`name[len-1]`.
    Mem {
        /// Array name (without the bracket suffix).
        name: Name,
        /// Word count (must be a power of two).
        len: Spanned<u64>,
        /// Word width.
        width: Spanned<u64>,
        /// Per-word reset value (0 when omitted).
        init: Option<Spanned<u64>>,
    },
    /// `write <mem> <en> <addr> <data>` — the array's single write port.
    Write {
        /// Target memory.
        mem: Name,
        /// 1-bit write enable.
        en: Name,
        /// Word address.
        addr: Name,
        /// Write data.
        data: Name,
    },
    /// `next <reg> <- <src>`
    Next {
        /// The register being connected.
        reg: Name,
        /// Its next-state signal.
        src: Name,
    },
}

impl Item {
    /// The declared name, for declaration-bearing items.
    pub fn decl_name(&self) -> Option<&Name> {
        match self {
            Item::Input { name, .. }
            | Item::Reg { name, .. }
            | Item::Const { name, .. }
            | Item::Wire { name, .. }
            | Item::Mem { name, .. } => Some(name),
            Item::Write { .. } | Item::Next { .. } => None,
        }
    }
}

/// The right-hand side of a `wire` statement.
#[derive(Clone, Debug)]
pub enum WireOp {
    /// `not|neg|redor|redand|redxor <a>`
    Unary {
        /// The operator.
        op: UnOp,
        /// Span of the operator token.
        op_span: Span,
        /// Operand.
        a: Name,
    },
    /// `and|or|xor|add|sub|mul|eq|ne|ult|ule|shl|shr <a> <b>`
    Binary {
        /// The operator.
        op: BinOp,
        /// Span of the operator token.
        op_span: Span,
        /// Left operand.
        a: Name,
        /// Right operand.
        b: Name,
    },
    /// `mux <sel> <a> <b>`
    Mux {
        /// 1-bit select.
        sel: Name,
        /// Value when `sel` is 1.
        a: Name,
        /// Value when `sel` is 0.
        b: Name,
    },
    /// `slice <src> <hi> <lo>`
    Slice {
        /// Source signal.
        src: Name,
        /// High bit (inclusive).
        hi: Spanned<u64>,
        /// Low bit (inclusive).
        lo: Spanned<u64>,
    },
    /// `concat <hi> <lo>`
    Concat {
        /// Upper-bits operand.
        hi: Name,
        /// Lower-bits operand.
        lo: Name,
    },
    /// `read <mem> <addr>` — combinational word read (mux chain).
    Read {
        /// Source memory.
        mem: Name,
        /// Word address.
        addr: Name,
    },
}

impl WireOp {
    /// Every signal operand of the right-hand side, in source order.
    pub fn operands(&self) -> Vec<&Name> {
        match self {
            WireOp::Unary { a, .. } => vec![a],
            WireOp::Binary { a, b, .. } => vec![a, b],
            WireOp::Mux { sel, a, b } => vec![sel, a, b],
            WireOp::Slice { src, .. } => vec![src],
            WireOp::Concat { hi, lo } => vec![hi, lo],
            WireOp::Read { addr, .. } => vec![addr],
        }
    }
}

/// The `annotations { ... }` block (the §V-A metadata).
#[derive(Clone, Debug, Default)]
pub struct AnnBlock {
    /// Span of the `annotations` keyword (anchor for missing-field
    /// diagnostics).
    pub span: Span,
    /// `ifr <name>`
    pub ifr: Option<Name>,
    /// `fetch_valid <name>`
    pub fetch_valid: Option<Name>,
    /// `fetch_pc <name>`
    pub fetch_pc: Option<Name>,
    /// `commit <name>`
    pub commit: Option<Name>,
    /// `commit_pc <name>`
    pub commit_pc: Option<Name>,
    /// `operands <name>...`
    pub operands: Vec<Name>,
    /// `arf <name>...`
    pub arf: Vec<Name>,
    /// `amem <name>...`
    pub amem: Vec<Name>,
    /// `persistent <name>...`
    pub persistent: Vec<Name>,
    /// `added_loc <N>`
    pub added_loc: Option<Spanned<u64>>,
    /// `ufsm <name> [added] { ... }` blocks, in source order.
    pub ufsms: Vec<UfsmBlock>,
}

/// One `ufsm` sub-block.
#[derive(Clone, Debug)]
pub struct UfsmBlock {
    /// µFSM name.
    pub name: Name,
    /// Whether the PCR was added for verification.
    pub added: bool,
    /// `pcr <name>`
    pub pcr: Option<Name>,
    /// `vars <name>...`
    pub vars: Vec<Name>,
    /// `idle (<v>, ...)` lines.
    pub idle: Vec<Spanned<Vec<u64>>>,
    /// `state <name> = (<v>, ...)` lines.
    pub states: Vec<(Name, Spanned<Vec<u64>>)>,
}

/// The `harness { ... }` block (hook signals + ISA metadata).
#[derive(Clone, Debug, Default)]
pub struct HarnessBlock {
    /// Span of the `harness` keyword.
    pub span: Span,
    /// `fetch_instr_input <name>`
    pub fetch_instr_input: Option<Name>,
    /// `fetch_valid_input <name>`
    pub fetch_valid_input: Option<Name>,
    /// `fetch_fire <name>`
    pub fetch_fire: Option<Name>,
    /// `issue_fire <name>`
    pub issue_fire: Option<Name>,
    /// `issue_pc <name>`
    pub issue_pc: Option<Name>,
    /// `issue_valid <name>`
    pub issue_valid: Option<Name>,
    /// `rs_fields <rs1> <rs2>`
    pub rs_fields: Option<(Name, Name)>,
    /// `pc <name>`
    pub pc: Option<Name>,
    /// `isa <mnemonic>...`
    pub isa: Vec<Name>,
    /// `type_field <hi> <lo>`
    pub type_field: Option<(Spanned<u64>, Spanned<u64>)>,
    /// `type_value <mnemonic> <N>` lines.
    pub type_values: Vec<(Name, Spanned<u64>)>,
    /// `max_latency <N>`
    pub max_latency: Option<Spanned<u64>>,
    /// `outputs <name>...`
    pub outputs: Vec<Name>,
}
