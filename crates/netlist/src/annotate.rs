//! Design metadata (user annotations) required by RTL2MµPATH and SynthLC.
//!
//! Mirrors §V-A of the paper and Table II: the designer identifies the
//! instruction fetch register (IFR), the µFSMs (each a ⟨PCR, state-vars⟩
//! tuple plus its idle states), the commit signal, the operand registers, and
//! the architectural register file / main memory arrays.

use crate::ir::{Netlist, SignalId};
use std::fmt;

/// A concrete valuation of a µFSM's state variables (one `u64` per var, in
/// the same order as [`UFsm::vars`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FsmState(pub Vec<u64>);

impl fmt::Display for FsmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// A named µFSM state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NamedState {
    /// Human-readable label used as a µHB row label (e.g. `mulU`, `ldStall`).
    pub name: String,
    /// The state-variable valuation.
    pub state: FsmState,
}

/// A micro-op FSM: the ⟨iir, vars⟩ tuple of §III-C, with the IIR constrained
/// to be a program-counter register (PCR) as §V-A requires.
#[derive(Clone, Debug)]
pub struct UFsm {
    /// Name of the µFSM (e.g. `mul_unit`).
    pub name: String,
    /// The PCR: holds the PC of the in-flight instruction occupying this
    /// µFSM.
    pub pcr: SignalId,
    /// State-variable registers.
    pub vars: Vec<SignalId>,
    /// Idle states: valuations in which no instruction occupies the µFSM.
    pub idle: Vec<FsmState>,
    /// Declared (named) non-idle states. When `None`, feasible states are
    /// enumerated as the cartesian product of the vars' value ranges
    /// (§V-B1), minus idle states, with synthesized names.
    pub states: Option<Vec<NamedState>>,
    /// Whether the PCR was *added* for verification (Table II distinguishes
    /// identified vs added PCRs; added ones exist only in the verification
    /// environment).
    pub pcr_added: bool,
}

impl UFsm {
    /// Enumerates all candidate non-idle states: declared states when
    /// provided, otherwise the full cartesian product of the state vars'
    /// ranges minus the idle states.
    ///
    /// # Panics
    /// Panics if the product enumeration would exceed 4096 states; designs
    /// with large counters must declare their states explicitly.
    pub fn candidate_states(&self, nl: &Netlist) -> Vec<NamedState> {
        if let Some(states) = &self.states {
            return states.clone();
        }
        let widths: Vec<u8> = self.vars.iter().map(|&v| nl.width(v)).collect();
        let total: u128 = widths.iter().map(|&w| 1u128 << w).product();
        assert!(
            total <= 4096,
            "µFSM {} state space too large to enumerate; declare states",
            self.name
        );
        let mut out = Vec::new();
        let mut cur = vec![0u64; widths.len()];
        loop {
            let st = FsmState(cur.clone());
            if !self.idle.contains(&st) {
                let name = format!(
                    "{}{}",
                    self.name,
                    cur.iter().map(|v| format!("_{v}")).collect::<String>()
                );
                out.push(NamedState { name, state: st });
            }
            // increment multi-radix counter
            let mut i = 0;
            loop {
                if i == widths.len() {
                    return out;
                }
                cur[i] += 1;
                if cur[i] < (1u64 << widths[i]) {
                    break;
                }
                cur[i] = 0;
                i += 1;
            }
        }
    }
}

/// The full annotation bundle for a design under verification.
#[derive(Clone, Debug)]
pub struct Annotations {
    /// Instruction fetch register: holds fetched encodings (§V-A).
    pub ifr: SignalId,
    /// 1-bit signal: the IFR holds a valid instruction this cycle.
    pub fetch_valid: SignalId,
    /// PC of the instruction currently in the IFR.
    pub fetch_pc: SignalId,
    /// 1-bit commit strobe.
    pub commit: SignalId,
    /// PC of the committing instruction (valid when `commit` is high).
    pub commit_pc: SignalId,
    /// Operand registers at the issue/register-read stage (taint-introduction
    /// points for SynthLC). Typically `[rs1_value_reg, rs2_value_reg]`.
    pub operand_regs: Vec<SignalId>,
    /// Architectural register file words (taint-blocking boundary).
    pub arf: Vec<SignalId>,
    /// Architectural main memory words (taint-blocking boundary).
    pub amem: Vec<SignalId>,
    /// All µFSMs of the design.
    pub ufsms: Vec<UFsm>,
    /// Microarchitectural state that outlives individual instructions
    /// (cache tags/valid bits/data banks, predictor tables, ...): the
    /// medium of *static* channels. Assumption 3's taint flush spares
    /// these registers (and the architectural AMEM), so only influence
    /// through persistent state survives a transmitter's dematerialisation.
    pub persistent: Vec<SignalId>,
    /// Lines of "SystemVerilog" (here: DSL statements) added purely for
    /// verification, for the Table II analogue.
    pub added_loc: usize,
}

impl Annotations {
    /// Count of PCRs that had to be added for verification (Table II).
    pub fn added_pcrs(&self) -> usize {
        self.ufsms.iter().filter(|f| f.pcr_added).count()
    }

    /// Count of PCRs already present in the design.
    pub fn native_pcrs(&self) -> usize {
        self.ufsms.iter().filter(|f| !f.pcr_added).count()
    }

    /// Total µFSM state-variable registers.
    pub fn fsm_var_regs(&self) -> usize {
        self.ufsms.iter().map(|f| f.vars.len()).sum()
    }

    /// Looks up a µFSM by name.
    pub fn ufsm(&self, name: &str) -> Option<(usize, &UFsm)> {
        self.ufsms.iter().enumerate().find(|(_, f)| f.name == name)
    }

    /// Validates that every referenced signal exists and widths are sane
    /// (1-bit valid/commit strobes, PCR widths match the fetch PC).
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem.
    pub fn validate(&self, nl: &Netlist) -> Result<(), String> {
        let chk = |s: SignalId, what: &str| -> Result<(), String> {
            if s.index() >= nl.len() {
                Err(format!("{what}: signal {s} out of range"))
            } else {
                Ok(())
            }
        };
        chk(self.ifr, "ifr")?;
        chk(self.fetch_valid, "fetch_valid")?;
        chk(self.fetch_pc, "fetch_pc")?;
        chk(self.commit, "commit")?;
        chk(self.commit_pc, "commit_pc")?;
        if nl.width(self.fetch_valid) != 1 {
            return Err("fetch_valid must be 1 bit".into());
        }
        if nl.width(self.commit) != 1 {
            return Err("commit must be 1 bit".into());
        }
        let pcw = nl.width(self.fetch_pc);
        for f in &self.ufsms {
            chk(f.pcr, &format!("ufsm {} pcr", f.name))?;
            if nl.width(f.pcr) != pcw {
                return Err(format!(
                    "ufsm {}: pcr width {} != pc width {pcw}",
                    f.name,
                    nl.width(f.pcr)
                ));
            }
            if f.vars.is_empty() {
                return Err(format!("ufsm {} has no state vars", f.name));
            }
            for &v in &f.vars {
                chk(v, &format!("ufsm {} var", f.name))?;
                if !nl.node(v).op.is_reg() {
                    return Err(format!(
                        "ufsm {}: var {} is not a register",
                        f.name,
                        nl.display_name(v)
                    ));
                }
            }
            if !nl.node(f.pcr).op.is_reg() {
                return Err(format!("ufsm {}: pcr is not a register", f.name));
            }
            for st in &f.idle {
                if st.0.len() != f.vars.len() {
                    return Err(format!("ufsm {}: idle state arity mismatch", f.name));
                }
            }
            if let Some(states) = &f.states {
                for s in states {
                    if s.state.0.len() != f.vars.len() {
                        return Err(format!("ufsm {}: state {} arity mismatch", f.name, s.name));
                    }
                }
            }
        }
        for &r in self
            .operand_regs
            .iter()
            .chain(&self.arf)
            .chain(&self.amem)
            .chain(&self.persistent)
        {
            chk(r, "operand/arf/amem/persistent reg")?;
        }
        Ok(())
    }

    /// Renders a Table II-style annotation summary.
    pub fn table_summary(&self, design: &str) -> String {
        format!(
            "{design}: IFR 1 reg | IIRs(PCRs) {} ({}) regs | uFSM vars {} regs | \
             added PCRs {} regs | commit 1 wire | operand {} regs | ARF {} words | \
             AMEM {} words | added DSL LoC {}",
            self.ufsms.len(),
            self.native_pcrs(),
            self.fsm_var_regs(),
            self.added_pcrs(),
            self.operand_regs.len(),
            self.arf.len(),
            self.amem.len(),
            self.added_loc,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;

    fn tiny_annotated() -> (Netlist, Annotations) {
        let mut b = Builder::new();
        let instr = b.reg("ifr", 8, 0);
        let valid = b.reg("fetch_valid", 1, 0);
        let pc = b.reg("pc", 4, 0);
        let st = b.reg("u_state", 2, 0);
        let upc = b.reg("u_pc", 4, 0);
        let commit = b.reg("commit", 1, 0);
        let cpc = b.reg("commit_pc", 4, 0);
        for r in [instr, valid, pc, st, upc, commit, cpc] {
            let z = b.constant(0, r.width);
            b.set_next(r, z).unwrap();
        }
        let nl = b.finish().unwrap();
        let f = |n: &str| nl.find(n).unwrap();
        let ann = Annotations {
            ifr: f("ifr"),
            fetch_valid: f("fetch_valid"),
            fetch_pc: f("pc"),
            commit: f("commit"),
            commit_pc: f("commit_pc"),
            operand_regs: vec![],
            arf: vec![],
            amem: vec![],
            persistent: vec![],
            ufsms: vec![UFsm {
                name: "u".into(),
                pcr: f("u_pc"),
                vars: vec![f("u_state")],
                idle: vec![FsmState(vec![0])],
                states: None,
                pcr_added: true,
            }],
            added_loc: 2,
        };
        (nl, ann)
    }

    #[test]
    fn validate_ok() {
        let (nl, ann) = tiny_annotated();
        ann.validate(&nl).unwrap();
        assert_eq!(ann.added_pcrs(), 1);
    }

    #[test]
    fn candidate_state_enumeration_skips_idle() {
        let (nl, ann) = tiny_annotated();
        let states = ann.ufsms[0].candidate_states(&nl);
        // 2-bit var => 4 states minus 1 idle = 3 candidates.
        assert_eq!(states.len(), 3);
        assert!(states.iter().all(|s| s.state != FsmState(vec![0])));
    }

    #[test]
    fn declared_states_take_precedence() {
        let (nl, mut ann) = tiny_annotated();
        ann.ufsms[0].states = Some(vec![NamedState {
            name: "busy".into(),
            state: FsmState(vec![1]),
        }]);
        let states = ann.ufsms[0].candidate_states(&nl);
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].name, "busy");
    }

    #[test]
    fn validate_rejects_wrong_widths() {
        let (nl, mut ann) = tiny_annotated();
        ann.commit = ann.ifr; // 8-bit, not a valid strobe
        assert!(ann.validate(&nl).is_err());
    }
}
