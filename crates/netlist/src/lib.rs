//! Word-level synchronous netlist IR: the RTL substrate of the RTL2MµPATH +
//! SynthLC reproduction.
//!
//! This crate plays the role that SystemVerilog sources plus the
//! Verific/Yosys frontends play in the paper: designs under verification are
//! expressed as flat netlists of word-level cells and registers, constructed
//! either through the [`Builder`] DSL or parsed from the textual format in
//! [`text`]. Downstream crates consume the IR:
//!
//! * `sim` — cycle-accurate interpretation,
//! * `mc` — bit-blasting and bounded/inductive model checking,
//! * `ift` — cell-level information-flow-tracking instrumentation,
//! * `mupath`/`synthlc` — the paper's synthesis procedures, driven by the
//!   [`annotate`] metadata (µFSMs, IFR, commit, operand registers).
//!
//! # Examples
//!
//! ```
//! use netlist::{Builder, analysis};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = Builder::new();
//! let x = b.input("x", 8);
//! let acc = b.reg("acc", 8, 0);
//! let sum = b.add(acc, x);
//! b.set_next(acc, sum)?;
//! let nl = b.finish()?;
//! assert_eq!(analysis::stats(&nl).flop_bits, 8);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod annotate;
mod build;
pub mod diag;
mod ir;
pub mod lint;
pub mod text;

pub use analysis::CycleError;
pub use build::{Builder, MemArray, Wire};
pub use diag::{Diagnostic, Report, Severity, SourceFile, Span};
pub use ir::{mask, BinOp, Netlist, NetlistError, Node, Op, SignalId, UnOp};
