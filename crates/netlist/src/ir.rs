//! Core intermediate representation: a word-level, synchronous netlist.
//!
//! A [`Netlist`] is a flat list of [`Node`]s. Every node defines exactly one
//! signal (a bit-vector of up to 64 bits). Sequential state is modelled by
//! [`Op::Reg`] nodes: the node's value is the register's *current* value, and
//! the register's *next* value is another (combinational) signal wired up via
//! [`Netlist::set_reg_next`]. All registers share one implicit clock and are
//! initialised to a constant on reset, mirroring the paper's "valid reset
//! state" requirement (§V-B).

use std::collections::HashMap;
use std::fmt;

/// Identifier of a signal (and of the node that defines it).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Index into the netlist's node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Two-operand combinational operators.
///
/// Unless noted otherwise both operands must have equal widths and the result
/// has that width. Comparison operators produce a 1-bit result. `Shl`/`Shr`
/// take an arbitrary-width shift amount and produce the left operand's width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Truncating addition.
    Add,
    /// Truncating (wrapping) subtraction.
    Sub,
    /// Truncating multiplication.
    Mul,
    /// Equality; 1-bit result.
    Eq,
    /// Inequality; 1-bit result.
    Ne,
    /// Unsigned less-than; 1-bit result.
    Ult,
    /// Unsigned less-or-equal; 1-bit result.
    Ule,
    /// Logical shift left by a variable amount.
    Shl,
    /// Logical shift right by a variable amount.
    Shr,
}

impl BinOp {
    /// Whether the result of this operator is a single bit regardless of the
    /// operand widths.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Ult | BinOp::Ule)
    }

    /// Evaluate the operator on two operand values already masked to `w` bits.
    pub fn eval(self, a: u64, b: u64, w: u8) -> u64 {
        let m = mask(w);
        match self {
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Add => a.wrapping_add(b) & m,
            BinOp::Sub => a.wrapping_sub(b) & m,
            BinOp::Mul => a.wrapping_mul(b) & m,
            BinOp::Eq => (a == b) as u64,
            BinOp::Ne => (a != b) as u64,
            BinOp::Ult => (a < b) as u64,
            BinOp::Ule => (a <= b) as u64,
            BinOp::Shl => {
                if b >= w as u64 {
                    0
                } else {
                    (a << b) & m
                }
            }
            BinOp::Shr => {
                if b >= w as u64 {
                    0
                } else {
                    a >> b
                }
            }
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Ult => "ult",
            BinOp::Ule => "ule",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// One-operand combinational operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Bitwise NOT; same width.
    Not,
    /// Two's-complement negation; same width.
    Neg,
    /// OR-reduction; 1-bit result.
    RedOr,
    /// AND-reduction; 1-bit result.
    RedAnd,
    /// XOR-reduction (parity); 1-bit result.
    RedXor,
}

impl UnOp {
    /// Evaluate the operator on an operand value masked to `w` bits.
    pub fn eval(self, a: u64, w: u8) -> u64 {
        let m = mask(w);
        match self {
            UnOp::Not => !a & m,
            UnOp::Neg => a.wrapping_neg() & m,
            UnOp::RedOr => (a != 0) as u64,
            UnOp::RedAnd => (a == m) as u64,
            UnOp::RedXor => (a.count_ones() & 1) as u64,
        }
    }

    /// Whether the result is a single bit.
    pub fn is_reduction(self) -> bool {
        matches!(self, UnOp::RedOr | UnOp::RedAnd | UnOp::RedXor)
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::RedOr => "redor",
            UnOp::RedAnd => "redand",
            UnOp::RedXor => "redxor",
        };
        f.write_str(s)
    }
}

/// The defining operation of a node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Op {
    /// A primary input: free (checker-chosen) every cycle.
    Input,
    /// A constant value.
    Const(u64),
    /// Unary combinational operator.
    Unary(UnOp, SignalId),
    /// Binary combinational operator.
    Binary(BinOp, SignalId, SignalId),
    /// 2:1 multiplexer: `sel ? a : b` (`sel` must be 1 bit wide).
    Mux {
        /// 1-bit select.
        sel: SignalId,
        /// Value when `sel` is 1.
        a: SignalId,
        /// Value when `sel` is 0.
        b: SignalId,
    },
    /// Bit slice `[hi:lo]` (inclusive); result width `hi - lo + 1`.
    Slice {
        /// Source signal.
        src: SignalId,
        /// High bit index (inclusive).
        hi: u8,
        /// Low bit index (inclusive).
        lo: u8,
    },
    /// Concatenation: `hi` occupies the upper bits, `lo` the lower bits.
    Concat {
        /// Upper-bits operand.
        hi: SignalId,
        /// Lower-bits operand.
        lo: SignalId,
    },
    /// A D flip-flop register. `next` is wired after construction; on reset
    /// the register holds `init`.
    Reg {
        /// Signal sampled at every clock edge. `None` until wired.
        next: Option<SignalId>,
        /// Reset value.
        init: u64,
    },
}

impl Op {
    /// Whether the node is sequential (a register).
    pub fn is_reg(&self) -> bool {
        matches!(self, Op::Reg { .. })
    }

    /// Whether the node is a primary input.
    pub fn is_input(&self) -> bool {
        matches!(self, Op::Input)
    }

    /// Combinational fan-in signals of this node. Registers have *no*
    /// combinational fan-in (their `next` input is sequential).
    pub fn comb_fanin(&self) -> Vec<SignalId> {
        match self {
            Op::Input | Op::Const(_) | Op::Reg { .. } => vec![],
            Op::Unary(_, a) => vec![*a],
            Op::Binary(_, a, b) => vec![*a, *b],
            Op::Mux { sel, a, b } => vec![*sel, *a, *b],
            Op::Slice { src, .. } => vec![*src],
            Op::Concat { hi, lo } => vec![*hi, *lo],
        }
    }
}

/// A node: one signal definition.
#[derive(Clone, Debug)]
pub struct Node {
    /// Optional human-readable name (unique when present).
    pub name: Option<String>,
    /// Bit width, 1..=64.
    pub width: u8,
    /// Defining operation.
    pub op: Op,
}

/// Errors produced when constructing or validating a netlist.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum NetlistError {
    /// A signal name was used twice.
    DuplicateName(String),
    /// A width of 0 or more than 64 bits was requested.
    BadWidth(u8),
    /// Operand widths do not satisfy the operator's width rule.
    WidthMismatch {
        /// Description of the offending construct.
        context: String,
    },
    /// A slice's indices are out of range or inverted.
    BadSlice {
        /// Source width.
        src_width: u8,
        /// Requested high index.
        hi: u8,
        /// Requested low index.
        lo: u8,
    },
    /// A register was finalized without a `next` connection.
    UnconnectedReg(String),
    /// A register's `next` was wired twice.
    RegAlreadyConnected(String),
    /// `set_reg_next` was applied to a non-register node.
    NotAReg(String),
    /// The combinational logic contains a cycle through the named signal.
    CombCycle(String),
    /// A referenced signal id is out of range.
    BadSignal(SignalId),
    /// A constant does not fit in the declared width.
    ConstTooWide {
        /// The constant value.
        value: u64,
        /// The declared width.
        width: u8,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate signal name `{n}`"),
            NetlistError::BadWidth(w) => write!(f, "invalid width {w} (must be 1..=64)"),
            NetlistError::WidthMismatch { context } => write!(f, "width mismatch in {context}"),
            NetlistError::BadSlice { src_width, hi, lo } => {
                write!(f, "invalid slice [{hi}:{lo}] of {src_width}-bit signal")
            }
            NetlistError::UnconnectedReg(n) => write!(f, "register `{n}` has no next connection"),
            NetlistError::RegAlreadyConnected(n) => {
                write!(f, "register `{n}` already has a next connection")
            }
            NetlistError::NotAReg(n) => write!(f, "signal `{n}` is not a register"),
            NetlistError::CombCycle(n) => {
                write!(f, "combinational cycle through signal `{n}`")
            }
            NetlistError::BadSignal(s) => write!(f, "signal id {s} out of range"),
            NetlistError::ConstTooWide { value, width } => {
                write!(f, "constant {value:#x} does not fit in {width} bits")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Bit mask for a `w`-bit value.
#[inline]
pub fn mask(w: u8) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// A flat, validated or under-construction synchronous netlist.
///
/// Construct through [`crate::Builder`]; most consumers receive a finished,
/// validated netlist and only read from it.
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    pub(crate) nodes: Vec<Node>,
    pub(crate) by_name: HashMap<String, SignalId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes (signals).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the netlist has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node defining `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: SignalId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Width of signal `id`.
    pub fn width(&self, id: SignalId) -> u8 {
        self.nodes[id.index()].width
    }

    /// Name of signal `id`, if it has one.
    pub fn name(&self, id: SignalId) -> Option<&str> {
        self.nodes[id.index()].name.as_deref()
    }

    /// A printable name: the declared name or `s<N>`.
    pub fn display_name(&self, id: SignalId) -> String {
        match self.name(id) {
            Some(n) => n.to_owned(),
            None => format!("{id}"),
        }
    }

    /// Looks up a signal by name.
    pub fn find(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Iterator over `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SignalId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (SignalId(i as u32), n))
    }

    /// All register signals, in id order.
    pub fn regs(&self) -> Vec<SignalId> {
        self.iter()
            .filter(|(_, n)| n.op.is_reg())
            .map(|(i, _)| i)
            .collect()
    }

    /// All primary-input signals, in id order.
    pub fn inputs(&self) -> Vec<SignalId> {
        self.iter()
            .filter(|(_, n)| n.op.is_input())
            .map(|(i, _)| i)
            .collect()
    }

    /// The `next` signal of register `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a connected register.
    pub fn reg_next(&self, id: SignalId) -> SignalId {
        match &self.nodes[id.index()].op {
            Op::Reg { next: Some(n), .. } => *n,
            _ => panic!("{} is not a connected register", self.display_name(id)),
        }
    }

    /// The reset value of register `id`.
    ///
    /// # Panics
    /// Panics if `id` is not a register.
    pub fn reg_init(&self, id: SignalId) -> u64 {
        match &self.nodes[id.index()].op {
            Op::Reg { init, .. } => *init,
            _ => panic!("{} is not a register", self.display_name(id)),
        }
    }

    pub(crate) fn push(&mut self, node: Node) -> Result<SignalId, NetlistError> {
        if node.width == 0 || node.width > 64 {
            return Err(NetlistError::BadWidth(node.width));
        }
        let id = SignalId(self.nodes.len() as u32);
        if let Some(name) = &node.name {
            if self.by_name.contains_key(name) {
                return Err(NetlistError::DuplicateName(name.clone()));
            }
            self.by_name.insert(name.clone(), id);
        }
        self.nodes.push(node);
        Ok(id)
    }

    /// Wires register `reg`'s next-state input to `next`. Shared by the
    /// [`crate::Builder`] DSL and the textual frontend's lowering pass.
    pub(crate) fn set_reg_next(
        &mut self,
        reg: SignalId,
        next: SignalId,
    ) -> Result<(), NetlistError> {
        if self.width(reg) != self.width(next) {
            return Err(NetlistError::WidthMismatch {
                context: format!("set_next of {}", self.display_name(reg)),
            });
        }
        let name = self.display_name(reg);
        match &mut self.nodes[reg.index()].op {
            Op::Reg { next: slot, .. } => {
                if slot.is_some() {
                    return Err(NetlistError::RegAlreadyConnected(name));
                }
                *slot = Some(next);
                Ok(())
            }
            _ => Err(NetlistError::NotAReg(name)),
        }
    }

    /// Total register state bits (a rough design-size metric used by the
    /// benchmark harness, mirroring the elaboration statistics in §VI).
    pub fn state_bits(&self) -> usize {
        self.iter()
            .filter(|(_, n)| n.op.is_reg())
            .map(|(_, n)| n.width as usize)
            .sum()
    }

    /// Structural equality check: same node count and identical
    /// `(name, width, op)` per node id. Used by the text round-trip oracle
    /// to prove emit→parse→lower is the identity on the IR.
    ///
    /// # Errors
    /// Returns a description of the first difference found.
    pub fn same_structure(&self, other: &Netlist) -> Result<(), String> {
        if self.len() != other.len() {
            return Err(format!(
                "node counts differ: {} vs {}",
                self.len(),
                other.len()
            ));
        }
        for (id, a) in self.iter() {
            let b = other.node(id);
            if a.name != b.name || a.width != b.width || a.op != b.op {
                return Err(format!(
                    "node {} differs: {:?} vs {:?}",
                    self.display_name(id),
                    a,
                    b
                ));
            }
        }
        Ok(())
    }

    /// Validates the netlist: every referenced signal exists, widths obey the
    /// operator rules, every register is connected, and the combinational
    /// logic is acyclic.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.nodes.len();
        let check = |s: SignalId| -> Result<&Node, NetlistError> {
            self.nodes.get(s.index()).ok_or(NetlistError::BadSignal(s))
        };
        for (id, node) in self.iter() {
            let ctx = || self.display_name(id);
            match &node.op {
                Op::Input => {}
                Op::Const(v) => {
                    if *v & !mask(node.width) != 0 {
                        return Err(NetlistError::ConstTooWide {
                            value: *v,
                            width: node.width,
                        });
                    }
                }
                Op::Unary(op, a) => {
                    let an = check(*a)?;
                    let expect = if op.is_reduction() { 1 } else { an.width };
                    if node.width != expect {
                        return Err(NetlistError::WidthMismatch { context: ctx() });
                    }
                }
                Op::Binary(op, a, b) => {
                    let (an, bn) = (check(*a)?, check(*b)?);
                    match op {
                        BinOp::Shl | BinOp::Shr => {
                            if node.width != an.width {
                                return Err(NetlistError::WidthMismatch { context: ctx() });
                            }
                            let _ = bn;
                        }
                        _ => {
                            if an.width != bn.width {
                                return Err(NetlistError::WidthMismatch { context: ctx() });
                            }
                            let expect = if op.is_comparison() { 1 } else { an.width };
                            if node.width != expect {
                                return Err(NetlistError::WidthMismatch { context: ctx() });
                            }
                        }
                    }
                }
                Op::Mux { sel, a, b } => {
                    let (sn, an, bn) = (check(*sel)?, check(*a)?, check(*b)?);
                    if sn.width != 1 || an.width != bn.width || node.width != an.width {
                        return Err(NetlistError::WidthMismatch { context: ctx() });
                    }
                }
                Op::Slice { src, hi, lo } => {
                    let sn = check(*src)?;
                    if hi < lo || *hi >= sn.width {
                        return Err(NetlistError::BadSlice {
                            src_width: sn.width,
                            hi: *hi,
                            lo: *lo,
                        });
                    }
                    if node.width != hi - lo + 1 {
                        return Err(NetlistError::WidthMismatch { context: ctx() });
                    }
                }
                Op::Concat { hi, lo } => {
                    let (hn, ln) = (check(*hi)?, check(*lo)?);
                    if node.width as u16 != hn.width as u16 + ln.width as u16 {
                        return Err(NetlistError::WidthMismatch { context: ctx() });
                    }
                }
                Op::Reg { next, init } => {
                    match next {
                        None => return Err(NetlistError::UnconnectedReg(ctx())),
                        Some(nx) => {
                            let nn = check(*nx)?;
                            if nn.width != node.width {
                                return Err(NetlistError::WidthMismatch { context: ctx() });
                            }
                        }
                    }
                    if *init & !mask(node.width) != 0 {
                        return Err(NetlistError::ConstTooWide {
                            value: *init,
                            width: node.width,
                        });
                    }
                }
            }
        }
        // Combinational cycle detection via iterative DFS over comb edges.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; n];
        for start in 0..n {
            if marks[start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            marks[start] = Mark::Grey;
            while let Some(&mut (node_ix, ref mut child_ix)) = stack.last_mut() {
                let fanin = self.nodes[node_ix].op.comb_fanin();
                if *child_ix < fanin.len() {
                    let child = fanin[*child_ix].index();
                    *child_ix += 1;
                    match marks[child] {
                        Mark::White => {
                            marks[child] = Mark::Grey;
                            stack.push((child, 0));
                        }
                        Mark::Grey => {
                            return Err(NetlistError::CombCycle(
                                self.display_name(SignalId(child as u32)),
                            ));
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks[node_ix] = Mark::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_masks_results() {
        assert_eq!(BinOp::Add.eval(0xff, 1, 8), 0);
        assert_eq!(BinOp::Sub.eval(0, 1, 4), 0xf);
        assert_eq!(BinOp::Mul.eval(16, 16, 8), 0);
        assert_eq!(BinOp::Shl.eval(1, 8, 8), 0);
        assert_eq!(BinOp::Shl.eval(1, 3, 8), 8);
        assert_eq!(BinOp::Shr.eval(0x80, 7, 8), 1);
    }

    #[test]
    fn unop_eval() {
        assert_eq!(UnOp::Not.eval(0b1010, 4), 0b0101);
        assert_eq!(UnOp::Neg.eval(1, 8), 0xff);
        assert_eq!(UnOp::RedOr.eval(0, 8), 0);
        assert_eq!(UnOp::RedOr.eval(4, 8), 1);
        assert_eq!(UnOp::RedAnd.eval(0xff, 8), 1);
        assert_eq!(UnOp::RedAnd.eval(0xfe, 8), 0);
        assert_eq!(UnOp::RedXor.eval(0b111, 8), 1);
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(64), u64::MAX);
    }
}
