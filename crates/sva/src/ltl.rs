//! A bounded linear-temporal-logic layer (§III-C: "linear temporal logic
//! (LTL) property generation (from property templates)").
//!
//! Two semantics are provided and kept in agreement by property tests:
//!
//! * [`eval`] — a reference interpreter over finite traces (bounded LTL
//!   with the standard finite-trace weak/strong next distinction),
//! * [`compile`] — compilation into a netlist monitor whose output at cycle
//!   `t` equals the formula's truth at `t` *for past/bounded-future
//!   fragments*; unbounded futures (`F`, `G`, `U`) are compiled in their
//!   bounded forms `F≤k`, `G≤k`, `U≤k`.
//!
//! The model checker consumes only the compiled monitors; the interpreter
//! exists so monitor compilation itself is tested against an executable
//! specification.

use crate::delay;
use netlist::{Builder, Wire};

/// A bounded-LTL formula over named 1-bit signals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Ltl {
    /// The signal with this name.
    Atom(String),
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Negation.
    Not(Box<Ltl>),
    /// Conjunction.
    And(Box<Ltl>, Box<Ltl>),
    /// Disjunction.
    Or(Box<Ltl>, Box<Ltl>),
    /// Strong next: there is a next cycle and the formula holds there.
    Next(Box<Ltl>),
    /// Bounded eventually: the formula holds within `k` cycles (inclusive
    /// of now).
    Finally(usize, Box<Ltl>),
    /// Bounded globally: the formula holds for the next `k` cycles
    /// (inclusive of now), clipped at the trace end.
    Globally(usize, Box<Ltl>),
    /// Bounded until: the right formula holds within `k` cycles and the
    /// left holds at every cycle before that.
    Until(usize, Box<Ltl>, Box<Ltl>),
    /// Past operator: the formula held at some cycle so far (inclusive).
    Once(Box<Ltl>),
    /// Past operator: the formula held at the previous cycle (false at
    /// cycle 0).
    Yesterday(Box<Ltl>),
}

impl Ltl {
    /// Atom constructor.
    pub fn atom(name: impl Into<String>) -> Ltl {
        Ltl::Atom(name.into())
    }

    /// Boolean helpers for readable construction.
    pub fn and(self, other: Ltl) -> Ltl {
        Ltl::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Ltl) -> Ltl {
        Ltl::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Ltl {
        Ltl::Not(Box::new(self))
    }

    /// Implication `self -> other`.
    pub fn implies(self, other: Ltl) -> Ltl {
        self.negate().or(other)
    }

    /// `##1 self` (strong next).
    pub fn next(self) -> Ltl {
        Ltl::Next(Box::new(self))
    }

    /// `F<=k self`.
    pub fn finally(self, k: usize) -> Ltl {
        Ltl::Finally(k, Box::new(self))
    }

    /// `G<=k self`.
    pub fn globally(self, k: usize) -> Ltl {
        Ltl::Globally(k, Box::new(self))
    }

    /// The atoms referenced by the formula.
    pub fn atoms(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Ltl::Atom(n) => out.push(n),
            Ltl::True | Ltl::False => {}
            Ltl::Not(a) | Ltl::Next(a) | Ltl::Once(a) | Ltl::Yesterday(a) => a.collect_atoms(out),
            Ltl::Finally(_, a) | Ltl::Globally(_, a) => a.collect_atoms(out),
            Ltl::And(a, b) | Ltl::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Ltl::Until(_, a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
        }
    }

    /// How many future cycles the formula looks ahead (its compilation
    /// latency).
    pub fn horizon(&self) -> usize {
        match self {
            Ltl::Atom(_) | Ltl::True | Ltl::False => 0,
            Ltl::Not(a) | Ltl::Once(a) | Ltl::Yesterday(a) => a.horizon(),
            Ltl::Next(a) => 1 + a.horizon(),
            Ltl::Finally(k, a) | Ltl::Globally(k, a) => k + a.horizon(),
            Ltl::And(a, b) | Ltl::Or(a, b) => a.horizon().max(b.horizon()),
            Ltl::Until(k, a, b) => k + a.horizon().max(b.horizon()),
        }
    }
}

/// A finite trace: per atom, a vector of per-cycle boolean values (all the
/// same length).
pub type TraceMap<'a> = std::collections::HashMap<&'a str, Vec<bool>>;

/// Reference semantics: does `f` hold at cycle `t` of the trace?
///
/// Finite-trace conventions: `Next` is strong (false at the last cycle);
/// bounded `Globally` clips at the trace end (vacuously true beyond it).
///
/// # Panics
/// Panics if an atom is missing from the trace map.
pub fn eval(f: &Ltl, trace: &TraceMap<'_>, t: usize) -> bool {
    let len = trace.values().next().map(Vec::len).unwrap_or(0);
    match f {
        Ltl::Atom(n) => trace
            .get(n.as_str())
            .unwrap_or_else(|| panic!("atom `{n}` missing from trace"))
            .get(t)
            .copied()
            .unwrap_or(false),
        Ltl::True => true,
        Ltl::False => false,
        Ltl::Not(a) => !eval(a, trace, t),
        Ltl::And(a, b) => eval(a, trace, t) && eval(b, trace, t),
        Ltl::Or(a, b) => eval(a, trace, t) || eval(b, trace, t),
        Ltl::Next(a) => t + 1 < len && eval(a, trace, t + 1),
        Ltl::Finally(k, a) => (t..=t + k).any(|u| u < len && eval(a, trace, u)),
        Ltl::Globally(k, a) => (t..=t + k).all(|u| u >= len || eval(a, trace, u)),
        Ltl::Until(k, a, b) => {
            (t..=t + k).any(|u| u < len && eval(b, trace, u) && (t..u).all(|v| eval(a, trace, v)))
        }
        Ltl::Once(a) => (0..=t).any(|u| u < len && eval(a, trace, u)),
        Ltl::Yesterday(a) => t > 0 && eval(a, trace, t - 1),
    }
}

/// Compiles `f` into a monitor wire.
///
/// Because hardware cannot look into the future, the compiled monitor is
/// *delayed by the formula's [`Ltl::horizon`]*: the returned wire at cycle
/// `t + horizon` equals the formula's truth at `t`, for every `t` such
/// that the whole look-ahead window fits inside the trace. Past operators
/// compile to registers, with warm-up masking so pre-trace cycles never
/// contribute.
///
/// # Panics
/// Panics if an atom name is not found in the builder's netlist.
pub fn compile(b: &mut Builder, f: &Ltl, name: &str) -> Wire {
    let w = compile_node(b, f, name, &mut 0);
    b.name(w, name)
}

fn fresh_tag(name: &str, fresh: &mut usize) -> String {
    *fresh += 1;
    format!("{name}__m{fresh}")
}

/// Pads a wire by `n` cycles with uniquely named delay registers.
fn pad(b: &mut Builder, w: Wire, n: usize, name: &str, fresh: &mut usize) -> Wire {
    if n == 0 {
        return w;
    }
    let t = fresh_tag(name, fresh);
    delay(b, w, n, &t)
}

/// A warm-up mask: 0 for the first `h` cycles, then 1 — marks the cycles
/// at which a horizon-`h` subformula's output is meaningful.
fn warmup(b: &mut Builder, h: usize, name: &str, fresh: &mut usize) -> Wire {
    let one = b.one();
    pad(b, one, h, name, fresh)
}

/// Compiles a node at its own natural alignment: the returned wire at
/// cycle `t` equals the subformula's truth at `t - horizon(f)` (and 0
/// during the first `horizon(f)` warm-up cycles).
fn compile_node(b: &mut Builder, f: &Ltl, name: &str, fresh: &mut usize) -> Wire {
    match f {
        Ltl::Atom(n) => b.wire_named(n),
        Ltl::True => b.one(),
        Ltl::False => b.zero(),
        Ltl::Not(a) => {
            let x = compile_node(b, a, name, fresh);
            b.not(x)
        }
        Ltl::And(a, c) => {
            let (ha, hc) = (a.horizon(), c.horizon());
            let h = ha.max(hc);
            let x = compile_node(b, a, name, fresh);
            let x = pad(b, x, h - ha, name, fresh);
            let y = compile_node(b, c, name, fresh);
            let y = pad(b, y, h - hc, name, fresh);
            b.and(x, y)
        }
        Ltl::Or(a, c) => {
            let (ha, hc) = (a.horizon(), c.horizon());
            let h = ha.max(hc);
            let x = compile_node(b, a, name, fresh);
            let x = pad(b, x, h - ha, name, fresh);
            let y = compile_node(b, c, name, fresh);
            let y = pad(b, y, h - hc, name, fresh);
            b.or(x, y)
        }
        // Next(a) at t - (ha + 1) is a's value at t - ha: the child's
        // natural output, horizon bumped by one.
        Ltl::Next(a) => compile_node(b, a, name, fresh),
        Ltl::Finally(k, a) => {
            // Output at t = OR over i of a(t - h + i), h = k + ha: the
            // child's output padded by k - i.
            let x = compile_node(b, a, name, fresh);
            let mut acc = b.zero();
            for i in 0..=*k {
                let tap = pad(b, x, k - i, name, fresh);
                acc = b.or(acc, tap);
            }
            acc
        }
        Ltl::Globally(k, a) => {
            let x = compile_node(b, a, name, fresh);
            let mut acc = b.one();
            for i in 0..=*k {
                let tap = pad(b, x, k - i, name, fresh);
                acc = b.and(acc, tap);
            }
            acc
        }
        Ltl::Until(k, a, c) => {
            let (ha, hc) = (a.horizon(), c.horizon());
            let h = k + ha.max(hc);
            let xa = compile_node(b, a, name, fresh);
            let xc = compile_node(b, c, name, fresh);
            let mut acc = b.zero();
            for u in 0..=*k {
                let rhs = pad(b, xc, h - hc - u, name, fresh);
                let mut arm = rhs;
                for v in 0..u {
                    let lhs = pad(b, xa, h - ha - v, name, fresh);
                    arm = b.and(arm, lhs);
                }
                acc = b.or(acc, arm);
            }
            acc
        }
        Ltl::Once(a) => {
            // Mask the child's warm-up cycles so pre-trace values never
            // latch into the sticky register.
            let ha = a.horizon();
            let x = compile_node(b, a, name, fresh);
            let mask = warmup(b, ha, name, fresh);
            let gated = b.and(x, mask);
            let t = fresh_tag(name, fresh);
            crate::sticky(b, gated, &t)
        }
        Ltl::Yesterday(a) => {
            let ha = a.horizon();
            let x = compile_node(b, a, name, fresh);
            let mask = warmup(b, ha, name, fresh);
            let gated = b.and(x, mask);
            pad(b, gated, 1, name, fresh)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tr(pairs: &[(&'static str, &[u8])]) -> TraceMap<'static> {
        pairs
            .iter()
            .map(|(n, v)| (*n, v.iter().map(|&x| x != 0).collect()))
            .collect()
    }

    #[test]
    fn eval_basics() {
        let t = tr(&[("a", &[1, 0, 1, 0]), ("b", &[0, 0, 1, 1])]);
        let f = Ltl::atom("a").and(Ltl::atom("b"));
        assert!(!eval(&f, &t, 0));
        assert!(eval(&f, &t, 2));
        let g = Ltl::atom("a").next();
        assert!(!eval(&g, &t, 0), "a is false at 1");
        assert!(eval(&g, &t, 1), "a is true at 2");
        assert!(!eval(&Ltl::atom("b").next(), &t, 3), "strong next at end");
    }

    #[test]
    fn eval_bounded_temporal() {
        let t = tr(&[("p", &[0, 0, 1, 0, 0])]);
        assert!(eval(&Ltl::atom("p").finally(2), &t, 0));
        assert!(!eval(&Ltl::atom("p").finally(1), &t, 0));
        assert!(eval(&Ltl::atom("p").negate().globally(1), &t, 0));
        assert!(!eval(&Ltl::atom("p").negate().globally(2), &t, 0));
        // until: !p until p within 3
        let u = Ltl::Until(
            3,
            Box::new(Ltl::atom("p").negate()),
            Box::new(Ltl::atom("p")),
        );
        assert!(eval(&u, &t, 0));
    }

    #[test]
    fn eval_past_operators() {
        let t = tr(&[("p", &[0, 1, 0, 0])]);
        let once = Ltl::Once(Box::new(Ltl::atom("p")));
        assert!(!eval(&once, &t, 0));
        assert!(eval(&once, &t, 1));
        assert!(eval(&once, &t, 3));
        let yest = Ltl::Yesterday(Box::new(Ltl::atom("p")));
        assert!(!eval(&yest, &t, 0));
        assert!(!eval(&yest, &t, 1));
        assert!(eval(&yest, &t, 2));
    }

    #[test]
    fn horizon_accounting() {
        let f = Ltl::atom("a").next().finally(2);
        assert_eq!(f.horizon(), 3);
        assert_eq!(Ltl::Once(Box::new(Ltl::atom("a"))).horizon(), 0);
    }
}
