//! The paper's SVA property templates (§V-B3, §V-B4, §V-C1), expressed over
//! performing-location *visit* wires.
//!
//! Callers (the `mupath` and `synthlc` synthesis passes) first build, per
//! performing location, a 1-bit `visit_now` wire ("the IUV occupies this PL
//! this cycle") and a sticky `visited` wire; the templates below combine
//! them into cover/assume monitor signals.

use crate::{seq_then, sticky};
use netlist::{Builder, Wire};

/// §V-B3 `pl_0_dom_pl_1`: `cover (!pl_0_visited & pl_1_visited)`.
///
/// An **unreachable** outcome proves `pl_0` *dominates* `pl_1`: every
/// execution of the IUV that visits `pl_1` also visits `pl_0`.
pub fn dominates_cover(b: &mut Builder, pl0_visited: Wire, pl1_visited: Wire, name: &str) -> Wire {
    let n0 = b.not(pl0_visited);
    let c = b.and(n0, pl1_visited);
    b.name(c, name)
}

/// §V-B3 `pl_0_excl_pl_1`: `cover (pl_0_visited & pl_1_visited)`.
///
/// An **unreachable** outcome proves `pl_0` and `pl_1` are mutually
/// *exclusive*: no execution of the IUV visits both.
pub fn exclusive_cover(b: &mut Builder, pl0_visited: Wire, pl1_visited: Wire, name: &str) -> Wire {
    let c = b.and(pl0_visited, pl1_visited);
    b.name(c, name)
}

/// §V-B4 `cand_pl_set`: assume the IUV never visits any PL outside the
/// candidate set; cover "every PL in the set was visited and the IUV
/// currently occupies none of them" (i.e. the IUV has disappeared from the
/// processor having visited exactly the candidate set).
///
/// Returns `(cover, assumes)`: the cover monitor plus one always-assume
/// monitor per out-of-set PL (each is `!visit_now`).
pub fn pl_set_cover(
    b: &mut Builder,
    in_set_visited: &[Wire],
    in_set_now: &[Wire],
    out_of_set_now: &[Wire],
    name: &str,
) -> (Wire, Vec<Wire>) {
    let all_visited = b.all(in_set_visited);
    let any_now = b.any(in_set_now);
    let none_now = b.not(any_now);
    let cover = b.and(all_visited, none_now);
    let cover = b.name(cover, name);
    let assumes = out_of_set_now
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let nv = b.not(v);
            b.name(nv, &format!("{name}__excl{i}"))
        })
        .collect();
    (cover, assumes)
}

/// §V-C1 `decision_taint`: `cover (src_now ##1 (all dst_now & any
/// dst_taint))` — the transponder sits at the decision source and, one cycle
/// later, occupies exactly the decision's destinations with taint present in
/// the destination µFSMs.
pub fn decision_taint_cover(
    b: &mut Builder,
    src_now: Wire,
    dst_now: &[Wire],
    dst_tainted: &[Wire],
    name: &str,
) -> Wire {
    let all_dst = b.all(dst_now);
    let any_taint = b.any(dst_tainted);
    let payload = b.and(all_dst, any_taint);
    seq_then(b, src_now, payload, name)
}

/// The plain decision cover (no taint): `cover (src_now ##1 all dst_now &
/// none other_dst_now)` — used when enumerating which decision destinations
/// actually follow a source (§IV-B).
pub fn decision_cover(
    b: &mut Builder,
    src_now: Wire,
    dst_now: &[Wire],
    other_dst_now: &[Wire],
    name: &str,
) -> Wire {
    let all_dst = b.all(dst_now);
    let any_other = b.any(other_dst_now);
    let no_other = b.not(any_other);
    let payload = b.and(all_dst, no_other);
    seq_then(b, src_now, payload, name)
}

/// A "revisit" cover: the IUV leaves a PL and later re-enters it. `visit_now`
/// is the occupancy wire; high → low → high is a non-consecutive revisit.
///
/// Builds `cover (visited_then_left & visit_now)` where `visited_then_left`
/// is sticky over (`visited` & !`visit_now`).
pub fn revisit_cover(b: &mut Builder, visit_now: Wire, name: &str) -> Wire {
    let visited = sticky(b, visit_now, &format!("{name}__vis"));
    let not_now = b.not(visit_now);
    let left_after_visit = b.and(visited, not_now);
    let left_sticky = sticky(b, left_after_visit, &format!("{name}__left"));
    let c = b.and(left_sticky, visit_now);
    b.name(c, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Builder;
    use sim::Simulator;

    /// Drives two free 1-bit inputs through a template and samples the
    /// monitor output per cycle.
    fn run2(
        build: impl Fn(&mut Builder, Wire, Wire) -> Wire,
        a_pat: &[u64],
        b_pat: &[u64],
    ) -> Vec<u64> {
        let mut bld = Builder::new();
        let a = bld.input("a", 1);
        let bb = bld.input("b", 1);
        let m = build(&mut bld, a, bb);
        let nl_m = m;
        let nl = bld.finish().unwrap();
        let mut s = Simulator::new(&nl);
        let (ai, bi) = (nl.find("a").unwrap(), nl.find("b").unwrap());
        let mut out = Vec::new();
        for (&av, &bv) in a_pat.iter().zip(b_pat) {
            s.set_input(ai, av);
            s.set_input(bi, bv);
            out.push(s.value(nl_m.id));
            s.step();
        }
        out
    }

    #[test]
    fn dominates_cover_fires_only_without_pl0() {
        let out = run2(
            |b, a, c| {
                let av = sticky(b, a, "av");
                let cv = sticky(b, c, "cv");
                dominates_cover(b, av, cv, "dom")
            },
            &[0, 0, 1, 0],
            &[0, 1, 0, 0],
        );
        // pl1 visited at cycle 1 while pl0 not yet visited -> fires at 1,
        // stops firing once pl0 visited at 2.
        assert_eq!(out, vec![0, 1, 0, 0]);
    }

    #[test]
    fn exclusive_cover_needs_both() {
        let out = run2(
            |b, a, c| {
                let av = sticky(b, a, "av");
                let cv = sticky(b, c, "cv");
                exclusive_cover(b, av, cv, "excl")
            },
            &[1, 0, 0, 0],
            &[0, 0, 1, 0],
        );
        assert_eq!(out, vec![0, 0, 1, 1]);
    }

    #[test]
    fn decision_cover_sequences_src_then_dst() {
        let out = run2(
            |b, src, dst| decision_cover(b, src, &[dst], &[], "dec"),
            &[1, 0, 0, 1, 0],
            &[0, 1, 0, 0, 0],
        );
        assert_eq!(out, vec![0, 1, 0, 0, 0], "fires when dst follows src");
    }

    #[test]
    fn decision_cover_vetoed_by_other_destination() {
        let out = run2(
            |b, src, other| {
                let t = b.one();
                decision_cover(b, src, &[t], &[other], "dec")
            },
            &[1, 0, 1, 0],
            &[0, 1, 0, 0],
        );
        assert_eq!(out, vec![0, 0, 0, 1], "other-destination veto");
    }

    #[test]
    fn revisit_cover_detects_reentry() {
        let out = run2(
            |b, v, _| revisit_cover(b, v, "rv"),
            &[1, 1, 0, 1, 0],
            &[0, 0, 0, 0, 0],
        );
        // Consecutive occupancy (cycles 0-1) is not a revisit; re-entry at
        // cycle 3 after leaving at cycle 2 is.
        assert_eq!(out, vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn pl_set_cover_shape() {
        let mut b = Builder::new();
        let v0 = b.input("v0", 1);
        let v1 = b.input("v1", 1);
        let out_pl = b.input("v2", 1);
        let s0 = sticky(&mut b, v0, "s0");
        let s1 = sticky(&mut b, v1, "s1");
        let (cover, assumes) = pl_set_cover(&mut b, &[s0, s1], &[v0, v1], &[out_pl], "set01");
        assert_eq!(assumes.len(), 1);
        let nl_cover = cover;
        let nl = b.finish().unwrap();
        let mut s = Simulator::new(&nl);
        let (i0, i1, i2) = (
            nl.find("v0").unwrap(),
            nl.find("v1").unwrap(),
            nl.find("v2").unwrap(),
        );
        // visit v0 then v1 then nothing => cover fires when both visited and
        // none active.
        let pattern = [(1, 0, 0), (0, 1, 0), (0, 0, 0)];
        let mut fired = Vec::new();
        for (a, c, d) in pattern {
            s.set_input(i0, a);
            s.set_input(i1, c);
            s.set_input(i2, d);
            fired.push(s.value(nl_cover.id));
            s.step();
        }
        assert_eq!(fired, vec![0, 0, 1]);
    }
}
