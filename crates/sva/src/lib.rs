//! SVA-style property construction: monitors and the paper's property
//! templates, compiled into netlist circuits.
//!
//! The paper generates thousands of SystemVerilog Assertions from templates
//! (§V-B, §V-C1) and hands them to a property verifier. Here, each property
//! becomes a 1-bit *monitor signal* woven into the design under verification
//! with [`netlist::Builder::from_netlist`]; the `mc` crate then evaluates
//! `cover`/`assume` over those signals. This module provides:
//!
//! * temporal building blocks ([`sticky`], [`delay`], [`seq_then`],
//!   [`visit_counter`], [`consecutive_counter`]) — the `##N` / "visited"
//!   vocabulary of the templates,
//! * the four template shapes of the paper
//!   ([`templates::dominates_cover`], [`templates::exclusive_cover`],
//!   [`templates::pl_set_cover`], [`templates::decision_taint_cover`]),
//! * [`Property`] bookkeeping so synthesis passes can report per-property
//!   statistics (§VII-B3).
//!
//! # Examples
//!
//! ```
//! use netlist::Builder;
//!
//! let mut b = Builder::new();
//! let pulse = b.input("pulse", 1);
//! let seen = sva::sticky(&mut b, pulse, "seen_pulse");
//! assert_eq!(seen.width, 1);
//! ```

use netlist::{Builder, Wire};

pub mod ltl;
pub mod templates;

/// Kind of a registered property.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PropertyKind {
    /// Search for a trace where the signal is high at some cycle.
    Cover,
    /// Constrain traces to those where the signal is high at every cycle.
    Assume,
}

/// A named property over a monitor signal.
#[derive(Clone, Debug)]
pub struct Property {
    /// Human-readable name (template instantiations embed PL names).
    pub name: String,
    /// Cover or assume.
    pub kind: PropertyKind,
    /// The 1-bit monitor signal.
    pub signal: netlist::SignalId,
}

/// An ordered collection of properties attached to one monitored design.
#[derive(Clone, Debug, Default)]
pub struct PropertyList {
    items: Vec<Property>,
}

impl PropertyList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a cover property.
    pub fn cover(&mut self, name: impl Into<String>, sig: Wire) {
        assert_eq!(sig.width, 1, "cover signal must be 1 bit");
        self.items.push(Property {
            name: name.into(),
            kind: PropertyKind::Cover,
            signal: sig.id,
        });
    }

    /// Registers an assume property.
    pub fn assume(&mut self, name: impl Into<String>, sig: Wire) {
        assert_eq!(sig.width, 1, "assume signal must be 1 bit");
        self.items.push(Property {
            name: name.into(),
            kind: PropertyKind::Assume,
            signal: sig.id,
        });
    }

    /// All registered properties.
    pub fn iter(&self) -> impl Iterator<Item = &Property> {
        self.items.iter()
    }

    /// Number of properties.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no properties are registered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Looks a property up by name.
    pub fn find(&self, name: &str) -> Option<&Property> {
        self.items.iter().find(|p| p.name == name)
    }
}

/// Monotone "has ever been high" monitor: output is high from the first
/// cycle `sig` is high, inclusive, onwards.
///
/// This is the `pl_visited` vocabulary of the paper's templates.
pub fn sticky(b: &mut Builder, sig: Wire, name: &str) -> Wire {
    let r = b.reg(&format!("{name}__sticky"), 1, 0);
    let now = b.or(r, sig);
    b.set_next(r, now).expect("fresh monitor register");
    b.name(now, name)
}

/// Delays a 1-bit signal by `n` cycles (the `##n` operator). Cycle 0..n-1
/// outputs are 0.
pub fn delay(b: &mut Builder, sig: Wire, n: usize, name: &str) -> Wire {
    let mut cur = sig;
    for i in 0..n {
        let r = b.reg(&format!("{name}__d{i}"), 1, 0);
        b.set_next(r, cur).expect("fresh monitor register");
        cur = r;
    }
    b.name(cur, name)
}

/// The sequence `first ##1 second`: high when `second` is high one cycle
/// after `first` was.
pub fn seq_then(b: &mut Builder, first: Wire, second: Wire, name: &str) -> Wire {
    let d = delay(b, first, 1, &format!("{name}__first_d1"));
    let both = b.and(d, second);
    b.name(both, name)
}

/// Counts cycles in which `sig` was high (saturating at the counter's max).
///
/// Used for revisit-count enumeration (§V-B6): the value of `l` for a
/// `Row(l)` node.
pub fn visit_counter(b: &mut Builder, sig: Wire, width: u8, name: &str) -> Wire {
    let r = b.reg(&format!("{name}__cnt"), width, 0);
    let one = b.constant(1, width);
    let max = b.constant(netlist::mask(width), width);
    let at_max = b.eq(r, max);
    let bumped = b.add(r, one);
    let held = b.mux(at_max, r, bumped);
    let next = b.mux(sig, held, r);
    b.set_next(r, next).expect("fresh monitor register");
    b.name(r, name)
}

/// Counts the length of the *current* run of consecutive high cycles
/// (resets to 0 when `sig` is low), and the maximum run seen so far.
///
/// Returns `(current_run, max_run)`. Distinguishes consecutive from
/// non-consecutive revisits (§III-B, §V-B4).
pub fn consecutive_counter(b: &mut Builder, sig: Wire, width: u8, name: &str) -> (Wire, Wire) {
    let run = b.reg(&format!("{name}__run"), width, 0);
    let max_run = b.reg(&format!("{name}__maxrun"), width, 0);
    let one = b.constant(1, width);
    let zero = b.constant(0, width);
    let cap = b.constant(netlist::mask(width), width);
    let at_cap = b.eq(run, cap);
    let bumped = b.add(run, one);
    let grown = b.mux(at_cap, run, bumped);
    let next_run = b.mux(sig, grown, zero);
    b.set_next(run, next_run).expect("fresh monitor register");
    let bigger = b.ult(max_run, next_run);
    let next_max = b.mux(bigger, next_run, max_run);
    b.set_next(max_run, next_max)
        .expect("fresh monitor register");
    let cur = b.name(next_run, &format!("{name}__current"));
    let max = b.name(max_run, name);
    (cur, max)
}

/// High on the cycle where `sig` goes from low to high.
pub fn rose(b: &mut Builder, sig: Wire, name: &str) -> Wire {
    let prev = b.reg(&format!("{name}__prev"), 1, 0);
    b.set_next(prev, sig).expect("fresh monitor register");
    let nprev = b.not(prev);
    let r = b.and(sig, nprev);
    b.name(r, name)
}

/// High on the cycle where `sig` goes from high to low.
pub fn fell(b: &mut Builder, sig: Wire, name: &str) -> Wire {
    let prev = b.reg(&format!("{name}__prev"), 1, 0);
    b.set_next(prev, sig).expect("fresh monitor register");
    let nsig = b.not(sig);
    let f = b.and(prev, nsig);
    b.name(f, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Builder;
    use sim::Simulator;

    fn pulse_design() -> (netlist::Netlist, netlist::SignalId) {
        let mut b = Builder::new();
        let p = b.input("p", 1);
        sticky(&mut b, p, "seen");
        delay(&mut b, p, 2, "d2");
        seq_then(&mut b, p, p, "pp");
        visit_counter(&mut b, p, 3, "cnt");
        consecutive_counter(&mut b, p, 3, "run");
        rose(&mut b, p, "rose");
        fell(&mut b, p, "fell");
        let nl = b.finish().unwrap();
        let p = nl.find("p").unwrap();
        (nl, p)
    }

    fn drive(pattern: &[u64], read: &[&str]) -> Vec<Vec<u64>> {
        let (nl, p) = pulse_design();
        let mut s = Simulator::new(&nl);
        let mut out = Vec::new();
        for &v in pattern {
            s.set_input(p, v);
            out.push(read.iter().map(|n| s.value_of(n)).collect());
            s.step();
        }
        out
    }

    #[test]
    fn sticky_latches_inclusively() {
        let vals = drive(&[0, 1, 0, 0], &["seen"]);
        assert_eq!(
            vals.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0, 1, 1, 1]
        );
    }

    #[test]
    fn delay_shifts_by_n() {
        let vals = drive(&[1, 0, 0, 0], &["d2"]);
        assert_eq!(
            vals.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0, 0, 1, 0]
        );
    }

    #[test]
    fn seq_then_matches_back_to_back() {
        let vals = drive(&[1, 1, 0, 1], &["pp"]);
        assert_eq!(
            vals.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0, 1, 0, 0]
        );
    }

    #[test]
    fn visit_counter_counts_highs() {
        let vals = drive(&[1, 0, 1, 1], &["cnt"]);
        // Register reads lag by one cycle: counts of highs seen *before* t.
        assert_eq!(
            vals.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0, 1, 1, 2]
        );
    }

    #[test]
    fn consecutive_counter_tracks_runs() {
        let vals = drive(&[1, 1, 0, 1], &["run__current", "run"]);
        let cur: Vec<u64> = vals.iter().map(|r| r[0]).collect();
        let max: Vec<u64> = vals.iter().map(|r| r[1]).collect();
        assert_eq!(cur, vec![1, 2, 0, 1], "current run includes this cycle");
        assert_eq!(max, vec![0, 1, 2, 2], "max run is registered");
    }

    #[test]
    fn rose_and_fell_are_edges() {
        let vals = drive(&[0, 1, 1, 0], &["rose", "fell"]);
        assert_eq!(
            vals.iter().map(|r| r[0]).collect::<Vec<_>>(),
            vec![0, 1, 0, 0]
        );
        assert_eq!(
            vals.iter().map(|r| r[1]).collect::<Vec<_>>(),
            vec![0, 0, 0, 1]
        );
    }

    #[test]
    fn property_list_bookkeeping() {
        let mut b = Builder::new();
        let p = b.input("p", 1);
        let mut props = PropertyList::new();
        props.cover("p_high", p);
        props.assume("p_low_never", p);
        assert_eq!(props.len(), 2);
        assert_eq!(props.find("p_high").unwrap().kind, PropertyKind::Cover);
    }
}
