//! LTL monitor-compilation equivalence (property-based): for random
//! bounded-LTL formulas and random traces, the compiled hardware monitor
//! (delayed by the formula's horizon) must agree with the reference
//! interpreter at every cycle where the full look-ahead window fits inside
//! the trace. (Hand-rolled random cases via `prng`.)

use netlist::Builder;
use prng::Rng;
use sim::Simulator;
use sva::ltl::{eval, Ltl, TraceMap};

fn random_ltl(rng: &mut Rng, depth: u32) -> Ltl {
    let leaf = depth == 0 || rng.range(0, 4) == 0;
    if leaf {
        return match rng.range(0, 4) {
            0 => Ltl::atom("a"),
            1 => Ltl::atom("b"),
            2 => Ltl::True,
            _ => Ltl::False,
        };
    }
    let d = depth - 1;
    match rng.range(0, 9) {
        0 => random_ltl(rng, d).negate(),
        1 => random_ltl(rng, d).and(random_ltl(rng, d)),
        2 => random_ltl(rng, d).or(random_ltl(rng, d)),
        3 => random_ltl(rng, d).next(),
        4 => {
            let k = rng.range_usize(0, 3);
            random_ltl(rng, d).finally(k)
        }
        5 => {
            let k = rng.range_usize(0, 3);
            random_ltl(rng, d).globally(k)
        }
        6 => {
            let k = rng.range_usize(0, 3);
            Ltl::Until(
                k,
                Box::new(random_ltl(rng, d)),
                Box::new(random_ltl(rng, d)),
            )
        }
        7 => Ltl::Once(Box::new(random_ltl(rng, d))),
        _ => Ltl::Yesterday(Box::new(random_ltl(rng, d))),
    }
}

#[test]
fn compiled_monitor_matches_interpreter() {
    prng::for_each_case("compiled_monitor_matches_interpreter", 0x17e1, 128, |rng| {
        let f = random_ltl(rng, 3);
        let len = rng.range_usize(10, 16);
        let a_trace: Vec<bool> = (0..len).map(|_| rng.flip()).collect();
        let b_trace: Vec<bool> = (0..len).map(|_| rng.flip()).collect();
        let horizon = f.horizon();
        if horizon + 1 >= len {
            return; // look-ahead window does not fit; skip this case
        }

        // Build: two inputs, compile the formula.
        let mut b = Builder::new();
        let _a = b.input("a", 1);
        let _bw = b.input("b", 1);
        sva::ltl::compile(&mut b, &f, "mon");
        let nl = b.finish().expect("monitor netlist valid");
        let (ai, bi, mi) = (
            nl.find("a").unwrap(),
            nl.find("b").unwrap(),
            nl.find("mon").unwrap(),
        );

        // Simulate, recording the monitor output per cycle.
        let mut s = Simulator::new(&nl);
        let mut mon = Vec::new();
        for t in 0..len {
            s.set_input(ai, a_trace[t] as u64);
            s.set_input(bi, b_trace[t] as u64);
            mon.push(s.value(mi) != 0);
            s.step();
        }

        let mut tm: TraceMap<'_> = TraceMap::new();
        tm.insert("a", a_trace.clone());
        tm.insert("b", b_trace.clone());
        for t in 0..len - horizon {
            let expect = eval(&f, &tm, t);
            assert_eq!(
                mon[t + horizon],
                expect,
                "formula {f:?} at cycle {t} (horizon {horizon})"
            );
        }
    });
}
