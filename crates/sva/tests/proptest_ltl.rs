//! LTL monitor-compilation equivalence (property-based): for random
//! bounded-LTL formulas and random traces, the compiled hardware monitor
//! (delayed by the formula's horizon) must agree with the reference
//! interpreter at every cycle where the full look-ahead window fits inside
//! the trace.

use netlist::Builder;
use proptest::prelude::*;
use sim::Simulator;
use sva::ltl::{eval, Ltl, TraceMap};

fn arb_ltl(depth: u32) -> BoxedStrategy<Ltl> {
    let leaf = prop_oneof![
        Just(Ltl::atom("a")),
        Just(Ltl::atom("b")),
        Just(Ltl::True),
        Just(Ltl::False),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| f.negate()),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.and(g)),
            (inner.clone(), inner.clone()).prop_map(|(f, g)| f.or(g)),
            inner.clone().prop_map(|f| f.next()),
            (0usize..3, inner.clone()).prop_map(|(k, f)| f.finally(k)),
            (0usize..3, inner.clone()).prop_map(|(k, f)| f.globally(k)),
            (0usize..3, inner.clone(), inner.clone())
                .prop_map(|(k, f, g)| Ltl::Until(k, Box::new(f), Box::new(g))),
            inner.clone().prop_map(|f| Ltl::Once(Box::new(f))),
            inner.prop_map(|f| Ltl::Yesterday(Box::new(f))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compiled_monitor_matches_interpreter(
        f in arb_ltl(3),
        a_trace in prop::collection::vec(any::<bool>(), 10..16),
        b_seed in prop::collection::vec(any::<bool>(), 10..16),
    ) {
        let len = a_trace.len().min(b_seed.len());
        let a_trace = &a_trace[..len];
        let b_trace = &b_seed[..len];
        let horizon = f.horizon();
        prop_assume!(horizon + 1 < len);

        // Build: two inputs, compile the formula.
        let mut b = Builder::new();
        let _a = b.input("a", 1);
        let _bw = b.input("b", 1);
        sva::ltl::compile(&mut b, &f, "mon");
        let nl = b.finish().expect("monitor netlist valid");
        let (ai, bi, mi) = (
            nl.find("a").unwrap(),
            nl.find("b").unwrap(),
            nl.find("mon").unwrap(),
        );

        // Simulate, recording the monitor output per cycle.
        let mut s = Simulator::new(&nl);
        let mut mon = Vec::new();
        for t in 0..len {
            s.set_input(ai, a_trace[t] as u64);
            s.set_input(bi, b_trace[t] as u64);
            mon.push(s.value(mi) != 0);
            s.step();
        }

        let mut tm: TraceMap<'_> = TraceMap::new();
        tm.insert("a", a_trace.to_vec());
        tm.insert("b", b_trace.to_vec());
        for t in 0..len - horizon {
            let expect = eval(&f, &tm, t);
            prop_assert_eq!(
                mon[t + horizon],
                expect,
                "formula {:?} at cycle {} (horizon {})",
                f,
                t,
                horizon
            );
        }
    }
}
