//! A small two-way assembler for MiniRV, used by the examples and tests.
//!
//! Syntax: one instruction per line, `;` or `#` comments. Operands are
//! registers (`r0`..`r3`) or decimal/negative immediates:
//!
//! ```text
//! addi r1, r0, 7
//! sw   r0, r1, 2      ; mem[r0 + 2] = r1  (sw rs1, rs2, imm)
//! beq  r1, r2, -1
//! ```

use crate::opcode::{Instr, Opcode};
use std::fmt;

/// Assembly errors with line information.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn opcode_by_mnemonic(m: &str) -> Option<Opcode> {
    Opcode::ALL.into_iter().find(|o| o.mnemonic() == m)
}

fn parse_reg(tok: &str) -> Option<u8> {
    let rest = tok.strip_prefix('r')?;
    let n: u8 = rest.parse().ok()?;
    (n < 4).then_some(n)
}

fn parse_imm(tok: &str) -> Option<u8> {
    let v: i16 = tok.parse().ok()?;
    (-16..=15).contains(&v).then_some((v as u8) & 0x1f)
}

/// Assembles a program, one instruction per line.
///
/// # Errors
/// Returns the first malformed line.
pub fn assemble(src: &str) -> Result<Vec<Instr>, AsmError> {
    let mut out = Vec::new();
    for (ix, raw) in src.lines().enumerate() {
        let lineno = ix + 1;
        let line = raw.split([';', '#']).next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |m: String| AsmError {
            line: lineno,
            message: m,
        };
        let mut parts = line.split_whitespace();
        let mnem = parts.next().expect("non-empty line");
        let op =
            opcode_by_mnemonic(mnem).ok_or_else(|| err(format!("unknown mnemonic `{mnem}`")))?;
        let rest = parts.collect::<Vec<_>>().join(" ");
        let operands: Vec<String> = rest
            .split(',')
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .collect();
        let reg = |i: usize| -> Result<u8, AsmError> {
            operands
                .get(i)
                .and_then(|t| parse_reg(t))
                .ok_or_else(|| err(format!("operand {i} must be a register")))
        };
        let imm = |i: usize| -> Result<u8, AsmError> {
            operands
                .get(i)
                .and_then(|t| parse_imm(t))
                .ok_or_else(|| err(format!("operand {i} must be an immediate in -16..=15")))
        };
        let instr = match op {
            Opcode::Nop => Instr::nop(),
            o if o.is_branch() => Instr::branch(o, reg(0)?, reg(1)?, imm(2)?),
            Opcode::Sw => Instr {
                op,
                rd: 0,
                rs1: reg(0)?,
                rs2: reg(1)?,
                imm: imm(2)?,
            },
            Opcode::Lw | Opcode::Jalr => Instr::rri(op, reg(0)?, reg(1)?, imm(2)?),
            Opcode::Jal => Instr::rri(op, reg(0)?, 0, imm(1)?),
            Opcode::Addi | Opcode::Andi | Opcode::Ori | Opcode::Xori | Opcode::Slti => {
                Instr::rri(op, reg(0)?, reg(1)?, imm(2)?)
            }
            _ => Instr::rrr(op, reg(0)?, reg(1)?, reg(2)?),
        };
        out.push(instr);
    }
    Ok(out)
}

/// Disassembles a program back to assembler syntax.
pub fn disassemble(program: &[Instr]) -> String {
    let mut out = String::new();
    for i in program {
        let text = match i.op {
            Opcode::Nop => "nop".to_owned(),
            o if o.is_branch() => {
                format!("{} r{}, r{}, {}", o, i.rs1, i.rs2, sext_display(i.imm))
            }
            Opcode::Sw => format!("sw r{}, r{}, {}", i.rs1, i.rs2, sext_display(i.imm)),
            Opcode::Lw | Opcode::Jalr => {
                format!("{} r{}, r{}, {}", i.op, i.rd, i.rs1, sext_display(i.imm))
            }
            Opcode::Jal => format!("jal r{}, {}", i.rd, sext_display(i.imm)),
            Opcode::Addi | Opcode::Andi | Opcode::Ori | Opcode::Xori | Opcode::Slti => {
                format!("{} r{}, r{}, {}", i.op, i.rd, i.rs1, sext_display(i.imm))
            }
            _ => format!("{} r{}, r{}, r{}", i.op, i.rd, i.rs1, i.rs2),
        };
        out.push_str(&text);
        out.push('\n');
    }
    out
}

fn sext_display(imm: u8) -> i8 {
    if imm & 0x10 != 0 {
        (imm | 0xe0) as i8
    } else {
        imm as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArchState;

    #[test]
    fn assemble_and_run() {
        let prog = assemble(
            "addi r1, r0, 7\n\
             addi r2, r0, 5   ; set up\n\
             mul  r3, r1, r2\n\
             sw   r0, r3, 2\n",
        )
        .unwrap();
        let mut s = ArchState::new();
        s.run(&prog, 10);
        assert_eq!(s.mem[2], 35);
    }

    #[test]
    fn round_trip_through_disassembler() {
        let src = "addi r1, r0, 7\nbeq r1, r2, -1\nsw r1, r2, 3\njal r3, 2\n";
        let prog = assemble(src).unwrap();
        let text = disassemble(&prog);
        let prog2 = assemble(&text).unwrap();
        assert_eq!(prog, prog2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nfrobnicate r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn immediate_range_enforced() {
        assert!(assemble("addi r1, r0, 16").is_err());
        assert!(assemble("addi r1, r0, -16").is_ok());
    }
}
