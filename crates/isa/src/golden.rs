//! The architectural golden model: an instruction-level interpreter used as
//! the reference for `uarch` conformance tests and the SC-Safe experiment.

use crate::opcode::{Instr, Opcode};
use crate::{MEM_WORDS, NUM_REGS};

/// Architectural state: registers, data memory, and the program counter.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ArchState {
    /// General-purpose registers; `regs[0]` always reads as zero.
    pub regs: [u8; NUM_REGS],
    /// Data memory.
    pub mem: [u8; MEM_WORDS],
    /// Program counter (word-addressed).
    pub pc: u8,
}

impl Default for ArchState {
    fn default() -> Self {
        Self::new()
    }
}

impl ArchState {
    /// A zeroed state.
    pub fn new() -> Self {
        Self {
            regs: [0; NUM_REGS],
            mem: [0; MEM_WORDS],
            pc: 0,
        }
    }

    /// Reads a register (`r0` is hardwired to zero).
    pub fn reg(&self, ix: u8) -> u8 {
        if ix == 0 {
            0
        } else {
            self.regs[ix as usize & (NUM_REGS - 1)]
        }
    }

    fn write_reg(&mut self, ix: u8, v: u8) {
        if ix != 0 {
            self.regs[ix as usize & (NUM_REGS - 1)] = v;
        }
    }

    /// The effective data-memory index for an address.
    pub fn mem_index(addr: u8) -> usize {
        addr as usize & (MEM_WORDS - 1)
    }

    /// Executes one instruction, updating registers, memory and the PC.
    pub fn step(&mut self, i: Instr) {
        let a = self.reg(i.rs1);
        let b = self.reg(i.rs2);
        let imm = i.imm_sext();
        let sa = a as i8;
        let sb = b as i8;
        let simm = imm as i8;
        let next_pc = self.pc.wrapping_add(1);
        let mut target = next_pc;
        match i.op {
            Opcode::Nop => {}
            Opcode::Add => self.write_reg(i.rd, a.wrapping_add(b)),
            Opcode::Sub => self.write_reg(i.rd, a.wrapping_sub(b)),
            Opcode::And => self.write_reg(i.rd, a & b),
            Opcode::Or => self.write_reg(i.rd, a | b),
            Opcode::Xor => self.write_reg(i.rd, a ^ b),
            Opcode::Sll => self.write_reg(i.rd, if b >= 8 { 0 } else { a << b }),
            Opcode::Srl => self.write_reg(i.rd, if b >= 8 { 0 } else { a >> b }),
            Opcode::Slt => self.write_reg(i.rd, (sa < sb) as u8),
            Opcode::Sltu => self.write_reg(i.rd, (a < b) as u8),
            Opcode::Addi => self.write_reg(i.rd, a.wrapping_add(imm)),
            Opcode::Andi => self.write_reg(i.rd, a & imm),
            Opcode::Ori => self.write_reg(i.rd, a | imm),
            Opcode::Xori => self.write_reg(i.rd, a ^ imm),
            Opcode::Slti => self.write_reg(i.rd, (sa < simm) as u8),
            Opcode::Mul => self.write_reg(i.rd, a.wrapping_mul(b)),
            Opcode::Mulh => {
                let p = (a as u16) * (b as u16);
                self.write_reg(i.rd, (p >> 8) as u8);
            }
            Opcode::Div => {
                let q = if b == 0 {
                    0xff // RISC-V: division by zero yields all ones
                } else if sa == i8::MIN && sb == -1 {
                    a // overflow: quotient = dividend
                } else {
                    sa.wrapping_div(sb) as u8
                };
                self.write_reg(i.rd, q);
            }
            Opcode::Divu => self.write_reg(i.rd, a.checked_div(b).unwrap_or(0xff)),
            Opcode::Rem => {
                let r = if b == 0 {
                    a // RISC-V: remainder by zero yields the dividend
                } else if sa == i8::MIN && sb == -1 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u8
                };
                self.write_reg(i.rd, r);
            }
            Opcode::Remu => self.write_reg(i.rd, if b == 0 { a } else { a % b }),
            Opcode::Lw => {
                let addr = a.wrapping_add(imm);
                self.write_reg(i.rd, self.mem[Self::mem_index(addr)]);
            }
            Opcode::Sw => {
                let addr = a.wrapping_add(imm);
                self.mem[Self::mem_index(addr)] = b;
            }
            Opcode::Beq => {
                if a == b {
                    target = self.pc.wrapping_add(imm);
                }
            }
            Opcode::Bne => {
                if a != b {
                    target = self.pc.wrapping_add(imm);
                }
            }
            Opcode::Blt => {
                if sa < sb {
                    target = self.pc.wrapping_add(imm);
                }
            }
            Opcode::Bge => {
                if sa >= sb {
                    target = self.pc.wrapping_add(imm);
                }
            }
            Opcode::Bltu => {
                if a < b {
                    target = self.pc.wrapping_add(imm);
                }
            }
            Opcode::Bgeu => {
                if a >= b {
                    target = self.pc.wrapping_add(imm);
                }
            }
            Opcode::Jal => {
                self.write_reg(i.rd, next_pc);
                target = self.pc.wrapping_add(imm);
            }
            Opcode::Jalr => {
                self.write_reg(i.rd, next_pc);
                target = a.wrapping_add(imm);
            }
        }
        self.pc = target;
    }

    /// Runs a program from `pc = 0` for at most `max_steps` instructions
    /// (programs are word-addressed into `program`); falls off the end by
    /// executing NOPs.
    pub fn run(&mut self, program: &[Instr], max_steps: usize) {
        for _ in 0..max_steps {
            let i = program
                .get(self.pc as usize)
                .copied()
                .unwrap_or_else(Instr::nop);
            self.step(i);
            if self.pc as usize >= program.len() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(regs: [u8; 4]) -> ArchState {
        ArchState {
            regs,
            ..ArchState::new()
        }
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let mut s = st([9, 1, 2, 3]);
        s.step(Instr::rrr(Opcode::Add, 0, 1, 2));
        assert_eq!(s.reg(0), 0);
    }

    #[test]
    fn arithmetic_basics() {
        let mut s = st([0, 200, 100, 0]);
        s.step(Instr::rrr(Opcode::Add, 3, 1, 2));
        assert_eq!(s.regs[3], 44, "wrapping add");
        s.step(Instr::rrr(Opcode::Mulh, 3, 1, 2));
        assert_eq!(s.regs[3], ((200u16 * 100) >> 8) as u8);
    }

    #[test]
    fn division_riscv_edge_cases() {
        let mut s = st([0, 10, 0, 0]);
        s.step(Instr::rrr(Opcode::Div, 3, 1, 2));
        assert_eq!(s.regs[3], 0xff, "div by zero is -1");
        s.step(Instr::rrr(Opcode::Rem, 3, 1, 2));
        assert_eq!(s.regs[3], 10, "rem by zero is dividend");
        let mut s = st([0, 0x80, 0xff, 0]);
        s.step(Instr::rrr(Opcode::Div, 3, 1, 2));
        assert_eq!(s.regs[3], 0x80, "overflow quotient");
        s.step(Instr::rrr(Opcode::Rem, 3, 1, 2));
        assert_eq!(s.regs[3], 0, "overflow remainder");
    }

    #[test]
    fn loads_and_stores_wrap_addresses() {
        let mut s = st([0, 9, 0x55, 0]);
        s.step(Instr::rrr(Opcode::Sw, 0, 1, 2)); // mem[9 & 7] = 0x55
        assert_eq!(s.mem[1], 0x55);
        s.step(Instr::rri(Opcode::Lw, 3, 1, 0));
        assert_eq!(s.regs[3], 0x55);
    }

    #[test]
    fn branches_and_jumps_update_pc() {
        let mut s = st([0, 5, 5, 0]);
        s.pc = 10;
        s.step(Instr::branch(Opcode::Beq, 1, 2, 4));
        assert_eq!(s.pc, 14);
        s.step(Instr::branch(Opcode::Bne, 1, 2, 4));
        assert_eq!(s.pc, 15, "not taken falls through");
        s.step(Instr::rri(Opcode::Jal, 3, 0, 0x1f)); // imm = -1
        assert_eq!(s.pc, 14);
        assert_eq!(s.regs[3], 16, "link register holds pc+1");
        s.regs[1] = 3;
        s.step(Instr::rri(Opcode::Jalr, 3, 1, 1));
        assert_eq!(s.pc, 4);
    }

    #[test]
    fn signed_compares() {
        let mut s = st([0, 0xff, 1, 0]); // r1 = -1 signed
        s.step(Instr::rrr(Opcode::Slt, 3, 1, 2));
        assert_eq!(s.regs[3], 1, "-1 < 1 signed");
        s.step(Instr::rrr(Opcode::Sltu, 3, 1, 2));
        assert_eq!(s.regs[3], 0, "255 > 1 unsigned");
    }

    #[test]
    fn run_executes_straightline_program() {
        let prog = vec![
            Instr::rri(Opcode::Addi, 1, 0, 7),
            Instr::rri(Opcode::Addi, 2, 0, 3),
            Instr::rrr(Opcode::Mul, 3, 1, 2),
        ];
        let mut s = ArchState::new();
        s.run(&prog, 10);
        assert_eq!(s.regs[3], 21);
    }
}
