//! Opcodes, instruction words, and their fixed-width encoding.

use std::fmt;

/// The 31 MiniRV opcodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[repr(u8)]
pub enum Opcode {
    /// No operation.
    Nop = 0,
    /// `rd = rs1 + rs2`.
    Add = 1,
    /// `rd = rs1 - rs2`.
    Sub = 2,
    /// `rd = rs1 & rs2`.
    And = 3,
    /// `rd = rs1 | rs2`.
    Or = 4,
    /// `rd = rs1 ^ rs2`.
    Xor = 5,
    /// `rd = rs1 << rs2` (logical).
    Sll = 6,
    /// `rd = rs1 >> rs2` (logical).
    Srl = 7,
    /// `rd = (rs1 <s rs2)` (signed).
    Slt = 8,
    /// `rd = (rs1 <u rs2)` (unsigned).
    Sltu = 9,
    /// `rd = rs1 + sext(imm)`.
    Addi = 10,
    /// `rd = rs1 & sext(imm)`.
    Andi = 11,
    /// `rd = rs1 | sext(imm)`.
    Ori = 12,
    /// `rd = rs1 ^ sext(imm)`.
    Xori = 13,
    /// `rd = (rs1 <s sext(imm))`.
    Slti = 14,
    /// `rd = low(rs1 * rs2)`.
    Mul = 15,
    /// `rd = high(rs1 * rs2)` (unsigned product).
    Mulh = 16,
    /// Signed division (RISC-V semantics for /0 and overflow).
    Div = 17,
    /// Unsigned division.
    Divu = 18,
    /// Signed remainder.
    Rem = 19,
    /// Unsigned remainder.
    Remu = 20,
    /// `rd = mem[(rs1 + sext(imm)) mod MEM_WORDS]`.
    Lw = 21,
    /// `mem[(rs1 + sext(imm)) mod MEM_WORDS] = rs2`.
    Sw = 22,
    /// Branch if `rs1 == rs2` to `pc + sext(imm)`.
    Beq = 23,
    /// Branch if `rs1 != rs2`.
    Bne = 24,
    /// Branch if `rs1 <s rs2`.
    Blt = 25,
    /// Branch if `rs1 >=s rs2`.
    Bge = 26,
    /// Branch if `rs1 <u rs2`.
    Bltu = 27,
    /// Branch if `rs1 >=u rs2`.
    Bgeu = 28,
    /// `rd = pc + 1; pc = pc + sext(imm)`.
    Jal = 29,
    /// `rd = pc + 1; pc = rs1 + sext(imm)`.
    Jalr = 30,
}

impl Opcode {
    /// All opcodes, in encoding order.
    pub const ALL: [Opcode; 31] = [
        Opcode::Nop,
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slti,
        Opcode::Mul,
        Opcode::Mulh,
        Opcode::Div,
        Opcode::Divu,
        Opcode::Rem,
        Opcode::Remu,
        Opcode::Lw,
        Opcode::Sw,
        Opcode::Beq,
        Opcode::Bne,
        Opcode::Blt,
        Opcode::Bge,
        Opcode::Bltu,
        Opcode::Bgeu,
        Opcode::Jal,
        Opcode::Jalr,
    ];

    /// Decodes a 5-bit opcode field; unknown values decode to `Nop`.
    pub fn from_bits(bits: u8) -> Opcode {
        *Self::ALL.get(bits as usize).unwrap_or(&Opcode::Nop)
    }

    /// The 5-bit encoding.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// The assembler mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Nop => "nop",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Sll => "sll",
            Opcode::Srl => "srl",
            Opcode::Slt => "slt",
            Opcode::Sltu => "sltu",
            Opcode::Addi => "addi",
            Opcode::Andi => "andi",
            Opcode::Ori => "ori",
            Opcode::Xori => "xori",
            Opcode::Slti => "slti",
            Opcode::Mul => "mul",
            Opcode::Mulh => "mulh",
            Opcode::Div => "div",
            Opcode::Divu => "divu",
            Opcode::Rem => "rem",
            Opcode::Remu => "remu",
            Opcode::Lw => "lw",
            Opcode::Sw => "sw",
            Opcode::Beq => "beq",
            Opcode::Bne => "bne",
            Opcode::Blt => "blt",
            Opcode::Bge => "bge",
            Opcode::Bltu => "bltu",
            Opcode::Bgeu => "bgeu",
            Opcode::Jal => "jal",
            Opcode::Jalr => "jalr",
        }
    }

    /// Whether this is a conditional branch.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bltu | Opcode::Bgeu
        )
    }

    /// Whether this is any control-flow instruction (branch or jump).
    pub fn is_control_flow(self) -> bool {
        self.is_branch() || matches!(self, Opcode::Jal | Opcode::Jalr)
    }

    /// Whether the instruction reads or writes data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Lw | Opcode::Sw)
    }

    /// Whether the instruction uses the serial divide unit.
    pub fn is_divide(self) -> bool {
        matches!(
            self,
            Opcode::Div | Opcode::Divu | Opcode::Rem | Opcode::Remu
        )
    }

    /// Whether the instruction uses the multiply unit.
    pub fn is_multiply(self) -> bool {
        matches!(self, Opcode::Mul | Opcode::Mulh)
    }

    /// Whether the instruction writes a destination register.
    pub fn writes_rd(self) -> bool {
        !matches!(self, Opcode::Nop | Opcode::Sw) && !self.is_branch()
    }

    /// Whether the instruction reads `rs2`.
    pub fn reads_rs2(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Sub
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::Sll
                | Opcode::Srl
                | Opcode::Slt
                | Opcode::Sltu
                | Opcode::Mul
                | Opcode::Mulh
                | Opcode::Div
                | Opcode::Divu
                | Opcode::Rem
                | Opcode::Remu
                | Opcode::Sw
        ) || self.is_branch()
    }

    /// Whether the instruction reads `rs1`.
    pub fn reads_rs1(self) -> bool {
        !matches!(self, Opcode::Nop | Opcode::Jal)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded instruction word.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// Destination register (2 bits).
    pub rd: u8,
    /// First source register (2 bits).
    pub rs1: u8,
    /// Second source register (2 bits).
    pub rs2: u8,
    /// 5-bit immediate (sign-extended by consumers).
    pub imm: u8,
}

impl Instr {
    /// A three-register instruction (`imm = 0`).
    pub fn rrr(op: Opcode, rd: u8, rs1: u8, rs2: u8) -> Instr {
        Instr {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    /// A register-immediate instruction (`rs2 = 0`).
    pub fn rri(op: Opcode, rd: u8, rs1: u8, imm: u8) -> Instr {
        Instr {
            op,
            rd,
            rs1,
            rs2: 0,
            imm: imm & 0x1f,
        }
    }

    /// A branch (`rd = 0`).
    pub fn branch(op: Opcode, rs1: u8, rs2: u8, imm: u8) -> Instr {
        Instr {
            op,
            rd: 0,
            rs1,
            rs2,
            imm: imm & 0x1f,
        }
    }

    /// A NOP.
    pub fn nop() -> Instr {
        Instr::rrr(Opcode::Nop, 0, 0, 0)
    }

    /// Encodes to the 16-bit instruction word.
    pub fn encode(self) -> u16 {
        ((self.op.bits() as u16) << 11)
            | ((self.rd as u16 & 3) << 9)
            | ((self.rs1 as u16 & 3) << 7)
            | ((self.rs2 as u16 & 3) << 5)
            | (self.imm as u16 & 0x1f)
    }

    /// Decodes a 16-bit instruction word.
    pub fn decode(word: u16) -> Instr {
        Instr {
            op: Opcode::from_bits((word >> 11) as u8 & 0x1f),
            rd: (word >> 9) as u8 & 3,
            rs1: (word >> 7) as u8 & 3,
            rs2: (word >> 5) as u8 & 3,
            imm: word as u8 & 0x1f,
        }
    }

    /// The sign-extended immediate as an 8-bit two's-complement value.
    pub fn imm_sext(self) -> u8 {
        if self.imm & 0x10 != 0 {
            self.imm | 0xe0
        } else {
            self.imm
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} r{}, r{}, r{}, {}",
            self.op, self.rd, self.rs1, self.rs2, self.imm
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_all_opcodes() {
        for op in Opcode::ALL {
            for rd in 0..4 {
                let i = Instr {
                    op,
                    rd,
                    rs1: 3 - rd,
                    rs2: rd ^ 1,
                    imm: (rd * 7 + 3) & 0x1f,
                };
                assert_eq!(Instr::decode(i.encode()), i);
            }
        }
    }

    #[test]
    fn unknown_opcode_bits_decode_to_nop() {
        let word = 31u16 << 11;
        assert_eq!(Instr::decode(word).op, Opcode::Nop);
    }

    #[test]
    fn imm_sign_extension() {
        assert_eq!(Instr::rri(Opcode::Addi, 1, 0, 0x1f).imm_sext(), 0xff);
        assert_eq!(Instr::rri(Opcode::Addi, 1, 0, 0x0f).imm_sext(), 0x0f);
    }

    #[test]
    fn classification_is_consistent() {
        for op in Opcode::ALL {
            if op.is_branch() {
                assert!(op.is_control_flow());
                assert!(!op.writes_rd());
            }
            if op.is_divide() || op.is_multiply() {
                assert!(op.writes_rd());
            }
        }
        assert!(Opcode::Jal.is_control_flow());
        assert!(!Opcode::Jal.is_branch());
        assert!(Opcode::Sw.reads_rs2());
        assert!(!Opcode::Sw.writes_rd());
    }
}
