//! MiniRV: the compact instruction set implemented by the `uarch` processor
//! designs — the reproduction's stand-in for the paper's RV64IM (§VI).
//!
//! MiniRV is an 8-bit-datapath, 16-bit-fixed-width-encoding ISA with 31
//! instructions spanning the same behavioural classes the paper's
//! evaluation exercises: single-cycle ALU ops, immediates, a multiplier,
//! serial dividers/remainders (variable latency — intrinsic transmitters),
//! loads/stores (store-to-load interactions), branches and jumps
//! (speculation squash — dynamic transmitters).
//!
//! Encoding (16 bits): `[15:11] opcode | [10:9] rd | [8:7] rs1 | [6:5] rs2 |
//! [4:0] imm5`. Four architectural registers; `r0` is hardwired to zero.
//! Data memory has [`MEM_WORDS`] bytes, word-addressed; the *page offset* of
//! an address (for store-to-load matching, §IV-A) is its low
//! [`OFFSET_BITS`] bits.
//!
//! # Examples
//!
//! ```
//! use isa::{ArchState, Instr, Opcode};
//!
//! let mut st = ArchState::new();
//! st.regs[1] = 20;
//! st.regs[2] = 22;
//! st.step(Instr::rrr(Opcode::Add, 3, 1, 2));
//! assert_eq!(st.regs[3], 42);
//! ```

mod asm;
mod golden;
mod opcode;

pub use asm::{assemble, disassemble, AsmError};
pub use golden::ArchState;
pub use opcode::{Instr, Opcode};

/// Datapath width in bits.
pub const XLEN: u8 = 8;
/// Number of architectural registers (`r0` reads as zero).
pub const NUM_REGS: usize = 4;
/// Data-memory size in words.
pub const MEM_WORDS: usize = 8;
/// Bits of an address forming the "page offset" used for store-to-load
/// conflict detection.
pub const OFFSET_BITS: u8 = 2;
/// Width of the program counter in bits (instructions are word-addressed).
pub const PC_BITS: u8 = 8;
