//! `synthlc serve`: a long-lived verification daemon over the batch
//! drivers (DESIGN.md §13).
//!
//! The batch CLI answers one query and exits; this crate turns the same
//! engines into a supervised service:
//!
//! ```text
//! client ──JSONL──► accept loop ──► bounded queue ──► supervised workers
//!                                      │ shed when full     │ catch_unwind
//!                                      ▼                    │ watchdog deadline
//!                                 `overloaded`              │ seeded-backoff retries
//!                                                           ▼
//!                                         verdict store (checkpoint journal)
//! ```
//!
//! Robustness contract, inherited from the batch drivers and extended to
//! the serve phase:
//!
//! * **faults only widen verdicts** — a panic, stall, torn write, or
//!   expired watchdog can turn a clean verdict into `Undetermined`
//!   (exit 2), never flip it;
//! * **retries are recovery, not replay** — each attempt rolls its own
//!   fault schedule ([`mc::FaultPlan::serve_fault_for`]), so an injected
//!   fault does not deterministically re-hit;
//! * **clean verdicts are content-addressed** — keyed by (job kind,
//!   design fingerprint, verdict-relevant knobs) in a crash-safe journal,
//!   so identical jobs are answered from cache and a killed daemon
//!   restarts byte-identically (`tests/serve_robustness.rs`).

pub mod engine;
pub mod knobs;
pub mod net;
pub mod proto;
pub mod store;

pub use engine::{ServeConfig, Server, Submit};
pub use knobs::{parse_deadline_secs, parse_fault_rate};
pub use net::{run_client, serve_tcp};
pub use proto::{Op, Request};
pub use store::VerdictStore;

/// The fault seed pinned by the `scripts/ci.sh` serve-smoke stage: at
/// rate 0.5 it plans a worker panic for the very first job's first
/// attempt, a clean first retry for that job, and clean first attempts
/// for the next few jobs — so the smoke run must retry exactly once and
/// still exit clean. `tests` below assert the schedule so a drift in the
/// fault PRNG shows up here, not as a flaky CI stage.
pub const CI_SMOKE_SEED: u64 = 209;

#[cfg(test)]
mod seed_tests {
    use super::*;
    use mc::{FaultPlan, ServeFault};

    #[test]
    fn ci_serve_smoke_seed_is_pinned() {
        let fits = |s: u64| {
            let p = FaultPlan::new(s, 0.5);
            p.serve_fault_for("serve-worker", 0, 0) == Some(ServeFault::WorkerPanic)
                && p.serve_fault_for("serve-worker", 0, 1).is_none()
                && (1..6).all(|ix| p.serve_fault_for("serve-worker", ix, 0).is_none())
        };
        let found = (0..200_000).find(|&s| fits(s)).expect("some seed fits");
        assert_eq!(
            found, CI_SMOKE_SEED,
            "scripts/ci.sh serve-smoke pins SYNTHLC_FAULT_SEED={CI_SMOKE_SEED}; \
             the fault schedule drifted — repin both to {found}"
        );
    }
}
