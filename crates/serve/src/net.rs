//! The TCP face of the daemon, and the line-protocol client.
//!
//! One JSONL stream per connection: the client writes request lines, the
//! daemon multiplexes every event for that connection's jobs back over
//! the same socket (events are tagged with the request `id`). `stats` and
//! `shutdown` are answered inline; job ops go through the bounded queue.
//!
//! The accept loop polls a shutdown flag set by SIGINT/SIGTERM or by a
//! client's `shutdown` request; either way the daemon stops accepting,
//! drains every queued and in-flight job (their events still stream to
//! their clients), and exits 0 with the verdict journal fsync'd — the
//! kill-and-restart path in `tests/serve_robustness.rs` then resumes it
//! byte for byte.

use crate::engine::{ServeConfig, Server, Submit};
use crate::proto::{ev_error, ev_overloaded, Op, Request};
use crate::store::VerdictStore;
use jsonio::{jsonl, Json};
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

static SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    // SIGINT = 2, SIGTERM = 15 on every unix this builds on.
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

/// Runs the daemon on `127.0.0.1:port` (`0` picks a free port). Prints
/// `listening on 127.0.0.1:PORT` once ready — scripts parse that line.
/// Returns the process exit code (0 after a graceful drain).
pub fn serve_tcp(
    cfg: ServeConfig,
    store: Option<Arc<VerdictStore>>,
    port: u16,
) -> std::io::Result<u8> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    println!("listening on {addr}");
    std::io::stdout().flush()?;
    install_signal_handlers();
    SIGNALLED.store(false, Ordering::SeqCst);
    listener.set_nonblocking(true)?;
    let server = Arc::new(Server::start(cfg, store));
    let stop = Arc::new(AtomicBool::new(false));
    // Live connections: a read-half handle (to unblock the reader at
    // drain time) plus the handler thread (which owns the forwarder and
    // joins it before exiting). Swept as connections finish so the vec
    // tracks only live sockets.
    let mut conns: Vec<(TcpStream, JoinHandle<()>)> = Vec::new();
    loop {
        if SIGNALLED.load(Ordering::SeqCst) || stop.load(Ordering::SeqCst) {
            break;
        }
        conns.retain(|(_, h)| !h.is_finished());
        match listener.accept() {
            Ok((sock, _)) => {
                let server = Arc::clone(&server);
                let stop = Arc::clone(&stop);
                let read_half = sock.try_clone();
                let handle = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_conn(&server, &stop, sock))
                    .expect("spawn connection handler");
                if let Ok(read_half) = read_half {
                    conns.push((read_half, handle));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(30));
            }
            Err(_) => break,
        }
    }
    // Graceful drain: no new work, every accepted job completes, workers
    // join, journal already fsync'd per record.
    server.join();
    // Every terminal event is now *enqueued*; make sure it is *flushed*
    // before the process exits. Shutting the read halves unblocks any
    // handler parked in read_line (an idle client that never closed),
    // whose exit drops the last event sender; each forwarder then drains
    // its queue onto the socket and is joined by its handler — so joining
    // the handlers guarantees drained jobs' events reached their clients.
    for (read_half, handle) in conns {
        let _ = read_half.shutdown(Shutdown::Read);
        let _ = handle.join();
    }
    // stdout may be a long-gone pipe by now (supervisor died first);
    // a drained daemon still exits 0.
    let _ = writeln!(std::io::stdout(), "drained; bye");
    Ok(0)
}

fn handle_conn(server: &Server, stop: &AtomicBool, sock: TcpStream) {
    let Ok(read_half) = sock.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let writer = Arc::new(Mutex::new(sock));
    let (tx, rx) = mpsc::channel::<Json>();
    // One forwarder per connection serializes all of its jobs' events
    // onto the socket.
    let fwd_writer = Arc::clone(&writer);
    let forwarder = std::thread::Builder::new()
        .name("serve-conn-out".into())
        .spawn(move || {
            for ev in rx {
                let mut w = fwd_writer.lock().unwrap_or_else(|e| e.into_inner());
                if jsonl::write_line(&mut *w, &ev).is_err() {
                    break;
                }
            }
        })
        .expect("spawn connection forwarder");
    while let Ok(Some(line)) = jsonl::read_line(&mut reader) {
        let parsed = line.map_err(|e| format!("malformed request line: {e:?}"));
        let (id, req) = match &parsed {
            Ok(j) => (
                j.field("id")
                    .and_then(Json::as_str)
                    .unwrap_or("job")
                    .to_owned(),
                Request::parse(j),
            ),
            Err(msg) => ("job".to_owned(), Err(msg.clone())),
        };
        match req {
            Err(msg) => {
                let _ = tx.send(ev_error(&id, &msg));
            }
            Ok(req) if req.op == Op::Stats => {
                let _ = tx.send(server.stats_json());
            }
            Ok(req) if req.op == Op::Shutdown => {
                let _ = tx.send(Json::obj([
                    ("ev", Json::str("bye")),
                    ("id", Json::str(&req.id)),
                ]));
                stop.store(true, Ordering::SeqCst);
            }
            Ok(req) => match server.submit(req.clone(), tx.clone()) {
                Submit::Accepted(_) => {}
                Submit::Overloaded => {
                    let _ = tx.send(ev_overloaded(&req.id));
                }
                Submit::ShuttingDown => {
                    let _ = tx.send(ev_error(&req.id, "daemon is shutting down"));
                }
            },
        }
    }
    drop(tx);
    let _ = forwarder.join();
}

/// Runs the client side: writes `requests` to `addr`, prints every event
/// line to stdout, and returns the process exit code — the worst job
/// verdict seen (`result.exit`), or 1 on protocol errors.
pub fn run_client(addr: &str, requests: &[Request]) -> std::io::Result<u8> {
    let sock = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(sock.try_clone()?);
    let mut writer = sock;
    // Terminal events expected: one per queued job (done/overloaded/
    // error), one per stats (stats), one per shutdown (bye).
    let mut expected = 0usize;
    for r in requests {
        jsonl::write_line(&mut writer, &r.encode())?;
        expected += 1;
    }
    let mut exit = 0u8;
    while expected > 0 {
        match jsonl::read_line(&mut reader)? {
            None => {
                eprintln!("error: daemon closed the connection early");
                return Ok(1);
            }
            Some(Err(e)) => {
                eprintln!("error: malformed event line: {e:?}");
                return Ok(1);
            }
            Some(Ok(ev)) => {
                println!("{}", ev.render_compact());
                match ev.field("ev").and_then(Json::as_str) {
                    Some("done") => {
                        expected -= 1;
                        let code = ev
                            .field("result")
                            .and_then(|r| r.field("exit"))
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                        exit = exit.max(code.min(u8::MAX as u64) as u8);
                    }
                    Some("overloaded") => {
                        expected -= 1;
                        // EX_TEMPFAIL: the daemon shed the job; resubmit.
                        exit = exit.max(75);
                    }
                    Some("error") => {
                        expected -= 1;
                        exit = exit.max(1);
                    }
                    Some("stats") | Some("bye") => {
                        expected -= 1;
                    }
                    _ => {}
                }
            }
        }
    }
    Ok(exit)
}
