//! Shared validation for the robustness knobs every front end parses
//! (`synthlc-cli paths/leak/fuzz/serve/client`). A zero, negative, or NaN
//! value for these knobs is always a mistake — a zero deadline expires
//! every query instantly, a zero fault rate plans nothing (omit the flag),
//! and NaN compares false with everything, silently disabling whatever
//! range check it meets — so they are rejected up front with a diagnostic
//! that says what the knob means, not just "bad value".

/// Parses a `--deadline-secs` value: a positive whole number of seconds.
pub fn parse_deadline_secs(s: &str) -> Result<u64, String> {
    let t = s.trim();
    if let Ok(f) = t.parse::<f64>() {
        if f.is_nan() {
            return Err(
                "--deadline-secs must be a positive whole number of seconds, got NaN".to_owned(),
            );
        }
        if f <= 0.0 {
            return Err(format!(
                "--deadline-secs must be positive, got `{s}` \
                 (a zero or negative deadline would expire every query instantly)"
            ));
        }
    }
    t.parse::<u64>().map_err(|_| {
        format!("--deadline-secs must be a positive whole number of seconds, got `{s}`")
    })
}

/// Parses a `--fault-rate` value: a probability in `(0, 1]`.
pub fn parse_fault_rate(s: &str) -> Result<f64, String> {
    let t = s.trim();
    let f: f64 = t
        .parse()
        .map_err(|_| format!("--fault-rate must be a probability in (0, 1], got `{s}`"))?;
    if f.is_nan() {
        return Err("--fault-rate must be a probability in (0, 1], got NaN".to_owned());
    }
    if f <= 0.0 {
        return Err(format!(
            "--fault-rate must be positive, got `{s}` \
             (a zero or negative rate plans no faults; omit the flag instead)"
        ));
    }
    if f > 1.0 {
        return Err(format!("--fault-rate must be at most 1, got `{s}`"));
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_accepts_positive_integers() {
        assert_eq!(parse_deadline_secs("1"), Ok(1));
        assert_eq!(parse_deadline_secs(" 45 "), Ok(45));
        assert_eq!(parse_deadline_secs("86400"), Ok(86400));
    }

    #[test]
    fn deadline_rejects_zero_negative_nan_and_garbage() {
        for bad in ["0", "-5", "-0.5", "NaN", "nan", "", "soon", "1.5"] {
            let err = parse_deadline_secs(bad).expect_err(&format!("`{bad}` must be rejected"));
            assert!(
                err.contains("--deadline-secs"),
                "diagnostic for `{bad}` must name the flag: {err}"
            );
        }
        // The zero/negative diagnostic explains the consequence.
        assert!(parse_deadline_secs("0").unwrap_err().contains("expire"));
        assert!(parse_deadline_secs("-3").unwrap_err().contains("positive"));
    }

    #[test]
    fn fault_rate_accepts_probabilities() {
        assert_eq!(parse_fault_rate("0.5"), Ok(0.5));
        assert_eq!(parse_fault_rate("1"), Ok(1.0));
        assert_eq!(parse_fault_rate(" 0.01 "), Ok(0.01));
    }

    #[test]
    fn fault_rate_rejects_zero_negative_nan_and_out_of_range() {
        for bad in ["0", "0.0", "-0.5", "-1", "NaN", "nan", "1.5", "2", "", "x"] {
            let err = parse_fault_rate(bad).expect_err(&format!("`{bad}` must be rejected"));
            assert!(
                err.contains("--fault-rate"),
                "diagnostic for `{bad}` must name the flag: {err}"
            );
        }
        assert!(parse_fault_rate("0").unwrap_err().contains("omit the flag"));
        assert!(parse_fault_rate("NaN").unwrap_err().contains("NaN"));
    }
}
