//! The supervised worker pool behind the daemon (DESIGN.md §13).
//!
//! Jobs land in a bounded queue (submissions past capacity are shed with
//! an explicit `overloaded` event — backpressure, never silent drops) and
//! are executed by worker threads, each attempt wrapped in
//! `catch_unwind` and run under a per-job watchdog deadline
//! ([`sat::CancelToken`], checked cooperatively inside the solver).
//! Transient failures — a caught panic, an expired watchdog, a degraded
//! verdict — are retried with seeded exponential backoff up to the
//! configured retry budget; only then does the job degrade to an
//! `Undetermined`-shaped verdict. The faults-only-widen-verdicts
//! invariant of the batch drivers carries over: no fault, injected or
//! real, can flip a clean verdict, only widen it.
//!
//! Clean verdicts are stored in the content-addressed [`VerdictStore`],
//! so identical (design fingerprint, knobs) jobs are answered from cache
//! without re-solving, and a restarted daemon replays the journal and
//! answers byte for byte identically.

use crate::proto::{ev_done, ev_error, ev_progress, Op, Request};
use crate::store::{fnv, VerdictStore};
use jsonio::Json;
use mc::{CancelToken, FaultPlan, ServeFault};
use mupath::{
    design_fingerprint, synthesize_isa_with, ContextMode, EngineOptions, RobustOptions, SynthConfig,
};
use sat::ClientBudgets;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use synthlc::{synthesize_leakage, LeakConfig, TxKind};
use uarch::Design;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads; `0` selects [`mc::default_threads`].
    pub workers: usize,
    /// Bounded-queue capacity; submissions past it are shed.
    pub queue_cap: usize,
    /// Retry budget per job before its degraded verdict stands.
    pub retries: u32,
    /// Per-job watchdog deadline.
    pub deadline_secs: Option<u64>,
    /// Serve-phase fault injection (chaos testing).
    pub faults: FaultPlan,
    /// Base of the seeded exponential retry backoff.
    pub backoff_ms: u64,
    /// Per-client conflict-budget cap (`None` = accounting only).
    pub client_budget: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_cap: 32,
            retries: 2,
            deadline_secs: None,
            faults: FaultPlan::disabled(),
            backoff_ms: 10,
            client_budget: None,
        }
    }
}

/// The synchronous answer to a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Submit {
    /// Queued at this position (the `accepted` event was already sent).
    Accepted(usize),
    /// Shed: the queue is at capacity.
    Overloaded,
    /// Refused: the daemon is draining for shutdown.
    ShuttingDown,
}

struct Job {
    seq: u64,
    req: Request,
    tx: Sender<Json>,
}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Job>,
    in_flight: usize,
    shutdown: bool,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    panics_caught: AtomicU64,
}

struct Inner {
    cfg: ServeConfig,
    store: Option<Arc<VerdictStore>>,
    budgets: ClientBudgets,
    state: Mutex<QueueState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    seq: AtomicU64,
    counters: Counters,
}

/// The daemon's scheduling core: a bounded queue, supervised workers,
/// per-job event streams. Transport-agnostic — the TCP layer in
/// [`crate::net`] and the in-process tests drive the same object.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Starts the worker pool.
    pub fn start(cfg: ServeConfig, store: Option<Arc<VerdictStore>>) -> Server {
        let workers = if cfg.workers == 0 {
            mc::default_threads()
        } else {
            cfg.workers
        };
        let inner = Arc::new(Inner {
            budgets: ClientBudgets::new(cfg.client_budget),
            cfg,
            store,
            state: Mutex::new(QueueState::default()),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            seq: AtomicU64::new(0),
            counters: Counters::default(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Submits one job. On acceptance the `accepted` event is sent on
    /// `tx` *before* any worker event, so clients always see
    /// `accepted` → (`progress`)* → `done` in order.
    pub fn submit(&self, req: Request, tx: Sender<Json>) -> Submit {
        let inner = &self.inner;
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.shutdown {
            return Submit::ShuttingDown;
        }
        if st.pending.len() >= inner.cfg.queue_cap {
            inner.counters.shed.fetch_add(1, Ordering::Relaxed);
            return Submit::Overloaded;
        }
        let pos = st.pending.len();
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        inner.counters.submitted.fetch_add(1, Ordering::Relaxed);
        let _ = tx.send(crate::proto::ev_accepted(&req.id, pos));
        st.pending.push_back(Job { seq, req, tx });
        drop(st);
        inner.work_cv.notify_one();
        Submit::Accepted(pos)
    }

    /// Stops accepting work and wakes every worker; queued jobs still run
    /// to completion (graceful drain).
    pub fn shutdown(&self) {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.shutdown = true;
        drop(st);
        self.inner.work_cv.notify_all();
    }

    /// Blocks until the queue is empty and no job is in flight.
    pub fn drain(&self) {
        let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        while !st.pending.is_empty() || st.in_flight > 0 {
            st = self
                .inner
                .idle_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Shuts down, drains, and joins the workers.
    pub fn join(&self) {
        self.shutdown();
        self.drain();
        let handles: Vec<_> = {
            let mut w = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            w.drain(..).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// The `stats` event: counters, cache reuse, per-client budgets.
    pub fn stats_json(&self) -> Json {
        let c = &self.inner.counters;
        let mut fields = vec![
            ("ev".to_owned(), Json::str("stats")),
            (
                "submitted".to_owned(),
                Json::Int(c.submitted.load(Ordering::Relaxed)),
            ),
            (
                "completed".to_owned(),
                Json::Int(c.completed.load(Ordering::Relaxed)),
            ),
            (
                "retried".to_owned(),
                Json::Int(c.retried.load(Ordering::Relaxed)),
            ),
            (
                "degraded".to_owned(),
                Json::Int(c.degraded.load(Ordering::Relaxed)),
            ),
            ("shed".to_owned(), Json::Int(c.shed.load(Ordering::Relaxed))),
            (
                "panics_caught".to_owned(),
                Json::Int(c.panics_caught.load(Ordering::Relaxed)),
            ),
        ];
        if let Some(store) = &self.inner.store {
            fields.push(("cache_hits".into(), Json::Int(store.hits())));
            fields.push(("cache_size".into(), Json::Int(store.len() as u64)));
            fields.push(("torn_writes".into(), Json::Int(store.torn_writes())));
        }
        let clients: Vec<Json> = self
            .inner
            .budgets
            .totals()
            .into_iter()
            .map(|(name, conflicts, propagations)| {
                Json::obj([
                    ("name", Json::str(name)),
                    ("conflicts", Json::Int(conflicts)),
                    ("propagations", Json::Int(propagations)),
                ])
            })
            .collect();
        fields.push(("clients".into(), Json::Arr(clients)));
        Json::Obj(fields)
    }

    /// Degraded-job count so far (tests).
    pub fn degraded(&self) -> u64 {
        self.inner.counters.degraded.load(Ordering::Relaxed)
    }

    /// Retry-attempt count so far (tests).
    pub fn retried(&self) -> u64 {
        self.inner.counters.retried.load(Ordering::Relaxed)
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(job) = st.pending.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        // The whole job — including our own orchestration — runs under
        // catch_unwind so a worker thread can never die and strand the
        // queue.
        let _ = catch_unwind(AssertUnwindSafe(|| process(inner, &job)));
        let mut st = inner.state.lock().unwrap_or_else(|e| e.into_inner());
        st.in_flight -= 1;
        drop(st);
        inner.idle_cv.notify_all();
    }
}

/// Everything about a job resolved before the attempt loop: design,
/// opcode, effective knobs, and the verdict-store key.
struct Prep {
    design: Option<Design>,
    opcode: Option<isa::Opcode>,
    bound: usize,
    budget: u64,
    key: Option<String>,
}

fn prepare(req: &Request) -> Result<Prep, String> {
    match req.op {
        Op::Paths | Op::Leak => {
            let spec = req.design.as_deref().expect("validated by Request::parse");
            let design = load_design(spec)?;
            let iname = req.instr.as_deref().expect("validated by Request::parse");
            let opcode = design
                .isa
                .iter()
                .copied()
                .find(|o| o.mnemonic().eq_ignore_ascii_case(iname))
                .ok_or_else(|| format!("`{iname}` is not implemented by {}", design.name))?;
            let bound = req.bound.unwrap_or(design.max_latency.min(16) + 8);
            let budget = req.budget.unwrap_or(2_000_000);
            let fp = design_fingerprint(&design);
            let key = format!(
                "serve:{}:{fp:016x}:{:?}:{bound}:{budget}",
                req.op.label(),
                opcode
            );
            Ok(Prep {
                design: Some(design),
                opcode: Some(opcode),
                bound,
                budget,
                key: Some(key),
            })
        }
        Op::Check => {
            let source = req.source.as_deref().expect("validated by Request::parse");
            Ok(Prep {
                design: None,
                opcode: None,
                bound: 0,
                budget: 0,
                key: Some(format!("serve:check:{:016x}", fnv(source.as_bytes()))),
            })
        }
        Op::Fuzz => {
            // The effective bound is verdict-relevant (a clean bound-4 run
            // says nothing about bound 12), so it must be part of the key
            // even when the client left it defaulted.
            let bound = req
                .bound
                .unwrap_or_else(|| fuzz::FuzzConfig::default().bound);
            Ok(Prep {
                design: None,
                opcode: None,
                bound,
                budget: 0,
                key: Some(format!("serve:fuzz:{}:{}:{bound}", req.seed, req.cases)),
            })
        }
        Op::Stats | Op::Shutdown => Err(format!(
            "op `{}` is answered inline, not queued",
            req.op.label()
        )),
    }
}

fn design_by_name(name: &str) -> Option<Design> {
    Some(match name {
        "minicva6" => uarch::build_core(&uarch::CoreConfig::default()),
        "minicva6-mul" => uarch::build_core(&uarch::CoreConfig::cva6_mul()),
        "minicva6-op" => uarch::build_core(&uarch::CoreConfig::cva6_op()),
        "hardened" => uarch::build_core(&uarch::CoreConfig::hardened()),
        "tinycore" => uarch::build_tiny(),
        "minicache" => uarch::cache::build_cache(),
        _ => return None,
    })
}

fn load_design(spec: &str) -> Result<Design, String> {
    if !spec.ends_with(".nl") && !std::path::Path::new(spec).is_file() {
        return design_by_name(spec)
            .ok_or_else(|| format!("unknown design `{spec}` (not a built-in, not a file)"));
    }
    let src = std::fs::read_to_string(spec).map_err(|e| format!("{spec}: {e}"))?;
    let (design, result) = uarch::frontend::parse_design(&src, spec);
    design.ok_or_else(|| format!("{spec}: {}", result.report.summary()))
}

fn process(inner: &Inner, job: &Job) {
    let req = &job.req;
    let prep = match prepare(req) {
        Ok(p) => p,
        Err(msg) => {
            let _ = job.tx.send(ev_error(&req.id, &msg));
            return;
        }
    };
    // Content-addressed reuse: identical (design fingerprint, knobs) jobs
    // are answered from the verdict store without re-solving. Provenance
    // goes in an advisory `progress` event, never in the verdict, so a
    // cached answer is byte-identical to a freshly computed one.
    if let (Some(store), Some(key)) = (&inner.store, &prep.key) {
        if let Some(rec) = store.get(key) {
            if let Ok(result) = Json::parse(&rec) {
                let _ = job
                    .tx
                    .send(ev_progress(&req.id, "served from verdict store"));
                let _ = job.tx.send(ev_done(&req.id, result));
                inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
    let mut last_degraded: Option<Json> = None;
    for attempt in 0..=inner.cfg.retries {
        let fault = inner
            .cfg
            .faults
            .serve_fault_for("serve-worker", job.seq as usize, attempt);
        if attempt > 0 {
            inner.counters.retried.fetch_add(1, Ordering::Relaxed);
            let _ = job
                .tx
                .send(ev_progress(&req.id, &format!("retry attempt {attempt}")));
            backoff_sleep(inner, job.seq, attempt);
        }
        if fault == Some(ServeFault::QueueStall) {
            // A stall only adds latency; the attempt then runs clean.
            let _ = job
                .tx
                .send(ev_progress(&req.id, "injected fault: queue stall"));
            std::thread::sleep(Duration::from_millis(25));
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            execute(inner, req, &prep, job.seq, attempt, fault)
        }));
        match run {
            Err(_) => {
                inner.counters.panics_caught.fetch_add(1, Ordering::Relaxed);
                let _ = job
                    .tx
                    .send(ev_progress(&req.id, "worker panic caught by supervisor"));
            }
            Ok(Err(msg)) => {
                let _ = job.tx.send(ev_error(&req.id, &msg));
                return;
            }
            Ok(Ok((payload, degraded))) => {
                if !degraded {
                    if let (Some(store), Some(key)) = (&inner.store, &prep.key) {
                        if fault == Some(ServeFault::TornJournalWrite) {
                            let _ = job
                                .tx
                                .send(ev_progress(&req.id, "injected fault: torn journal write"));
                            store.put_torn(key, &payload.render_compact());
                        } else {
                            store.put(key, &payload.render_compact());
                        }
                    }
                    let _ = job.tx.send(ev_done(&req.id, payload));
                    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let _ = job
                    .tx
                    .send(ev_progress(&req.id, &format!("attempt {attempt} degraded")));
                last_degraded = Some(payload);
            }
        }
    }
    // Retry budget exhausted: the verdict stands, widened to
    // undetermined — never flipped. Degraded verdicts are not cached, so
    // a later identical job (or a restarted daemon) can still converge to
    // the clean answer.
    inner.counters.degraded.fetch_add(1, Ordering::Relaxed);
    let payload = last_degraded.unwrap_or_else(|| {
        Json::obj([
            ("op", Json::str(req.op.label())),
            ("status", Json::str("undetermined")),
            ("reason", Json::str("job panicked on every attempt")),
            ("exit", Json::Int(2)),
        ])
    });
    let _ = job.tx.send(ev_done(&req.id, payload));
    inner.counters.completed.fetch_add(1, Ordering::Relaxed);
}

/// Seeded exponential backoff: deterministic per (seed, job, attempt), so
/// chaos runs replay their timing envelope from the fault seed alone.
fn backoff_sleep(inner: &Inner, seq: u64, attempt: u32) {
    if inner.cfg.backoff_ms == 0 {
        return;
    }
    let base = inner.cfg.backoff_ms << (attempt.min(6) - 1);
    let mut rng = prng::Rng::new(
        inner.cfg.faults.seed() ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ attempt as u64,
    );
    let jitter = rng.range(0, base.max(1));
    std::thread::sleep(Duration::from_millis(base + jitter));
}

fn execute(
    inner: &Inner,
    req: &Request,
    prep: &Prep,
    seq: u64,
    attempt: u32,
    fault: Option<ServeFault>,
) -> Result<(Json, bool), String> {
    // The watchdog: every attempt runs under its own deadline token. An
    // injected DeadlineExpired fault is an already-expired watchdog.
    let watchdog: Option<Arc<CancelToken>> = if fault == Some(ServeFault::DeadlineExpired) {
        Some(Arc::new(CancelToken::deadline_in(Duration::ZERO)))
    } else {
        inner
            .cfg
            .deadline_secs
            .map(|s| Arc::new(CancelToken::deadline_in(Duration::from_secs(s))))
    };
    if fault == Some(ServeFault::WorkerPanic) {
        panic!("injected serve fault: worker panic (job {seq}, attempt {attempt})");
    }
    let robust = RobustOptions {
        cancel: watchdog.clone(),
        faults: FaultPlan::disabled(),
        journal: None,
        retries: 0,
    };
    let budget_pool = inner.budgets.pool_for(&req.client);
    match req.op {
        Op::Paths => {
            let design = prep.design.as_ref().expect("prepared");
            let op = prep.opcode.expect("prepared");
            let cfg = SynthConfig {
                slots: vec![0, 1],
                context: default_context(design),
                bound: prep.bound,
                conflict_budget: Some(prep.budget),
                max_shapes: 64,
            };
            let opts = EngineOptions {
                threads: 1,
                budget_pool: Some(budget_pool),
                robust,
            };
            let isa_synth = synthesize_isa_with(design, &[op], &cfg, &opts);
            let r = &isa_synth.instrs[0];
            let degraded = isa_synth.degraded_jobs > 0 || isa_synth.stats.degraded() > 0;
            let payload = Json::obj([
                ("op", Json::str("paths")),
                ("design", Json::str(&design.name)),
                ("instr", Json::str(op.mnemonic())),
                ("mupaths", Json::Int(r.paths.len() as u64)),
                ("complete", Json::Bool(r.complete)),
                ("properties", Json::Int(isa_synth.stats.properties)),
                ("undetermined", Json::Int(isa_synth.stats.undetermined)),
                ("exit", Json::Int(if degraded { 2 } else { 0 })),
            ]);
            Ok((payload, degraded))
        }
        Op::Leak => {
            let design = prep.design.as_ref().expect("prepared");
            let op = prep.opcode.expect("prepared");
            let cfg = LeakConfig {
                mupath: SynthConfig {
                    slots: vec![0, 1],
                    context: default_context(design),
                    bound: prep.bound,
                    conflict_budget: Some(prep.budget),
                    max_shapes: 64,
                },
                transmitters: design
                    .isa
                    .iter()
                    .copied()
                    .filter(|t| {
                        matches!(
                            t,
                            isa::Opcode::Add
                                | isa::Opcode::Mul
                                | isa::Opcode::Div
                                | isa::Opcode::Lw
                                | isa::Opcode::Sw
                                | isa::Opcode::Beq
                                | isa::Opcode::Jalr
                        )
                    })
                    .collect(),
                kinds: vec![
                    TxKind::Intrinsic,
                    TxKind::DynamicOlder,
                    TxKind::DynamicYounger,
                    TxKind::Static,
                ],
                bound: prep.bound,
                conflict_budget: Some(prep.budget),
                threads: 1,
                slot_base: 0,
                max_sources: Some(3),
                coi: true,
                static_prune: true,
                budget_pool: Some(budget_pool),
                robust,
            };
            let report = synthesize_leakage(design, &[op], &cfg);
            let mut stats = report.mupath_stats;
            stats.absorb(&report.ift_stats);
            let degraded = report.degraded_jobs > 0 || stats.degraded() > 0;
            let signatures: Vec<Json> = report
                .signatures
                .iter()
                .map(|s| Json::str(s.render()))
                .collect();
            let payload = Json::obj([
                ("op", Json::str("leak")),
                ("design", Json::str(&design.name)),
                ("instr", Json::str(op.mnemonic())),
                ("signatures", Json::Arr(signatures)),
                ("transponder", Json::Bool(report.transponders.contains(&op))),
                ("properties", Json::Int(stats.properties)),
                ("undetermined", Json::Int(stats.undetermined)),
                ("exit", Json::Int(if degraded { 2 } else { 0 })),
            ]);
            Ok((payload, degraded))
        }
        Op::Check => {
            let source = req.source.as_deref().expect("prepared");
            let result = netlist::text::check(source, "<serve>");
            let code = result.report.exit_code(false);
            let payload = Json::obj([
                ("op", Json::str("check")),
                ("summary", Json::str(result.report.summary())),
                ("exit", Json::Int(code as u64)),
            ]);
            Ok((payload, false))
        }
        Op::Fuzz => {
            let mut cfg = fuzz::FuzzConfig {
                seed: req.seed,
                cases: req.cases,
                // Resolved in prepare() so the verdict-store key and the
                // run always agree on the effective bound.
                bound: prep.bound,
                ..Default::default()
            };
            cfg.deadline = watchdog;
            let report = fuzz::run_fuzz(&cfg);
            let degraded = !report.completed;
            let exit = if report.has_mismatches() {
                1
            } else if degraded {
                2
            } else {
                0
            };
            let payload = Json::obj([
                ("op", Json::str("fuzz")),
                ("seed", Json::Int(report.seed)),
                ("cases", Json::Int(req.cases)),
                ("mismatches", Json::Int(report.mismatches.len() as u64)),
                ("completed", Json::Bool(report.completed)),
                ("exit", Json::Int(exit)),
            ]);
            Ok((payload, degraded))
        }
        Op::Stats | Op::Shutdown => Err("not a queued op".into()),
    }
}

fn default_context(design: &Design) -> ContextMode {
    if design.type_values.is_empty() {
        ContextMode::NoControlFlow
    } else {
        ContextMode::Any
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_store_key_covers_every_verdict_relevant_knob() {
        let mut r = Request::new(Op::Fuzz);
        r.seed = 7;
        r.cases = 16;
        let defaulted = prepare(&r).unwrap();
        r.bound = Some(fuzz::FuzzConfig::default().bound);
        let explicit_default = prepare(&r).unwrap();
        assert_eq!(
            defaulted.key, explicit_default.key,
            "an explicit bound equal to the default must hit the same entry"
        );
        r.bound = Some(12);
        let deeper = prepare(&r).unwrap();
        assert_ne!(
            defaulted.key, deeper.key,
            "a different BMC bound is a different verdict; keys must differ"
        );
        assert_eq!(deeper.bound, 12, "the keyed bound is the bound that runs");
    }
}
