//! The content-addressed verdict store: the daemon's answer cache, backed
//! by the crash-safe checkpoint journal ([`synthlc::Journal`]).
//!
//! Keys are pure functions of (job kind, design fingerprint, verdict-
//! relevant knobs) — never of deadlines, fault plans, or retry budgets,
//! which can only *widen* verdicts, not change clean ones. Only clean
//! (non-degraded) verdicts are stored, so everything the cache answers is
//! the verdict an uninterrupted fault-free run would produce. On restart
//! the journal replays (tolerating a torn tail, including a tear spliced
//! across two appends), so a killed daemon resumes answering byte for
//! byte identically.

use mc::JobStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use synthlc::Journal;

/// A journal-backed verdict cache with reuse counters.
#[derive(Debug)]
pub struct VerdictStore {
    journal: Journal,
    torn_writes: AtomicU64,
}

impl VerdictStore {
    /// Creates a fresh store at `path` (truncating any existing file).
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<VerdictStore> {
        Ok(VerdictStore {
            journal: Journal::create(path.into())?,
            torn_writes: AtomicU64::new(0),
        })
    }

    /// Reopens an existing store, replaying every intact record and
    /// truncating a torn tail (the restart path).
    pub fn resume(path: impl Into<PathBuf>) -> std::io::Result<VerdictStore> {
        Ok(VerdictStore {
            journal: Journal::resume(path.into())?,
            torn_writes: AtomicU64::new(0),
        })
    }

    /// The stored verdict for `key`, if a clean run completed it before.
    pub fn get(&self, key: &str) -> Option<String> {
        self.journal.get(key)
    }

    /// Durably stores a clean verdict.
    pub fn put(&self, key: &str, record: &str) {
        self.journal.put(key, record);
    }

    /// Fault injection ([`mc::ServeFault::TornJournalWrite`]): appends a
    /// *prefix* of the record's journal line — the on-disk shape a kill
    /// mid-append leaves behind. The record is not admitted to the
    /// in-memory map (it never durably completed), and the next
    /// [`resume`] must drop exactly this suffix.
    ///
    /// [`resume`]: VerdictStore::resume
    pub fn put_torn(&self, key: &str, record: &str) {
        self.torn_writes.fetch_add(1, Ordering::Relaxed);
        let line = jsonio::Json::obj([
            ("k", jsonio::Json::str(key)),
            ("r", jsonio::Json::str(record)),
        ])
        .render_compact();
        let torn = &line[..line.len() / 2];
        self.journal.append_raw(torn.as_bytes());
    }

    /// Cache hits served so far (the reuse counter).
    pub fn hits(&self) -> u64 {
        self.journal.hits()
    }

    /// Clean verdicts currently held.
    pub fn len(&self) -> usize {
        self.journal.len()
    }

    /// Whether the store holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }

    /// Torn-write faults injected so far.
    pub fn torn_writes(&self) -> u64 {
        self.torn_writes.load(Ordering::Relaxed)
    }
}

/// FNV-1a over a byte string (key fingerprinting).
pub fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("synthlc-serve-store-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn torn_put_is_invisible_and_recovered_on_resume() {
        let path = tmp("torn-put");
        {
            let s = VerdictStore::create(&path).unwrap();
            s.put("serve:a", "{\"exit\":0}");
            s.put_torn("serve:b", "{\"exit\":0}");
            assert_eq!(s.torn_writes(), 1);
            assert_eq!(s.get("serve:b"), None, "a torn write never completed");
            // A put after the tear appends a well-formed line again, but a
            // reader must stop at the tear (append-only recovery drops the
            // suffix from the first bad record on).
            s.put("serve:c", "{\"exit\":0}");
        }
        let s = VerdictStore::resume(&path).unwrap();
        assert_eq!(s.get("serve:a").as_deref(), Some("{\"exit\":0}"));
        assert_eq!(s.get("serve:b"), None);
        assert_eq!(s.hits(), 1);
        // After recovery truncated the tear, new verdicts persist again.
        s.put("serve:d", "{\"exit\":2}");
        drop(s);
        let s2 = VerdictStore::resume(&path).unwrap();
        assert_eq!(s2.get("serve:d").as_deref(), Some("{\"exit\":2}"));
        std::fs::remove_file(path).unwrap();
    }
}
