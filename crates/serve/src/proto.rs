//! The serve line protocol: one compact JSON object per line in both
//! directions (the `jsonio::jsonl` framing).
//!
//! Requests (client → daemon):
//!
//! ```text
//! {"op":"paths","id":"j1","design":"tinycore","instr":"add","bound":12}
//! {"op":"leak","id":"j2","design":"minicache","instr":"lw"}
//! {"op":"check","id":"j3","source":"module m { ... }"}
//! {"op":"fuzz","id":"j4","seed":7,"cases":16}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Events (daemon → client), always tagged with the request's `id`:
//!
//! * `accepted` — queued, with the queue position at admission;
//! * `overloaded` — shed by backpressure (queue at capacity); resubmit;
//! * `progress` — advisory notes: retries, injected faults, cache hits.
//!   Deliberately *not* part of the verdict: provenance may differ between
//!   an uninterrupted run and a resumed one;
//! * `done` — the verdict. For clean runs the `result` object is a pure
//!   function of (design fingerprint, knobs): no wall-clock times, no
//!   cache provenance — which is what makes restarted daemons answer byte
//!   for byte identically (`tests/serve_robustness.rs`);
//! * `error` — the request itself was unusable (unknown op, bad knobs).

use jsonio::Json;

/// What a request asks the daemon to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// RTL2MµPATH for one (design, instruction).
    Paths,
    /// SynthLC leakage signatures for one (design, instruction).
    Leak,
    /// Frontend static analysis of inline `.nl` source text.
    Check,
    /// A differential-oracle fuzz sweep.
    Fuzz,
    /// Counter snapshot (answered inline, never queued).
    Stats,
    /// Graceful shutdown: drain the queue, then exit (answered inline).
    Shutdown,
}

impl Op {
    fn from_label(s: &str) -> Option<Op> {
        Some(match s {
            "paths" => Op::Paths,
            "leak" => Op::Leak,
            "check" => Op::Check,
            "fuzz" => Op::Fuzz,
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            _ => return None,
        })
    }

    /// The wire label.
    pub fn label(&self) -> &'static str {
        match self {
            Op::Paths => "paths",
            Op::Leak => "leak",
            Op::Check => "check",
            Op::Fuzz => "fuzz",
            Op::Stats => "stats",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One parsed job request. Knob fields left `None` take the daemon's
/// per-design defaults (the same defaults as the one-shot CLI).
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// What to run.
    pub op: Op,
    /// Client-chosen correlation id, echoed on every event.
    pub id: String,
    /// Client account name for the per-client budget ledger.
    pub client: String,
    /// Design name or `.nl` path (`paths`/`leak`).
    pub design: Option<String>,
    /// Instruction mnemonic (`paths`/`leak`).
    pub instr: Option<String>,
    /// Inline `.nl` source text (`check`).
    pub source: Option<String>,
    /// BMC bound override.
    pub bound: Option<usize>,
    /// Per-query conflict budget override.
    pub budget: Option<u64>,
    /// Fuzz seed (`fuzz`).
    pub seed: u64,
    /// Fuzz case count (`fuzz`).
    pub cases: u64,
}

impl Request {
    /// Parses one request line. `Err` is a human-readable diagnostic for
    /// an `error` event.
    pub fn parse(j: &Json) -> Result<Request, String> {
        let op_label = j
            .field("op")
            .and_then(Json::as_str)
            .ok_or("request needs a string `op` field")?;
        let op = Op::from_label(op_label).ok_or_else(|| {
            format!("unknown op `{op_label}` (known: paths leak check fuzz stats shutdown)")
        })?;
        let str_field = |k: &str| j.field(k).and_then(Json::as_str).map(str::to_owned);
        let req = Request {
            op,
            id: str_field("id").unwrap_or_else(|| "job".to_owned()),
            client: str_field("client").unwrap_or_else(|| "anon".to_owned()),
            design: str_field("design"),
            instr: str_field("instr"),
            source: str_field("source"),
            bound: j.field("bound").and_then(Json::as_u64).map(|b| b as usize),
            budget: j.field("budget").and_then(Json::as_u64),
            seed: j.field("seed").and_then(Json::as_u64).unwrap_or(0),
            cases: j.field("cases").and_then(Json::as_u64).unwrap_or(16),
        };
        match op {
            Op::Paths | Op::Leak => {
                if req.design.is_none() || req.instr.is_none() {
                    return Err(format!("op `{op_label}` needs `design` and `instr` fields"));
                }
            }
            Op::Check => {
                if req.source.is_none() {
                    return Err("op `check` needs a `source` field with inline .nl text".into());
                }
            }
            Op::Fuzz | Op::Stats | Op::Shutdown => {}
        }
        Ok(req)
    }

    /// Renders the request back to its wire object (client side).
    pub fn encode(&self) -> Json {
        let mut fields = vec![
            ("op".to_owned(), Json::str(self.op.label())),
            ("id".to_owned(), Json::str(&self.id)),
            ("client".to_owned(), Json::str(&self.client)),
        ];
        if let Some(d) = &self.design {
            fields.push(("design".into(), Json::str(d)));
        }
        if let Some(i) = &self.instr {
            fields.push(("instr".into(), Json::str(i)));
        }
        if let Some(s) = &self.source {
            fields.push(("source".into(), Json::str(s)));
        }
        if let Some(b) = self.bound {
            fields.push(("bound".into(), Json::Int(b as u64)));
        }
        if let Some(b) = self.budget {
            fields.push(("budget".into(), Json::Int(b)));
        }
        if self.op == Op::Fuzz {
            fields.push(("seed".into(), Json::Int(self.seed)));
            fields.push(("cases".into(), Json::Int(self.cases)));
        }
        Json::Obj(fields)
    }

    /// A blank request for `op` (tests and the CLI client builder).
    pub fn new(op: Op) -> Request {
        Request {
            op,
            id: "job".into(),
            client: "anon".into(),
            design: None,
            instr: None,
            source: None,
            bound: None,
            budget: None,
            seed: 0,
            cases: 16,
        }
    }
}

/// `accepted` event: queued at `pos`.
pub fn ev_accepted(id: &str, pos: usize) -> Json {
    Json::obj([
        ("ev", Json::str("accepted")),
        ("id", Json::str(id)),
        ("pos", Json::Int(pos as u64)),
    ])
}

/// `overloaded` event: shed by backpressure.
pub fn ev_overloaded(id: &str) -> Json {
    Json::obj([("ev", Json::str("overloaded")), ("id", Json::str(id))])
}

/// `progress` event: an advisory note (retry, injected fault, cache hit).
pub fn ev_progress(id: &str, note: &str) -> Json {
    Json::obj([
        ("ev", Json::str("progress")),
        ("id", Json::str(id)),
        ("note", Json::str(note)),
    ])
}

/// `done` event: the verdict. `result` must already be deterministic.
pub fn ev_done(id: &str, result: Json) -> Json {
    Json::obj([
        ("ev", Json::str("done")),
        ("id", Json::str(id)),
        ("result", result),
    ])
}

/// `error` event: the request was unusable.
pub fn ev_error(id: &str, msg: &str) -> Json {
    Json::obj([
        ("ev", Json::str("error")),
        ("id", Json::str(id)),
        ("msg", Json::str(msg)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_encoding() {
        let mut r = Request::new(Op::Leak);
        r.id = "j7".into();
        r.design = Some("minicache".into());
        r.instr = Some("lw".into());
        r.bound = Some(14);
        let parsed = Request::parse(&r.encode()).unwrap();
        assert_eq!(parsed, r);

        let mut f = Request::new(Op::Fuzz);
        f.seed = 9;
        f.cases = 32;
        assert_eq!(Request::parse(&f.encode()).unwrap(), f);
    }

    #[test]
    fn malformed_requests_get_readable_diagnostics() {
        let no_op = Json::obj([("id", Json::str("x"))]);
        assert!(Request::parse(&no_op).unwrap_err().contains("op"));
        let bad_op = Json::obj([("op", Json::str("explode"))]);
        assert!(Request::parse(&bad_op).unwrap_err().contains("explode"));
        let no_design = Json::obj([("op", Json::str("paths"))]);
        assert!(Request::parse(&no_design).unwrap_err().contains("design"));
        let no_source = Json::obj([("op", Json::str("check"))]);
        assert!(Request::parse(&no_source).unwrap_err().contains("source"));
    }

    #[test]
    fn events_render_compact_and_tagged() {
        assert_eq!(
            ev_accepted("a", 3).render_compact(),
            r#"{"ev":"accepted","id":"a","pos":3}"#
        );
        assert_eq!(
            ev_overloaded("b").render_compact(),
            r#"{"ev":"overloaded","id":"b"}"#
        );
        assert_eq!(
            ev_done("c", Json::obj([("exit", Json::Int(0))])).render_compact(),
            r#"{"ev":"done","id":"c","result":{"exit":0}}"#
        );
    }
}
