//! IFT soundness (property-based): if two executions differ only in the
//! value of the taint-source register, then every signal whose value
//! differs between the executions must have its taint bit set.
//!
//! This is the invariant CellIFT-style instrumentation must uphold for
//! SynthLC's "independent" verdicts (§VII-B4 soundness) to be trustworthy;
//! over-taint (false positives) is allowed, under-taint is a bug.
//! (Hand-rolled random cases via `prng`.)

use ift::{instrument, IftOptions};
use netlist::{Builder, Netlist, SignalId, Wire};
use prng::Rng;
use sim::Simulator;

/// A recipe for one random combinational netlist over a tainted source
/// register and a clean one.
#[derive(Clone, Debug)]
enum OpPick {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Eq(usize, usize),
    Ult(usize, usize),
    Shl(usize, usize),
    Mux(usize, usize, usize),
    Not(usize),
    Neg(usize),
    RedOr(usize),
    Slice(usize),
}

fn random_op(rng: &mut Rng) -> OpPick {
    let a = rng.range_usize(0, 64);
    let b = rng.range_usize(0, 64);
    let c = rng.range_usize(0, 64);
    match rng.range(0, 14) {
        0 => OpPick::And(a, b),
        1 => OpPick::Or(a, b),
        2 => OpPick::Xor(a, b),
        3 => OpPick::Add(a, b),
        4 => OpPick::Sub(a, b),
        5 => OpPick::Mul(a, b),
        6 => OpPick::Eq(a, b),
        7 => OpPick::Ult(a, b),
        8 => OpPick::Shl(a, b),
        9 => OpPick::Mux(a, b, c),
        10 => OpPick::Not(a),
        11 => OpPick::Neg(a),
        12 => OpPick::RedOr(a),
        _ => OpPick::Slice(a),
    }
}

/// Builds a netlist from a recipe. Returns the netlist and the two source
/// registers.
fn build(recipe: &[OpPick]) -> (Netlist, SignalId, SignalId) {
    let mut b = Builder::new();
    let xin = b.input("xin", 4);
    let yin = b.input("yin", 4);
    let secret = b.reg("secret", 4, 0);
    let public = b.reg("public", 4, 0);
    b.set_next(secret, xin).unwrap();
    b.set_next(public, yin).unwrap();
    let mut pool: Vec<Wire> = vec![secret, public];
    // Keep only 4-bit wires in the pool so widths always match.
    for op in recipe {
        let pick = |i: &usize| pool[i % pool.len()];
        let w = match op {
            OpPick::And(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.and(x, y)
            }
            OpPick::Or(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.or(x, y)
            }
            OpPick::Xor(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.xor(x, y)
            }
            OpPick::Add(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.add(x, y)
            }
            OpPick::Sub(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.sub(x, y)
            }
            OpPick::Mul(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.mul(x, y)
            }
            OpPick::Eq(a, c) => {
                let (x, y) = (pick(a), pick(c));
                let e = b.eq(x, y);
                b.zext(e, 4)
            }
            OpPick::Ult(a, c) => {
                let (x, y) = (pick(a), pick(c));
                let e = b.ult(x, y);
                b.zext(e, 4)
            }
            OpPick::Shl(a, c) => {
                let (x, y) = (pick(a), pick(c));
                b.shl(x, y)
            }
            OpPick::Mux(s, a, c) => {
                let sel = {
                    let w = pick(s);
                    b.red_or(w)
                };
                let (x, y) = (pick(a), pick(c));
                b.mux(sel, x, y)
            }
            OpPick::Not(a) => {
                let x = pick(a);
                b.not(x)
            }
            OpPick::Neg(a) => {
                let x = pick(a);
                b.neg(x)
            }
            OpPick::RedOr(a) => {
                let x = pick(a);
                let r = b.red_or(x);
                b.zext(r, 4)
            }
            OpPick::Slice(a) => {
                let x = pick(a);
                let lo = b.slice(x, 1, 0);
                let hi = b.slice(x, 3, 2);
                b.concat(lo, hi) // swapped halves, still 4 bits
            }
        };
        pool.push(w);
    }
    let nl = b.finish().unwrap();
    let s = nl.find("secret").unwrap();
    let p = nl.find("public").unwrap();
    (nl, s, p)
}

#[test]
fn differing_bits_are_always_tainted() {
    prng::for_each_case("differing_bits_are_always_tainted", 0x1f70, 64, |rng| {
        let recipe: Vec<OpPick> = (0..rng.range_usize(1, 12))
            .map(|_| random_op(rng))
            .collect();
        let secret_a = rng.range(0, 16);
        let secret_b = rng.range(0, 16);
        let public = rng.range(0, 16);
        let (nl, secret, _p) = build(&recipe);
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![secret],
                ..Default::default()
            },
        );
        let run = |secret_val: u64| -> (Vec<u64>, Vec<u64>) {
            let mut s = Simulator::new(&inst.netlist);
            let en = inst.source_enable(secret).unwrap();
            s.set_input(nl.find("xin").unwrap(), secret_val);
            s.set_input(nl.find("yin").unwrap(), public);
            s.set_input(en, 1);
            s.step();
            s.set_input(en, 0);
            // Sample every original signal's value and taint.
            let vals = (0..nl.len()).map(|i| s.value(SignalId(i as u32))).collect();
            let taints = (0..nl.len())
                .map(|i| s.value(inst.taint_of(SignalId(i as u32))))
                .collect();
            (vals, taints)
        };
        let (va, ta) = run(secret_a);
        let (vb, tb) = run(secret_b);
        for i in 0..nl.len() {
            // The harness itself drives different values into `xin`;
            // primary inputs are not downstream of the taint source.
            if nl.node(SignalId(i as u32)).op.is_input() {
                continue;
            }
            let differing = va[i] ^ vb[i];
            // Taint patterns must cover every differing bit in both runs.
            assert_eq!(
                differing & !ta[i],
                0,
                "under-taint in run A at {} (diff {:#b}, taint {:#b})",
                nl.display_name(SignalId(i as u32)),
                differing,
                ta[i]
            );
            assert_eq!(differing & !tb[i], 0, "under-taint in run B");
        }
    });
}
