//! Cell-level information-flow tracking (IFT) instrumentation, in the style
//! of CellIFT: every signal in the design gets a same-width shadow *taint*
//! signal, with per-cell propagation rules (precise for logic cells,
//! conservatively smearing for arithmetic — reproducing the over-taint
//! false positives the paper reports in §VII-B1).
//!
//! SynthLC's symbolic IFT step (§V-C1) drives this pass as follows:
//!
//! * **taint introduction** — caller-designated *source* registers (the
//!   operand registers of §V-A) receive an extra `taint_en_<name>` primary
//!   input; while it is high, the register's taint is forced all-ones. The
//!   verification harness constrains that input with an `assume` tying it to
//!   "the transmitter under test is at issue" (the paper's first template
//!   assume).
//! * **taint flushing** — a global `taint_flush` input clears the taint of
//!   every non-*persistent* register. Assumption 3 (static transmitters)
//!   pulses it when the transmitter dematerializes, so only taint that
//!   flowed through persistent state (memory, cache arrays) — the static
//!   influence — survives.
//! * **taint blocking** — architectural state (ARF/AMEM) can be listed as
//!   *blocked*: taint never enters those registers, implementing the
//!   "prohibited from propagating architecturally between instruction
//!   outputs/inputs" rule.
//!
//! # Examples
//!
//! ```
//! use netlist::Builder;
//! use ift::{instrument, IftOptions};
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = Builder::new();
//! let x = b.input("x", 4);
//! let r = b.reg("r", 4, 0);
//! b.set_next(r, x)?;
//! let nl = b.finish()?;
//! let r = nl.find("r").unwrap();
//!
//! let inst = instrument(&nl, &IftOptions { sources: vec![r], ..Default::default() });
//! assert!(inst.netlist.find("r__taint").is_some());
//! # Ok(())
//! # }
//! ```

use netlist::{Builder, Netlist, Op, SignalId, UnOp, Wire};
use std::collections::{HashMap, HashSet};

/// Options controlling instrumentation.
#[derive(Clone, Debug, Default)]
pub struct IftOptions {
    /// Registers that may receive introduced taint (get a `taint_en_*`
    /// input). Typically the operand registers.
    pub sources: Vec<SignalId>,
    /// Registers whose taint survives a flush pulse (memory/cache arrays).
    pub persistent: Vec<SignalId>,
    /// Registers that never accept taint (ARF/AMEM architectural blocking).
    pub blocked: Vec<SignalId>,
}

/// The result of instrumentation.
#[derive(Clone, Debug)]
pub struct Instrumented {
    /// The taint-augmented netlist. Original signal ids are preserved.
    pub netlist: Netlist,
    /// The global flush input (1 bit): clears non-persistent register taint.
    pub flush_input: SignalId,
    taint: Vec<SignalId>,
    source_enables: HashMap<SignalId, SignalId>,
}

impl Instrumented {
    /// The taint shadow of an original signal.
    ///
    /// # Panics
    /// Panics if `orig` is not an original-design signal.
    pub fn taint_of(&self, orig: SignalId) -> SignalId {
        self.taint[orig.index()]
    }

    /// The `taint_en` input created for a source register.
    pub fn source_enable(&self, target: SignalId) -> Option<SignalId> {
        self.source_enables.get(&target).copied()
    }

    /// Taint shadows of a set of registers.
    pub fn taints_of(&self, origs: &[SignalId]) -> Vec<SignalId> {
        origs.iter().map(|&o| self.taint_of(o)).collect()
    }
}

fn replicate(b: &mut Builder, bit: Wire, width: u8) -> Wire {
    let ones = b.constant(netlist::mask(width), width);
    let zeros = b.constant(0, width);
    b.mux(bit, ones, zeros)
}

/// Upward carry smear: `out[i] = OR(t[0..=i])`, modelling that a tainted bit
/// can disturb every more-significant bit through carries.
fn smear_up(b: &mut Builder, t: Wire) -> Wire {
    if t.width == 1 {
        return t;
    }
    let mut acc = b.bit(t, 0);
    let mut out = acc;
    for i in 1..t.width {
        let bi = b.bit(t, i);
        acc = b.or(acc, bi);
        out = b.concat(acc, out);
    }
    out
}

/// Static over-approximation of where taint introduced at `sources` can
/// ever flow: the forward closure over combinational fan-out edges and
/// register `next` edges, with `blocked` registers never accepting taint
/// through their `next` input (mirroring the blocking rule of
/// [`instrument`]). Sources themselves are always in the set — even when
/// blocked, their *visible* taint includes the combinational enable.
///
/// Soundness: every CellIFT propagation rule emits zero taint when all of
/// its inputs carry zero taint, so any signal outside this set has taint
/// identically 0 in the instrumented design under any input sequence.
/// SynthLC uses this to discharge transmitter→transponder pairs with no
/// structural path without a SAT call.
pub fn taint_reachable(
    nl: &Netlist,
    sources: &[SignalId],
    blocked: &[SignalId],
) -> HashSet<SignalId> {
    let blocked: HashSet<SignalId> = blocked.iter().copied().collect();
    // Forward adjacency: comb users of each signal, plus next -> reg edges
    // (skipping blocked registers).
    let mut fanout: Vec<Vec<SignalId>> = vec![Vec::new(); nl.len()];
    for (id, node) in nl.iter() {
        for src in node.op.comb_fanin() {
            fanout[src.index()].push(id);
        }
        if let Op::Reg { next: Some(nx), .. } = node.op {
            if !blocked.contains(&id) {
                fanout[nx.index()].push(id);
            }
        }
    }
    let mut reach: HashSet<SignalId> = HashSet::new();
    let mut stack: Vec<SignalId> = sources.to_vec();
    while let Some(s) = stack.pop() {
        if !reach.insert(s) {
            continue;
        }
        stack.extend(fanout[s.index()].iter().copied());
    }
    reach
}

/// Instruments a netlist with a taint plane.
///
/// # Panics
/// Panics if the input netlist is invalid or an option references a
/// non-register signal.
pub fn instrument(nl: &Netlist, opts: &IftOptions) -> Instrumented {
    nl.validate().expect("instrumenting an invalid netlist");
    for &s in opts
        .sources
        .iter()
        .chain(&opts.persistent)
        .chain(&opts.blocked)
    {
        assert!(
            nl.node(s).op.is_reg(),
            "IFT option references non-register {}",
            nl.display_name(s)
        );
    }
    let persistent: HashSet<SignalId> = opts.persistent.iter().copied().collect();
    let blocked: HashSet<SignalId> = opts.blocked.iter().copied().collect();

    let mut b = Builder::from_netlist(nl.clone());
    let flush = b.input("taint_flush", 1);
    let not_flush = b.not(flush);

    let mut source_enables = HashMap::new();
    for &s in &opts.sources {
        let en = b.input(&format!("taint_en_{}", nl.display_name(s)), 1);
        source_enables.insert(s, en.id);
    }

    let n = nl.len();
    let mut taint: Vec<Option<Wire>> = vec![None; n];
    let mut taint_regs: Vec<Option<Wire>> = vec![None; n];
    // Taint registers are declared first (so comb taint of signals feeding
    // back through registers resolves), then comb taints in topo order, then
    // register-taint next wiring. A *source* register's visible taint is
    // `treg | enable` so introduced taint is observable in the same cycle
    // the enable fires (same-cycle reads — e.g. decode-stage operand uses —
    // must see it).
    for (id, node) in nl.iter() {
        if node.op.is_reg() {
            let t = b.reg(&format!("{}__taint", nl.display_name(id)), node.width, 0);
            taint_regs[id.index()] = Some(t);
            let visible = if let Some(&en) = source_enables.get(&id) {
                let en_w = b.wire(en);
                let ones = replicate(&mut b, en_w, node.width);
                b.or(t, ones)
            } else {
                t
            };
            taint[id.index()] = Some(visible);
        }
    }
    let order = netlist::analysis::topo_order(nl).expect("validated netlist is acyclic");
    for &id in &order {
        let node = nl.node(id);
        let w = node.width;
        let t: Wire = match &node.op {
            Op::Reg { .. } => continue, // declared above
            Op::Input | Op::Const(_) => b.constant(0, w),
            Op::Unary(op, a) => {
                let ta = taint[a.index()].expect("topo order");
                let aw = b.wire(*a);
                match op {
                    UnOp::Not => ta,
                    UnOp::Neg => smear_up(&mut b, ta),
                    UnOp::RedOr => {
                        // Tainted iff no untainted bit is 1 and some bit is
                        // tainted.
                        let nt = b.not(ta);
                        let untainted_ones = b.and(aw, nt);
                        let has_solid_one = b.red_or(untainted_ones);
                        let none_solid = b.not(has_solid_one);
                        let any_taint = b.red_or(ta);
                        b.and(none_solid, any_taint)
                    }
                    UnOp::RedAnd => {
                        // Tainted iff all untainted bits are 1 and some bit
                        // is tainted.
                        let with_taint_high = b.or(aw, ta);
                        let all_one = b.red_and(with_taint_high);
                        let any_taint = b.red_or(ta);
                        b.and(all_one, any_taint)
                    }
                    UnOp::RedXor => b.red_or(ta),
                }
            }
            Op::Binary(op, a, c) => {
                let ta = taint[a.index()].expect("topo order");
                let tc = taint[c.index()].expect("topo order");
                let aw = b.wire(*a);
                let cw = b.wire(*c);
                use netlist::BinOp::*;
                match op {
                    And => {
                        let x = b.and(ta, tc);
                        let y = b.and(ta, cw);
                        let z = b.and(tc, aw);
                        let xy = b.or(x, y);
                        b.or(xy, z)
                    }
                    Or => {
                        let ncw = b.not(cw);
                        let naw = b.not(aw);
                        let x = b.and(ta, tc);
                        let y = b.and(ta, ncw);
                        let z = b.and(tc, naw);
                        let xy = b.or(x, y);
                        b.or(xy, z)
                    }
                    Xor => b.or(ta, tc),
                    Add | Sub => {
                        let u = b.or(ta, tc);
                        smear_up(&mut b, u)
                    }
                    Mul => {
                        let u = b.or(ta, tc);
                        let any = b.red_or(u);
                        replicate(&mut b, any, w)
                    }
                    Eq | Ne | Ult | Ule => {
                        let u = b.or(ta, tc);
                        b.red_or(u)
                    }
                    Shl | Shr => {
                        let shifted = if matches!(op, Shl) {
                            b.shl(ta, cw)
                        } else {
                            b.shr(ta, cw)
                        };
                        let amt_tainted = b.red_or(tc);
                        let all = replicate(&mut b, amt_tainted, w);
                        b.or(shifted, all)
                    }
                }
            }
            Op::Mux { sel, a, b: c } => {
                let ts = taint[sel.index()].expect("topo order");
                let ta = taint[a.index()].expect("topo order");
                let tc = taint[c.index()].expect("topo order");
                let sw = b.wire(*sel);
                let aw = b.wire(*a);
                let cw = b.wire(*c);
                // Untainted select: chosen arm's taint. Tainted select:
                // either arm's taint plus every bit where the arms differ.
                let chosen = b.mux(sw, ta, tc);
                let diff = b.xor(aw, cw);
                let either = b.or(ta, tc);
                let leak = b.or(diff, either);
                let sel_t = replicate(&mut b, ts, w);
                let from_sel = b.and(sel_t, leak);
                b.or(chosen, from_sel)
            }
            Op::Slice { src, hi, lo } => {
                let ts = taint[src.index()].expect("topo order");
                b.slice(ts, *hi, *lo)
            }
            Op::Concat { hi, lo } => {
                let th = taint[hi.index()].expect("topo order");
                let tl = taint[lo.index()].expect("topo order");
                b.concat(th, tl)
            }
        };
        taint[id.index()] = Some(t);
    }
    // Wire register taints.
    for (id, node) in nl.iter() {
        if let Op::Reg { next, .. } = &node.op {
            let treg = taint_regs[id.index()].expect("declared");
            let next_sig = next.expect("validated");
            let mut tnext = taint[next_sig.index()].expect("topo order");
            let is_blocked = blocked.contains(&id);
            if is_blocked {
                tnext = b.constant(0, node.width);
            }
            // Blocked source registers (the ARF) get *purely combinational*
            // introduction: their visible taint is `enable` alone, with no
            // latched residue — otherwise taint would outlive the
            // introduction window by a cycle and bleed into the next
            // instruction's register read.
            if !is_blocked {
                if let Some(&en) = source_enables.get(&id) {
                    let en_w = b.wire(en);
                    let ones = replicate(&mut b, en_w, node.width);
                    tnext = b.or(tnext, ones);
                }
            }
            if !persistent.contains(&id) {
                // Flush clears the taint of transient state.
                let nf = replicate(&mut b, not_flush, node.width);
                tnext = b.and(tnext, nf);
            }
            b.set_next(treg, tnext).expect("fresh taint register");
        }
    }
    let netlist = b.finish().expect("instrumented netlist is valid");
    let flush_input = flush.id;
    Instrumented {
        netlist,
        flush_input,
        taint: taint.into_iter().map(|t| t.expect("complete").id).collect(),
        source_enables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Simulator;

    /// A 2-register pipeline: src -> mid, fed by input x.
    fn pipeline() -> (Netlist, SignalId, SignalId, SignalId) {
        let mut b = Builder::new();
        let x = b.input("x", 4);
        let src = b.reg("src", 4, 0);
        let mid = b.reg("mid", 4, 0);
        b.set_next(src, x).unwrap();
        b.set_next(mid, src).unwrap();
        let nl = b.finish().unwrap();
        let (x, s, m) = (
            nl.find("x").unwrap(),
            nl.find("src").unwrap(),
            nl.find("mid").unwrap(),
        );
        (nl, x, s, m)
    }

    #[test]
    fn taint_flows_through_registers() {
        let (nl, x, src, mid) = pipeline();
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![src],
                ..Default::default()
            },
        );
        let en = inst.source_enable(src).unwrap();
        let t_mid = inst.taint_of(mid);
        let mut s = Simulator::new(&inst.netlist);
        s.set_input(en, 1);
        s.set_input(x, 5);
        s.step(); // taint lands in src
        s.set_input(en, 0);
        assert_eq!(s.value(inst.taint_of(src)), 0xf);
        s.step(); // taint flows src -> mid
        assert_eq!(s.value(t_mid), 0xf);
    }

    #[test]
    fn flush_clears_transient_but_not_persistent() {
        // `mem` models persistent storage: it latches `src` only while `we`
        // is high and then holds its value, like a memory word.
        let mut b = Builder::new();
        let x = b.input("x", 4);
        let we = b.input("we", 1);
        let src = b.reg("src", 4, 0);
        let mem = b.reg("mem", 4, 0);
        b.set_next(src, x).unwrap();
        let captured = b.mux(we, src, mem);
        b.set_next(mem, captured).unwrap();
        let nl = b.finish().unwrap();
        let (src, mem) = (nl.find("src").unwrap(), nl.find("mem").unwrap());
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![src],
                persistent: vec![mem],
                ..Default::default()
            },
        );
        let en = inst.source_enable(src).unwrap();
        let we = nl.find("we").unwrap();
        let mut s = Simulator::new(&inst.netlist);
        s.set_input(en, 1);
        s.step(); // taint lands in src
        s.set_input(en, 0);
        s.set_input(we, 1);
        s.step(); // mem captures tainted src
        s.set_input(we, 0);
        assert_eq!(s.value(inst.taint_of(mem)), 0xf, "mem captured taint");
        s.set_input(inst.flush_input, 1);
        s.step();
        s.set_input(inst.flush_input, 0);
        assert_eq!(s.value(inst.taint_of(src)), 0, "transient flushed");
        assert_eq!(s.value(inst.taint_of(mem)), 0xf, "persistent survives");
    }

    #[test]
    fn blocked_registers_never_taint() {
        let (nl, _x, src, mid) = pipeline();
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![src],
                blocked: vec![mid],
                ..Default::default()
            },
        );
        let en = inst.source_enable(src).unwrap();
        let mut s = Simulator::new(&inst.netlist);
        s.set_input(en, 1);
        s.step();
        s.step();
        s.step();
        assert_eq!(s.value(inst.taint_of(mid)), 0, "blocked reg stays clean");
    }

    /// Helper: 2-input comb function; returns taint of output when `ra` is
    /// fully tainted and `rb` is clean, at concrete register values.
    fn comb_taint(f: impl Fn(&mut Builder, Wire, Wire) -> Wire, av: u64, bv: u64) -> u64 {
        let mut bld = Builder::new();
        let x = bld.input("x", 4);
        let y = bld.input("y", 4);
        let ra = bld.reg("ra", 4, 0);
        let rb = bld.reg("rb", 4, 0);
        bld.set_next(ra, x).unwrap();
        bld.set_next(rb, y).unwrap();
        let out = f(&mut bld, ra, rb);
        bld.name(out, "out");
        let nl = bld.finish().unwrap();
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![nl.find("ra").unwrap()],
                ..Default::default()
            },
        );
        let mut s = Simulator::new(&inst.netlist);
        let en = inst.source_enable(nl.find("ra").unwrap()).unwrap();
        s.set_input(nl.find("x").unwrap(), av);
        s.set_input(nl.find("y").unwrap(), bv);
        s.set_input(en, 1);
        s.step();
        s.set_input(en, 0);
        s.value(inst.taint_of(nl.find("out").unwrap()))
    }

    #[test]
    fn and_gate_taint_is_value_sensitive() {
        // tainted & 0 = 0 regardless of taint -> no taint out.
        assert_eq!(comb_taint(|b, a, c| b.and(a, c), 0xf, 0x0), 0);
        // tainted & 1 bits leak.
        assert_eq!(comb_taint(|b, a, c| b.and(a, c), 0xf, 0xf), 0xf);
        assert_eq!(comb_taint(|b, a, c| b.and(a, c), 0xf, 0x3), 0x3);
    }

    #[test]
    fn or_gate_taint_is_value_sensitive() {
        // tainted | 1 = 1 regardless -> no taint out on those bits.
        assert_eq!(comb_taint(|b, a, c| b.or(a, c), 0xf, 0xf), 0);
        assert_eq!(comb_taint(|b, a, c| b.or(a, c), 0xf, 0x0), 0xf);
    }

    #[test]
    fn add_taint_smears_upward_only() {
        let mut bld = Builder::new();
        let x = bld.input("x", 4);
        let y = bld.input("y", 4);
        let ra = bld.reg("ra", 4, 0);
        let rb = bld.reg("rb", 4, 0);
        bld.set_next(ra, x).unwrap();
        bld.set_next(rb, y).unwrap();
        // Taint only reaches bits [3:2] of the adder's left operand.
        let hi = bld.slice(ra, 3, 2);
        let clean = bld.constant(0, 2);
        let masked = bld.concat(hi, clean);
        let sum = bld.add(masked, rb);
        bld.name(sum, "out");
        let nl = bld.finish().unwrap();
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![nl.find("ra").unwrap()],
                ..Default::default()
            },
        );
        let mut s = Simulator::new(&inst.netlist);
        let en = inst.source_enable(nl.find("ra").unwrap()).unwrap();
        s.set_input(en, 1);
        s.step();
        s.set_input(en, 0);
        let t = s.value(inst.taint_of(nl.find("out").unwrap()));
        assert_eq!(t, 0b1100, "taint smears up from bit 2, not down");
    }

    #[test]
    fn mux_select_taint_only_leaks_differing_arms() {
        let mut bld = Builder::new();
        let sel_in = bld.input("sel_in", 1);
        let rsel = bld.reg("rsel", 1, 0);
        bld.set_next(rsel, sel_in).unwrap();
        let a = bld.constant(5, 4);
        let c = bld.constant(5, 4);
        let d = bld.constant(9, 4);
        let same = bld.mux(rsel, a, c);
        let diff = bld.mux(rsel, a, d);
        bld.name(same, "same");
        bld.name(diff, "diff");
        let nl = bld.finish().unwrap();
        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![nl.find("rsel").unwrap()],
                ..Default::default()
            },
        );
        let mut s = Simulator::new(&inst.netlist);
        let en = inst.source_enable(nl.find("rsel").unwrap()).unwrap();
        s.set_input(en, 1);
        s.step();
        s.set_input(en, 0);
        assert_eq!(s.value(inst.taint_of(nl.find("same").unwrap())), 0);
        assert_eq!(
            s.value(inst.taint_of(nl.find("diff").unwrap())),
            0b1100,
            "bits where arms differ leak select taint"
        );
    }

    #[test]
    fn static_reach_set_over_approximates_simulated_taint() {
        // A design exercising most cell rules, with one branch structurally
        // cut off from the source (fed only by y) and a blocked register.
        let mut bld = Builder::new();
        let x = bld.input("x", 4);
        let y = bld.input("y", 4);
        let src = bld.reg("src", 4, 0);
        bld.set_next(src, x).unwrap();
        let yr = bld.reg("yr", 4, 0);
        bld.set_next(yr, y).unwrap();
        let sum = bld.add(src, yr);
        bld.name(sum, "sum");
        let prod = bld.mul(src, yr);
        let sel = bld.bit(sum, 0);
        let picked = bld.mux(sel, prod, sum);
        let down = bld.reg("down", 4, 0);
        bld.set_next(down, picked).unwrap();
        let barrier = bld.reg("barrier", 4, 0);
        bld.set_next(barrier, picked).unwrap();
        let past = bld.not(barrier);
        bld.name(past, "past_barrier");
        // Clean island: depends only on y.
        let island = bld.xor(yr, y);
        bld.name(island, "island");
        let nl = bld.finish().unwrap();
        let src = nl.find("src").unwrap();
        let barrier = nl.find("barrier").unwrap();
        let reach = taint_reachable(&nl, &[src], &[barrier]);
        assert!(!reach.contains(&nl.find("island").unwrap()));
        assert!(!reach.contains(&barrier), "blocked reg is unreachable");
        assert!(!reach.contains(&nl.find("past_barrier").unwrap()));
        assert!(reach.contains(&nl.find("down").unwrap()));

        let inst = instrument(
            &nl,
            &IftOptions {
                sources: vec![src],
                blocked: vec![barrier],
                ..Default::default()
            },
        );
        let en = inst.source_enable(src).unwrap();
        let mut s = Simulator::new(&inst.netlist);
        s.set_input(en, 1);
        let mut rng = 0x9e3779b97f4a7c15u64;
        for cycle in 0..12 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.set_input(nl.find("x").unwrap(), rng & 0xf);
            s.set_input(nl.find("y").unwrap(), (rng >> 7) & 0xf);
            s.step();
            for (id, _) in nl.iter() {
                if !reach.contains(&id) {
                    assert_eq!(
                        s.value(inst.taint_of(id)),
                        0,
                        "cycle {cycle}: {} outside the reach set must be clean",
                        nl.display_name(id)
                    );
                }
            }
        }
    }

    #[test]
    fn original_signals_keep_their_ids_and_behaviour() {
        let (nl, x, src, mid) = pipeline();
        let inst = instrument(&nl, &IftOptions::default());
        let mut s = Simulator::new(&inst.netlist);
        s.set_input(x, 7);
        s.step();
        s.step();
        assert_eq!(s.value(src), 7);
        assert_eq!(s.value(mid), 7);
    }
}
