//! Tseitin gate encoding: word-level netlist operators lowered onto SAT
//! literals.

use sat::{Lit, Solver};

/// Wraps a [`Solver`] with gate-level encoding helpers and constant folding.
///
/// Maintains distinguished true/false literals so constants never allocate
/// variables.
#[derive(Debug)]
pub struct GateBuilder {
    solver: Solver,
    true_lit: Lit,
    /// Structural-hashing cache: (opcode, a, b) -> output literal.
    cache: std::collections::HashMap<(u8, Lit, Lit), Lit>,
}

/// Cache opcodes for structural hashing.
const OP_AND: u8 = 0;
const OP_XOR: u8 = 1;

impl GateBuilder {
    /// Creates a builder with an underlying fresh solver.
    pub fn new() -> Self {
        let mut solver = Solver::new();
        let t = solver.new_var();
        solver.add_clause(&[Lit::pos(t)]);
        Self {
            solver,
            true_lit: Lit::pos(t),
            cache: std::collections::HashMap::new(),
        }
    }

    /// The constant-true literal.
    pub fn true_lit(&self) -> Lit {
        self.true_lit
    }

    /// The constant-false literal.
    pub fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// A literal for a boolean constant.
    pub fn constant(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// Allocates a free variable and returns its positive literal.
    pub fn fresh(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Access to the underlying solver (for solve calls and model reads).
    pub fn solver(&mut self) -> &mut Solver {
        &mut self.solver
    }

    /// Immutable access to the underlying solver.
    pub fn solver_ref(&self) -> &Solver {
        &self.solver
    }

    /// Number of allocated SAT variables.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Adds a clause directly.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.solver.add_clause(lits);
    }

    fn is_const(&self, l: Lit) -> Option<bool> {
        if l == self.true_lit {
            Some(true)
        } else if l == !self.true_lit {
            Some(false)
        } else {
            None
        }
    }

    /// `out = a AND b`.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => self.constant(false),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ if a == !b => self.constant(false),
            _ => {
                let key = (OP_AND, a.min(b), a.max(b));
                if let Some(&o) = self.cache.get(&key) {
                    return o;
                }
                let o = self.fresh();
                self.add_clause(&[!o, a]);
                self.add_clause(&[!o, b]);
                self.add_clause(&[o, !a, !b]);
                self.cache.insert(key, o);
                o
            }
        }
    }

    /// `out = a OR b`.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        let na = !a;
        let nb = !b;
        let n = self.and(na, nb);
        !n
    }

    /// `out = a XOR b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => !b,
            (_, Some(true)) => !a,
            _ if a == b => self.constant(false),
            _ if a == !b => self.constant(true),
            _ => {
                // Normalise polarity: xor(a,b) = !xor(!a,b) etc.; cache on
                // positive forms.
                let key = (OP_XOR, a.min(b), a.max(b));
                if let Some(&o) = self.cache.get(&key) {
                    return o;
                }
                let o = self.fresh();
                self.add_clause(&[!o, a, b]);
                self.add_clause(&[!o, !a, !b]);
                self.add_clause(&[o, !a, b]);
                self.add_clause(&[o, a, !b]);
                self.cache.insert(key, o);
                o
            }
        }
    }

    /// `out = sel ? a : b`.
    pub fn mux(&mut self, sel: Lit, a: Lit, b: Lit) -> Lit {
        match self.is_const(sel) {
            Some(true) => return a,
            Some(false) => return b,
            None => {}
        }
        if a == b {
            return a;
        }
        let o = self.fresh();
        self.add_clause(&[!o, !sel, a]);
        self.add_clause(&[!o, sel, b]);
        self.add_clause(&[o, !sel, !a]);
        self.add_clause(&[o, sel, !b]);
        o
    }

    /// AND over a slice (true for empty).
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.constant(true);
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// OR over a slice (false for empty).
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        let mut acc = self.constant(false);
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    // ---- word-level helpers (LSB-first bit vectors) ------------------------

    /// A constant word, LSB first.
    pub fn word_const(&self, value: u64, width: u8) -> Vec<Lit> {
        (0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect()
    }

    /// A fresh (unconstrained) word.
    pub fn word_fresh(&mut self, width: u8) -> Vec<Lit> {
        (0..width).map(|_| self.fresh()).collect()
    }

    /// Bitwise map of a binary gate over two equal-width words.
    pub fn word_bitwise(
        &mut self,
        a: &[Lit],
        b: &[Lit],
        f: fn(&mut Self, Lit, Lit) -> Lit,
    ) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(&x, &y)| f(self, x, y)).collect()
    }

    /// Ripple-carry adder (truncating). Returns the sum word.
    pub fn word_add(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = self.constant(false);
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.xor(a[i], b[i]);
            let s = self.xor(axb, carry);
            let c1 = self.and(a[i], b[i]);
            let c2 = self.and(axb, carry);
            carry = self.or(c1, c2);
            out.push(s);
        }
        out
    }

    /// Two's-complement subtraction (truncating): `a - b`.
    pub fn word_sub(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
        // a + ~b + 1: seed the carry chain with 1 by adding the +1 to ~b
        // via an incrementer folded into the ripple chain.
        let mut carry = self.constant(true);
        let mut out = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let axb = self.xor(a[i], nb[i]);
            let s = self.xor(axb, carry);
            let c1 = self.and(a[i], nb[i]);
            let c2 = self.and(axb, carry);
            carry = self.or(c1, c2);
            out.push(s);
        }
        out
    }

    /// Two's-complement negation.
    pub fn word_neg(&mut self, a: &[Lit]) -> Vec<Lit> {
        let zero = self.word_const(0, a.len() as u8);
        self.word_sub(&zero, a)
    }

    /// Truncating shift-and-add multiplier.
    pub fn word_mul(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        let w = a.len();
        let mut acc = self.word_const(0, w as u8);
        for i in 0..w {
            // partial = (a << i) & replicate(b[i])
            let mut partial = Vec::with_capacity(w);
            for k in 0..w {
                if k < i {
                    partial.push(self.constant(false));
                } else {
                    partial.push(self.and(a[k - i], b[i]));
                }
            }
            acc = self.word_add(&acc, &partial);
        }
        acc
    }

    /// Equality comparison: 1-bit result.
    pub fn word_eq(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        debug_assert_eq!(a.len(), b.len());
        let xors: Vec<Lit> = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| {
                let d = self.xor(x, y);
                !d
            })
            .collect();
        self.and_many(&xors)
    }

    /// Unsigned less-than: 1-bit result.
    pub fn word_ult(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        // a < b  <=>  borrow out of a - b.
        debug_assert_eq!(a.len(), b.len());
        let mut lt = self.constant(false);
        // Iterate LSB -> MSB, carrying "a[0..i] < b[0..i]".
        for i in 0..a.len() {
            let eq = {
                let d = self.xor(a[i], b[i]);
                !d
            };
            let bit_lt = {
                let na = !a[i];
                self.and(na, b[i])
            };
            let keep = self.and(eq, lt);
            lt = self.or(bit_lt, keep);
        }
        lt
    }

    /// Unsigned less-or-equal: 1-bit result.
    pub fn word_ule(&mut self, a: &[Lit], b: &[Lit]) -> Lit {
        let gt = self.word_ult(b, a);
        !gt
    }

    /// Barrel shifter, logical left.
    pub fn word_shl(&mut self, a: &[Lit], amount: &[Lit]) -> Vec<Lit> {
        self.barrel(a, amount, true)
    }

    /// Barrel shifter, logical right.
    pub fn word_shr(&mut self, a: &[Lit], amount: &[Lit]) -> Vec<Lit> {
        self.barrel(a, amount, false)
    }

    fn barrel(&mut self, a: &[Lit], amount: &[Lit], left: bool) -> Vec<Lit> {
        let w = a.len();
        let stages = usize::BITS - (w - 1).leading_zeros(); // ceil(log2 w)
        let mut cur: Vec<Lit> = a.to_vec();
        for s in 0..stages as usize {
            let shift = 1usize << s;
            let sel = if s < amount.len() {
                amount[s]
            } else {
                self.constant(false)
            };
            let mut next = Vec::with_capacity(w);
            for i in 0..w {
                let shifted = if left {
                    if i >= shift {
                        cur[i - shift]
                    } else {
                        self.constant(false)
                    }
                } else if i + shift < w {
                    cur[i + shift]
                } else {
                    self.constant(false)
                };
                next.push(self.mux(sel, shifted, cur[i]));
            }
            cur = next;
        }
        // Any set amount bit beyond the stage range zeroes the result.
        let high_bits: Vec<Lit> = amount.iter().copied().skip(stages as usize).collect();
        if !high_bits.is_empty() {
            let over = self.or_many(&high_bits);
            let zero = self.constant(false);
            cur = cur.into_iter().map(|l| self.mux(over, zero, l)).collect();
        }
        cur
    }

    /// Word-level mux.
    pub fn word_mux(&mut self, sel: Lit, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux(sel, x, y))
            .collect()
    }
}

impl Default for GateBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sat::SolveResult;

    /// Constrains a word to a constant value via unit assumptions and checks
    /// the expected output under solving.
    fn assert_word_fn(
        f: impl Fn(&mut GateBuilder, &[Lit], &[Lit]) -> Vec<Lit>,
        a: u64,
        b: u64,
        expect: u64,
        w: u8,
    ) {
        let mut g = GateBuilder::new();
        let wa = g.word_const(a, w);
        let wb = g.word_const(b, w);
        let out = f(&mut g, &wa, &wb);
        let expect_bits = g.word_const(expect, w);
        let eq = g.word_eq(&out, &expect_bits);
        g.add_clause(&[eq]);
        assert_eq!(
            g.solver().solve(),
            SolveResult::Sat,
            "{a} op {b} != {expect}"
        );
    }

    #[test]
    fn adder_and_subtractor() {
        assert_word_fn(|g, a, b| g.word_add(a, b), 200, 100, 44, 8);
        assert_word_fn(|g, a, b| g.word_sub(a, b), 5, 9, 252, 8);
        assert_word_fn(|g, a, b| g.word_sub(a, b), 9, 5, 4, 8);
    }

    #[test]
    fn multiplier() {
        assert_word_fn(|g, a, b| g.word_mul(a, b), 7, 9, 63, 8);
        assert_word_fn(|g, a, b| g.word_mul(a, b), 16, 16, 0, 8);
    }

    #[test]
    fn shifts() {
        let mut g = GateBuilder::new();
        let a = g.word_const(0b1001_0001, 8);
        let amt = g.word_const(2, 4);
        let l = g.word_shl(&a, &amt);
        let r = g.word_shr(&a, &amt);
        let el = g.word_const(0b0100_0100, 8);
        let er = g.word_const(0b0010_0100, 8);
        let eq1 = g.word_eq(&l, &el);
        let eq2 = g.word_eq(&r, &er);
        g.add_clause(&[eq1]);
        g.add_clause(&[eq2]);
        assert!(g.solver().solve().is_sat());
    }

    #[test]
    fn overshift_is_zero() {
        let mut g = GateBuilder::new();
        let a = g.word_const(0xff, 8);
        let amt = g.word_const(9, 4);
        let l = g.word_shl(&a, &amt);
        let zero = g.word_const(0, 8);
        let eq = g.word_eq(&l, &zero);
        g.add_clause(&[eq]);
        assert!(g.solver().solve().is_sat());
    }

    #[test]
    fn comparisons_exhaustive_small() {
        for a in 0u64..8 {
            for b in 0u64..8 {
                let mut g = GateBuilder::new();
                let wa = g.word_const(a, 3);
                let wb = g.word_const(b, 3);
                let lt = g.word_ult(&wa, &wb);
                let le = g.word_ule(&wa, &wb);
                let eq = g.word_eq(&wa, &wb);
                let want = |cond: bool, l: Lit, g: &mut GateBuilder| {
                    if cond {
                        g.add_clause(&[l]);
                    } else {
                        g.add_clause(&[!l]);
                    }
                };
                want(a < b, lt, &mut g);
                want(a <= b, le, &mut g);
                want(a == b, eq, &mut g);
                assert!(g.solver().solve().is_sat(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn mux_gate() {
        let mut g = GateBuilder::new();
        let s = g.fresh();
        let a = g.constant(true);
        let b = g.constant(false);
        let o = g.mux(s, a, b);
        // o <-> s here.
        g.add_clause(&[s]);
        g.add_clause(&[!o]);
        assert!(g.solver().solve().is_unsat());
    }
}
