//! Deterministic parallel execution of synthesis jobs.
//!
//! The engine's unit of parallelism is a *job*: an independent piece of
//! property-evaluation work (one instruction/slot enumeration, one
//! transponder/typing IFT sweep) that owns its own unrolling and SAT
//! solver. Jobs are drained from a shared queue by scoped worker threads
//! and their results land in slots indexed by job id, so the merged output
//! is a pure function of the job list — independent of worker count and
//! scheduling. `threads == 1` runs the jobs inline on the calling thread,
//! byte-identical to the parallel path (the `--jobs 1` baseline).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count selected by the environment: `SYNTHLC_THREADS` when set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SYNTHLC_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a `--jobs`-style request: `Some(n)` is used as-is (minimum 1),
/// `None` falls back to [`default_threads`].
pub fn resolve_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(n) => n.max(1),
        None => default_threads(),
    }
}

/// Runs `f(job_index, job)` for every job and returns the results in job
/// order. With `threads > 1`, jobs are executed by that many scoped worker
/// threads pulling from an atomic queue index; results are merged by job
/// id, so the returned vector is identical to the sequential one.
///
/// # Panics
/// A panic in any job propagates to the caller (via `std::thread::scope`).
pub fn run_jobs<J, R, F>(jobs: Vec<J>, threads: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    if threads == 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(ix, j)| f(ix, j))
            .collect();
    }
    let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = slots.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let ix = next.fetch_add(1, Ordering::Relaxed);
                if ix >= slots.len() {
                    break;
                }
                // Recover poisoned slots instead of double-panicking: a
                // sibling worker may have panicked (e.g. under fault
                // injection) and poisoning is per-mutex state, not data
                // corruption — each slot is touched by exactly one worker.
                let job = slots[ix]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each job taken exactly once");
                let r = f(ix, job);
                *results[ix].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every job produced a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order_regardless_of_threads() {
        let jobs: Vec<usize> = (0..64).collect();
        let seq = run_jobs(jobs.clone(), 1, |ix, j| {
            assert_eq!(ix, j);
            j * 3
        });
        let par = run_jobs(jobs, 5, |_, j| j * 3);
        assert_eq!(seq, par);
        assert_eq!(seq[10], 30);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let out: Vec<u32> = run_jobs(Vec::<u32>::new(), 8, |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_jobs(vec![1u32, 2], 16, |_, j| j + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }
}
