//! Bounded/inductive model checking over the `netlist` IR: the reproduction's
//! substitute for the commercial property verifier in the paper's toolflow.
//!
//! The programming model mirrors the paper's SVA usage (§V-B): every query is
//! a **cover** property over a 1-bit signal, optionally constrained by
//! **assume** signals that must hold at every cycle, evaluated from the
//! design's reset state. Outcomes are [`Outcome::Reachable`] (with a witness
//! [`Trace`]), [`Outcome::Unreachable`] (complete-bound or k-induction
//! proof), or [`Outcome::Undetermined`] (budget exhausted) — the same
//! trichotomy JasperGold reports to RTL2MµPATH.
//!
//! # Examples
//!
//! ```
//! use mc::{Checker, McConfig};
//! use netlist::Builder;
//!
//! # fn main() -> Result<(), netlist::NetlistError> {
//! let mut b = Builder::new();
//! let c = b.reg("c", 3, 0);
//! let one = b.constant(1, 3);
//! let n = b.add(c, one);
//! b.set_next(c, n)?;
//! let at6 = b.eq_const(c, 6);
//! b.name(at6, "at6");
//! let nl = b.finish()?;
//!
//! let mut checker = Checker::new(&nl, McConfig { bound: 8, ..Default::default() });
//! let outcome = checker.check_cover(nl.find("at6").unwrap(), &[]);
//! assert!(outcome.is_reachable());
//! # Ok(())
//! # }
//! ```

mod cnf;
pub mod coi;
mod elab;
mod engine;
pub mod par;
mod pool;
pub mod supervise;
mod trace;
mod unroll;

pub use cnf::GateBuilder;
pub use coi::CoiSlice;
pub use elab::Elab;
pub use engine::{CheckStats, Checker, McConfig, Outcome, UndeterminedReason};
pub use par::{default_threads, resolve_threads, run_jobs};
pub use pool::{Checkout, PoolKey, SolverPool};
pub use sat::{CancelReason, CancelToken};
pub use supervise::{run_jobs_supervised, FaultKind, FaultPlan, JobFailure, JobStore, ServeFault};
pub use trace::Trace;
pub use unroll::{InitMode, Unrolling};
