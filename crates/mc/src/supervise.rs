//! Job supervision, deterministic fault injection, and the checkpoint
//! store interface — the runtime half of DESIGN.md §8.
//!
//! [`run_jobs_supervised`] wraps every job of [`run_jobs`] in
//! `catch_unwind`, so one panicking property sweep yields a per-job
//! [`JobFailure`] merged deterministically into the results instead of
//! tearing down the whole `std::thread::scope`. Drivers degrade a failed
//! job to [`Outcome::Undetermined`] with
//! [`UndeterminedReason::JobPanicked`].
//!
//! [`FaultPlan`] deterministically schedules injected faults (panics,
//! forced-Unknown queries, expired deadlines) from a seed and a rate, so a
//! failing fault-injected run replays from `SYNTHLC_FAULT_SEED` alone.
//!
//! [`JobStore`] is the narrow interface drivers use to checkpoint and
//! replay completed job verdicts; `synthlc::journal::Journal` implements
//! it with an append-only, fsync'd, torn-tail-tolerant file.
//!
//! [`run_jobs`]: crate::par::run_jobs
//! [`Outcome::Undetermined`]: crate::Outcome::Undetermined
//! [`UndeterminedReason::JobPanicked`]: crate::UndeterminedReason::JobPanicked

use crate::par::run_jobs;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A panic caught by the supervisor while running one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the submitted job list.
    pub job_id: usize,
    /// The panic payload, when it was a string (the common case).
    pub payload_msg: String,
    /// How to localise the failure in a rerun.
    pub backtrace_hint: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} panicked: {} ({})",
            self.job_id, self.payload_msg, self.backtrace_hint
        )
    }
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_jobs`], but each job runs under `catch_unwind`: a panic in
/// job `ix` becomes `Err(JobFailure)` at index `ix` while every other job
/// completes normally. Result order and content are a pure function of
/// the job list, independent of worker count — the same merge-by-job-id
/// determinism contract as `run_jobs` itself.
pub fn run_jobs_supervised<J, R, F>(
    jobs: Vec<J>,
    threads: usize,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    run_jobs(jobs, threads, |ix, job| {
        catch_unwind(AssertUnwindSafe(|| f(ix, job))).map_err(|payload| JobFailure {
            job_id: ix,
            payload_msg: payload_msg(payload.as_ref()),
            backtrace_hint: format!(
                "rerun with RUST_BACKTRACE=1 SYNTHLC_THREADS=1 to localise job {ix}"
            ),
        })
    })
}

/// What an injected fault does to its job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The job panics mid-flight (exercises the supervisor).
    Panic,
    /// Every solver query in the job is forced to `Unknown` (exercises
    /// the forced-degradation path without burning solver time).
    ForceUnknown,
    /// The job runs under an already-expired deadline (exercises the
    /// cancellation plumbing end to end).
    DeadlineExpired,
}

/// What an injected fault does to one serve-loop step — the daemon-phase
/// fault points (worker supervision, queue scheduling, journal
/// persistence) that a synthesis job never sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeFault {
    /// The worker panics mid-job (exercises serve-side supervision and
    /// retry).
    WorkerPanic,
    /// The queue stalls before dispatching the job (exercises
    /// backpressure and shedding under latency, never verdicts).
    QueueStall,
    /// The journal append for this job's verdict is torn mid-write
    /// (exercises restart recovery of the verdict store).
    TornJournalWrite,
    /// The job runs under an already-expired watchdog deadline
    /// (exercises the retry-then-degrade path).
    DeadlineExpired,
}

/// A deterministic schedule of injected faults.
///
/// Whether job `ix` of a named phase faults — and how — is a pure
/// function of `(seed, phase, ix)`, so a run replays exactly from its
/// seed, at any worker count. A rate of `0.0` plans nothing and is the
/// zero-cost default.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
}

impl FaultPlan {
    /// A plan injecting faults at `rate` (a probability in `[0, 1]` per
    /// job) from `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The inactive plan: never faults.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this plan can fault at all.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed from `SYNTHLC_FAULT_SEED` (decimal), defaulting to 0.
    pub fn env_seed() -> u64 {
        std::env::var("SYNTHLC_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    /// The fault planned for job `ix` of `phase`, if any. Phases keep
    /// independent streams so e.g. µPATH slot jobs and IFT unit jobs
    /// fault independently under one seed.
    pub fn fault_for(&self, phase: &str, ix: usize) -> Option<FaultKind> {
        self.fault_for_attempt(phase, ix, 0)
    }

    /// Like [`fault_for`], but for retry attempt `attempt` of the job.
    /// Attempt 0 is byte-compatible with [`fault_for`] (pinned seeds from
    /// before retries existed keep their schedules); attempts beyond 0
    /// roll independently, so a retried job can recover from an injected
    /// fault instead of deterministically re-hitting it.
    ///
    /// [`fault_for`]: FaultPlan::fault_for
    pub fn fault_for_attempt(&self, phase: &str, ix: usize, attempt: u32) -> Option<FaultKind> {
        let mut rng = self.job_rng(phase, ix, attempt)?;
        if !rng.chance(self.rate) {
            return None;
        }
        Some(match rng.range(0, 3) {
            0 => FaultKind::Panic,
            1 => FaultKind::ForceUnknown,
            _ => FaultKind::DeadlineExpired,
        })
    }

    /// The serve-phase fault planned for step `ix` of `phase` at retry
    /// `attempt`, if any. Serve phases draw from their own kind set
    /// ([`ServeFault`]: worker panic, queue stall, torn journal write,
    /// expired watchdog) but use the same pure `(seed, phase, ix,
    /// attempt)` schedule, so a chaos-mode daemon run replays exactly
    /// from `SYNTHLC_FAULT_SEED`.
    pub fn serve_fault_for(&self, phase: &str, ix: usize, attempt: u32) -> Option<ServeFault> {
        let mut rng = self.job_rng(phase, ix, attempt)?;
        if !rng.chance(self.rate) {
            return None;
        }
        Some(match rng.range(0, 4) {
            0 => ServeFault::WorkerPanic,
            1 => ServeFault::QueueStall,
            2 => ServeFault::TornJournalWrite,
            _ => ServeFault::DeadlineExpired,
        })
    }

    /// The per-(phase, ix, attempt) PRNG stream behind every schedule:
    /// FNV-1a over the coordinates, decorrelated by the seed. `None` when
    /// the plan is inactive. Attempt 0 skips the attempt mix-in so the
    /// pre-retry streams are preserved byte for byte.
    fn job_rng(&self, phase: &str, ix: usize, attempt: u32) -> Option<prng::Rng> {
        if self.rate <= 0.0 {
            return None;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in phase.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ ix as u64).wrapping_mul(0x0000_0100_0000_01b3);
        if attempt > 0 {
            h = (h ^ 0xa5a5_0000u64 ^ attempt as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        Some(prng::Rng::new(
            h ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ))
    }
}

/// A persistent store of completed job results, keyed by stable
/// fingerprint strings — the interface drivers journal through without
/// depending on the journal's file format. Implementations must be safe
/// to call from parallel workers.
pub trait JobStore: std::fmt::Debug + Send + Sync {
    /// The stored record for `key`, if one was completed earlier.
    fn get(&self, key: &str) -> Option<String>;

    /// Durably persists `record` under `key`.
    fn put(&self, key: &str, record: &str);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_jobs_isolate_panics() {
        let jobs: Vec<usize> = (0..16).collect();
        for threads in [1, 4] {
            let out = run_jobs_supervised(jobs.clone(), threads, |_, j| {
                if j % 5 == 3 {
                    panic!("boom at {j}");
                }
                j * 2
            });
            assert_eq!(out.len(), 16);
            for (ix, r) in out.iter().enumerate() {
                if ix % 5 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.job_id, ix);
                    assert_eq!(err.payload_msg, format!("boom at {ix}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), ix * 2);
                }
            }
        }
    }

    #[test]
    fn supervised_results_match_across_thread_counts() {
        let jobs: Vec<usize> = (0..32).collect();
        let run = |threads| {
            run_jobs_supervised(jobs.clone(), threads, |_, j| {
                if j == 7 || j == 20 {
                    panic!("injected");
                }
                j + 100
            })
        };
        assert_eq!(run(1), run(6));
    }

    #[test]
    fn fault_plan_is_deterministic_and_phase_split() {
        let plan = FaultPlan::new(42, 0.5);
        let a: Vec<_> = (0..64).map(|ix| plan.fault_for("ift", ix)).collect();
        let b: Vec<_> = (0..64).map(|ix| plan.fault_for("ift", ix)).collect();
        assert_eq!(a, b, "same (seed, phase, ix) must plan the same fault");
        let c: Vec<_> = (0..64).map(|ix| plan.fault_for("mupath", ix)).collect();
        assert_ne!(a, c, "phases should have independent fault streams");
        let hits = a.iter().flatten().count();
        assert!(
            (10..60).contains(&hits),
            "rate 0.5 planned {hits}/64 faults"
        );
    }

    #[test]
    fn disabled_plan_never_faults() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        assert!((0..256).all(|ix| plan.fault_for("any", ix).is_none()));
    }

    #[test]
    fn attempt_zero_matches_legacy_schedule() {
        let plan = FaultPlan::new(42, 0.5);
        for ix in 0..64 {
            assert_eq!(
                plan.fault_for("ift", ix),
                plan.fault_for_attempt("ift", ix, 0),
                "attempt 0 must be byte-compatible with fault_for at ix {ix}"
            );
        }
    }

    #[test]
    fn retry_attempts_roll_independently() {
        let plan = FaultPlan::new(42, 0.5);
        let a0: Vec<_> = (0..64)
            .map(|ix| plan.fault_for_attempt("p", ix, 0))
            .collect();
        let a1: Vec<_> = (0..64)
            .map(|ix| plan.fault_for_attempt("p", ix, 1))
            .collect();
        let a2: Vec<_> = (0..64)
            .map(|ix| plan.fault_for_attempt("p", ix, 2))
            .collect();
        assert_ne!(a0, a1, "attempt 1 must not replay attempt 0's faults");
        assert_ne!(a1, a2, "attempt 2 must not replay attempt 1's faults");
        // A faulted job must be able to recover on retry somewhere in the
        // sweep — otherwise retries are pure waste under injection.
        assert!(
            (0..64).any(|ix| plan.fault_for_attempt("p", ix, 0).is_some()
                && plan.fault_for_attempt("p", ix, 1).is_none()),
            "no faulted job recovers on its first retry"
        );
    }

    #[test]
    fn serve_faults_are_deterministic_and_cover_all_kinds() {
        let plan = FaultPlan::new(7, 1.0);
        let a: Vec<_> = (0..64)
            .map(|ix| plan.serve_fault_for("serve-worker", ix, 0))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|ix| plan.serve_fault_for("serve-worker", ix, 0))
            .collect();
        assert_eq!(
            a, b,
            "same (seed, phase, ix, attempt) must plan the same fault"
        );
        let kinds: std::collections::BTreeSet<String> =
            a.iter().flatten().map(|k| format!("{k:?}")).collect();
        assert_eq!(
            kinds.len(),
            4,
            "expected all four serve fault kinds: {kinds:?}"
        );
        assert!(
            FaultPlan::disabled()
                .serve_fault_for("serve-worker", 0, 0)
                .is_none(),
            "inactive plans must never fault the serve loop"
        );
    }

    #[test]
    fn fault_kinds_all_occur_at_high_rate() {
        let plan = FaultPlan::new(7, 1.0);
        let kinds: std::collections::BTreeSet<_> = (0..64)
            .filter_map(|ix| plan.fault_for("k", ix))
            .map(|k| format!("{k:?}"))
            .collect();
        assert_eq!(kinds.len(), 3, "expected all three fault kinds: {kinds:?}");
    }
}
