//! Job supervision, deterministic fault injection, and the checkpoint
//! store interface — the runtime half of DESIGN.md §8.
//!
//! [`run_jobs_supervised`] wraps every job of [`run_jobs`] in
//! `catch_unwind`, so one panicking property sweep yields a per-job
//! [`JobFailure`] merged deterministically into the results instead of
//! tearing down the whole `std::thread::scope`. Drivers degrade a failed
//! job to [`Outcome::Undetermined`] with
//! [`UndeterminedReason::JobPanicked`].
//!
//! [`FaultPlan`] deterministically schedules injected faults (panics,
//! forced-Unknown queries, expired deadlines) from a seed and a rate, so a
//! failing fault-injected run replays from `SYNTHLC_FAULT_SEED` alone.
//!
//! [`JobStore`] is the narrow interface drivers use to checkpoint and
//! replay completed job verdicts; `synthlc::journal::Journal` implements
//! it with an append-only, fsync'd, torn-tail-tolerant file.
//!
//! [`run_jobs`]: crate::par::run_jobs
//! [`Outcome::Undetermined`]: crate::Outcome::Undetermined
//! [`UndeterminedReason::JobPanicked`]: crate::UndeterminedReason::JobPanicked

use crate::par::run_jobs;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A panic caught by the supervisor while running one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the submitted job list.
    pub job_id: usize,
    /// The panic payload, when it was a string (the common case).
    pub payload_msg: String,
    /// How to localise the failure in a rerun.
    pub backtrace_hint: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} panicked: {} ({})",
            self.job_id, self.payload_msg, self.backtrace_hint
        )
    }
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_jobs`], but each job runs under `catch_unwind`: a panic in
/// job `ix` becomes `Err(JobFailure)` at index `ix` while every other job
/// completes normally. Result order and content are a pure function of
/// the job list, independent of worker count — the same merge-by-job-id
/// determinism contract as `run_jobs` itself.
pub fn run_jobs_supervised<J, R, F>(
    jobs: Vec<J>,
    threads: usize,
    f: F,
) -> Vec<Result<R, JobFailure>>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    run_jobs(jobs, threads, |ix, job| {
        catch_unwind(AssertUnwindSafe(|| f(ix, job))).map_err(|payload| JobFailure {
            job_id: ix,
            payload_msg: payload_msg(payload.as_ref()),
            backtrace_hint: format!(
                "rerun with RUST_BACKTRACE=1 SYNTHLC_THREADS=1 to localise job {ix}"
            ),
        })
    })
}

/// What an injected fault does to its job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The job panics mid-flight (exercises the supervisor).
    Panic,
    /// Every solver query in the job is forced to `Unknown` (exercises
    /// the forced-degradation path without burning solver time).
    ForceUnknown,
    /// The job runs under an already-expired deadline (exercises the
    /// cancellation plumbing end to end).
    DeadlineExpired,
}

/// A deterministic schedule of injected faults.
///
/// Whether job `ix` of a named phase faults — and how — is a pure
/// function of `(seed, phase, ix)`, so a run replays exactly from its
/// seed, at any worker count. A rate of `0.0` plans nothing and is the
/// zero-cost default.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rate: f64,
}

impl FaultPlan {
    /// A plan injecting faults at `rate` (a probability in `[0, 1]` per
    /// job) from `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        Self {
            seed,
            rate: rate.clamp(0.0, 1.0),
        }
    }

    /// The inactive plan: never faults.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether this plan can fault at all.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed from `SYNTHLC_FAULT_SEED` (decimal), defaulting to 0.
    pub fn env_seed() -> u64 {
        std::env::var("SYNTHLC_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    }

    /// The fault planned for job `ix` of `phase`, if any. Phases keep
    /// independent streams so e.g. µPATH slot jobs and IFT unit jobs
    /// fault independently under one seed.
    pub fn fault_for(&self, phase: &str, ix: usize) -> Option<FaultKind> {
        if self.rate <= 0.0 {
            return None;
        }
        // FNV-1a over (phase, ix), decorrelated by the seed, feeds a
        // per-job PRNG stream.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in phase.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ ix as u64).wrapping_mul(0x0000_0100_0000_01b3);
        let mut rng = prng::Rng::new(h ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if !rng.chance(self.rate) {
            return None;
        }
        Some(match rng.range(0, 3) {
            0 => FaultKind::Panic,
            1 => FaultKind::ForceUnknown,
            _ => FaultKind::DeadlineExpired,
        })
    }
}

/// A persistent store of completed job results, keyed by stable
/// fingerprint strings — the interface drivers journal through without
/// depending on the journal's file format. Implementations must be safe
/// to call from parallel workers.
pub trait JobStore: std::fmt::Debug + Send + Sync {
    /// The stored record for `key`, if one was completed earlier.
    fn get(&self, key: &str) -> Option<String>;

    /// Durably persists `record` under `key`.
    fn put(&self, key: &str, record: &str);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supervised_jobs_isolate_panics() {
        let jobs: Vec<usize> = (0..16).collect();
        for threads in [1, 4] {
            let out = run_jobs_supervised(jobs.clone(), threads, |_, j| {
                if j % 5 == 3 {
                    panic!("boom at {j}");
                }
                j * 2
            });
            assert_eq!(out.len(), 16);
            for (ix, r) in out.iter().enumerate() {
                if ix % 5 == 3 {
                    let err = r.as_ref().unwrap_err();
                    assert_eq!(err.job_id, ix);
                    assert_eq!(err.payload_msg, format!("boom at {ix}"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), ix * 2);
                }
            }
        }
    }

    #[test]
    fn supervised_results_match_across_thread_counts() {
        let jobs: Vec<usize> = (0..32).collect();
        let run = |threads| {
            run_jobs_supervised(jobs.clone(), threads, |_, j| {
                if j == 7 || j == 20 {
                    panic!("injected");
                }
                j + 100
            })
        };
        assert_eq!(run(1), run(6));
    }

    #[test]
    fn fault_plan_is_deterministic_and_phase_split() {
        let plan = FaultPlan::new(42, 0.5);
        let a: Vec<_> = (0..64).map(|ix| plan.fault_for("ift", ix)).collect();
        let b: Vec<_> = (0..64).map(|ix| plan.fault_for("ift", ix)).collect();
        assert_eq!(a, b, "same (seed, phase, ix) must plan the same fault");
        let c: Vec<_> = (0..64).map(|ix| plan.fault_for("mupath", ix)).collect();
        assert_ne!(a, c, "phases should have independent fault streams");
        let hits = a.iter().flatten().count();
        assert!(
            (10..60).contains(&hits),
            "rate 0.5 planned {hits}/64 faults"
        );
    }

    #[test]
    fn disabled_plan_never_faults() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        assert!((0..256).all(|ix| plan.fault_for("any", ix).is_none()));
    }

    #[test]
    fn fault_kinds_all_occur_at_high_rate() {
        let plan = FaultPlan::new(7, 1.0);
        let kinds: std::collections::BTreeSet<_> = (0..64)
            .filter_map(|ix| plan.fault_for("k", ix))
            .map(|k| format!("{k:?}"))
            .collect();
        assert_eq!(kinds.len(), 3, "expected all three fault kinds: {kinds:?}");
    }
}
