//! Time-frame expansion of a netlist into SAT literals.

use crate::cnf::GateBuilder;
use crate::coi::CoiSlice;
use crate::elab::Elab;
use netlist::{BinOp, Netlist, Op, SignalId, UnOp};
use std::collections::HashSet;
use std::sync::Arc;

/// How registers are constrained at frame 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InitMode {
    /// Registers start at their reset values (the paper's "valid reset
    /// state", §V-B).
    Reset,
    /// Registers start fully symbolic (used by the k-induction step).
    Free,
}

/// An incremental unrolling: frame `t` holds one literal per signal bit.
#[derive(Debug)]
pub struct Unrolling<'a> {
    nl: &'a Netlist,
    elab: Arc<Elab>,
    init: InitMode,
    free_regs: HashSet<SignalId>,
    /// Optional cone-of-influence slice: out-of-cone nodes get no literals.
    coi: Option<Arc<CoiSlice>>,
    gate: GateBuilder,
    /// `frames[t][sig.index()]` = LSB-first literals of the signal at cycle t.
    frames: Vec<Vec<Vec<sat::Lit>>>,
}

impl<'a> Unrolling<'a> {
    /// Creates an unrolling with zero frames; call [`Unrolling::extend_to`].
    ///
    /// # Panics
    /// Panics if the netlist fails validation.
    pub fn new(nl: &'a Netlist, init: InitMode) -> Self {
        Self::with_elab(nl, init, Arc::new(Elab::new(nl)))
    }

    /// Like [`Unrolling::new`], but reuses an already-computed elaboration
    /// (validation + topological order) of the same netlist, e.g. shared by
    /// many checkers over one harness.
    ///
    /// # Panics
    /// Panics if the elaboration does not match the netlist.
    pub fn with_elab(nl: &'a Netlist, init: InitMode, elab: Arc<Elab>) -> Self {
        assert_eq!(
            elab.len(),
            nl.len(),
            "elaboration belongs to a different netlist"
        );
        Self {
            nl,
            elab,
            init,
            free_regs: HashSet::new(),
            coi: None,
            gate: GateBuilder::new(),
            frames: Vec::new(),
        }
    }

    /// Restricts the unrolling to a cone-of-influence slice: nodes outside
    /// the slice are skipped entirely (no literals, no clauses). Reading an
    /// out-of-cone signal's literals afterwards panics, so the slice must
    /// cover every cover/assume signal the caller will reference. Must be
    /// called before any frame is built.
    ///
    /// # Panics
    /// Panics if frames have already been built or the slice belongs to a
    /// different netlist.
    pub fn set_coi(&mut self, coi: Option<Arc<CoiSlice>>) {
        assert!(self.frames.is_empty(), "set_coi after unrolling");
        if let Some(c) = &coi {
            assert_eq!(c.total_nodes, self.nl.len(), "slice of a different netlist");
        }
        self.coi = coi;
    }

    /// The active cone-of-influence slice, if any.
    pub fn coi(&self) -> Option<Arc<CoiSlice>> {
        self.coi.clone()
    }

    /// The shared elaboration backing this unrolling.
    pub fn elab(&self) -> Arc<Elab> {
        Arc::clone(&self.elab)
    }

    /// Marks registers whose *initial* value is symbolic even under
    /// [`InitMode::Reset`] — the paper's "only architectural state is
    /// symbolically initialized" reset discipline (§V-B). Must be called
    /// before any frame is built.
    ///
    /// # Panics
    /// Panics if frames have already been built.
    pub fn set_free_regs(&mut self, regs: &[SignalId]) {
        assert!(self.frames.is_empty(), "set_free_regs after unrolling");
        self.free_regs = regs.iter().copied().collect();
    }

    /// The netlist being unrolled.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// Number of built frames.
    pub fn num_frames(&self) -> usize {
        self.frames.len()
    }

    /// Mutable access to the gate builder / solver.
    pub fn gate(&mut self) -> &mut GateBuilder {
        &mut self.gate
    }

    /// The literals of `sig` at `frame` (LSB first).
    ///
    /// # Panics
    /// Panics if the frame has not been built.
    pub fn lits(&self, frame: usize, sig: SignalId) -> &[sat::Lit] {
        &self.frames[frame][sig.index()]
    }

    /// The single literal of a 1-bit signal at `frame`.
    ///
    /// # Panics
    /// Panics if the signal is wider than one bit.
    pub fn lit(&self, frame: usize, sig: SignalId) -> sat::Lit {
        let ls = self.lits(frame, sig);
        assert_eq!(ls.len(), 1, "signal is not 1 bit");
        ls[0]
    }

    /// Builds frames until `frames` exist.
    pub fn extend_to(&mut self, frames: usize) {
        while self.frames.len() < frames {
            self.build_frame();
        }
    }

    fn build_frame(&mut self) {
        let t = self.frames.len();
        let n = self.nl.len();
        let mut cur: Vec<Vec<sat::Lit>> = vec![Vec::new(); n];
        let elab = Arc::clone(&self.elab);
        for &id in elab.order() {
            if self.coi.as_ref().is_some_and(|c| !c.keeps(id)) {
                continue;
            }
            let node = self.nl.node(id);
            let w = node.width;
            let bits = match &node.op {
                Op::Input => self.gate.word_fresh(w),
                Op::Const(v) => self.gate.word_const(*v, w),
                Op::Reg { next, init } => {
                    if t == 0 {
                        match self.init {
                            InitMode::Reset if !self.free_regs.contains(&id) => {
                                self.gate.word_const(*init, w)
                            }
                            _ => self.gate.word_fresh(w),
                        }
                    } else {
                        let nx = next.expect("validated netlist");
                        self.frames[t - 1][nx.index()].clone()
                    }
                }
                Op::Unary(op, a) => {
                    let a = cur[a.index()].clone();
                    match op {
                        UnOp::Not => a.iter().map(|&l| !l).collect(),
                        UnOp::Neg => self.gate.word_neg(&a),
                        UnOp::RedOr => vec![self.gate.or_many(&a)],
                        UnOp::RedAnd => vec![self.gate.and_many(&a)],
                        UnOp::RedXor => {
                            let mut acc = self.gate.constant(false);
                            for &l in &a {
                                acc = self.gate.xor(acc, l);
                            }
                            vec![acc]
                        }
                    }
                }
                Op::Binary(op, a, b) => {
                    let a = cur[a.index()].clone();
                    let b = cur[b.index()].clone();
                    match op {
                        BinOp::And => self.gate.word_bitwise(&a, &b, GateBuilder::and),
                        BinOp::Or => self.gate.word_bitwise(&a, &b, GateBuilder::or),
                        BinOp::Xor => self.gate.word_bitwise(&a, &b, GateBuilder::xor),
                        BinOp::Add => self.gate.word_add(&a, &b),
                        BinOp::Sub => self.gate.word_sub(&a, &b),
                        BinOp::Mul => self.gate.word_mul(&a, &b),
                        BinOp::Eq => vec![self.gate.word_eq(&a, &b)],
                        BinOp::Ne => {
                            let e = self.gate.word_eq(&a, &b);
                            vec![!e]
                        }
                        BinOp::Ult => vec![self.gate.word_ult(&a, &b)],
                        BinOp::Ule => vec![self.gate.word_ule(&a, &b)],
                        BinOp::Shl => self.gate.word_shl(&a, &b),
                        BinOp::Shr => self.gate.word_shr(&a, &b),
                    }
                }
                Op::Mux { sel, a, b } => {
                    let s = cur[sel.index()][0];
                    let a = cur[a.index()].clone();
                    let b = cur[b.index()].clone();
                    self.gate.word_mux(s, &a, &b)
                }
                Op::Slice { src, hi, lo } => cur[src.index()][*lo as usize..=*hi as usize].to_vec(),
                Op::Concat { hi, lo } => {
                    let mut bits = cur[lo.index()].clone();
                    bits.extend_from_slice(&cur[hi.index()]);
                    bits
                }
            };
            debug_assert_eq!(bits.len(), w as usize);
            cur[id.index()] = bits;
        }
        self.frames.push(cur);
    }

    /// Reads a signal's value at a frame out of the most recent SAT model.
    /// Unconstrained bits read as 0.
    pub fn model_value(&self, frame: usize, sig: SignalId) -> u64 {
        let solver = self.gate.solver_ref();
        let mut v = 0u64;
        for (i, &l) in self.frames[frame][sig.index()].iter().enumerate() {
            if solver.lit_model(l) == Some(true) {
                v |= 1 << i;
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Builder;
    use sat::SolveResult;

    fn counter(width: u8) -> Netlist {
        let mut b = Builder::new();
        let c = b.reg("c", width, 0);
        let one = b.constant(1, width);
        let n = b.add(c, one);
        b.set_next(c, n).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn counter_reaches_value_at_exact_frame() {
        let nl = counter(4);
        let c = nl.find("c").unwrap();
        let mut u = Unrolling::new(&nl, InitMode::Reset);
        u.extend_to(6);
        // c@5 == 5 must be satisfiable; c@5 == 4 unsatisfiable.
        let five = u.gate().word_const(5, 4);
        let lits5 = u.lits(5, c).to_vec();
        let eq5 = u.gate().word_eq(&lits5, &five);
        assert_eq!(u.gate().solver().solve_assuming(&[eq5]), SolveResult::Sat);
        let four = u.gate().word_const(4, 4);
        let eq4 = u.gate().word_eq(&lits5, &four);
        assert_eq!(u.gate().solver().solve_assuming(&[eq4]), SolveResult::Unsat);
    }

    #[test]
    fn free_init_makes_any_value_reachable_at_frame_0() {
        let nl = counter(4);
        let c = nl.find("c").unwrap();
        let mut u = Unrolling::new(&nl, InitMode::Free);
        u.extend_to(1);
        let nine = u.gate().word_const(9, 4);
        let lits0 = u.lits(0, c).to_vec();
        let eq = u.gate().word_eq(&lits0, &nine);
        assert_eq!(u.gate().solver().solve_assuming(&[eq]), SolveResult::Sat);
    }

    #[test]
    fn model_value_reads_inputs() {
        let mut b = Builder::new();
        let x = b.input("x", 8);
        let r = b.reg("r", 8, 0);
        b.set_next(r, x).unwrap();
        let nl = b.finish().unwrap();
        let (x, r) = (nl.find("x").unwrap(), nl.find("r").unwrap());
        let mut u = Unrolling::new(&nl, InitMode::Reset);
        u.extend_to(2);
        let c99 = u.gate().word_const(99, 8);
        let r1 = u.lits(1, r).to_vec();
        let eq = u.gate().word_eq(&r1, &c99);
        assert!(u.gate().solver().solve_assuming(&[eq]).is_sat());
        assert_eq!(u.model_value(0, x), 99);
        assert_eq!(u.model_value(1, r), 99);
    }
}
