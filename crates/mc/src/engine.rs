//! The property-checking engine: cover/assume queries over an incrementally
//! shared unrolling, with the paper's reachable / unreachable / undetermined
//! outcome trichotomy (§V-B) and an optional k-induction unreachability
//! prover.

use crate::elab::Elab;
use crate::trace::Trace;
use crate::unroll::{InitMode, Unrolling};
use netlist::{Netlist, SignalId};
use sat::{BudgetPool, CancelToken, Lit, SolveResult, StopCause};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a verdict degraded to [`Outcome::Undetermined`]. Structured so that
/// reports can say *which* resource gave out, and so the fault-injection
/// harness can assert it only ever widens verdicts (DESIGN.md §8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum UndeterminedReason {
    /// A conflict budget ran out — the per-query budget, the shared
    /// [`BudgetPool`] cap, or an incomplete bound without an induction
    /// proof (the paper's "budget/bound exhausted" bucket, §V-B).
    BudgetExhausted,
    /// A wall-clock deadline passed or the run was cancelled.
    Deadline,
    /// The job panicked and the supervisor caught it.
    JobPanicked,
    /// The fault-injection harness forced this verdict.
    FaultInjected,
}

impl UndeterminedReason {
    /// Stable lowercase label used in journals and report lines.
    pub fn label(&self) -> &'static str {
        match self {
            UndeterminedReason::BudgetExhausted => "budget",
            UndeterminedReason::Deadline => "deadline",
            UndeterminedReason::JobPanicked => "panicked",
            UndeterminedReason::FaultInjected => "fault",
        }
    }

    /// Parses a [`label`](Self::label) back.
    pub fn from_label(s: &str) -> Option<Self> {
        Some(match s {
            "budget" => UndeterminedReason::BudgetExhausted,
            "deadline" => UndeterminedReason::Deadline,
            "panicked" => UndeterminedReason::JobPanicked,
            "fault" => UndeterminedReason::FaultInjected,
            _ => return None,
        })
    }
}

/// Outcome of a cover query, mirroring the paper's model-checker outcomes.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// A witness trace satisfying the cover (and all assumes) exists.
    Reachable(Trace),
    /// Proven: no such trace exists (complete bound or induction).
    Unreachable,
    /// No verdict; the reason records which resource or fault gave out.
    Undetermined(UndeterminedReason),
}

impl Outcome {
    /// `true` when reachable.
    pub fn is_reachable(&self) -> bool {
        matches!(self, Outcome::Reachable(_))
    }

    /// `true` when proven unreachable.
    pub fn is_unreachable(&self) -> bool {
        matches!(self, Outcome::Unreachable)
    }

    /// `true` when undetermined.
    pub fn is_undetermined(&self) -> bool {
        matches!(self, Outcome::Undetermined(_))
    }

    /// Why the verdict is undetermined, when it is.
    pub fn undetermined_reason(&self) -> Option<UndeterminedReason> {
        match self {
            Outcome::Undetermined(r) => Some(*r),
            _ => None,
        }
    }

    /// The witness trace, when reachable.
    pub fn trace(&self) -> Option<&Trace> {
        match self {
            Outcome::Reachable(t) => Some(t),
            _ => None,
        }
    }
}

/// Configuration of a [`Checker`].
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Unrolling depth (number of cycles explored from reset).
    pub bound: usize,
    /// Conflict budget per property; exhausting it yields `Undetermined`.
    pub conflict_budget: Option<u64>,
    /// Declare the bound *complete*: every behaviour of interest manifests
    /// within it, so in-bound UNSAT proves unreachability. Our pipeline DUVs
    /// drain within a statically known number of cycles, which justifies
    /// this (see `DESIGN.md` §4).
    pub bound_is_complete: bool,
    /// When the bound is not complete, attempt a k-induction proof before
    /// reporting `Undetermined`.
    pub try_induction: bool,
    /// Induction depth (k).
    pub induction_depth: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            bound: 20,
            conflict_budget: Some(2_000_000),
            bound_is_complete: true,
            try_induction: false,
            induction_depth: 4,
        }
    }
}

/// Aggregated per-checker property statistics (the §VII-B3 analogue).
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckStats {
    /// Properties evaluated.
    pub properties: u64,
    /// Reachable outcomes.
    pub reachable: u64,
    /// Unreachable outcomes.
    pub unreachable: u64,
    /// Undetermined outcomes.
    pub undetermined: u64,
    /// Total wall time in property evaluation.
    pub total_time: Duration,
    /// Longest single property evaluation.
    pub max_time: Duration,
    /// Signal bits in the netlist before cone-of-influence slicing.
    pub coi_bits_before: u64,
    /// Signal bits actually bit-blasted (equals `coi_bits_before` when no
    /// slice is active).
    pub coi_bits_after: u64,
    /// Properties discharged statically (no SAT call) by taint-reachability
    /// pruning; these are *also* counted in `properties`/`unreachable` so
    /// outcome counts match a run without pruning.
    pub discharged_static: u64,
    /// Query batches served by a persistent pooled context that was already
    /// warm (solver + unrolling carried over from an earlier batch).
    pub ctx_reused: u64,
    /// Unrolling frames grown *in place* on a persistent context
    /// (`Checker::ensure_bound`) instead of being rebuilt from scratch.
    pub frames_extended: u64,
    /// Unrolling frames built from scratch by throwaway (non-pooled)
    /// checkers at construction time.
    pub frames_rebuilt: u64,
    /// Live learnt clauses inherited from earlier batches when a pooled
    /// context was checked out again (summed over all reuses).
    pub learnts_carried: u64,
    /// Undetermined outcomes caused by budget/bound exhaustion.
    pub undet_budget: u64,
    /// Undetermined outcomes caused by a deadline or cancellation.
    pub undet_deadline: u64,
    /// Undetermined outcomes caused by a caught job panic.
    pub undet_panicked: u64,
    /// Undetermined outcomes caused by an injected fault.
    pub undet_fault: u64,
    /// Live learnt clauses in the solver's core tier (LBD ≤ 2) at the
    /// last query — a gauge, not a counter; `absorb` sums gauges across
    /// workers so a merged record reads as fleet-wide live totals.
    pub sat_learnt_core: u64,
    /// Live learnt clauses in the mid tier at the last query (gauge).
    pub sat_learnt_mid: u64,
    /// Live learnt clauses in the local tier at the last query (gauge).
    pub sat_learnt_local: u64,
    /// Live binary clauses (original + learnt) at the last query (gauge).
    pub sat_binary_clauses: u64,
    /// Learnt clauses deleted by DB reduction or inprocessing (counter).
    pub sat_clauses_deleted: u64,
    /// Learnt clauses removed as subsumed during inprocessing (counter).
    pub sat_subsumed: u64,
    /// Literals removed by self-subsuming resolution (counter).
    pub sat_strengthened: u64,
    /// Adaptive restarts postponed by trail-size blocking (counter).
    pub sat_blocked_restarts: u64,
    /// Queries that reused retained assumption-trail levels (counter).
    pub sat_trail_reuses: u64,
    /// Total retained assumption levels reused across queries (counter).
    pub sat_reused_levels: u64,
    /// Sum of learnt-clause LBD at learn time (counter).
    pub sat_lbd_sum: u64,
    /// Learnt clauses contributing to `sat_lbd_sum` (counter).
    pub sat_lbd_count: u64,
    /// Largest LBD seen at learn time.
    pub sat_max_lbd: u32,
}

impl CheckStats {
    /// Average seconds per property.
    pub fn avg_seconds(&self) -> f64 {
        if self.properties == 0 {
            0.0
        } else {
            self.total_time.as_secs_f64() / self.properties as f64
        }
    }

    /// Percentage of undetermined outcomes.
    pub fn undetermined_pct(&self) -> f64 {
        if self.properties == 0 {
            0.0
        } else {
            100.0 * self.undetermined as f64 / self.properties as f64
        }
    }

    /// Mean LBD of learnt clauses at learn time (0 when none learnt).
    pub fn sat_avg_lbd(&self) -> f64 {
        if self.sat_lbd_count == 0 {
            0.0
        } else {
            self.sat_lbd_sum as f64 / self.sat_lbd_count as f64
        }
    }

    /// Live learnt clauses across all tiers at the last query (gauge).
    pub fn sat_learnt_live(&self) -> u64 {
        self.sat_learnt_core + self.sat_learnt_mid + self.sat_learnt_local
    }

    /// Merges another stats record into this one.
    pub fn absorb(&mut self, other: &CheckStats) {
        self.properties += other.properties;
        self.reachable += other.reachable;
        self.unreachable += other.unreachable;
        self.undetermined += other.undetermined;
        self.total_time += other.total_time;
        self.max_time = self.max_time.max(other.max_time);
        self.coi_bits_before += other.coi_bits_before;
        self.coi_bits_after += other.coi_bits_after;
        self.discharged_static += other.discharged_static;
        self.ctx_reused += other.ctx_reused;
        self.frames_extended += other.frames_extended;
        self.frames_rebuilt += other.frames_rebuilt;
        self.learnts_carried += other.learnts_carried;
        self.undet_budget += other.undet_budget;
        self.undet_deadline += other.undet_deadline;
        self.undet_panicked += other.undet_panicked;
        self.undet_fault += other.undet_fault;
        self.sat_learnt_core += other.sat_learnt_core;
        self.sat_learnt_mid += other.sat_learnt_mid;
        self.sat_learnt_local += other.sat_learnt_local;
        self.sat_binary_clauses += other.sat_binary_clauses;
        self.sat_clauses_deleted += other.sat_clauses_deleted;
        self.sat_subsumed += other.sat_subsumed;
        self.sat_strengthened += other.sat_strengthened;
        self.sat_blocked_restarts += other.sat_blocked_restarts;
        self.sat_trail_reuses += other.sat_trail_reuses;
        self.sat_reused_levels += other.sat_reused_levels;
        self.sat_lbd_sum += other.sat_lbd_sum;
        self.sat_lbd_count += other.sat_lbd_count;
        self.sat_max_lbd = self.sat_max_lbd.max(other.sat_max_lbd);
    }

    /// Records one undetermined outcome of the given reason (counter
    /// bookkeeping for results produced outside a [`Checker`], e.g. a
    /// supervised job that panicked before reporting stats).
    pub fn count_undetermined(&mut self, reason: UndeterminedReason) {
        self.undetermined += 1;
        match reason {
            UndeterminedReason::BudgetExhausted => self.undet_budget += 1,
            UndeterminedReason::Deadline => self.undet_deadline += 1,
            UndeterminedReason::JobPanicked => self.undet_panicked += 1,
            UndeterminedReason::FaultInjected => self.undet_fault += 1,
        }
    }

    /// Undetermined outcomes that stem from degradation (panic, fault,
    /// deadline) rather than ordinary budget exhaustion.
    pub fn degraded(&self) -> u64 {
        self.undet_deadline + self.undet_panicked + self.undet_fault
    }

    /// Fraction of bits kept after cone-of-influence slicing (1.0 = none).
    pub fn coi_ratio(&self) -> f64 {
        if self.coi_bits_before == 0 {
            1.0
        } else {
            self.coi_bits_after as f64 / self.coi_bits_before as f64
        }
    }
}

/// A bounded model checker over one netlist, shared across many properties.
///
/// All properties are *cover* properties over 1-bit signals, optionally
/// constrained by *assume* signals that must hold at every cycle — exactly
/// the SVA subset the paper's templates use. The `sva` crate compiles richer
/// temporal properties into monitor circuits whose outputs are the 1-bit
/// signals passed here.
#[derive(Debug)]
pub struct Checker<'a> {
    nl: &'a Netlist,
    cfg: McConfig,
    unroll: Unrolling<'a>,
    /// Activation literal implying "assume signal holds at all frames".
    /// Ordered map: `ensure_bound` iterates it to extend activation clauses,
    /// and the clause-addition order must not depend on hash randomness.
    assume_cache: BTreeMap<SignalId, Lit>,
    /// Activation literal implying "cover signal holds at some frame".
    cover_cache: BTreeMap<SignalId, Lit>,
    stats: CheckStats,
    /// Globally shared conflict/propagation account (see [`BudgetPool`]).
    pool: Option<Arc<BudgetPool>>,
    /// Solver-stats snapshot at the last pool charge, for delta accounting.
    charged: sat::SolverStats,
    /// Cooperative cancellation, shared with the solve loop.
    cancel: Option<Arc<CancelToken>>,
    /// When set, every subsequent query degrades to this reason without
    /// solving (the fault-injection harness's forced-Unknown mode). Cleared
    /// by [`Checker::begin_batch`] so a fault injected into one pooled batch
    /// cannot cascade into the next.
    fault: Option<UndeterminedReason>,
    /// Batches started via [`Checker::begin_batch`] (0 for checkers that
    /// never pass through a pool).
    batches: u64,
    /// Construction-time (coi_bits_before, coi_bits_after), re-seeded into
    /// the per-batch stats by [`Checker::begin_batch`].
    coi_seed: (u64, u64),
    /// Persistent k-induction twin of this checker's context
    /// ([`InitMode::Free`], same elaboration and slice), built lazily on the
    /// first induction attempt and reused across queries so its learnt
    /// clauses and budget charges accumulate like the main solver's.
    ind: Option<Unrolling<'a>>,
    /// Induction-solver stats snapshot at the last pool charge.
    ind_charged: sat::SolverStats,
}

impl<'a> Checker<'a> {
    /// Creates a checker and eagerly unrolls to the configured bound.
    ///
    /// # Panics
    /// Panics if the netlist is invalid.
    pub fn new(nl: &'a Netlist, cfg: McConfig) -> Self {
        Self::with_free_regs(nl, cfg, &[])
    }

    /// Like [`Checker::new`], but the listed registers (typically the
    /// architectural register file and memory) start *symbolic* rather than
    /// at their reset values — the paper's reset discipline (§V-B).
    pub fn with_free_regs(nl: &'a Netlist, cfg: McConfig, free: &[SignalId]) -> Self {
        Self::with_elab(nl, cfg, free, Arc::new(Elab::new(nl)))
    }

    /// Like [`Checker::with_free_regs`], but reuses a shared elaboration of
    /// the netlist — validation and topological ordering are skipped, which
    /// matters when many checkers (e.g. parallel workers) target the same
    /// harness.
    ///
    /// # Panics
    /// Panics if the elaboration does not match the netlist.
    pub fn with_elab(nl: &'a Netlist, cfg: McConfig, free: &[SignalId], elab: Arc<Elab>) -> Self {
        Self::with_coi(nl, cfg, free, elab, None)
    }

    /// Like [`Checker::with_elab`], but restricts bit-blasting to a
    /// cone-of-influence slice. Every cover/assume signal passed to queries
    /// must be inside the slice's targets; verdicts are identical to an
    /// unsliced checker (see [`crate::CoiSlice`]).
    ///
    /// # Panics
    /// Panics if the elaboration or slice does not match the netlist.
    pub fn with_coi(
        nl: &'a Netlist,
        cfg: McConfig,
        free: &[SignalId],
        elab: Arc<Elab>,
        coi: Option<Arc<crate::CoiSlice>>,
    ) -> Self {
        let mut unroll = Unrolling::with_elab(nl, InitMode::Reset, elab);
        unroll.set_free_regs(free);
        unroll.set_coi(coi.clone());
        unroll.extend_to(cfg.bound);
        let mut stats = CheckStats::default();
        match &coi {
            Some(c) => {
                stats.coi_bits_before = c.total_bits;
                stats.coi_bits_after = c.kept_bits;
            }
            None => {
                let total: u64 = nl.iter().map(|(_, n)| n.width as u64).sum();
                stats.coi_bits_before = total;
                stats.coi_bits_after = total;
            }
        }
        // Frames built here are a from-scratch bit-blast; pooled contexts
        // are constructed at bound 0 and grown via `ensure_bound`, which
        // counts into `frames_extended` instead.
        stats.frames_rebuilt = cfg.bound as u64;
        let coi_seed = (stats.coi_bits_before, stats.coi_bits_after);
        Self {
            nl,
            cfg,
            unroll,
            assume_cache: BTreeMap::new(),
            cover_cache: BTreeMap::new(),
            stats,
            pool: None,
            charged: sat::SolverStats::default(),
            cancel: None,
            fault: None,
            batches: 0,
            coi_seed,
            ind: None,
            ind_charged: sat::SolverStats::default(),
        }
    }

    /// Starts a fresh accounting batch on a persistent (pooled) checker:
    /// zeroes the per-batch [`CheckStats`], re-seeds the cone-of-influence
    /// gauge and the live solver-database gauges, clears any injected fault,
    /// and — from the second batch on — records the context reuse and the
    /// learnt clauses carried over from earlier batches. The pool-charge
    /// snapshot is *kept*, so `BudgetPool` delta accounting spans batches
    /// correctly.
    pub fn begin_batch(&mut self) {
        self.batches += 1;
        if self.batches > 1 {
            // The next batch is an unrelated property fleet: keep the
            // permanent core tier (and binaries), shed the mid/local
            // clauses whose watch-list tax outlives their usefulness.
            self.unroll.gate().solver().trim_learnts_for_batch();
        }
        let live = self.unroll.gate().solver().stats();
        let mut stats = CheckStats {
            coi_bits_before: self.coi_seed.0,
            coi_bits_after: self.coi_seed.1,
            ..Default::default()
        };
        if self.batches > 1 {
            stats.ctx_reused = 1;
            stats.learnts_carried = live.learnt_core + live.learnt_mid + live.learnt_local;
        }
        stats.sat_learnt_core = live.learnt_core;
        stats.sat_learnt_mid = live.learnt_mid;
        stats.sat_learnt_local = live.learnt_local;
        stats.sat_binary_clauses = live.binary_clauses;
        self.stats = stats;
        self.fault = None;
    }

    /// Grows the unrolling *in place* to at least `bound` frames (a no-op
    /// when already deep enough). Variable numbering of existing frames is
    /// untouched; cached assume activations are extended over the new
    /// frames (sound: `act → sig@t` for every frame is exactly the assume's
    /// meaning at the deeper bound), while cached cover activations are
    /// retired — a cover over frames `0..old` under-approximates the cover
    /// at the deeper bound, so the next query mints a fresh activation. The
    /// orphaned activation literal is never assumed again and its clause is
    /// trivially satisfiable, so solver state stays sound.
    pub fn ensure_bound(&mut self, bound: usize) {
        if bound <= self.cfg.bound {
            return;
        }
        let old = self.cfg.bound;
        self.unroll.extend_to(bound);
        let cached: Vec<(SignalId, Lit)> =
            self.assume_cache.iter().map(|(&s, &l)| (s, l)).collect();
        for (sig, act) in cached {
            for t in old..bound {
                let at = self.unroll.lit(t, sig);
                self.unroll.gate().add_clause(&[!act, at]);
            }
        }
        self.cover_cache.clear();
        self.stats.frames_extended += (bound - old) as u64;
        self.cfg.bound = bound;
    }

    /// Attaches a shared budget pool: every query charges its
    /// conflict/propagation deltas into the pool, and once the pool's
    /// global cap is exhausted further queries return
    /// [`Outcome::Undetermined`] without solving. When the pool has a cap,
    /// the solve loop also polls it mid-query, bounding cap overshoot to
    /// one poll interval. An uncapped pool is pure accounting and never
    /// alters outcomes (no watch is attached, so the solve loop stays on
    /// its zero-knob path).
    pub fn set_budget_pool(&mut self, pool: Arc<BudgetPool>) {
        if pool.cap().is_some() {
            self.unroll
                .gate()
                .solver()
                .set_pool_watch(Some(Arc::clone(&pool)));
        }
        self.pool = Some(pool);
    }

    /// Attaches a cancellation token: the solve loop polls it, and a fired
    /// token degrades in-flight and subsequent queries to
    /// [`Outcome::Undetermined`] with [`UndeterminedReason::Deadline`].
    pub fn set_cancel_token(&mut self, token: Arc<CancelToken>) {
        self.unroll
            .gate()
            .solver()
            .set_cancel_token(Some(Arc::clone(&token)));
        self.cancel = Some(token);
    }

    /// Forces every subsequent query to degrade to `Undetermined(reason)`
    /// without solving — the fault-injection harness's forced-Unknown
    /// mode. Faults can only widen verdicts: a degraded query never
    /// reports Reachable/Unreachable.
    pub fn set_fault(&mut self, reason: UndeterminedReason) {
        self.fault = Some(reason);
    }

    /// The checker's netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// The active configuration.
    pub fn config(&self) -> McConfig {
        self.cfg
    }

    /// Statistics over all properties checked so far.
    pub fn stats(&self) -> CheckStats {
        self.stats
    }

    /// Raw SAT-solver statistics (variables, conflicts, propagations).
    pub fn solver_stats(&mut self) -> (usize, sat::SolverStats) {
        let vars = self.unroll.gate().num_vars();
        (vars, self.unroll.gate().solver().stats())
    }

    fn assume_activation(&mut self, sig: SignalId) -> Lit {
        if let Some(&l) = self.assume_cache.get(&sig) {
            return l;
        }
        assert_eq!(self.nl.width(sig), 1, "assume signal must be 1 bit");
        let act = self.unroll.gate().fresh();
        for t in 0..self.cfg.bound {
            let at = self.unroll.lit(t, sig);
            self.unroll.gate().add_clause(&[!act, at]);
        }
        self.assume_cache.insert(sig, act);
        act
    }

    fn cover_activation(&mut self, sig: SignalId) -> Lit {
        if let Some(&l) = self.cover_cache.get(&sig) {
            return l;
        }
        assert_eq!(self.nl.width(sig), 1, "cover signal must be 1 bit");
        let act = self.unroll.gate().fresh();
        let mut clause = vec![!act];
        for t in 0..self.cfg.bound {
            clause.push(self.unroll.lit(t, sig));
        }
        self.unroll.gate().add_clause(&clause);
        self.cover_cache.insert(sig, act);
        act
    }

    /// Checks `cover (cover_sig)` under `assume (a)` for every `a` in
    /// `assumes` (each holding at every cycle).
    pub fn check_cover(&mut self, cover_sig: SignalId, assumes: &[SignalId]) -> Outcome {
        let started = Instant::now();
        if let Some(reason) = self.fault {
            return self.record(started, Outcome::Undetermined(reason));
        }
        if self.pool.as_ref().is_some_and(|p| p.exhausted()) {
            return self.record(
                started,
                Outcome::Undetermined(UndeterminedReason::BudgetExhausted),
            );
        }
        let mut assumptions: Vec<Lit> =
            assumes.iter().map(|&a| self.assume_activation(a)).collect();
        assumptions.push(self.cover_activation(cover_sig));
        self.unroll
            .gate()
            .solver()
            .set_conflict_budget(self.cfg.conflict_budget);
        let result = self.unroll.gate().solver().solve_assuming(&assumptions);
        self.charge_pool();
        let outcome = match result {
            SolveResult::Sat => Outcome::Reachable(Trace::from_model(&self.unroll, self.cfg.bound)),
            SolveResult::Unsat => {
                let proved = self.cfg.bound_is_complete
                    || (self.cfg.try_induction && self.prove_by_induction(cover_sig, assumes));
                if proved {
                    Outcome::Unreachable
                } else {
                    Outcome::Undetermined(UndeterminedReason::BudgetExhausted)
                }
            }
            SolveResult::Unknown => Outcome::Undetermined(self.unknown_reason()),
        };
        self.record(started, outcome)
    }

    /// Maps the solver's stop cause for an `Unknown` result onto the
    /// structured undetermined reason.
    fn unknown_reason(&mut self) -> UndeterminedReason {
        match self.unroll.gate().solver().last_stop() {
            Some(StopCause::Cancelled | StopCause::Deadline) => UndeterminedReason::Deadline,
            _ => UndeterminedReason::BudgetExhausted,
        }
    }

    /// Notes that the *next* property was discharged by a static analysis
    /// (pure bookkeeping; pair with [`Checker::discharge_unreachable`] or a
    /// debug cross-check via [`Checker::check_cover`]).
    pub fn note_static_discharge(&mut self) {
        self.stats.discharged_static += 1;
    }

    /// Records a property as `Unreachable` without any SAT call — used when
    /// a static over-approximation (e.g. taint reachability) already proves
    /// no witness exists. Counts into `properties`/`unreachable` exactly as
    /// a solved query would, so outcome fingerprints match unpruned runs.
    pub fn discharge_unreachable(&mut self) -> Outcome {
        self.record(Instant::now(), Outcome::Unreachable)
    }

    fn record(&mut self, started: Instant, outcome: Outcome) -> Outcome {
        let elapsed = started.elapsed();
        self.stats.properties += 1;
        self.stats.total_time += elapsed;
        self.stats.max_time = self.stats.max_time.max(elapsed);
        match &outcome {
            Outcome::Reachable(_) => self.stats.reachable += 1,
            Outcome::Unreachable => self.stats.unreachable += 1,
            Outcome::Undetermined(reason) => self.stats.count_undetermined(*reason),
        }
        outcome
    }

    /// Charges the main solver's statistics delta since the last charge
    /// into the shared pool (when one is attached) and folds the same
    /// delta into the learnt-DB observability counters.
    fn charge_pool(&mut self) {
        let now = self.unroll.gate().solver().stats();
        if let Some(pool) = &self.pool {
            pool.charge(
                now.conflicts - self.charged.conflicts,
                now.propagations - self.charged.propagations,
            );
        }
        // Counters accumulate deltas; gauges are overwritten with the
        // latest live values so `stats()` reads as "the solver now".
        self.stats.sat_clauses_deleted += now.clauses_deleted - self.charged.clauses_deleted;
        self.stats.sat_subsumed += now.subsumed - self.charged.subsumed;
        self.stats.sat_strengthened += now.strengthened - self.charged.strengthened;
        self.stats.sat_blocked_restarts += now.blocked_restarts - self.charged.blocked_restarts;
        self.stats.sat_trail_reuses += now.trail_reuses - self.charged.trail_reuses;
        self.stats.sat_reused_levels += now.reused_levels - self.charged.reused_levels;
        self.stats.sat_lbd_sum += now.lbd_sum - self.charged.lbd_sum;
        self.stats.sat_lbd_count += now.lbd_count - self.charged.lbd_count;
        self.stats.sat_max_lbd = self.stats.sat_max_lbd.max(now.max_lbd);
        self.stats.sat_learnt_core = now.learnt_core;
        self.stats.sat_learnt_mid = now.learnt_mid;
        self.stats.sat_learnt_local = now.learnt_local;
        self.stats.sat_binary_clauses = now.binary_clauses;
        self.charged = now;
    }

    /// The SAT literal of a 1-bit signal at the final unrolled frame.
    ///
    /// Enumeration loops (µPATH shape enumeration in `mupath`) read monitor
    /// bits here and block found signatures with
    /// [`Checker::add_blocking_clause`].
    ///
    /// # Panics
    /// Panics if the signal is wider than 1 bit.
    pub fn final_frame_lit(&self, sig: SignalId) -> Lit {
        self.unroll.lit(self.cfg.bound - 1, sig)
    }

    /// The SAT literal of one bit of a signal at the final unrolled frame.
    ///
    /// # Panics
    /// Panics if `bit` is out of range for the signal's width.
    pub fn final_frame_bit(&self, sig: SignalId, bit: u8) -> Lit {
        self.unroll.lits(self.cfg.bound - 1, sig)[bit as usize]
    }

    /// Adds a permanent clause over literals obtained from
    /// [`Checker::final_frame_lit`], used to block already-enumerated
    /// solutions.
    pub fn add_blocking_clause(&mut self, lits: &[Lit]) {
        self.unroll.gate().add_clause(lits);
    }

    /// Adds a blocking clause that is only active while `guard` — an assume
    /// signal passed to every query of the caller's fleet — is assumed: the
    /// stored clause is `!activation(guard) ∨ lits...`. Queries that do not
    /// assume the guard can satisfy the clause through the unassumed
    /// activation literal, so enumeration loops over different guards can
    /// safely share one persistent solver.
    pub fn add_blocking_clause_scoped(&mut self, guard: SignalId, lits: &[Lit]) {
        let act = self.assume_activation(guard);
        let mut clause = Vec::with_capacity(lits.len() + 1);
        clause.push(!act);
        clause.extend_from_slice(lits);
        self.unroll.gate().add_clause(&clause);
    }

    /// k-induction step: from any state satisfying the assumes in which the
    /// cover did not fire for `k` consecutive cycles, the cover cannot fire
    /// at cycle `k`. Combined with the (already UNSAT) base case this proves
    /// global unreachability.
    fn prove_by_induction(&mut self, cover_sig: SignalId, assumes: &[SignalId]) -> bool {
        let k = self.cfg.induction_depth;
        if k == 0 || k > self.cfg.bound {
            return false;
        }
        // The induction context is persistent: the `InitMode::Free` twin of
        // this checker's pool key, sharing its elaboration and slice. Every
        // induction query is pure assumptions (no per-query clauses), so
        // learnt clauses — consequences of the transition relation alone —
        // stay sound across queries, and the solver's conflicts and
        // propagations are charged to the `BudgetPool` as deltas mid-phase
        // rather than vanishing with a throwaway solver.
        if self.ind.is_none() {
            let mut ind = Unrolling::with_elab(self.nl, InitMode::Free, self.unroll.elab());
            ind.set_coi(self.unroll.coi());
            if let Some(token) = &self.cancel {
                ind.gate()
                    .solver()
                    .set_cancel_token(Some(Arc::clone(token)));
            }
            if let Some(pool) = self.pool.as_ref().filter(|p| p.cap().is_some()) {
                ind.gate().solver().set_pool_watch(Some(Arc::clone(pool)));
            }
            self.ind = Some(ind);
        }
        let ind = self.ind.as_mut().expect("just ensured");
        ind.extend_to(k + 1);
        let mut assumptions = Vec::new();
        for t in 0..=k {
            for &a in assumes {
                assumptions.push(ind.lit(t, a));
            }
        }
        for t in 0..k {
            let c = ind.lit(t, cover_sig);
            assumptions.push(!c);
        }
        assumptions.push(ind.lit(k, cover_sig));
        ind.gate()
            .solver()
            .set_conflict_budget(self.cfg.conflict_budget);
        let proved = ind.gate().solver().solve_assuming(&assumptions).is_unsat();
        let st = ind.gate().solver().stats();
        let prev = self.ind_charged;
        if let Some(pool) = &self.pool {
            pool.charge(
                st.conflicts - prev.conflicts,
                st.propagations - prev.propagations,
            );
        }
        // Fold the induction solver's counter deltas in, but leave the
        // live-database gauges to the main solver.
        self.stats.sat_clauses_deleted += st.clauses_deleted - prev.clauses_deleted;
        self.stats.sat_subsumed += st.subsumed - prev.subsumed;
        self.stats.sat_strengthened += st.strengthened - prev.strengthened;
        self.stats.sat_blocked_restarts += st.blocked_restarts - prev.blocked_restarts;
        self.stats.sat_trail_reuses += st.trail_reuses - prev.trail_reuses;
        self.stats.sat_reused_levels += st.reused_levels - prev.reused_levels;
        self.stats.sat_lbd_sum += st.lbd_sum - prev.lbd_sum;
        self.stats.sat_lbd_count += st.lbd_count - prev.lbd_count;
        self.stats.sat_max_lbd = self.stats.sat_max_lbd.max(st.max_lbd);
        self.ind_charged = st;
        proved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::Builder;

    /// A 3-bit counter plus a flag raised when it equals 5, and a saturating
    /// variant used for induction tests.
    fn counter_with_flag() -> Netlist {
        let mut b = Builder::new();
        let c = b.reg("c", 3, 0);
        let one = b.constant(1, 3);
        let n = b.add(c, one);
        b.set_next(c, n).unwrap();
        let is5 = b.eq_const(c, 5);
        b.name(is5, "at5");
        let is7 = b.eq_const(c, 7);
        let never = b.constant(0, 1);
        b.name(never, "never");
        b.name(is7, "at7");
        b.finish().unwrap()
    }

    #[test]
    fn cover_reachable_with_witness() {
        let nl = counter_with_flag();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 8,
                ..Default::default()
            },
        );
        let out = chk.check_cover(nl.find("at5").unwrap(), &[]);
        let trace = out.trace().expect("reachable");
        let c = nl.find("c").unwrap();
        assert_eq!(trace.value(5, c), 5, "witness shows counter at 5");
    }

    #[test]
    fn cover_unreachable_within_complete_bound() {
        let nl = counter_with_flag();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 8,
                ..Default::default()
            },
        );
        let out = chk.check_cover(nl.find("never").unwrap(), &[]);
        assert!(out.is_unreachable());
    }

    #[test]
    fn incomplete_bound_gives_undetermined() {
        let nl = counter_with_flag();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 4, // too shallow to see c == 5
                bound_is_complete: false,
                try_induction: false,
                ..Default::default()
            },
        );
        let out = chk.check_cover(nl.find("at5").unwrap(), &[]);
        assert!(out.is_undetermined(), "shallow bound must not prove");
    }

    #[test]
    fn assumes_constrain_covers() {
        // With assume(c != 5 is not expressible directly): build a netlist
        // where an input gates progress, assume the gate low, and show the
        // cover becomes unreachable.
        let mut b = Builder::new();
        let en = b.input("en", 1);
        let c = b.reg("c", 3, 0);
        let one = b.constant(1, 3);
        let n = b.add(c, one);
        let gated = b.mux(en, n, c);
        b.set_next(c, gated).unwrap();
        let at3 = b.eq_const(c, 3);
        b.name(at3, "at3");
        let frozen = b.not(en);
        b.name(frozen, "frozen");
        let nl = b.finish().unwrap();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 8,
                ..Default::default()
            },
        );
        let at3 = nl.find("at3").unwrap();
        let frozen = nl.find("frozen").unwrap();
        assert!(chk.check_cover(at3, &[]).is_reachable());
        assert!(chk.check_cover(at3, &[frozen]).is_unreachable());
        assert_eq!(chk.stats().properties, 2);
    }

    #[test]
    fn induction_proves_invariant() {
        // A saturating 3-bit counter never exceeds 6: "c == 7" is
        // unreachable but needs induction when the bound is marked
        // incomplete.
        let mut b = Builder::new();
        let c = b.reg("c", 3, 0);
        let one = b.constant(1, 3);
        let six = b.constant(6, 3);
        let n = b.add(c, one);
        let at_max = b.eq(c, six);
        let hold = b.mux(at_max, c, n);
        b.set_next(c, hold).unwrap();
        let at7 = b.eq_const(c, 7);
        b.name(at7, "at7");
        let nl = b.finish().unwrap();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 10,
                bound_is_complete: false,
                try_induction: true,
                induction_depth: 2,
                ..Default::default()
            },
        );
        let out = chk.check_cover(nl.find("at7").unwrap(), &[]);
        assert!(out.is_unreachable(), "k-induction should prove this");
    }

    #[test]
    fn solver_observability_flows_into_check_stats() {
        let nl = counter_with_flag();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 8,
                ..Default::default()
            },
        );
        chk.check_cover(nl.find("at5").unwrap(), &[]);
        chk.check_cover(nl.find("never").unwrap(), &[]);
        let st = chk.stats();
        // Gauges must agree with the live solver database.
        let (_, solver) = chk.solver_stats();
        assert_eq!(st.sat_learnt_core, solver.learnt_core);
        assert_eq!(st.sat_learnt_mid, solver.learnt_mid);
        assert_eq!(st.sat_learnt_local, solver.learnt_local);
        assert_eq!(st.sat_binary_clauses, solver.binary_clauses);
        assert_eq!(st.sat_lbd_count, solver.lbd_count);
        assert_eq!(st.sat_lbd_sum, solver.lbd_sum);
        assert!(st.sat_avg_lbd() >= 0.0);
        // absorb() sums counters and gauges, and maxes max_lbd.
        let mut merged = CheckStats::default();
        merged.absorb(&st);
        merged.absorb(&st);
        assert_eq!(merged.sat_lbd_count, 2 * st.sat_lbd_count);
        assert_eq!(merged.sat_learnt_live(), 2 * st.sat_learnt_live());
        assert_eq!(merged.sat_max_lbd, st.sat_max_lbd);
    }

    #[test]
    fn witness_traces_replay_in_simulator() {
        let nl = counter_with_flag();
        let mut chk = Checker::new(
            &nl,
            McConfig {
                bound: 8,
                ..Default::default()
            },
        );
        let at5 = nl.find("at5").unwrap();
        let out = chk.check_cover(at5, &[]);
        let trace = out.trace().unwrap();
        let script = trace.input_script();
        let sim_vals = sim::replay(&nl, &script, &[at5]);
        assert!(
            sim_vals.iter().any(|r| r[0] == 1),
            "replayed witness fires the cover"
        );
    }
}
