//! Cone-of-influence reduction: slice a netlist to the transitive fan-in of
//! a property's referenced signals before bit-blasting.
//!
//! The slice walks *backwards* from the target signals over combinational
//! fan-in edges and register `next` edges — i.e. through registers, across
//! cycles — so a kept node's value at any frame depends only on kept nodes.
//! The unrolling then simply skips the out-of-cone nodes: no literals, no
//! clauses. Soundness: a cover/assume query only ever reads literals of its
//! target signals, whose defining cones are fully present, so the projection
//! of the sliced transition system onto the kept signals is *identical* to
//! the unsliced one and every verdict (SAT/UNSAT, and k-induction's
//! base/step) is preserved. Witness *traces* may differ in the unconstrained
//! out-of-cone signals, which is why the synthesis pipeline applies COI only
//! to Boolean-outcome queries (reachability/tagging), never to the
//! trace-enumerating µPATH shape loop. See `DESIGN.md` §7.

use netlist::{Netlist, Op, SignalId};

/// A cone-of-influence slice: which nodes to keep, plus size accounting.
#[derive(Clone, Debug)]
pub struct CoiSlice {
    keep: Vec<bool>,
    /// Nodes kept by the slice.
    pub kept_nodes: usize,
    /// Total nodes in the netlist.
    pub total_nodes: usize,
    /// Signal bits kept (the per-frame literal count upper bound).
    pub kept_bits: u64,
    /// Total signal bits in the netlist.
    pub total_bits: u64,
}

impl CoiSlice {
    /// Computes the transitive fan-in slice of `targets`.
    ///
    /// Every signal a cover or assume of a query references must be listed
    /// in `targets`; reading an unlisted signal's literals from a sliced
    /// unrolling panics (empty literal vector).
    pub fn compute(nl: &Netlist, targets: &[SignalId]) -> Self {
        let mut keep = vec![false; nl.len()];
        let mut stack: Vec<SignalId> = targets.to_vec();
        while let Some(s) = stack.pop() {
            if std::mem::replace(&mut keep[s.index()], true) {
                continue;
            }
            let node = nl.node(s);
            stack.extend(node.op.comb_fanin());
            if let Op::Reg { next: Some(nx), .. } = node.op {
                stack.push(nx);
            }
        }
        let mut kept_nodes = 0;
        let mut kept_bits = 0u64;
        let mut total_bits = 0u64;
        for (id, node) in nl.iter() {
            total_bits += node.width as u64;
            if keep[id.index()] {
                kept_nodes += 1;
                kept_bits += node.width as u64;
            }
        }
        Self {
            keep,
            kept_nodes,
            total_nodes: nl.len(),
            kept_bits,
            total_bits,
        }
    }

    /// Whether the slice keeps `id`.
    #[inline]
    pub fn keeps(&self, id: SignalId) -> bool {
        self.keep[id.index()]
    }

    /// Kept bits as a fraction of total bits (1.0 = no reduction).
    pub fn bit_ratio(&self) -> f64 {
        if self.total_bits == 0 {
            1.0
        } else {
            self.kept_bits as f64 / self.total_bits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Checker, McConfig};
    use netlist::Builder;

    /// Two independent input-gated counters; a property over one should
    /// slice away the other entirely. The enable inputs keep the logic
    /// symbolic so the CNF sizes are meaningful.
    fn two_counters() -> Netlist {
        let mut b = Builder::new();
        for name in ["a", "b"] {
            let en = b.input(&format!("{name}_en"), 1);
            let c = b.reg(name, 8, 0);
            let one = b.constant(1, 8);
            let n = b.add(c, one);
            let gated = b.mux(en, n, c);
            b.set_next(c, gated).unwrap();
            let at5 = b.eq_const(c, 5);
            b.name(at5, &format!("{name}_at5"));
        }
        b.finish().unwrap()
    }

    #[test]
    fn slice_drops_independent_logic() {
        let nl = two_counters();
        let t = nl.find("a_at5").unwrap();
        let coi = CoiSlice::compute(&nl, &[t]);
        assert!(coi.keeps(nl.find("a").unwrap()));
        assert!(!coi.keeps(nl.find("b").unwrap()));
        assert!(!coi.keeps(nl.find("b_at5").unwrap()));
        assert!(coi.kept_bits < coi.total_bits);
        assert!(coi.bit_ratio() < 1.0);
    }

    #[test]
    fn slice_follows_register_next_edges() {
        // r2's cone must pull in r1 through the sequential edge.
        let mut b = Builder::new();
        let x = b.input("x", 4);
        let r1 = b.reg("r1", 4, 0);
        b.set_next(r1, x).unwrap();
        let r2 = b.reg("r2", 4, 0);
        b.set_next(r2, r1).unwrap();
        let flag = b.eq_const(r2, 3);
        b.name(flag, "flag");
        let nl = b.finish().unwrap();
        let coi = CoiSlice::compute(&nl, &[nl.find("flag").unwrap()]);
        for name in ["x", "r1", "r2", "flag"] {
            assert!(coi.keeps(nl.find(name).unwrap()), "{name} kept");
        }
        assert_eq!(
            coi.kept_nodes, coi.total_nodes,
            "every node is in this cone"
        );
    }

    #[test]
    fn sliced_and_unsliced_verdicts_match() {
        let nl = two_counters();
        let a5 = nl.find("a_at5").unwrap();
        let cfg = McConfig {
            bound: 8,
            ..Default::default()
        };
        let mut plain = Checker::new(&nl, cfg);
        let elab = std::sync::Arc::new(crate::Elab::new(&nl));
        let coi = std::sync::Arc::new(CoiSlice::compute(&nl, &[a5]));
        let mut sliced = Checker::with_coi(&nl, cfg, &[], elab, Some(coi));
        assert!(plain.check_cover(a5, &[]).is_reachable());
        assert!(sliced.check_cover(a5, &[]).is_reachable());
        let (plain_vars, _) = plain.solver_stats();
        let (sliced_vars, _) = sliced.solver_stats();
        assert!(
            sliced_vars < plain_vars,
            "slice shrinks the CNF: {sliced_vars} < {plain_vars}"
        );
        let st = sliced.stats();
        assert!(st.coi_bits_after < st.coi_bits_before);
    }
}
