//! Memoized netlist elaboration shared across unrollings.
//!
//! Every [`Unrolling`](crate::Unrolling) needs the netlist validated and a
//! topological order of its combinational logic. Both are pure functions of
//! the netlist, yet historically they were recomputed by every
//! `Unrolling::new` — once per checker, once more per induction step, and
//! once per worker in a parallel fan-out over the same harness. [`Elab`]
//! computes them once; share it with `Arc<Elab>` and construct unrollings /
//! checkers through the `with_elab` constructors.

use netlist::analysis::topo_order;
use netlist::{Netlist, SignalId};

/// The elaboration of one netlist: validation performed, topological order
/// computed. Immutable and cheap to share across threads behind an `Arc`.
#[derive(Clone, Debug)]
pub struct Elab {
    len: usize,
    order: Vec<SignalId>,
}

impl Elab {
    /// Validates the netlist and computes its topological order.
    ///
    /// # Panics
    /// Panics if the netlist fails validation (same contract as
    /// `Unrolling::new`).
    pub fn new(nl: &Netlist) -> Self {
        nl.validate().expect("elaborating an invalid netlist");
        Self {
            len: nl.len(),
            order: topo_order(nl).expect("validated netlist is acyclic"),
        }
    }

    /// The topological evaluation order.
    pub fn order(&self) -> &[SignalId] {
        &self.order
    }

    /// Number of signals in the elaborated netlist; used to sanity-check
    /// that a cached elaboration is paired with the right netlist.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the elaborated netlist was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}
