//! Witness traces extracted from SAT models, replayable on the simulator.

use crate::unroll::Unrolling;
use netlist::SignalId;
use std::collections::HashMap;

/// A concrete multi-cycle execution witnessing a reachable cover.
///
/// Stores the value of *every* signal at every frame (the designs here are
/// small, and downstream analyses — µPATH extraction in particular — read
/// many signals per frame), plus the primary-input script needed to replay
/// the trace on [`sim::Simulator`].
#[derive(Clone, Debug)]
pub struct Trace {
    /// `values[t][sig.index()]` = value of the signal at cycle `t`.
    values: Vec<Vec<u64>>,
    /// Input assignments per cycle.
    inputs: Vec<HashMap<SignalId, u64>>,
}

impl Trace {
    /// Extracts a trace for `frames` cycles from the unrolling's current SAT
    /// model.
    pub(crate) fn from_model(unroll: &Unrolling<'_>, frames: usize) -> Self {
        let nl = unroll.netlist();
        let input_ids = nl.inputs();
        let mut values = Vec::with_capacity(frames);
        let mut inputs = Vec::with_capacity(frames);
        for t in 0..frames {
            let row: Vec<u64> = (0..nl.len())
                .map(|i| unroll.model_value(t, SignalId(i as u32)))
                .collect();
            let ins = input_ids.iter().map(|&i| (i, row[i.index()])).collect();
            values.push(row);
            inputs.push(ins);
        }
        Self { values, inputs }
    }

    /// Number of cycles in the trace.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value of `sig` at cycle `t`.
    ///
    /// # Panics
    /// Panics if `t` or the signal index is out of range.
    pub fn value(&self, t: usize, sig: SignalId) -> u64 {
        self.values[t][sig.index()]
    }

    /// The per-cycle values of one signal.
    pub fn column(&self, sig: SignalId) -> Vec<u64> {
        self.values.iter().map(|row| row[sig.index()]).collect()
    }

    /// The primary-input script, suitable for [`sim::replay`].
    pub fn input_script(&self) -> Vec<HashMap<SignalId, u64>> {
        self.inputs.clone()
    }

    /// The first cycle at which a 1-bit signal is high, if any.
    pub fn first_high(&self, sig: SignalId) -> Option<usize> {
        (0..self.len()).find(|&t| self.value(t, sig) != 0)
    }
}
