//! A pool of persistent property-checking contexts, shared across the
//! query fleet of a synthesis run (DESIGN.md §12).
//!
//! Each pool slot — keyed by (design/harness fingerprint, [`InitMode`]) —
//! owns one [`Checker`], i.e. one SAT solver plus one unrolling whose
//! transition-relation CNF is loaded once and grown in place
//! ([`Checker::ensure_bound`]) when a deeper bound is requested. Queries
//! check the context out, run a batch of assumption-based properties, and
//! return it; learnt clauses survive across batches, so the whole fleet
//! amortizes one bit-blast and one clause database per key.
//!
//! # Determinism
//!
//! Checkout is *ticket-sequenced*: every job that will use a key is
//! assigned a dense ticket (its rank among the key's jobs in job-id
//! order), and `checkout` blocks until the key's next-ticket counter
//! reaches it. The solver therefore sees exactly the same query sequence
//! for every worker count, which keeps the `--jobs 1` byte-identity bar
//! (tests/parallel_determinism.rs) intact: solver-state evolution — and
//! with it every witness model and every conflict count — is a pure
//! function of the job list.
//!
//! This is deadlock-free under `mc::run_jobs`' scheduling: workers claim
//! jobs in increasing job-id order, tickets within a key are assigned in
//! the same order, and each job uses exactly one key — so the blocked job
//! with the globally smallest id would have to wait on a same-key job with
//! a smaller id, which is already claimed and, by minimality, not blocked.
//!
//! # Panic safety
//!
//! The [`Checkout`] guard is created *before* the (possibly panicking)
//! build/extend work and always advances the ticket on drop; if it drops
//! during an unwind, the checker is discarded rather than returned, so a
//! poisoned solver never leaks back into the pool and waiting jobs simply
//! rebuild the context.

use crate::engine::Checker;
use crate::unroll::InitMode;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Condvar, Mutex};

/// Identity of one pooled context: a stable fingerprint of the netlist (or
/// harness) the context is built over, plus its frame-0 register
/// discipline. The unrolling bound is deliberately *not* part of the key —
/// a request for a deeper bound extends the stored context in place
/// ([`Checker::ensure_bound`]) instead of forking a second solver.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PoolKey {
    /// Stable content fingerprint of the netlist/harness.
    pub fingerprint: u64,
    /// Frame-0 register discipline of the unrolling.
    pub init: InitMode,
}

impl PoolKey {
    /// A key with [`InitMode::Reset`] (the BMC default).
    pub fn reset(fingerprint: u64) -> Self {
        Self {
            fingerprint,
            init: InitMode::Reset,
        }
    }
}

struct SlotState<'a> {
    checker: Option<Checker<'a>>,
    next_ticket: usize,
}

struct PoolSlot<'a> {
    state: Mutex<SlotState<'a>>,
    cv: Condvar,
}

/// A pool of persistent [`Checker`] contexts, one per [`PoolKey`]. See the
/// module docs for the checkout discipline.
#[derive(Default)]
pub struct SolverPool<'a> {
    slots: Mutex<HashMap<PoolKey, Arc<PoolSlot<'a>>>>,
}

impl<'a> SolverPool<'a> {
    /// An empty pool.
    pub fn new() -> Self {
        Self {
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Checks the key's context out for one query batch. Blocks until the
    /// key's ticket counter reaches `ticket` (see the module docs), then
    /// takes the stored checker — or builds a fresh one via `build` on the
    /// first checkout (and after a panic discarded the previous one) —
    /// starts a new accounting batch, and grows the unrolling to at least
    /// `bound` frames. `bound` is a floor, not an exact request: a context
    /// already deeper than `bound` is reused as-is.
    ///
    /// `build` should construct the checker at bound 0 and attach any
    /// budget pool / cancel token; the frame growth happens here so it is
    /// counted as an in-place extension.
    pub fn checkout<F>(&self, key: PoolKey, ticket: usize, bound: usize, build: F) -> Checkout<'a>
    where
        F: FnOnce() -> Checker<'a>,
    {
        let slot = {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(slots.entry(key).or_insert_with(|| {
                Arc::new(PoolSlot {
                    state: Mutex::new(SlotState {
                        checker: None,
                        next_ticket: 0,
                    }),
                    cv: Condvar::new(),
                })
            }))
        };
        let taken = {
            let mut st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
            while st.next_ticket != ticket {
                st = slot.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.checker.take()
        };
        // The guard must exist before any fallible work below: its drop
        // advances the ticket even if `build` or the bound extension
        // panics, so same-key jobs behind us never deadlock.
        let mut out = Checkout {
            slot,
            checker: None,
        };
        let mut checker = match taken {
            Some(c) => c,
            None => build(),
        };
        checker.begin_batch();
        checker.ensure_bound(bound);
        out.checker = Some(checker);
        out
    }
}

/// An exclusive lease on one pooled [`Checker`]; derefs to the checker.
/// Dropping it returns the context to the pool and releases the next
/// ticket — unless the drop happens during a panic unwind, in which case
/// the checker is discarded (its solver may hold a half-finished query).
pub struct Checkout<'a> {
    slot: Arc<PoolSlot<'a>>,
    checker: Option<Checker<'a>>,
}

impl<'a> Deref for Checkout<'a> {
    type Target = Checker<'a>;

    fn deref(&self) -> &Checker<'a> {
        self.checker.as_ref().expect("checkout holds a checker")
    }
}

impl<'a> DerefMut for Checkout<'a> {
    fn deref_mut(&mut self) -> &mut Checker<'a> {
        self.checker.as_mut().expect("checkout holds a checker")
    }
}

impl Drop for Checkout<'_> {
    fn drop(&mut self) {
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        if !std::thread::panicking() {
            st.checker = self.checker.take();
        }
        st.next_ticket += 1;
        self.slot.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::McConfig;
    use netlist::{Builder, Netlist};

    fn counter_netlist() -> Netlist {
        let mut b = Builder::new();
        let c = b.reg("c", 3, 0);
        let one = b.constant(1, 3);
        let n = b.add(c, one);
        b.set_next(c, n).unwrap();
        let at5 = b.eq_const(c, 5);
        b.name(at5, "at5");
        let never = b.constant(0, 1);
        b.name(never, "never");
        b.finish().unwrap()
    }

    fn build(nl: &Netlist) -> Checker<'_> {
        Checker::new(
            nl,
            McConfig {
                bound: 0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn contexts_persist_and_extend_across_checkouts() {
        let nl = counter_netlist();
        let pool = SolverPool::new();
        let key = PoolKey::reset(1);
        let at5 = nl.find("at5").unwrap();
        {
            let mut ctx = pool.checkout(key, 0, 8, || build(&nl));
            assert!(ctx.check_cover(at5, &[]).is_reachable());
            let st = ctx.stats();
            assert_eq!(st.ctx_reused, 0, "first checkout built the context");
            assert_eq!(st.frames_extended, 8);
            assert_eq!(st.frames_rebuilt, 0);
        }
        {
            // Same bound: reused as-is, no frame growth.
            let mut ctx = pool.checkout(key, 1, 8, || build(&nl));
            assert!(ctx
                .check_cover(nl.find("never").unwrap(), &[])
                .is_unreachable());
            let st = ctx.stats();
            assert_eq!(st.ctx_reused, 1);
            assert_eq!(st.frames_extended, 0);
        }
        {
            // Deeper bound: the same solver's unrolling grows in place.
            let mut ctx = pool.checkout(key, 2, 12, || build(&nl));
            assert!(ctx.check_cover(at5, &[]).is_reachable());
            let st = ctx.stats();
            assert_eq!(st.ctx_reused, 1);
            assert_eq!(st.frames_extended, 4);
            assert_eq!(ctx.config().bound, 12);
        }
    }

    #[test]
    fn tickets_sequence_same_key_checkouts() {
        let nl = counter_netlist();
        let pool = SolverPool::new();
        let key = PoolKey::reset(7);
        let at5 = nl.find("at5").unwrap();
        let order = Mutex::new(Vec::new());
        // Four jobs on one key, run by 4 threads claiming in reverse, must
        // still execute in ticket order.
        let jobs: Vec<usize> = (0..4).collect();
        crate::par::run_jobs(jobs, 4, |_, ticket| {
            let mut ctx = pool.checkout(key, ticket, 6, || build(&nl));
            assert!(ctx.check_cover(at5, &[]).is_reachable());
            order.lock().unwrap().push(ticket);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn panicked_checkout_discards_the_context_but_releases_the_ticket() {
        let nl = counter_netlist();
        let pool = SolverPool::new();
        let key = PoolKey::reset(3);
        let at5 = nl.find("at5").unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ctx = pool.checkout(key, 0, 6, || build(&nl));
            panic!("injected");
        }));
        assert!(r.is_err());
        // The next ticket proceeds and rebuilds a fresh context.
        let mut ctx = pool.checkout(key, 1, 6, || build(&nl));
        assert_eq!(ctx.stats().ctx_reused, 0, "poisoned context was discarded");
        assert!(ctx.check_cover(at5, &[]).is_reachable());
    }
}
