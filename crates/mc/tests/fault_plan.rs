//! `FaultPlan` purity: whether (and how) job `ix` of a phase faults must
//! be a pure function of `(seed, phase, ix)` — that property is what
//! makes a failing fault-injected CI run replayable from
//! `SYNTHLC_FAULT_SEED` alone, at any worker count and in any job order.

use mc::{FaultKind, FaultPlan};

/// 100 sampled `(seed, phase, ix)` points, each queried repeatedly, out
/// of order, and from an independently constructed same-seed plan: every
/// answer must be identical.
#[test]
fn fault_for_is_pure_across_100_sampled_points() {
    let phases = ["mupath", "ift", "bmc", "fuzz"];
    let mut points = Vec::new();
    let mut rng = prng::Rng::new(0xfa01);
    while points.len() < 100 {
        let seed = rng.next_u64();
        let phase = phases[rng.range(0, phases.len() as u64) as usize];
        let ix = rng.range(0, 10_000) as usize;
        points.push((seed, phase, ix));
    }
    let mut first = Vec::with_capacity(points.len());
    for &(seed, phase, ix) in &points {
        first.push(FaultPlan::new(seed, 0.5).fault_for(phase, ix));
    }
    // Same plan object, re-queried in reverse order: no hidden state.
    for (i, &(seed, phase, ix)) in points.iter().enumerate().rev() {
        let plan = FaultPlan::new(seed, 0.5);
        assert_eq!(plan.fault_for(phase, ix), first[i]);
        assert_eq!(
            plan.fault_for(phase, ix),
            first[i],
            "repeat query at ({seed:#x}, {phase}, {ix}) changed"
        );
    }
    // A fresh same-seed plan is indistinguishable from the original.
    for (i, &(seed, phase, ix)) in points.iter().enumerate() {
        assert_eq!(
            FaultPlan::new(seed, 0.5).fault_for(phase, ix),
            first[i],
            "fresh plan diverges at ({seed:#x}, {phase}, {ix})"
        );
    }
}

/// The streams are genuinely seed- and phase-sensitive: a rate of 0.5
/// over 100 points plans some faults of every kind, different phases
/// decorrelate, and rate 0 plans nothing.
#[test]
fn fault_streams_decorrelate_by_phase_and_seed() {
    let plan = FaultPlan::new(7, 0.5);
    let a: Vec<_> = (0..100).map(|ix| plan.fault_for("mupath", ix)).collect();
    let b: Vec<_> = (0..100).map(|ix| plan.fault_for("ift", ix)).collect();
    assert_ne!(a, b, "phases must keep independent fault streams");
    let other = FaultPlan::new(8, 0.5);
    let c: Vec<_> = (0..100).map(|ix| other.fault_for("mupath", ix)).collect();
    assert_ne!(a, c, "seeds must decorrelate the same phase");
    for kind in [
        FaultKind::Panic,
        FaultKind::ForceUnknown,
        FaultKind::DeadlineExpired,
    ] {
        assert!(
            a.contains(&Some(kind)),
            "rate 0.5 over 100 jobs should plan at least one {kind:?}"
        );
    }
    let off = FaultPlan::new(7, 0.0);
    assert!(!off.is_active());
    assert!((0..100).all(|ix| off.fault_for("mupath", ix).is_none()));
}
