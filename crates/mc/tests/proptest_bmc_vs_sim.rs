//! BMC/simulator agreement (property-based): any state the simulator can
//! drive a random circuit into must be `Reachable` for the model checker at
//! the same bound, and every witness the model checker produces must
//! replay to the covered condition on the simulator.
//! (Hand-rolled random cases via `prng`.)

use mc::{Checker, McConfig};
use netlist::{Builder, Netlist};
use sim::Simulator;

/// A small random sequential circuit: two 3-bit registers fed by an input
/// and a mix of operators selected by `sel`.
fn build(sel: u8) -> Netlist {
    let mut b = Builder::new();
    let x = b.input("x", 3);
    let r1 = b.reg("r1", 3, 0);
    let r2 = b.reg("r2", 3, 1);
    let mixed = match sel % 5 {
        0 => b.add(r1, x),
        1 => b.xor(r2, x),
        2 => {
            let s = b.red_or(x);
            b.mux(s, r2, r1)
        }
        3 => b.sub(r2, r1),
        _ => {
            let m = b.mul(r1, x);
            b.or(m, r2)
        }
    };
    b.set_next(r1, mixed).unwrap();
    let swapped = b.add(r1, r2);
    b.set_next(r2, swapped).unwrap();
    b.finish().unwrap()
}

/// Wraps `nl` with a `cover_target` monitor for `r1 == target`.
fn with_cover(nl: &Netlist, target: u64) -> Netlist {
    let r1 = nl.find("r1").unwrap();
    let mut b2 = Builder::from_netlist(nl.clone());
    let r1w = b2.wire(r1);
    let is_target = b2.eq_const(r1w, target);
    b2.name(is_target, "cover_target");
    b2.finish().unwrap()
}

#[test]
fn simulated_states_are_bmc_reachable() {
    prng::for_each_case("simulated_states_are_bmc_reachable", 0xb3c5, 48, |rng| {
        let sel = rng.range(0, 5) as u8;
        let script: Vec<u64> = (0..rng.range_usize(1, 8))
            .map(|_| rng.range(0, 8))
            .collect();
        let nl = build(sel);
        let x = nl.find("x").unwrap();
        let r1 = nl.find("r1").unwrap();
        // Simulate the script, record r1's final value and the cycle count.
        let mut s = Simulator::new(&nl);
        for &v in &script {
            s.set_input(x, v);
            s.step();
        }
        let target = s.value(r1);
        // The target value must be BMC-reachable within the script length.
        let monitored = with_cover(&nl, target);
        let cover = monitored.find("cover_target").unwrap();
        let mut chk = Checker::new(
            &monitored,
            McConfig {
                bound: script.len() + 1,
                ..Default::default()
            },
        );
        let out = chk.check_cover(cover, &[]);
        assert!(out.is_reachable(), "sim reached {target}, BMC must too");
        // And the witness must replay.
        let trace = out.trace().unwrap();
        let vals = sim::replay(&monitored, &trace.input_script(), &[cover]);
        assert!(vals.iter().any(|r| r[0] == 1), "witness replays");
    });
}

#[test]
fn bmc_unreachable_values_never_simulate() {
    prng::for_each_case("bmc_unreachable_values_never_simulate", 0x06b7, 48, |rng| {
        let sel = rng.range(0, 5) as u8;
        let scripts: Vec<Vec<u64>> = (0..rng.range_usize(1, 6))
            .map(|_| (0..4).map(|_| rng.range(0, 8)).collect())
            .collect();
        let target = rng.range(0, 8);
        let nl = build(sel);
        let x = nl.find("x").unwrap();
        let r1 = nl.find("r1").unwrap();
        let monitored = with_cover(&nl, target);
        let cover = monitored.find("cover_target").unwrap();
        let mut chk = Checker::new(
            &monitored,
            McConfig {
                bound: 5,
                ..Default::default()
            },
        );
        if chk.check_cover(cover, &[]).is_unreachable() {
            for script in &scripts {
                let mut s = Simulator::new(&nl);
                for &v in script {
                    assert_ne!(s.value(r1), target, "BMC said unreachable within bound");
                    s.set_input(x, v);
                    s.step();
                }
            }
        }
    });
}
