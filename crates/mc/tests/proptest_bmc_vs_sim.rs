//! BMC/simulator agreement (property-based): any state the simulator can
//! drive a random circuit into must be `Reachable` for the model checker at
//! the same bound, and every witness the model checker produces must
//! replay to the covered condition on the simulator.

use mc::{Checker, McConfig};
use netlist::{Builder, Netlist};
use proptest::prelude::*;
use sim::Simulator;

/// A small random sequential circuit: two 3-bit registers fed by an input
/// and a mix of operators selected by `sel`.
fn build(sel: u8) -> Netlist {
    let mut b = Builder::new();
    let x = b.input("x", 3);
    let r1 = b.reg("r1", 3, 0);
    let r2 = b.reg("r2", 3, 1);
    let mixed = match sel % 5 {
        0 => b.add(r1, x),
        1 => b.xor(r2, x),
        2 => {
            let s = b.red_or(x);
            b.mux(s, r2, r1)
        }
        3 => b.sub(r2, r1),
        _ => {
            let m = b.mul(r1, x);
            b.or(m, r2)
        }
    };
    b.set_next(r1, mixed).unwrap();
    let swapped = b.add(r1, r2);
    b.set_next(r2, swapped).unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulated_states_are_bmc_reachable(
        sel in 0u8..5,
        script in prop::collection::vec(0u64..8, 1..8),
    ) {
        let nl = build(sel);
        let x = nl.find("x").unwrap();
        let r1 = nl.find("r1").unwrap();
        // Simulate the script, record r1's final value and the cycle count.
        let mut s = Simulator::new(&nl);
        for &v in &script {
            s.set_input(x, v);
            s.step();
        }
        let target = s.value(r1);
        // The target value must be BMC-reachable within the script length.
        let mut b2 = Builder::from_netlist(nl.clone());
        let r1w = b2.wire(r1);
        let is_target = b2.eq_const(r1w, target);
        b2.name(is_target, "cover_target");
        let monitored = b2.finish().unwrap();
        let cover = monitored.find("cover_target").unwrap();
        let mut chk = Checker::new(
            &monitored,
            McConfig {
                bound: script.len() + 1,
                ..Default::default()
            },
        );
        let out = chk.check_cover(cover, &[]);
        prop_assert!(out.is_reachable(), "sim reached {target}, BMC must too");
        // And the witness must replay.
        let trace = out.trace().unwrap();
        let vals = sim::replay(&monitored, &trace.input_script(), &[cover]);
        prop_assert!(vals.iter().any(|r| r[0] == 1), "witness replays");
    }

    #[test]
    fn bmc_unreachable_values_never_simulate(
        sel in 0u8..5,
        scripts in prop::collection::vec(prop::collection::vec(0u64..8, 4), 1..6),
        target in 0u64..8,
    ) {
        let nl = build(sel);
        let x = nl.find("x").unwrap();
        let r1 = nl.find("r1").unwrap();
        let mut b2 = Builder::from_netlist(nl.clone());
        let r1w = b2.wire(r1);
        let is_target = b2.eq_const(r1w, target);
        b2.name(is_target, "cover_target");
        let monitored = b2.finish().unwrap();
        let cover = monitored.find("cover_target").unwrap();
        let mut chk = Checker::new(
            &monitored,
            McConfig {
                bound: 5,
                ..Default::default()
            },
        );
        if chk.check_cover(cover, &[]).is_unreachable() {
            for script in &scripts {
                let mut s = Simulator::new(&nl);
                for &v in script {
                    prop_assert_ne!(
                        s.value(r1),
                        target,
                        "BMC said unreachable within bound"
                    );
                    s.set_input(x, v);
                    s.step();
                }
            }
        }
    }
}
