//! §V-B3 template sanity: the dominates/exclusive relations computed with
//! the paper's cover templates must match the structure of the pipeline.

use mupath::{dom_excl_relations, ContextMode, SynthConfig};
use uarch::build_tiny;

#[test]
fn tinycore_dom_excl_matches_pipeline_structure() {
    let design = build_tiny();
    let cfg = SynthConfig {
        slots: vec![0],
        context: ContextMode::Any,
        bound: 10,
        conflict_budget: Some(1_000_000),
        max_shapes: 8,
    };
    let (dom, excl, stats) = dom_excl_relations(&design, isa::Opcode::Add, &cfg);
    // PLs in declaration order: 0 = IF, 1 = EX, 2 = WB. Temporal
    // domination (§V-B3): pl0 dominates pl1 iff no trace visits pl1
    // without having visited pl0. In the linear pipeline each earlier
    // stage dominates each later one, never the reverse.
    let d = |a: u32, b: u32| dom.contains(&(uhb::PlId(a), uhb::PlId(b)));
    assert!(d(0, 1), "IF dominates EX");
    assert!(d(0, 2), "IF dominates WB");
    assert!(d(1, 2), "EX dominates WB");
    assert!(!d(1, 0), "EX does not dominate IF");
    assert!(!d(2, 0), "WB does not dominate IF");
    assert!(!d(2, 1), "WB does not dominate EX");
    // Nothing is mutually exclusive on a stall-free linear pipeline.
    assert!(excl.is_empty(), "no exclusive PL pairs, got {excl:?}");
    assert_eq!(stats.properties, 6 + 3, "6 dom + 3 excl covers");
}
