//! Soundness cross-check: every µPATH the synthesis emits is backed by a
//! model-checker witness; replaying that witness's input script on the
//! cycle-accurate simulator must reproduce exactly the recorded PL visits.
//!
//! (The paper's "theoretically sound" direction of §VII-B4: reported paths
//! correspond to real reachable traces.)

use mc::{Checker, McConfig, Outcome};
use mupath::{build_harness, ContextMode, HarnessConfig};
use sim::Simulator;
use uarch::{build_core, CoreConfig};

#[test]
fn mul_witness_replays_with_identical_visits() {
    let design = build_core(&CoreConfig::cva6_mul());
    let h = build_harness(
        &design,
        &HarnessConfig {
            opcode: isa::Opcode::Mul,
            fetch_slot: 0,
            context: ContextMode::Solo,
        },
    );
    let free: Vec<_> = design
        .annotations
        .arf
        .iter()
        .chain(design.annotations.amem.iter())
        .copied()
        .collect();
    let mut chk = Checker::with_free_regs(
        &h.netlist,
        McConfig {
            bound: 16,
            ..Default::default()
        },
        &free,
    );
    let out = chk.check_cover(h.iuv_done, &h.assumes);
    let trace = match out {
        Outcome::Reachable(t) => t,
        other => panic!("expected reachable, got {other:?}"),
    };
    // Replay: drive the recorded inputs AND re-impose the symbolic initial
    // architectural state from the witness.
    let mut s = Simulator::new(&h.netlist);
    for &reg in &free {
        s.poke_reg(reg, trace.value(0, reg));
    }
    let script = trace.input_script();
    for (t, inputs) in script.iter().enumerate() {
        for (&sig, &v) in inputs {
            s.set_input(sig, v);
        }
        for pl in h.pls.ids() {
            let m = h.monitors(pl);
            assert_eq!(
                s.value(m.visit_now),
                trace.value(t, m.visit_now),
                "cycle {t}, PL {}: simulator and witness disagree",
                h.pls.name(pl)
            );
        }
        s.step();
    }
}

#[test]
fn every_enumerated_shape_is_witnessed() {
    let design = build_core(&CoreConfig::cva6_mul());
    let cfg = mupath::SynthConfig::solo(&design);
    let r = mupath::synthesize_instr(&design, isa::Opcode::Mul, &cfg);
    assert_eq!(r.paths.len(), r.concrete.len(), "one witness per shape");
    for (shape, conc) in r.paths.iter().zip(&r.concrete) {
        assert_eq!(&conc.shape().pls, &shape.pls);
        assert_eq!(&conc.shape().revisits, &shape.revisits);
    }
}
