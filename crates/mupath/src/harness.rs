//! The verification harness: weaves IUV-tracking monitors and per-PL visit
//! detectors into a design under verification.
//!
//! This implements the paper's verification environment (§V-A, §V-B):
//! the instruction under verification (IUV) is the instruction latched by
//! the `fetch_slot`-th fetch event; its PC is captured into a
//! verification-only register (the PCR discipline of §V-A), and "instruction
//! *i* visits PL ⟨µfsm, state⟩" (§III-C) becomes the 1-bit monitor
//! `µfsm.vars == state && µfsm.pcr == iuv_pc && iuv_seen`.

use isa::Opcode;
use netlist::{Builder, Netlist, SignalId, Wire};
use uarch::Design;
use uhb::{PlId, PlTable};

/// How the model checker may surround the IUV with context instructions
/// ("all reachable contexts", §V-B, or restrictions used by the artifact's
/// quick experiments).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContextMode {
    /// Arbitrary valid instructions before and after the IUV.
    Any,
    /// Arbitrary non-control-flow context (avoids PC reconvergence; the
    /// default for µPATH enumeration).
    NoControlFlow,
    /// No context at all: the IUV is the only instruction ever fetched
    /// (the artifact's restricted DIV experiment, Appendix §I-F3).
    Solo,
}

/// Per-PL monitor signals.
#[derive(Clone, Copy, Debug)]
pub struct PlMonitors {
    /// The IUV occupies this PL in the current cycle.
    pub visit_now: SignalId,
    /// The IUV has occupied this PL at some cycle so far (sticky).
    pub visited: SignalId,
    /// The IUV has occupied this PL in two or more cycles (sticky).
    pub multi: SignalId,
    /// The IUV left this PL and re-entered it (non-consecutive revisit,
    /// sticky).
    pub noncons: SignalId,
}

/// Harness construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct HarnessConfig {
    /// The IUV's opcode (its encoding constraint; operands stay symbolic).
    pub opcode: Opcode,
    /// Which fetch event carries the IUV (0 = first instruction fetched).
    pub fetch_slot: usize,
    /// Context restriction.
    pub context: ContextMode,
}

/// The monitored design: netlist plus every signal the synthesis passes
/// query.
#[derive(Clone, Debug)]
pub struct IuvHarness {
    /// Design + monitors.
    pub netlist: Netlist,
    /// Performing locations, labelled by their declared state names.
    pub pls: PlTable,
    /// Per-PL class label (the state name with any trailing entry index
    /// stripped, e.g. `scbIss0` → `scbIss`), used to merge structurally
    /// identical µFSMs for decision analysis.
    pub classes: Vec<String>,
    /// Per-PL monitor signals (indexed by [`PlId::index`]).
    pub monitors: Vec<PlMonitors>,
    /// Assume signals that must hold in every cycle of every query.
    /// Opcode-independent; combine with one entry of [`IuvHarness::op_assumes`]
    /// to pin the IUV's opcode.
    pub assumes: Vec<SignalId>,
    /// Per-opcode IUV-encoding assumes: one monitor per opcode the harness
    /// was built for, so a single netlist (and hence one pooled solver
    /// context) serves every opcode's query fleet.
    pub op_assumes: Vec<(Opcode, SignalId)>,
    /// The IUV has been fetched (sticky, registered).
    pub iuv_seen: SignalId,
    /// The IUV has finished: it visited at least one PL and now occupies
    /// none, stably for two cycles.
    pub iuv_done: SignalId,
    /// The captured IUV program counter.
    pub iuv_pc: SignalId,
    /// The configuration that built this harness.
    pub config: HarnessConfig,
}

/// Strips a trailing decimal entry index from a PL label.
fn class_of(name: &str) -> String {
    name.trim_end_matches(|c: char| c.is_ascii_digit())
        .to_owned()
}

/// Builds the IUV harness for a single opcode. The opcode's encoding
/// assume is included in [`IuvHarness::assumes`], so every query made
/// through this harness is automatically opcode-constrained.
///
/// # Panics
/// Panics if the design's annotations are inconsistent with its netlist.
pub fn build_harness(design: &Design, cfg: &HarnessConfig) -> IuvHarness {
    let mut h = build_harness_multi(design, &[cfg.opcode], cfg.fetch_slot, cfg.context);
    h.assumes.insert(0, h.op_assumes[0].1);
    h
}

/// Builds one IUV harness serving a whole family of opcodes: the monitor
/// logic is opcode-independent, and each opcode gets its own encoding
/// assume in [`IuvHarness::op_assumes`]. Queries select an opcode by
/// adding its assume to the opcode-independent [`IuvHarness::assumes`];
/// this is what lets one pooled solver context absorb every opcode's
/// enumeration at a fetch slot.
///
/// # Panics
/// Panics if `opcodes` is empty or the design's annotations are
/// inconsistent with its netlist.
pub fn build_harness_multi(
    design: &Design,
    opcodes: &[Opcode],
    fetch_slot: usize,
    context: ContextMode,
) -> IuvHarness {
    assert!(!opcodes.is_empty(), "harness needs at least one opcode");
    let cfg = HarnessConfig {
        opcode: opcodes[0],
        fetch_slot,
        context,
    };
    let ann = &design.annotations;
    ann.validate(&design.netlist)
        .expect("annotated design is consistent");
    let mut b = Builder::from_netlist(design.netlist.clone());
    let fetch_fire = b.wire(design.fetch_fire);
    let pc = b.wire(design.pc);
    let in_instr = b.wire(design.fetch_instr_input);
    let pcw = pc.width;

    // --- IUV selection: the `fetch_slot`-th fetch event ------------------
    let cnt = b.reg("iuv_fetch_count", 3, 0);
    let one3 = b.constant(1, 3);
    let cnt_max = b.eq_const(cnt, 7);
    let bumped = b.add(cnt, one3);
    let held = b.mux(cnt_max, cnt, bumped);
    let cnt_next = b.mux(fetch_fire, held, cnt);
    b.set_next(cnt, cnt_next).expect("fresh monitor reg");
    let at_slot = b.eq_const(cnt, cfg.fetch_slot as u64);
    let iuv_fire = b.and(fetch_fire, at_slot);
    let iuv_fire = b.name(iuv_fire, "iuv_fire");

    let seen_reg = b.reg("iuv_seen_reg", 1, 0);
    let seen_next = b.or(seen_reg, iuv_fire);
    b.set_next(seen_reg, seen_next).expect("fresh monitor reg");

    let iuv_pc = b.reg("iuv_pc", pcw, 0);
    let iuv_pc_next = b.mux(iuv_fire, pc, iuv_pc);
    b.set_next(iuv_pc, iuv_pc_next).expect("fresh monitor reg");

    // --- assumes -----------------------------------------------------------
    let mut assumes: Vec<SignalId> = Vec::new();
    // Per-opcode IUV encoding assumes (operands remain symbolic). These go
    // into `op_assumes`, not `assumes`: a query picks exactly one.
    let tf = design.type_field;
    let opfield = b.slice(in_instr, tf.hi, tf.lo);
    let not_fire = b.not(iuv_fire);
    let mut op_assumes: Vec<(Opcode, SignalId)> = Vec::new();
    for &op in opcodes {
        let op_match = b.eq_const(opfield, design.type_encoding(op));
        let opcode_ok = b.or(not_fire, op_match);
        let opcode_ok = b.name(opcode_ok, &format!("assume_iuv_opcode_{op:?}"));
        op_assumes.push((op, opcode_ok.id));
    }
    // PC uniqueness: no later fetch may reuse the IUV's PC (PCs are the
    // instruction identifiers, §V-A).
    let refetch = {
        let same = b.eq(pc, iuv_pc);
        let f = b.and(fetch_fire, seen_reg);
        b.and(f, same)
    };
    let no_refetch = b.not(refetch);
    let no_refetch = b.name(no_refetch, "assume_no_refetch");
    assumes.push(no_refetch.id);
    // Context restriction.
    match cfg.context {
        ContextMode::Any => {}
        ContextMode::NoControlFlow => {
            // Control-flow opcodes occupy the top of the encoding space
            // (BEQ=23 .. JALR=30); designs with a custom type encoding
            // (e.g. the cache) have no control flow at all.
            let is_cf = if design.type_values.is_empty() {
                let c23 = b.constant(Opcode::Beq.bits() as u64, opfield.width);
                b.ule(c23, opfield)
            } else {
                b.zero()
            };
            let ctx_fetch = b.and(fetch_fire, not_fire);
            let bad = b.and(ctx_fetch, is_cf);
            let ok = b.not(bad);
            let ok = b.name(ok, "assume_ctx_no_cf");
            assumes.push(ok.id);
        }
        ContextMode::Solo => {
            let ctx_fetch = b.and(fetch_fire, not_fire);
            let ok = b.not(ctx_fetch);
            let ok = b.name(ok, "assume_ctx_solo");
            assumes.push(ok.id);
        }
    }

    // --- per-PL visit monitors ------------------------------------------------
    let mut pls = PlTable::new();
    let mut classes = Vec::new();
    let mut monitors = Vec::new();
    let mut visit_now_all: Vec<Wire> = Vec::new();
    let mut visited_all: Vec<Wire> = Vec::new();
    for ufsm in &ann.ufsms {
        let pcr = b.wire(ufsm.pcr);
        let pcr_match = b.eq(pcr, iuv_pc);
        for st in ufsm.candidate_states(&design.netlist) {
            let pl = pls.add(st.name.clone());
            classes.push(class_of(&st.name));
            let mut state_match = b.one();
            for (vi, &var) in ufsm.vars.iter().enumerate() {
                let vw = b.wire(var);
                let m = b.eq_const(vw, st.state.0[vi]);
                state_match = b.and(state_match, m);
            }
            let occupied = b.and(state_match, pcr_match);
            let visit_now = b.and(occupied, seen_reg);
            let visit_now = b.name(visit_now, &format!("vis_{}", st.name));

            let vis_reg = b.reg(&format!("visreg_{}", st.name), 1, 0);
            let vis_next = b.or(vis_reg, visit_now);
            b.set_next(vis_reg, vis_next).expect("fresh monitor reg");
            let visited = b.name(vis_next, &format!("visited_{}", st.name));

            let multi_now = b.and(visit_now, vis_reg);
            let multi = sva::sticky(&mut b, multi_now, &format!("multi_{}", st.name));

            // Left after a visit, strictly before this cycle.
            let not_now = b.not(visit_now);
            let left_now = b.and(vis_reg, not_now);
            let left_reg = b.reg(&format!("leftreg_{}", st.name), 1, 0);
            let left_next = b.or(left_reg, left_now);
            b.set_next(left_reg, left_next).expect("fresh monitor reg");
            let noncons_now = b.and(visit_now, left_reg);
            let noncons = sva::sticky(&mut b, noncons_now, &format!("noncons_{}", st.name));

            visit_now_all.push(visit_now);
            visited_all.push(visited);
            monitors.push(PlMonitors {
                visit_now: visit_now.id,
                visited: visited.id,
                multi: multi.id,
                noncons: noncons.id,
            });
            debug_assert_eq!(pl.index() + 1, monitors.len());
        }
    }

    // --- completion detector ----------------------------------------------------
    let any_now = b.any(&visit_now_all);
    let any_visited = b.any(&visited_all);
    let done_now = {
        let quiet = b.not(any_now);
        let sv = b.and(seen_reg, any_visited);
        b.and(sv, quiet)
    };
    let done_d1 = sva::delay(&mut b, done_now, 1, "iuv_done_d1");
    let done2 = b.and(done_now, done_d1);
    let iuv_done = b.name(done2, "iuv_done");

    let netlist = b.finish().expect("harnessed netlist is valid");
    IuvHarness {
        netlist,
        pls,
        classes,
        monitors,
        assumes,
        op_assumes,
        iuv_seen: seen_reg.id,
        iuv_done: iuv_done.id,
        iuv_pc: iuv_pc.id,
        config: cfg,
    }
}

impl IuvHarness {
    /// The monitors of a PL.
    ///
    /// # Panics
    /// Panics if `pl` is out of range.
    pub fn monitors(&self, pl: PlId) -> &PlMonitors {
        &self.monitors[pl.index()]
    }

    /// The encoding assume pinning the IUV to `op`.
    ///
    /// # Panics
    /// Panics if the harness was not built for `op`.
    pub fn op_assume(&self, op: Opcode) -> SignalId {
        self.op_assumes
            .iter()
            .find(|(o, _)| *o == op)
            .map(|&(_, s)| s)
            .unwrap_or_else(|| panic!("harness was not built for {op:?}"))
    }

    /// PL ids sharing the same class label as `pl` (including itself).
    pub fn class_members(&self, pl: PlId) -> Vec<PlId> {
        let class = &self.classes[pl.index()];
        self.pls
            .ids()
            .filter(|p| &self.classes[p.index()] == class)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::Simulator;
    use uarch::build_tiny;

    #[test]
    fn harness_monitors_track_a_simulated_iuv() {
        let design = build_tiny();
        let h = build_harness(
            &design,
            &HarnessConfig {
                opcode: Opcode::Add,
                fetch_slot: 0,
                context: ContextMode::Any,
            },
        );
        // Simulate: feed exactly one ADD, then idle.
        let mut s = Simulator::new(&h.netlist);
        let add = isa::Instr::rrr(Opcode::Add, 1, 2, 3).encode() as u64;
        s.set_input(design.fetch_instr_input, add);
        s.set_input(design.fetch_valid_input, 1);
        s.step();
        s.set_input(design.fetch_valid_input, 0);
        // IF visit in the cycle after the fetch.
        let if_pl = h.pls.find("IF").unwrap();
        assert_eq!(s.value(h.monitors(if_pl).visit_now), 1);
        s.step();
        let ex_pl = h.pls.find("EX").unwrap();
        assert_eq!(s.value(h.monitors(ex_pl).visit_now), 1);
        s.step();
        let wb_pl = h.pls.find("WB").unwrap();
        assert_eq!(s.value(h.monitors(wb_pl).visit_now), 1);
        assert_eq!(s.value(h.monitors(if_pl).visited), 1, "sticky");
        assert_eq!(s.value(h.iuv_done), 0, "still in flight");
        s.step();
        s.step();
        assert_eq!(s.value(h.iuv_done), 1, "finished after WB + settle");
        assert_eq!(s.value(h.monitors(wb_pl).multi), 0, "single-cycle visits");
    }

    #[test]
    fn class_labels_strip_entry_indices() {
        assert_eq!(class_of("scbIss0"), "scbIss");
        assert_eq!(class_of("scbIss12"), "scbIss");
        assert_eq!(class_of("ldFin"), "ldFin");
        assert_eq!(class_of("ID"), "ID");
    }
}
