//! RTL2MµPATH: multi-µPATH synthesis from RTL (the paper's first
//! contribution, §III and §V-B).
//!
//! Given an annotated design ([`uarch::Design`]: netlist + µFSM/IFR/commit
//! metadata), this crate finds a complete set of formally verified µPATHs
//! for each instruction:
//!
//! ```text
//! design ──► IuvHarness (visit monitors, §III-C) ──► Checker (BMC covers)
//!        ──► µPATH shapes + concrete witnesses ──► decisions (§IV-B)
//! ```
//!
//! Entry points:
//! * [`duv_pl_reachability`] — §V-B1 (design-wide PL pruning),
//! * [`synthesize_instr`] — §V-B2..5 (per-instruction µPATH enumeration,
//!   decisions, HB edges),
//! * [`dom_excl_relations`] — §V-B3 (dominates/exclusive cover templates),
//! * [`enumerate_revisit_counts`] — §V-B6 (e.g. divider occupancy range),
//! * [`synthesize_isa`] — the whole-ISA driver used by SynthLC.

mod harness;
mod synth;
pub mod uspec;

pub use harness::{build_harness, ContextMode, HarnessConfig, IuvHarness, PlMonitors};
pub use synth::{
    class_view, dom_excl_relations, duv_pl_reachability, enumerate_revisit_counts,
    synthesize_instr, DuvPlReport, InstrSynthesis, SynthConfig,
};

use isa::Opcode;
use mc::CheckStats;
use uarch::Design;

/// Whole-ISA synthesis results.
#[derive(Clone, Debug)]
pub struct IsaSynthesis {
    /// Per-instruction results, in the order requested.
    pub instrs: Vec<InstrSynthesis>,
    /// Aggregate property statistics (the §VII-B3 accounting).
    pub stats: CheckStats,
}

impl IsaSynthesis {
    /// The candidate transponders (>1 µPATH, §V-C).
    pub fn candidate_transponders(&self) -> Vec<Opcode> {
        self.instrs
            .iter()
            .filter(|i| i.is_candidate_transponder())
            .map(|i| i.opcode)
            .collect()
    }

    /// Looks up one instruction's synthesis.
    pub fn instr(&self, op: Opcode) -> Option<&InstrSynthesis> {
        self.instrs.iter().find(|i| i.opcode == op)
    }
}

/// Runs [`synthesize_instr`] for each requested instruction.
pub fn synthesize_isa(design: &Design, ops: &[Opcode], cfg: &SynthConfig) -> IsaSynthesis {
    synthesize_isa_parallel(design, ops, cfg, 1)
}

/// Like [`synthesize_isa`], but fans instructions out over worker threads
/// (each instruction gets its own harness, unrolling, and SAT solver — the
/// same per-property parallelism the paper gets from its JasperGold job
/// pool, Appendix §I-B).
pub fn synthesize_isa_parallel(
    design: &Design,
    ops: &[Opcode],
    cfg: &SynthConfig,
    threads: usize,
) -> IsaSynthesis {
    let threads = threads.max(1).min(ops.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<InstrSynthesis>>> =
        ops.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let ix = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if ix >= ops.len() {
                    break;
                }
                let r = synthesize_instr(design, ops[ix], cfg);
                *results[ix].lock().expect("no poisoned result slot") = Some(r);
            });
        }
    });
    let mut instrs = Vec::new();
    let mut stats = CheckStats::default();
    for slot in results {
        let r = slot
            .into_inner()
            .expect("no poisoned result slot")
            .expect("every instruction synthesized");
        stats.absorb(&r.stats);
        instrs.push(r);
    }
    IsaSynthesis { instrs, stats }
}
