//! RTL2MµPATH: multi-µPATH synthesis from RTL (the paper's first
//! contribution, §III and §V-B).
//!
//! Given an annotated design ([`uarch::Design`]: netlist + µFSM/IFR/commit
//! metadata), this crate finds a complete set of formally verified µPATHs
//! for each instruction:
//!
//! ```text
//! design ──► IuvHarness (visit monitors, §III-C) ──► Checker (BMC covers)
//!        ──► µPATH shapes + concrete witnesses ──► decisions (§IV-B)
//! ```
//!
//! Entry points:
//! * [`duv_pl_reachability`] — §V-B1 (design-wide PL pruning),
//! * [`synthesize_instr`] — §V-B2..5 (per-instruction µPATH enumeration,
//!   decisions, HB edges),
//! * [`dom_excl_relations`] — §V-B3 (dominates/exclusive cover templates),
//! * [`enumerate_revisit_counts`] — §V-B6 (e.g. divider occupancy range),
//! * [`synthesize_isa`] — the whole-ISA driver used by SynthLC.

mod harness;
mod synth;
pub mod uspec;

pub use harness::{build_harness, ContextMode, HarnessConfig, IuvHarness, PlMonitors};
pub use synth::{
    class_view, dom_excl_relations, duv_pl_reachability, enumerate_revisit_counts,
    synthesize_instr, DomExclRelations, DuvPlReport, InstrSynthesis, SynthConfig,
};

use isa::Opcode;
use mc::CheckStats;
use sat::BudgetPool;
use std::sync::Arc;
use uarch::Design;

/// Options for the parallel property-evaluation engine, shared by the
/// whole-ISA driver here and by SynthLC's leakage driver.
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` selects [`mc::default_threads`] (the
    /// `SYNTHLC_THREADS` environment knob, falling back to the machine's
    /// available parallelism).
    pub threads: usize,
    /// A globally shared conflict/propagation account. Uncapped pools only
    /// aggregate statistics; capped pools cut off queries once the global
    /// cap is reached (at the cost of scheduling-dependent results — see
    /// `DESIGN.md` §6).
    pub budget_pool: Option<Arc<BudgetPool>>,
}

impl EngineOptions {
    /// One worker, no shared budget: today's sequential behaviour.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            budget_pool: None,
        }
    }

    /// A fixed worker count, no shared budget.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            budget_pool: None,
        }
    }

    /// The effective worker count (resolving `0` to the environment
    /// default).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            mc::default_threads()
        } else {
            self.threads
        }
    }
}

/// Whole-ISA synthesis results.
#[derive(Clone, Debug)]
pub struct IsaSynthesis {
    /// Per-instruction results, in the order requested.
    pub instrs: Vec<InstrSynthesis>,
    /// Aggregate property statistics (the §VII-B3 accounting).
    pub stats: CheckStats,
}

impl IsaSynthesis {
    /// The candidate transponders (>1 µPATH, §V-C).
    pub fn candidate_transponders(&self) -> Vec<Opcode> {
        self.instrs
            .iter()
            .filter(|i| i.is_candidate_transponder())
            .map(|i| i.opcode)
            .collect()
    }

    /// Looks up one instruction's synthesis.
    pub fn instr(&self, op: Opcode) -> Option<&InstrSynthesis> {
        self.instrs.iter().find(|i| i.opcode == op)
    }
}

/// Runs [`synthesize_instr`] for each requested instruction.
pub fn synthesize_isa(design: &Design, ops: &[Opcode], cfg: &SynthConfig) -> IsaSynthesis {
    synthesize_isa_with(design, ops, cfg, &EngineOptions::sequential())
}

/// Like [`synthesize_isa`], but fans the work out over worker threads.
pub fn synthesize_isa_parallel(
    design: &Design,
    ops: &[Opcode],
    cfg: &SynthConfig,
    threads: usize,
) -> IsaSynthesis {
    synthesize_isa_with(design, ops, cfg, &EngineOptions::with_threads(threads))
}

/// The whole-ISA driver over the parallel property-evaluation engine.
///
/// The job queue holds one job per (instruction, fetch slot); each job owns
/// its harness, unrolling, and SAT solver — the per-property parallelism
/// the paper gets from its JasperGold job pool (Appendix §I-B), at a finer
/// grain than per-instruction so slow instructions (DIV) don't serialize a
/// whole worker's queue tail. Results merge by job id, per instruction in
/// slot order, so the output is identical for every worker count.
pub fn synthesize_isa_with(
    design: &Design,
    ops: &[Opcode],
    cfg: &SynthConfig,
    opts: &EngineOptions,
) -> IsaSynthesis {
    let threads = opts.effective_threads();
    let jobs: Vec<(usize, usize)> = ops
        .iter()
        .enumerate()
        .flat_map(|(oi, _)| (0..cfg.slots.len()).map(move |si| (oi, si)))
        .collect();
    let results = mc::run_jobs(jobs, threads, |_, (oi, si)| {
        synth::synthesize_instr_slot(
            design,
            ops[oi],
            cfg.slots[si],
            si == 0,
            cfg,
            opts.budget_pool.as_ref(),
        )
    });
    let mut results = results.into_iter();
    let mut instrs = Vec::new();
    let mut stats = CheckStats::default();
    for &op in ops {
        let slots: Vec<_> = results.by_ref().take(cfg.slots.len()).collect();
        let r = synth::assemble_instr(op, slots);
        stats.absorb(&r.stats);
        instrs.push(r);
    }
    IsaSynthesis { instrs, stats }
}
