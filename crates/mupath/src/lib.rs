//! RTL2MµPATH: multi-µPATH synthesis from RTL (the paper's first
//! contribution, §III and §V-B).
//!
//! Given an annotated design ([`uarch::Design`]: netlist + µFSM/IFR/commit
//! metadata), this crate finds a complete set of formally verified µPATHs
//! for each instruction:
//!
//! ```text
//! design ──► IuvHarness (visit monitors, §III-C) ──► Checker (BMC covers)
//!        ──► µPATH shapes + concrete witnesses ──► decisions (§IV-B)
//! ```
//!
//! Entry points:
//! * [`duv_pl_reachability`] — §V-B1 (design-wide PL pruning),
//! * [`synthesize_instr`] — §V-B2..5 (per-instruction µPATH enumeration,
//!   decisions, HB edges),
//! * [`dom_excl_relations`] — §V-B3 (dominates/exclusive cover templates),
//! * [`enumerate_revisit_counts`] — §V-B6 (e.g. divider occupancy range),
//! * [`synthesize_isa`] — the whole-ISA driver used by SynthLC.

mod harness;
mod synth;
pub mod uspec;

pub use harness::{
    build_harness, build_harness_multi, ContextMode, HarnessConfig, IuvHarness, PlMonitors,
};
pub use synth::{
    class_view, dom_excl_relations, duv_pl_reachability, enumerate_revisit_counts,
    synthesize_instr, DomExclRelations, DuvPlReport, InstrSynthesis, SynthConfig,
};

use isa::Opcode;
use mc::{CheckStats, FaultKind, FaultPlan, JobStore, UndeterminedReason};
use sat::{BudgetPool, CancelToken};
use std::sync::Arc;
use uarch::Design;

/// Robustness knobs shared by the whole-ISA driver here and by SynthLC's
/// leakage driver (DESIGN.md §8). The default — no token, inactive fault
/// plan, no journal — adds no work and no nondeterminism to a run.
#[derive(Clone, Debug, Default)]
pub struct RobustOptions {
    /// Run-wide cancellation token (explicit cancel and/or wall-clock
    /// deadline). Queries that trip it degrade to
    /// `Undetermined(Deadline)`.
    pub cancel: Option<Arc<CancelToken>>,
    /// Deterministic fault-injection schedule (testing only).
    pub faults: FaultPlan,
    /// Checkpoint store for completed job verdicts; jobs whose key is
    /// already stored are replayed without running.
    pub journal: Option<Arc<dyn JobStore>>,
    /// How many times a transiently failed job (panic, injected fault,
    /// deadline, budget exhaustion) is rerun before its degraded verdict
    /// stands. Retries run sequentially on the coordinating thread in
    /// job order, so any worker count retries the same jobs in the same
    /// order. `0` (the default) keeps the single-shot behaviour.
    pub retries: u32,
}

impl RobustOptions {
    /// Whether any robustness machinery is switched on.
    pub fn is_active(&self) -> bool {
        self.cancel.is_some()
            || self.faults.is_active()
            || self.journal.is_some()
            || self.retries > 0
    }
}

/// Options for the parallel property-evaluation engine, shared by the
/// whole-ISA driver here and by SynthLC's leakage driver.
#[derive(Clone, Debug, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` selects [`mc::default_threads`] (the
    /// `SYNTHLC_THREADS` environment knob, falling back to the machine's
    /// available parallelism).
    pub threads: usize,
    /// A globally shared conflict/propagation account. Uncapped pools only
    /// aggregate statistics; capped pools cut off queries once the global
    /// cap is reached (at the cost of scheduling-dependent results — see
    /// `DESIGN.md` §6).
    pub budget_pool: Option<Arc<BudgetPool>>,
    /// Fault-tolerance knobs (cancellation, fault injection, journal).
    pub robust: RobustOptions,
}

impl EngineOptions {
    /// One worker, no shared budget: today's sequential behaviour.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            ..Default::default()
        }
    }

    /// A fixed worker count, no shared budget.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Default::default()
        }
    }

    /// The effective worker count (resolving `0` to the environment
    /// default).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            mc::default_threads()
        } else {
            self.threads
        }
    }
}

/// A stable fingerprint of a design, mixed into every journal key so a
/// journal written against one RTL revision can never replay onto another.
/// FNV-1a over the canonical netlist text plus the design name.
pub fn design_fingerprint(design: &Design) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let eat = |h: &mut u64, bytes: &[u8]| {
        for &b in bytes {
            *h = (*h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&mut h, design.name.as_bytes());
    eat(&mut h, &[0]);
    eat(&mut h, netlist::text::emit(&design.netlist).as_bytes());
    h
}

/// Serializes [`CheckStats`] counters for a journal record. Durations are
/// deliberately dropped — they are nondeterministic, and resumed runs must
/// reproduce the uninterrupted run's report byte for byte.
pub fn encode_check_stats(s: &CheckStats) -> jsonio::Json {
    use jsonio::Json;
    Json::Obj(vec![
        ("p".into(), Json::Int(s.properties)),
        ("r".into(), Json::Int(s.reachable)),
        ("u".into(), Json::Int(s.unreachable)),
        ("ud".into(), Json::Int(s.undetermined)),
        ("cb".into(), Json::Int(s.coi_bits_before)),
        ("ca".into(), Json::Int(s.coi_bits_after)),
        ("ds".into(), Json::Int(s.discharged_static)),
        ("udb".into(), Json::Int(s.undet_budget)),
        ("udd".into(), Json::Int(s.undet_deadline)),
        ("udp".into(), Json::Int(s.undet_panicked)),
        ("udf".into(), Json::Int(s.undet_fault)),
        ("cr".into(), Json::Int(s.ctx_reused)),
        ("fe".into(), Json::Int(s.frames_extended)),
        ("fr".into(), Json::Int(s.frames_rebuilt)),
        ("lc".into(), Json::Int(s.learnts_carried)),
    ])
}

/// Parses a journaled [`encode_check_stats`] record (durations zero).
pub fn decode_check_stats(j: &jsonio::Json) -> Option<CheckStats> {
    let mut s = CheckStats {
        properties: j.field("p")?.as_u64()?,
        reachable: j.field("r")?.as_u64()?,
        unreachable: j.field("u")?.as_u64()?,
        undetermined: j.field("ud")?.as_u64()?,
        ..Default::default()
    };
    s.coi_bits_before = j.field("cb")?.as_u64()?;
    s.coi_bits_after = j.field("ca")?.as_u64()?;
    s.discharged_static = j.field("ds")?.as_u64()?;
    s.undet_budget = j.field("udb")?.as_u64()?;
    s.undet_deadline = j.field("udd")?.as_u64()?;
    s.undet_panicked = j.field("udp")?.as_u64()?;
    s.undet_fault = j.field("udf")?.as_u64()?;
    s.ctx_reused = j.field("cr")?.as_u64()?;
    s.frames_extended = j.field("fe")?.as_u64()?;
    s.frames_rebuilt = j.field("fr")?.as_u64()?;
    s.learnts_carried = j.field("lc")?.as_u64()?;
    Some(s)
}

/// Whole-ISA synthesis results.
#[derive(Clone, Debug)]
pub struct IsaSynthesis {
    /// Per-instruction results, in the order requested.
    pub instrs: Vec<InstrSynthesis>,
    /// Aggregate property statistics (the §VII-B3 accounting).
    pub stats: CheckStats,
    /// Jobs that degraded to an undetermined stand-in (panic, injected
    /// fault, or deadline) instead of completing.
    pub degraded_jobs: u64,
    /// Jobs replayed from the checkpoint journal instead of running.
    pub resumed_jobs: u64,
    /// Retry attempts spent recovering transiently failed jobs
    /// ([`RobustOptions::retries`]); counts attempts, not jobs, so two
    /// reruns of one job add two.
    pub retried_jobs: u64,
}

impl IsaSynthesis {
    /// The candidate transponders (>1 µPATH, §V-C).
    pub fn candidate_transponders(&self) -> Vec<Opcode> {
        self.instrs
            .iter()
            .filter(|i| i.is_candidate_transponder())
            .map(|i| i.opcode)
            .collect()
    }

    /// Looks up one instruction's synthesis.
    pub fn instr(&self, op: Opcode) -> Option<&InstrSynthesis> {
        self.instrs.iter().find(|i| i.opcode == op)
    }
}

/// Runs [`synthesize_instr`] for each requested instruction.
pub fn synthesize_isa(design: &Design, ops: &[Opcode], cfg: &SynthConfig) -> IsaSynthesis {
    synthesize_isa_with(design, ops, cfg, &EngineOptions::sequential())
}

/// Like [`synthesize_isa`], but fans the work out over worker threads.
pub fn synthesize_isa_parallel(
    design: &Design,
    ops: &[Opcode],
    cfg: &SynthConfig,
    threads: usize,
) -> IsaSynthesis {
    synthesize_isa_with(design, ops, cfg, &EngineOptions::with_threads(threads))
}

/// The whole-ISA driver over the parallel property-evaluation engine.
///
/// The job queue holds one job per (instruction, fetch slot), but jobs no
/// longer own their solver: one multi-opcode harness is built per fetch
/// slot (the monitor logic is opcode-independent), and a [`mc::SolverPool`]
/// keyed by (design fingerprint ⊕ slot, [`mc::InitMode::Reset`]) owns one
/// persistent checker per slot that every opcode's enumeration checks out
/// in turn. Checkout is ticket-sequenced in job-id order, so the solver
/// sees an identical query stream for every worker count and results merge
/// byte-identically (the `tests/parallel_determinism.rs` bar); learnt
/// clauses and the unrolled transition relation carry across the whole
/// fleet.
///
/// Journal resume is *group-atomic* per slot: a slot's cached verdicts are
/// only replayed when every opcode of that slot is cached. A partial
/// replay would leave ticket gaps (cached jobs never check out) and make
/// the pooled solver's clause state depend on which subset resumed —
/// trading a little resume coverage for determinism.
pub fn synthesize_isa_with(
    design: &Design,
    ops: &[Opcode],
    cfg: &SynthConfig,
    opts: &EngineOptions,
) -> IsaSynthesis {
    let threads = opts.effective_threads();
    let robust = &opts.robust;
    if ops.is_empty() {
        return IsaSynthesis {
            instrs: Vec::new(),
            stats: CheckStats::default(),
            degraded_jobs: 0,
            resumed_jobs: 0,
            retried_jobs: 0,
        };
    }
    let fp = design_fingerprint(design);
    // One shared harness per fetch slot; all opcodes ride on it.
    let harnesses: Vec<IuvHarness> = cfg
        .slots
        .iter()
        .map(|&slot| build_harness_multi(design, ops, slot, cfg.context))
        .collect();
    // PL table / classes / HB-edge candidates are opcode- and
    // slot-independent; compute them once for the whole run.
    let meta = match harnesses.first() {
        Some(h) => synth::slot_meta(design, h),
        None => {
            let h = build_harness_multi(design, ops, 0, cfg.context);
            synth::slot_meta(design, &h)
        }
    };
    let free_regs: Vec<netlist::SignalId> = {
        let ann = &design.annotations;
        ann.arf.iter().chain(ann.amem.iter()).copied().collect()
    };
    let keys: Vec<mc::PoolKey> = cfg
        .slots
        .iter()
        .map(|&slot| mc::PoolKey::reset(fp ^ (slot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        .collect();
    // Resolve journal hits on the coordinating thread so `resumed_jobs` is
    // counted before workers start. Atomic per slot group: either every
    // opcode of a slot replays, or the whole slot reruns.
    let mut resumed_jobs = 0u64;
    let keys_json: Vec<Vec<Option<String>>> = (0..cfg.slots.len())
        .map(|si| {
            (0..ops.len())
                .map(|oi| {
                    robust
                        .journal
                        .as_ref()
                        .map(|_| slot_job_key(fp, ops[oi], cfg.slots[si], cfg))
                })
                .collect()
        })
        .collect();
    let cached_groups: Vec<Option<Vec<synth::SlotSynthesis>>> = (0..cfg.slots.len())
        .map(|si| {
            let journal = robust.journal.as_deref()?;
            let group: Option<Vec<synth::SlotSynthesis>> = (0..ops.len())
                .map(|oi| {
                    let k = keys_json[si][oi].as_deref()?;
                    synth::SlotSynthesis::decode(&journal.get(k)?)
                })
                .collect();
            if group.is_some() {
                resumed_jobs += ops.len() as u64;
            }
            group
        })
        .collect();
    let pool = mc::SolverPool::new();
    let jobs: Vec<(usize, usize)> = ops
        .iter()
        .enumerate()
        .flat_map(|(oi, _)| (0..cfg.slots.len()).map(move |si| (oi, si)))
        .collect();
    // The per-job body, shared by the parallel batch (ticket = opcode
    // index, attempt 0) and by sequential coordinator-thread retries
    // (continuation tickets, attempt ≥ 1).
    let run_slot = |ix: usize, oi: usize, si: usize, ticket: usize, attempt: u32| {
        let fault = robust.faults.fault_for_attempt("mupath", ix, attempt);
        let mut ctx = pool.checkout(keys[si], ticket, cfg.bound, || {
            let mut c = mc::Checker::with_free_regs(
                &harnesses[si].netlist,
                mc::McConfig {
                    bound: 0,
                    ..cfg.mc_config()
                },
                &free_regs,
            );
            if let Some(p) = &opts.budget_pool {
                c.set_budget_pool(Arc::clone(p));
            }
            if let Some(token) = &robust.cancel {
                c.set_cancel_token(Arc::clone(token));
            }
            c
        });
        // Injected panics fire after checkout so the guard's drop releases
        // the next ticket (discarding the checker; the slot's next opcode
        // deterministically rebuilds it).
        if fault == Some(FaultKind::Panic) {
            panic!("injected fault: panic in mupath job {ix}");
        }
        match fault {
            Some(FaultKind::ForceUnknown) => ctx.set_fault(UndeterminedReason::FaultInjected),
            Some(FaultKind::DeadlineExpired) => ctx.set_fault(UndeterminedReason::Deadline),
            _ => {}
        }
        let r = synth::enumerate_slot(&harnesses[si], ops[oi], &mut ctx, cfg);
        drop(ctx);
        // Only clean verdicts are journaled: degraded jobs must rerun on
        // resume so an interrupted faulty run can still converge to the
        // uninterrupted result.
        if fault.is_none() && r.stats.degraded() == 0 {
            if let (Some(j), Some(k)) = (robust.journal.as_deref(), keys_json[si][oi].as_deref()) {
                j.put(k, &r.encode());
            }
        }
        r
    };
    let mut results = mc::run_jobs_supervised(jobs.clone(), threads, |ix, (oi, si)| {
        if let Some(group) = &cached_groups[si] {
            return group[oi].clone();
        }
        // Tickets are dense per slot because cached groups (which never
        // check out) are all-or-nothing: within a running group the ticket
        // is simply the opcode index.
        run_slot(ix, oi, si, oi, 0)
    });
    // Transient-failure recovery: rerun failed or degraded jobs
    // sequentially, in job order, on this thread. Each rerun consumes the
    // slot's next checkout ticket, so the pooled solver's query stream —
    // and therefore the merged report — stays a pure function of the job
    // list and the retry schedule, independent of worker count.
    let mut retried_jobs = 0u64;
    if robust.retries > 0 {
        let mut next_ticket: Vec<usize> = cached_groups
            .iter()
            .map(|g| if g.is_some() { 0 } else { ops.len() })
            .collect();
        for (ix, &(oi, si)) in jobs.iter().enumerate() {
            for attempt in 1..=robust.retries {
                let needs_retry = match &results[ix] {
                    Ok(s) => s.stats.degraded() > 0,
                    Err(_) => true,
                };
                if !needs_retry {
                    break;
                }
                // A tripped run-wide deadline can't be outrun by retrying.
                if robust.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                    break;
                }
                retried_jobs += 1;
                let ticket = next_ticket[si];
                next_ticket[si] += 1;
                results[ix] = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_slot(ix, oi, si, ticket, attempt)
                }))
                .map_err(|payload| mc::JobFailure {
                    job_id: ix,
                    payload_msg: payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into()),
                    backtrace_hint: format!("panicked again on retry attempt {attempt}"),
                });
            }
        }
    }
    let mut degraded_jobs = 0u64;
    let mut results = results.into_iter();
    let mut instrs = Vec::new();
    let mut stats = CheckStats::default();
    for &op in ops {
        let slots: Vec<synth::SlotSynthesis> = results
            .by_ref()
            .take(cfg.slots.len())
            .map(|r| match r {
                Ok(s) => {
                    if s.stats.degraded() > 0 {
                        degraded_jobs += 1;
                    }
                    s
                }
                Err(_) => {
                    degraded_jobs += 1;
                    synth::SlotSynthesis::degraded(UndeterminedReason::JobPanicked)
                }
            })
            .collect();
        let r = synth::assemble_instr(op, slots, &meta);
        stats.absorb(&r.stats);
        instrs.push(r);
    }
    IsaSynthesis {
        instrs,
        stats,
        degraded_jobs,
        resumed_jobs,
        retried_jobs,
    }
}

/// The stable journal key of one (instruction, fetch-slot) job: design
/// fingerprint plus every configuration knob that can change the verdict.
fn slot_job_key(fp: u64, op: Opcode, slot: usize, cfg: &SynthConfig) -> String {
    format!(
        "mupath:{fp:016x}:{op:?}:{slot}:{:?}:{}:{:?}:{}",
        cfg.context, cfg.bound, cfg.conflict_budget, cfg.max_shapes
    )
}
