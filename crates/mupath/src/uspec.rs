//! µSPEC-style export of synthesized µPATHs.
//!
//! The Check tools (§I) consume axiomatic µSPEC models: first-order axioms
//! describing, per instruction, the disjunction of its µPATHs as µHB
//! nodes/edges. The paper's predecessor (RTL2µSPEC) emits such models but
//! is limited to one path per instruction; RTL2MµPATH's whole point is the
//! multi-path disjunction. This module renders an [`InstrSynthesis`] in
//! that axiom style, so the output remains consumable by µSPEC-era
//! tooling conventions.

use crate::InstrSynthesis;
use uhb::{PlTable, Revisit};

/// Renders one instruction's µPATHs as a µSPEC-style axiom: a disjunction
/// over paths, each a conjunction of `AddEdge` terms on `(i, PL)` nodes,
/// with consecutive-revisit summaries annotated.
pub fn render_axiom(synth: &InstrSynthesis, pls: &PlTable) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Axiom \"Instr_{}\":\n  forall microop \"i\",\n  IsOpcode i {} =>\n",
        synth.opcode.mnemonic().to_uppercase(),
        synth.opcode.mnemonic().to_uppercase()
    ));
    let mut path_terms = Vec::new();
    for (ix, shape) in synth.paths.iter().enumerate() {
        let mut terms = Vec::new();
        for &(a, b) in &shape.edges {
            terms.push(format!(
                "AddEdge ((i, {}), (i, {}), \"path{ix}\")",
                node_label(pls, a, shape.revisits.get(&a)),
                node_label(pls, b, shape.revisits.get(&b))
            ));
        }
        if terms.is_empty() {
            // Single-node or edge-free paths still assert their visits.
            for &pl in &shape.pls {
                terms.push(format!(
                    "NodeExists (i, {})",
                    node_label(pls, pl, shape.revisits.get(&pl))
                ));
            }
        }
        path_terms.push(format!(
            "  (* µPATH {ix} *)\n    ({})",
            terms.join(" /\\\n     ")
        ));
    }
    out.push_str(&path_terms.join("\n  \\/\n"));
    out.push_str(".\n");
    out
}

fn node_label(pls: &PlTable, pl: uhb::PlId, revisit: Option<&Revisit>) -> String {
    match revisit {
        Some(Revisit::Consecutive) => format!("{}(1..l)", pls.name(pl)),
        Some(Revisit::NonConsecutive) => format!("{}(*)", pls.name(pl)),
        _ => pls.name(pl).to_owned(),
    }
}

/// Renders a whole-ISA µSPEC-style model preamble plus one axiom per
/// instruction.
pub fn render_model(design_name: &str, synths: &[InstrSynthesis], pls: &PlTable) -> String {
    let mut out = format!(
        "(* µSPEC-style model synthesized by RTL2MµPATH from `{design_name}` *)\n\
         (* Performing locations: *)\n"
    );
    for pl in pls.ids() {
        out.push_str(&format!("(*   {} *)\n", pls.name(pl)));
    }
    out.push('\n');
    for s in synths {
        out.push_str(&render_axiom(s, pls));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize_instr, ContextMode, SynthConfig};
    use uarch::build_tiny;

    #[test]
    fn tinycore_axiom_renders_single_path() {
        let design = build_tiny();
        let cfg = SynthConfig {
            slots: vec![0],
            context: ContextMode::Solo,
            bound: 10,
            conflict_budget: Some(1_000_000),
            max_shapes: 4,
        };
        let r = synthesize_instr(&design, isa::Opcode::Add, &cfg);
        let h = crate::build_harness(
            &design,
            &crate::HarnessConfig {
                opcode: isa::Opcode::Add,
                fetch_slot: 0,
                context: ContextMode::Solo,
            },
        );
        let axiom = render_axiom(&r, &h.pls);
        assert!(axiom.contains("Axiom \"Instr_ADD\""));
        assert!(axiom.contains("IsOpcode i ADD"));
        assert!(axiom.contains("AddEdge ((i, IF), (i, EX)"));
        assert!(axiom.contains("AddEdge ((i, EX), (i, WB)"));
        assert!(!axiom.contains("\\/"), "single path: no disjunction");
        let model = render_model("TinyCore", &[r], &h.pls);
        assert!(model.contains("TinyCore"));
    }

    #[test]
    fn multi_path_axiom_has_disjunction() {
        let design = uarch::build_core(&uarch::CoreConfig::cva6_mul());
        let cfg = SynthConfig::solo(&design);
        let r = synthesize_instr(&design, isa::Opcode::Mul, &cfg);
        let h = crate::build_harness(
            &design,
            &crate::HarnessConfig {
                opcode: isa::Opcode::Mul,
                fetch_slot: 0,
                context: ContextMode::Solo,
            },
        );
        let axiom = render_axiom(&r, &h.pls);
        assert!(axiom.contains("\\/"), "two µPATHs: a disjunction: {axiom}");
        assert!(axiom.contains("mulU(1..l)"), "revisit annotated: {axiom}");
    }
}
